"""Table 8: QuantumNAT on fully quantum (single-block) models.

Paper: single-block models with 3 or 6 U3+CU3 layers, norm+quant applied
to the *final* measurement outcomes (noise factor 0.5, 6 levels).
QuantumNAT beats baselines by 7.4% on average -- no intermediate
measurements required.
"""

import numpy as np

from benchmarks.common import (
    FULL,
    QuantumNATConfig,
    bench_task,
    build_model,
    format_table,
    make_real_qc_executor,
    record,
    train_model,
)
from repro.core import InjectionConfig

MODELS = ((3,), (6,)) if FULL else ((2,), (4,))
TASKS = ("mnist-4", "mnist-2", "fashion-4") if FULL else ("mnist-4", "mnist-2")
DEVICE = "santiago"


def _fully_quantum_config(baseline: bool) -> QuantumNATConfig:
    if baseline:
        return QuantumNATConfig.baseline()
    # Paper: noise factor 0.5, 6 levels, transforms on the final outputs.
    return QuantumNATConfig(
        normalize=True,
        quantize=True,
        n_levels=6,
        injection=InjectionConfig("gate_insertion", 0.5),
        transform_final=True,
    )


def run_table8():
    rows = []
    gains = []
    for (layers,) in MODELS:
        for task_name in TASKS:
            task = bench_task(task_name)
            accs = {}
            for label, baseline in [("Baseline", True), ("QuantumNAT", False)]:
                model = build_model(
                    task, DEVICE, _fully_quantum_config(baseline), 1, layers
                )
                result = train_model(model, task)
                executor = make_real_qc_executor(model, rng=5)
                acc, _ = model.evaluate(
                    result.weights, task.test_x, task.test_y, executor
                )
                accs[label] = acc
            gains.append(accs["QuantumNAT"] - accs["Baseline"])
            rows.append(
                [f"{layers} Layer", task_name, accs["Baseline"], accs["QuantumNAT"]]
            )
    text = format_table(
        f"Table 8: fully quantum (single-block) models on {DEVICE}",
        ["Model", "Task", "Baseline", "QuantumNAT"],
        rows,
    )
    record("table08_fully_quantum", text)
    return {"mean_gain": float(np.mean(gains))}


def test_table8_fully_quantum(benchmark):
    result = benchmark.pedantic(run_table8, rounds=1, iterations=1)
    assert result["mean_gain"] > -0.05
