"""Table 13: using validation-set statistics to normalize the test set.

Paper: when the deployment batch is too small for reliable statistics,
normalization statistics profiled on the validation set (on hardware)
give almost the same accuracy as the test set's own statistics
(0.65 vs 0.67 on average over 9 benchmarks).
"""

import numpy as np

from benchmarks.common import (
    FULL,
    QuantumNATConfig,
    bench_task,
    build_model,
    format_table,
    make_real_qc_executor,
    record,
    train_model,
)

CELLS = (
    [("fashion-4", d) for d in ("santiago", "yorktown", "belem")]
    + [("mnist-2", d) for d in ("santiago", "yorktown", "belem")]
    if FULL
    else [("fashion-4", "santiago"), ("mnist-2", "yorktown")]
)


def run_table13():
    rows = []
    pairs = []
    for task_name, device in CELLS:
        task = bench_task(task_name)
        model = build_model(task, device, QuantumNATConfig.norm_only(), 2, 2)
        result = train_model(model, task)
        executor = make_real_qc_executor(model, rng=5)
        own_acc, _ = model.evaluate(
            result.weights, task.test_x, task.test_y, executor
        )
        # Profile per-block statistics on the validation set (same backend).
        profile_executor = make_real_qc_executor(model, rng=6)
        model.fixed_stats = model.profile_statistics(
            result.weights, task.valid_x, profile_executor
        )
        valid_acc, _ = model.evaluate(
            result.weights, task.test_x, task.test_y, executor
        )
        model.fixed_stats = None
        stats_mean = ", ".join(
            f"{m:.3f}" for m in model.profile_statistics(result.weights, task.valid_x)[0][0][:4]
        )
        rows.append([f"{task_name}-{device}", own_acc, valid_acc, stats_mean])
        pairs.append((own_acc, valid_acc))
    avg_own = float(np.mean([a for a, _ in pairs]))
    avg_valid = float(np.mean([b for _, b in pairs]))
    rows.append(["Average", avg_own, avg_valid, ""])
    text = format_table(
        "Table 13: test accuracy using test-set vs validation-set statistics",
        ["Benchmark", "Test stats acc", "Valid stats acc", "Valid mean (q0..q3)"],
        rows,
    )
    record("table13_valid_stats", text)
    return {"own": avg_own, "valid": avg_valid}


def test_table13_valid_stats(benchmark):
    result = benchmark.pedantic(run_table13, rounds=1, iterations=1)
    # Validation statistics should be a close substitute (paper: 0.67 vs 0.65).
    assert abs(result["own"] - result["valid"]) < 0.15
