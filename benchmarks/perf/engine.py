"""Fast-execution-engine benchmark harness.

Times the hot paths of the simulator stack -- statevector forward,
forward + adjoint backward, segment-fused trajectory inference, the
superoperator-compiled exact noisy density backend (with and without
the full relaxation + readout channel set), sharded trajectory
execution, the batched noise-injected *training step* (vs the
per-sample reference loop), the stacked multi-realization training
sweep, gate-fused inference, the coalescing serving layer (stacked
window flushes vs naive per-request dispatch, via
``benchmarks/perf/serve_load.py``), and a short end-to-end training run
-- against the retained reference implementations, asserts
fast-vs-reference numerical equivalence (bit-identity for sharded vs
serial trajectories), and writes everything to ``BENCH_engine.json``.

The reference paths (``apply_matrix_reference``, ``bind_circuit_reference``,
``run_ops_reference``, ``adjoint_backward_reference``,
``trajectory_probabilities_reference``, ``run_noisy_density_reference``,
``QuantumNATModel.loss_and_gradients_reference``) are the
pre-fast-engine implementations kept in-tree precisely so every
benchmark run re-records its own baseline on the machine it runs on.

Usage::

    PYTHONPATH=src python benchmarks/perf/engine.py --scale quick

``benchmarks/perf/check_regression.py`` compares a fresh run against the
committed ``BENCH_engine.json`` and fails on large slowdowns (the CI
perf-regression gate).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

# Allow `python benchmarks/perf/engine.py` from a plain checkout: put the
# src layout on the path when `repro` is not installed.
_SRC = Path(__file__).resolve().parents[2] / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import (
    QuantumNATConfig,
    QuantumNATModel,
    TrainConfig,
    get_device,
    paper_model,
    train,
)
from repro.compiler import transpile
from repro.core.gradients import (
    QuantumTape,
    adjoint_backward,
    adjoint_backward_reference,
    forward_with_tape,
)
from repro.noise import NoiseModel, readout_matrix
from repro.noise.density_backend import (
    run_noisy_density,
    run_noisy_density_reference,
)
from repro.noise.trajectory import (
    mcwf_probabilities_reference,
    run_noisy_trajectories,
    trajectory_probabilities,
    trajectory_probabilities_reference,
)
from repro.sim.statevector import (
    apply_matrix,
    apply_matrix_reference,
    bind_circuit,
    bind_circuit_reference,
    run_ops,
    run_ops_reference,
)
from repro.sim.gates import gate_matrix

#: Default output location: the repository root.
DEFAULT_OUT = Path(__file__).resolve().parents[2] / "BENCH_engine.json"

#: Exact-path equivalence tolerance (fast vs reference, same math).
EXACT_TOL = 1e-10

#: Minimum ``sharded_trajectory`` speedup-vs-serial, keyed by the
#: effective parallel width ``min(shard_workers, os.cpu_count())`` --
#: the ISSUE target (>= 1.5x at 4 workers, quick scale) where the host
#: can deliver it, near-parity where it cannot.  Recorded into the
#: report row as ``floor``; ``check_regression.py`` enforces it hard.
SHARD_FLOORS = {1: 0.7, 2: 1.1, 4: 1.5}

SCALES = {
    # tier-2 smoke: seconds, runs inside pytest
    "smoke": dict(batch=8, traj_batch=4, n_trajectories=8, repeats=2,
                  epochs=1, n_train=16, stat_trajectories=64,
                  train_batch=8, ref_repeats=1, n_realizations=4,
                  shard_size=2, shard_workers=2,
                  stab_qubits=10, stab_wide_qubits=32, stab_trajectories=16),
    "quick": dict(batch=64, traj_batch=16, n_trajectories=64, repeats=5,
                  epochs=2, n_train=64, stat_trajectories=256,
                  train_batch=32, ref_repeats=2, n_realizations=8,
                  shard_size=16, shard_workers=4,
                  stab_qubits=12, stab_wide_qubits=56, stab_trajectories=64),
    "full": dict(batch=128, traj_batch=32, n_trajectories=128, repeats=10,
                 epochs=4, n_train=128, stat_trajectories=1024,
                 train_batch=64, ref_repeats=3, n_realizations=16,
                 shard_size=32, shard_workers=4,
                 stab_qubits=14, stab_wide_qubits=64, stab_trajectories=128),
}


def _best_of(f, repeats: int) -> float:
    """Best (minimum) wall-clock over ``repeats`` runs, after one warmup."""
    f()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        f()
        best = min(best, time.perf_counter() - t0)
    return best


def _coherent_only_model(n_qubits: int) -> NoiseModel:
    """Deterministic noise (no stochastic Paulis): fused == reference exactly."""
    from repro.noise.model import PauliError

    return NoiseModel(
        n_qubits,
        {("sx", q): PauliError(0.0, 0.0, 0.0) for q in range(n_qubits)},
        {},
        np.stack([readout_matrix(0.0, 0.0)] * n_qubits),
        coherent={q: (0.01 * (q + 1), -0.02 * (q + 1)) for q in range(n_qubits)},
    )


def _bench_kernels(repeats: int) -> dict:
    """Micro-timings of single gate applications, fast vs reference."""
    rng = np.random.default_rng(0)
    n, batch = 4, 256
    state = rng.normal(size=(batch, 2**n)) + 1j * rng.normal(size=(batch, 2**n))
    cases = {
        "1q_diagonal_rz": (gate_matrix("rz", (0.3,)), (1,)),
        "1q_general_sx": (gate_matrix("sx"), (2,)),
        "2q_cx": (gate_matrix("cx"), (0, 2)),
        "2q_general_cu3": (gate_matrix("cu3", (0.4, 0.1, -0.2)), (1, 3)),
    }
    out = {}
    for name, (matrix, qubits) in cases.items():
        fast = _best_of(lambda: apply_matrix(state, matrix, qubits, n),
                        repeats * 20)
        ref = _best_of(lambda: apply_matrix_reference(state, matrix, qubits, n),
                       repeats * 20)
        err = float(np.abs(
            apply_matrix(state, matrix, qubits, n)
            - apply_matrix_reference(state, matrix, qubits, n)
        ).max())
        if err > EXACT_TOL:
            raise AssertionError(f"kernel {name}: fast/reference diverge ({err:.2e})")
        out[name] = {
            "reference_us": ref * 1e6,
            "fast_us": fast * 1e6,
            "speedup": ref / fast,
            "max_err": err,
        }
    return out


def run_benchmarks(
    scale: str = "quick",
    out_path: "str | Path | None" = DEFAULT_OUT,
    seed: int = 0,
) -> dict:
    """Run all engine benchmarks; returns (and optionally writes) the report."""
    cfg = SCALES[scale]
    rng = np.random.default_rng(seed)
    device = get_device("santiago")
    qnn = paper_model(4, 2, 2, 16, 4)
    compiled = transpile(qnn.blocks[0], device, 2)
    circuit = compiled.circuit
    weights = qnn.init_weights(rng)
    batch = cfg["batch"]
    inputs = rng.normal(0, 1, (batch, 16))
    n_weights = circuit.parameter_table.num_weights
    n_qubits = circuit.n_qubits
    grad = np.ones((batch, n_qubits))

    report: dict = {
        "meta": {
            "scale": scale,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count() or 1,
            "circuit_gates": len(circuit.gates),
            "circuit_qubits": n_qubits,
            "batch": batch,
        },
        "kernels": _bench_kernels(cfg["repeats"]),
        "benchmarks": {},
        "equivalence": {},
    }
    bench = report["benchmarks"]
    equiv = report["equivalence"]

    # -- forward ------------------------------------------------------------
    def forward_fast():
        return run_ops(bind_circuit(circuit, weights, inputs), n_qubits, batch)

    def forward_ref():
        return run_ops_reference(
            bind_circuit_reference(circuit, weights, inputs), n_qubits, batch
        )

    t_fast = _best_of(forward_fast, cfg["repeats"])
    t_ref = _best_of(forward_ref, cfg["repeats"])
    err = float(np.abs(forward_fast() - forward_ref()).max())
    bench["forward"] = {
        "reference_s": t_ref, "fast_s": t_fast, "speedup": t_ref / t_fast,
    }
    equiv["forward_max_err"] = err

    # -- forward + adjoint backward ----------------------------------------
    def fb_fast():
        _, tape = forward_with_tape(circuit, weights, inputs)
        return adjoint_backward(tape, grad)

    def fb_ref():
        ops = bind_circuit_reference(circuit, weights, inputs)
        state = run_ops_reference(ops, n_qubits, batch)
        tape = QuantumTape(circuit, ops, state, n_weights, inputs.shape[1])
        return adjoint_backward_reference(tape, grad)

    t_fast = _best_of(fb_fast, cfg["repeats"])
    t_ref = _best_of(fb_ref, cfg["repeats"])
    wf, xf = fb_fast()
    wr, xr = fb_ref()
    bench["forward_backward"] = {
        "reference_s": t_ref, "fast_s": t_fast, "speedup": t_ref / t_fast,
    }
    equiv["adjoint_weight_grad_max_err"] = float(np.abs(wf - wr).max())
    equiv["adjoint_input_grad_max_err"] = float(np.abs(xf - xr).max())

    # -- trajectory inference ----------------------------------------------
    hardware = device.hardware_model
    traj_inputs = inputs[: cfg["traj_batch"]]
    traj_batch = traj_inputs.shape[0]
    n_traj = cfg["n_trajectories"]

    t_fast = _best_of(
        lambda: trajectory_probabilities(
            compiled, hardware, weights, traj_inputs, traj_batch, n_traj, rng=1
        ),
        cfg["repeats"],
    )
    t_ref = _best_of(
        lambda: trajectory_probabilities_reference(
            compiled, hardware, weights, traj_inputs, traj_batch, n_traj, rng=1
        ),
        cfg["repeats"],
    )
    bench["trajectory_inference"] = {
        "reference_s": t_ref, "fast_s": t_fast, "speedup": t_ref / t_fast,
        "n_trajectories": n_traj, "batch": traj_batch,
    }

    # Deterministic channel (coherent-only noise): fused == reference exactly.
    det_model = _coherent_only_model(device.n_qubits)
    p_fused = trajectory_probabilities(
        compiled, det_model, weights, traj_inputs, traj_batch, 2, rng=3
    )
    p_ref = trajectory_probabilities_reference(
        compiled, det_model, weights, traj_inputs, traj_batch, 2, rng=3
    )
    equiv["trajectory_deterministic_max_err"] = float(np.abs(p_fused - p_ref).max())

    # -- exact noisy density inference (superop engine vs per-Kraus) -------
    # Hardware model: Pauli channels on every driven gate plus coherent
    # miscalibration -- the densest channel the engine compiles.
    t_fast = _best_of(
        lambda: run_noisy_density(compiled, hardware, weights, traj_inputs),
        cfg["repeats"],
    )
    t_ref = _best_of(
        lambda: run_noisy_density_reference(
            compiled, hardware, weights, traj_inputs
        ),
        cfg["ref_repeats"],
    )
    bench["density_inference"] = {
        "reference_s": t_ref, "fast_s": t_fast, "speedup": t_ref / t_fast,
        "batch": traj_batch,
    }
    equiv["density_inference_max_err"] = float(
        np.abs(
            run_noisy_density(compiled, hardware, weights, traj_inputs)
            - run_noisy_density_reference(compiled, hardware, weights, traj_inputs)
        ).max()
    )

    # -- full-noise density inference (relaxation + readout superops) ------
    # The complete realistic model: Pauli channels + coherent errors +
    # exact T1/T2 relaxation after every driven gate + readout compiled
    # as a terminal measurement superop.  The reference walks the same
    # channel Kraus-by-Kraus (relaxation adds 2 more operators per
    # operand site) and mixes readout in probability space.
    relax_model = hardware.with_relaxation(
        {q: (50.0 + 10.0 * q, 60.0 + 8.0 * q) for q in range(device.n_qubits)},
        (0.035, 0.30),
    )
    t_fast = _best_of(
        lambda: run_noisy_density(compiled, relax_model, weights, traj_inputs),
        cfg["repeats"],
    )
    t_ref = _best_of(
        lambda: run_noisy_density_reference(
            compiled, relax_model, weights, traj_inputs
        ),
        cfg["ref_repeats"],
    )
    bench["density_relaxation"] = {
        "reference_s": t_ref, "fast_s": t_fast, "speedup": t_ref / t_fast,
        "batch": traj_batch,
    }
    equiv["density_relaxation_max_err"] = float(
        np.abs(
            run_noisy_density(compiled, relax_model, weights, traj_inputs)
            - run_noisy_density_reference(
                compiled, relax_model, weights, traj_inputs
            )
        ).max()
    )

    # -- quantum-jump (MCWF) trajectory inference ---------------------------
    # The sampled backend for the *exact* relaxation channel set: jump
    # sites sampled from the Kraus effects with per-row renormalization,
    # fused across (trajectories x batch) like the Pauli sweep.  The
    # reference loops one trajectory at a time with per-site Python
    # candidate application and per-row choice draws.
    t_fast = _best_of(
        lambda: trajectory_probabilities(
            compiled, relax_model, weights, traj_inputs, traj_batch,
            n_traj, rng=6, unravel="jump",
        ),
        cfg["repeats"],
    )
    t_ref = _best_of(
        lambda: mcwf_probabilities_reference(
            compiled, relax_model, weights, traj_inputs, traj_batch,
            n_traj, rng=6,
        ),
        cfg["ref_repeats"],
    )
    bench["mcwf_trajectory"] = {
        "reference_s": t_ref, "fast_s": t_fast, "speedup": t_ref / t_fast,
        "n_trajectories": n_traj, "batch": traj_batch,
    }
    # Deterministic channel: no stochastic or jump sites, so the jump
    # unraveling runs the identical fused sweep as the Pauli one and
    # must match the per-trajectory reference exactly.
    p_jump_det = trajectory_probabilities(
        compiled, det_model, weights, traj_inputs, traj_batch, 2, rng=3,
        unravel="jump",
    )
    p_det_ref = trajectory_probabilities_reference(
        compiled, det_model, weights, traj_inputs, traj_batch, 2, rng=3
    )
    equiv["mcwf_deterministic_max_err"] = float(
        np.abs(p_jump_det - p_det_ref).max()
    )
    # Statistical convergence of the jump unraveling to the compiled
    # exact density channel under the full relaxation + readout model.
    mcwf_exp = run_noisy_trajectories(
        compiled, relax_model, weights, traj_inputs,
        n_trajectories=cfg["stat_trajectories"], shots=None, rng=8,
        unravel="jump",
    )
    dens_exp = run_noisy_density(compiled, relax_model, weights, traj_inputs)
    equiv["mcwf_statistical_dev"] = float(np.abs(mcwf_exp - dens_exp).max())
    equiv["mcwf_statistical_tol"] = 6.0 / np.sqrt(cfg["stat_trajectories"])

    # -- sharded trajectory execution --------------------------------------
    # Same chunk layout and per-chunk RNG streams serial vs pooled, so
    # the outputs must be *bit-identical*; the timing ratio records what
    # the worker pool buys on this host.  Both backends run through the
    # process-global shared pools (``pool=None``), so the timed region
    # is the steady state a training loop sees: the pool is spawned and
    # the worker-side plan caches are warm after the warmup call.  The
    # recorded ``shard_speedup`` is the best backend's; the floor
    # (scale != smoke) is keyed by the worker count the host can
    # actually exercise, so a 1-core CI runner gates near-parity while a
    # 4-core box must show the real win.
    shard_kwargs = dict(
        n_trajectories=cfg["n_trajectories"], shard_size=cfg["shard_size"],
    )
    n_chunks = -(-cfg["n_trajectories"] // cfg["shard_size"])

    def sharded_run(backend="thread", n_workers=0):
        return trajectory_probabilities(
            compiled, hardware, weights, traj_inputs, traj_batch,
            rng=2, n_workers=n_workers, shard_backend=backend,
            **shard_kwargs,
        )

    t_serial = _best_of(sharded_run, cfg["repeats"])
    p_serial = sharded_run()
    shard_times = {}
    shard_err = 0.0
    for backend in ("thread", "process"):
        p_sharded = sharded_run(backend, cfg["shard_workers"])  # warms pool
        if not np.array_equal(p_serial, p_sharded):
            raise AssertionError(
                f"{backend}-sharded trajectory output is not "
                "bit-identical to serial"
            )
        shard_err = max(shard_err, float(np.abs(p_serial - p_sharded).max()))
        shard_times[backend] = _best_of(
            lambda: sharded_run(backend, cfg["shard_workers"]),
            cfg["repeats"],
        )
    shard_backend = min(shard_times, key=shard_times.get)
    t_sharded = shard_times[shard_backend]
    t_thread = shard_times["thread"]
    cpu_count = os.cpu_count() or 1
    bench["sharded_trajectory"] = {
        "serial_s": t_serial, "fast_s": t_sharded,
        "shard_speedup": t_serial / t_sharded,
        "thread_s": shard_times["thread"],
        "process_s": shard_times["process"],
        "backend": shard_backend, "cpu_count": cpu_count,
        "workers": cfg["shard_workers"], "chunks": n_chunks,
    }
    if scale != "smoke":
        # Floor keyed by the effective parallel width of this host.
        effective = max(
            w for w in SHARD_FLOORS if w <= min(cfg["shard_workers"], cpu_count)
        )
        bench["sharded_trajectory"]["floor"] = SHARD_FLOORS[effective]
    equiv["sharded_trajectory_max_err"] = shard_err

    # -- supervised sharded trajectory execution ---------------------------
    # Chunk supervision (per-chunk deadlines, CRC32 payload validation,
    # retry bookkeeping) rides on the sharded path; because chunks are
    # re-runnable pure functions of their spawned seeds, supervision
    # changes nothing about the output (bit-identity asserted below) and
    # its overhead vs the unsupervised sharded run must stay in the
    # noise ("speedup" here is t_unsupervised / t_supervised, ~1.0; the
    # regression gate fails if it ever collapses).
    from repro.runtime import ChunkSupervisor

    def supervised_run():
        return trajectory_probabilities(
            compiled, hardware, weights, traj_inputs, traj_batch,
            rng=2, n_workers=cfg["shard_workers"],
            supervisor=ChunkSupervisor(label="trajectory"),
            **shard_kwargs,
        )

    t_supervised = _best_of(supervised_run, cfg["repeats"])
    bench["supervised_trajectory"] = {
        # vs the *thread* sharded time: supervision dispatches on the
        # thread backend, so that is the apples-to-apples denominator.
        "reference_s": t_thread, "fast_s": t_supervised,
        "speedup": t_thread / t_supervised,
        "overhead_pct": (t_supervised / t_thread - 1.0) * 100.0,
        "workers": cfg["shard_workers"], "chunks": n_chunks,
    }
    p_supervised = supervised_run()
    equiv["supervised_trajectory_max_err"] = float(
        np.abs(p_serial - p_supervised).max()
    )
    if not np.array_equal(p_serial, p_supervised):
        raise AssertionError(
            "supervised trajectory output is not bit-identical to serial"
        )

    # -- worker-scaling curve ----------------------------------------------
    # 1/2/4/8 workers on both backends vs one serial baseline, every
    # point bit-identical (the sweep raises otherwise); the gated number
    # is the slope at the largest worker count this host can exercise
    # (see benchmarks/perf/scaling.py for the floor table).
    _HERE = str(Path(__file__).resolve().parent)
    if _HERE not in sys.path:
        sys.path.insert(0, _HERE)
    from scaling import run_scaling

    scaling_record, scaling_equiv = run_scaling(scale, seed=seed)
    bench["sharded_scaling"] = scaling_record
    equiv.update(scaling_equiv)

    # Stochastic channel: independent samplings agree statistically.
    n_stat = cfg["stat_trajectories"]
    p_fused = trajectory_probabilities(
        compiled, hardware, weights, traj_inputs, traj_batch, n_stat, rng=4
    )
    p_ref = trajectory_probabilities_reference(
        compiled, hardware, weights, traj_inputs, traj_batch, n_stat, rng=5
    )
    equiv["trajectory_statistical_dev"] = float(np.abs(p_fused - p_ref).max())
    equiv["trajectory_statistical_tol"] = 6.0 / np.sqrt(n_stat)

    # -- stabilizer tableau vs statevector trajectory sweep -----------------
    # The batched Aaronson-Gottesman engine runs Clifford circuits under
    # Pauli+readout noise in polynomial time.  At the widest width the
    # statevector trajectory sweep can still reach (``stab_qubits``) the
    # two engines sample the same expectation distribution, so the
    # tableau's win is recorded as a speedup pair; the wide leg then
    # times the tableau alone at ``stab_wide_qubits`` -- a width whose
    # 2^n amplitudes no statevector can hold -- and records absolute
    # seconds into the same row.
    from repro.circuits import Circuit
    from repro.compiler.decompositions import lower_to_basis
    from repro.compiler.passes import CompiledCircuit
    from repro.core.engine import engine_spec
    from repro.noise.model import PauliError

    def _pauli_readout_model(n_q: int) -> NoiseModel:
        one_q = {}
        for q in range(n_q):
            for g in ("sx", "x"):
                one_q[(g, q)] = PauliError(1e-3, 1e-3, 1e-3)
        two_q = {
            (q, q + 1): PauliError(4e-3, 4e-3, 2e-3) for q in range(n_q - 1)
        }
        return NoiseModel(
            n_q, one_q, two_q, np.stack([readout_matrix(0.01, 0.02)] * n_q)
        )

    def _clifford_compiled(n_q: int, n_gates: int, circ_seed: int):
        crng = np.random.default_rng(circ_seed)
        clifford = Circuit(n_q)
        one_gates = ("h", "s", "x", "sx")
        for _ in range(n_gates):
            if n_q > 1 and crng.random() < 0.4:
                a = int(crng.integers(n_q - 1))
                clifford.add("cx", (a, a + 1))
            else:
                clifford.add(
                    one_gates[crng.integers(len(one_gates))],
                    int(crng.integers(n_q)),
                )
        lowered = lower_to_basis(clifford)
        return CompiledCircuit(
            circuit=lowered,
            physical_qubits=tuple(range(n_q)),
            layout={q: q for q in range(n_q)},
            measure_qubits=tuple(range(n_q)),
            device_name="bench-line",
        )

    stab_q, stab_traj = cfg["stab_qubits"], cfg["stab_trajectories"]
    stab_model = _pauli_readout_model(stab_q)
    stab_compiled = _clifford_compiled(stab_q, 4 * stab_q, seed)
    w_none, x_none = np.zeros(0), np.zeros((1, 0))
    stab_exec = engine_spec("stabilizer").factory(
        stab_model, rng=7, samples=stab_traj
    )
    traj_exec = engine_spec("trajectory").factory(
        stab_model, rng=7, samples=stab_traj
    )
    t_fast = _best_of(
        lambda: stab_exec.forward(stab_compiled, w_none, x_none),
        cfg["repeats"],
    )
    t_ref = _best_of(
        lambda: traj_exec.forward(stab_compiled, w_none, x_none),
        cfg["ref_repeats"],
    )

    wide_q = cfg["stab_wide_qubits"]
    wide_model = _pauli_readout_model(wide_q)
    wide_compiled = _clifford_compiled(wide_q, 4 * wide_q, seed + 1)
    wide_exec = engine_spec("stabilizer").factory(
        wide_model, rng=11, samples=stab_traj
    )
    t_wide = _best_of(
        lambda: wide_exec.forward(wide_compiled, w_none, x_none),
        cfg["repeats"],
    )
    bench["stabilizer_trajectory"] = {
        "reference_s": t_ref, "fast_s": t_fast, "speedup": t_ref / t_fast,
        "n_trajectories": stab_traj, "qubits": stab_q,
        "wide_s": t_wide, "wide_qubits": wide_q,
    }

    # Both engines sample the same Pauli-channel average, so their
    # means converge to the same expectations: compare at
    # ``stat_trajectories`` samples each under independent streams.
    stab_stat = engine_spec("stabilizer").factory(
        stab_model, rng=9, samples=n_stat
    )
    traj_stat = engine_spec("trajectory").factory(
        stab_model, rng=10, samples=n_stat
    )
    e_stab = stab_stat.forward(stab_compiled, w_none, x_none)[0]
    e_traj = traj_stat.forward(stab_compiled, w_none, x_none)[0]
    equiv["stabilizer_statistical_dev"] = float(np.abs(e_stab - e_traj).max())
    equiv["stabilizer_statistical_tol"] = 6.0 / np.sqrt(n_stat)
    for executor in (stab_exec, traj_exec, wide_exec, stab_stat, traj_stat):
        executor.close()

    # -- batched training step vs per-sample reference ---------------------
    # Two identically seeded models: the gate-insertion rng streams align,
    # so fast and reference compute the *same* noisy step to float
    # precision while the timings compare one stacked sweep against the
    # nested per-sample loops.
    train_batch = cfg["train_batch"]
    step_x = rng.normal(0, 1, (train_batch, 16))
    step_y = rng.integers(0, 4, train_batch)
    weights_model = paper_model(4, 2, 2, 16, 4).init_weights(rng)

    def make_model(n_realizations=1):
        from repro.core.injection import GATE_INSERTION, InjectionConfig

        cfg_model = QuantumNATConfig.full(0.25).with_injection(
            InjectionConfig(GATE_INSERTION, 0.25, n_realizations=n_realizations)
        )
        return QuantumNATModel(
            paper_model(4, 2, 2, 16, 4), device, cfg_model, rng=seed
        )

    fast_model = make_model()
    ref_model = make_model()
    t_fast = _best_of(
        lambda: fast_model.loss_and_gradients(weights_model, step_x, step_y),
        cfg["repeats"],
    )
    t_ref = _best_of(
        lambda: ref_model.loss_and_gradients_reference(weights_model, step_x, step_y),
        cfg["ref_repeats"],
    )
    bench["training_step"] = {
        "reference_s": t_ref, "fast_s": t_fast, "speedup": t_ref / t_fast,
        "batch": train_batch,
    }
    eq_fast = make_model()
    eq_ref = make_model()
    l_fast, _, g_fast = eq_fast.loss_and_gradients(weights_model, step_x, step_y)
    l_ref, _, g_ref = eq_ref.loss_and_gradients_reference(
        weights_model, step_x, step_y
    )
    equiv["training_step_loss_err"] = abs(l_fast - l_ref)
    equiv["training_step_grad_max_err"] = float(np.abs(g_fast - g_ref).max())

    # -- stacked multi-realization training step ---------------------------
    # Fused (n_realizations * batch) sweep vs averaging that many
    # single-realization steps -- the batch axis composed with the
    # stacked-trajectory axis.
    n_real = cfg["n_realizations"]
    stacked_model = make_model(n_real)
    loop_model = make_model()

    def stacked_step():
        return stacked_model.loss_and_gradients(weights_model, step_x, step_y)

    def looped_step():
        grads = 0.0
        for _ in range(n_real):
            _, _, g = loop_model.loss_and_gradients(weights_model, step_x, step_y)
            grads = grads + g
        return grads / n_real

    t_fast = _best_of(stacked_step, cfg["repeats"])
    t_ref = _best_of(looped_step, cfg["ref_repeats"])
    bench["stacked_noise_training"] = {
        "reference_s": t_ref, "fast_s": t_fast, "speedup": t_ref / t_fast,
        "n_realizations": n_real, "batch": train_batch,
    }

    # -- gate-fused inference ----------------------------------------------
    from repro.core.executors import NoiselessExecutor

    class _PlainExecutor:
        """NoiselessExecutor without the fused-inference fast path."""

        differentiable = True

        def __init__(self):
            self._inner = NoiselessExecutor()

        def forward(self, compiled_block, w_local, inp):
            return self._inner.forward(compiled_block, w_local, inp)

    infer_model = make_model()
    plain_executor = _PlainExecutor()
    t_fast = _best_of(
        lambda: infer_model.predict(weights_model, inputs), cfg["repeats"]
    )
    t_ref = _best_of(
        lambda: infer_model.predict(weights_model, inputs, executor=plain_executor),
        cfg["repeats"],
    )
    bench["fused_inference"] = {
        "reference_s": t_ref, "fast_s": t_fast, "speedup": t_ref / t_fast,
        "batch": batch,
    }
    equiv["fused_inference_max_err"] = float(
        np.abs(
            infer_model.predict(weights_model, inputs)
            - infer_model.predict(weights_model, inputs, executor=plain_executor)
        ).max()
    )

    # -- serving layer: coalesced vs naive per-request dispatch ------------
    _HERE = str(Path(__file__).resolve().parent)
    if _HERE not in sys.path:
        sys.path.insert(0, _HERE)
    from serve_load import run_serve_load

    serve_record, serve_equiv = run_serve_load(scale, seed=seed)
    bench["serve_throughput"] = serve_record
    equiv.update(serve_equiv)

    # -- serving layer under chaos: resilience goodput ----------------------
    # Deterministic fault injection against the hardened front door
    # (backpressure shed, supervised retry, breaker trip/probe, drain).
    # ``goodput`` is a pure function of the harness parameters (pinned
    # internal seed, TickClock cooldowns, explicit wave flushes), so the
    # regression gate compares it hard across machines.
    from serve_chaos import run_serve_chaos

    chaos_record, chaos_equiv = run_serve_chaos(scale)
    bench["serve_chaos_goodput"] = chaos_record
    equiv.update(chaos_equiv)

    # -- short end-to-end noise-injected training --------------------------
    n_train = cfg["n_train"]
    train_x = rng.normal(0, 1, (n_train, 16))
    train_y = rng.integers(0, 4, n_train)
    valid_x = rng.normal(0, 1, (max(8, n_train // 4), 16))
    valid_y = rng.integers(0, 4, valid_x.shape[0])
    model = QuantumNATModel(
        paper_model(4, 2, 2, 16, 4),
        device,
        QuantumNATConfig.norm_and_injection(0.25),
        rng=seed,
    )
    t0 = time.perf_counter()
    train(
        model, train_x, train_y, valid_x, valid_y,
        TrainConfig(epochs=cfg["epochs"], seed=seed),
    )
    elapsed = time.perf_counter() - t0
    bench["end_to_end_training"] = {
        "seconds": elapsed,
        "epochs": cfg["epochs"],
        "n_train": n_train,
        "seconds_per_epoch": elapsed / cfg["epochs"],
    }

    # -- hard equivalence gates --------------------------------------------
    for key in (
        "forward_max_err",
        "adjoint_weight_grad_max_err",
        "adjoint_input_grad_max_err",
        "trajectory_deterministic_max_err",
        "mcwf_deterministic_max_err",
        "density_inference_max_err",
        "density_relaxation_max_err",
        "sharded_trajectory_max_err",
        "sharded_scaling_max_err",
        "supervised_trajectory_max_err",
        "training_step_loss_err",
        "training_step_grad_max_err",
        "fused_inference_max_err",
        "serve_vs_naive_max_err",
        "serve_poisson_vs_naive_max_err",
        "serve_chaos_value_max_err",
    ):
        if equiv[key] > EXACT_TOL:
            raise AssertionError(
                f"equivalence violated: {key}={equiv[key]:.3e} > {EXACT_TOL}"
            )
    if equiv["trajectory_statistical_dev"] > equiv["trajectory_statistical_tol"]:
        raise AssertionError(
            "fused trajectory distribution deviates from reference: "
            f"{equiv['trajectory_statistical_dev']:.3e}"
        )
    if equiv["mcwf_statistical_dev"] > equiv["mcwf_statistical_tol"]:
        raise AssertionError(
            "quantum-jump trajectories deviate from the exact density "
            f"channel: {equiv['mcwf_statistical_dev']:.3e}"
        )
    if equiv["stabilizer_statistical_dev"] > equiv["stabilizer_statistical_tol"]:
        raise AssertionError(
            "stabilizer tableau expectations deviate from the statevector "
            f"trajectory sweep: {equiv['stabilizer_statistical_dev']:.3e}"
        )

    if out_path is not None:
        out_path = Path(out_path)
        out_path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {out_path}")
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick")
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    report = run_benchmarks(args.scale, args.out, args.seed)
    for name, row in report["benchmarks"].items():
        if "speedup" in row and "reference_s" in row:
            print(
                f"{name:22s} reference {row['reference_s']*1e3:8.2f} ms   "
                f"fast {row['fast_s']*1e3:8.2f} ms   {row['speedup']:5.2f}x"
            )
        elif "speedup" in row:
            print(
                f"{name:22s} serial    {row['serial_s']*1e3:8.2f} ms   "
                f"fast {row['fast_s']*1e3:8.2f} ms   "
                f"{row['speedup']:5.2f}x ({row['workers']} workers, "
                f"{row['backend']})"
            )
        elif "shard_speedup" in row:
            print(
                f"{name:22s} serial    {row['serial_s']*1e3:8.2f} ms   "
                f"fast {row['fast_s']*1e3:8.2f} ms   "
                f"{row['shard_speedup']:5.2f}x ({row['workers']} workers)"
            )
        else:
            print(f"{name:22s} {row['seconds']:.2f} s")
    print("equivalence:", json.dumps(report["equivalence"], indent=2))


if __name__ == "__main__":
    main()
