"""Tier-2 smoke run of the fast-engine perf harness (tiny sizes).

Marked ``perf`` so the performance tier can be selected with
``-m perf``; the smoke scale keeps it fast enough for the default run.
A speedup collapsing below 1x on the two paths the engine exists for
(forward+backward and trajectory inference) fails loudly here.
"""

import importlib.util
import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.perf


def _load_engine():
    path = Path(__file__).parent / "engine.py"
    spec = importlib.util.spec_from_file_location("perf_engine", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_engine_smoke(tmp_path):
    engine = _load_engine()
    out = tmp_path / "BENCH_engine.json"
    report = engine.run_benchmarks(scale="smoke", out_path=out)

    written = json.loads(out.read_text())
    assert written["meta"]["scale"] == "smoke"

    bench = report["benchmarks"]
    for key in ("forward", "forward_backward", "trajectory_inference",
                "mcwf_trajectory",
                "density_inference", "density_relaxation",
                "sharded_trajectory", "supervised_trajectory",
                "stabilizer_trajectory",
                "training_step", "stacked_noise_training",
                "fused_inference", "serve_throughput",
                "serve_chaos_goodput",
                "end_to_end_training"):
        assert key in bench
    for key in ("speedup", "requests_per_s", "p50_ms", "p99_ms"):
        assert key in bench["serve_throughput"]
    for key in ("goodput", "completed", "n_requests", "failures",
                "breaker_trips", "breaker_probes"):
        assert key in bench["serve_chaos_goodput"]
    for key in ("1q_diagonal_rz", "2q_cx"):
        assert key in report["kernels"]

    # run_benchmarks raises on equivalence violations; re-check the record.
    equiv = report["equivalence"]
    assert equiv["forward_max_err"] < 1e-10
    assert equiv["adjoint_weight_grad_max_err"] < 1e-10
    assert equiv["trajectory_deterministic_max_err"] < 1e-10
    assert equiv["mcwf_deterministic_max_err"] < 1e-10
    assert equiv["mcwf_statistical_dev"] < equiv["mcwf_statistical_tol"]
    assert equiv["density_inference_max_err"] < 1e-10
    assert equiv["density_relaxation_max_err"] < 1e-10
    assert equiv["training_step_loss_err"] < 1e-10
    assert equiv["training_step_grad_max_err"] < 1e-10
    assert equiv["fused_inference_max_err"] < 1e-10
    # Sharded trajectories are bit-identical to serial, not just close.
    assert equiv["sharded_trajectory_max_err"] == 0.0
    # Chunk supervision changes nothing about the output either.
    assert equiv["supervised_trajectory_max_err"] == 0.0

    # Perf regression tripwire: the fast paths must not fall behind the
    # reference implementations (real speedups are far higher; 1.0 keeps
    # the smoke robust to noisy CI machines).
    assert bench["forward_backward"]["speedup"] > 1.0
    assert bench["trajectory_inference"]["speedup"] > 1.0
    # The fused quantum-jump sweep must stay ahead of the one-trajectory-
    # at-a-time MCWF reference loop.
    assert bench["mcwf_trajectory"]["speedup"] > 1.0
    # Batched tableau vs statevector trajectories on the same Clifford
    # circuit: the acceptance bar is >= 20x at quick scale (really ~40x
    # there); 2.0 absorbs CI noise at the tiny smoke width, where the
    # statevector sweep is still cheap.  The wide leg must have actually
    # run at an un-statevector-able width.
    assert bench["stabilizer_trajectory"]["speedup"] > 2.0
    assert bench["stabilizer_trajectory"]["wide_qubits"] >= 32
    assert bench["stabilizer_trajectory"]["wide_s"] > 0.0
    assert (equiv["stabilizer_statistical_dev"]
            < equiv["stabilizer_statistical_tol"])
    # The compiled superoperator density engine's acceptance bar is
    # >= 10x (really ~40x; 3.0 absorbs CI noise on tiny smoke sizes).
    assert bench["density_inference"]["speedup"] > 3.0
    # Full relaxation + readout channel set: the reference pays even
    # more per-Kraus passes, so the compiled stream must stay ahead.
    assert bench["density_relaxation"]["speedup"] > 3.0
    # The acceptance bar for the batched training engine: >= 2x over the
    # per-sample reference loop (really ~20x; 2.0 absorbs CI noise).
    assert bench["training_step"]["speedup"] > 2.0
    assert bench["stacked_noise_training"]["speedup"] > 1.0
    # Coalesced serving's acceptance bar is >= 3x requests/sec over
    # naive per-request dispatch at quick scale; 1.5 absorbs CI noise
    # on the tiny smoke batches.  Every flush was already replayed
    # bit-identically by verify_flush_log inside the harness.
    assert bench["serve_throughput"]["speedup"] > 1.5
    assert equiv["serve_vs_naive_max_err"] < 1e-10
    assert equiv["serve_flushes_verified"] > 0
    # Chaos goodput is deterministic (pinned seed, tick clock, explicit
    # flush waves), so it is exact here, not a noisy bound.  Every
    # non-completed request failed with exactly one typed error and
    # every executed flush replayed bit-identically.
    chaos = bench["serve_chaos_goodput"]
    assert chaos["completed"] + sum(chaos["failures"].values()) \
        == chaos["n_requests"]
    assert chaos["goodput"] > 0.0
    assert chaos["breaker_trips"] > 0  # the breaker path was exercised
    assert equiv["serve_chaos_untyped_failures"] == 0
    assert equiv["serve_chaos_value_max_err"] < 1e-10
    assert equiv["serve_chaos_flushes_verified"] > 0


def test_regression_gate_against_fresh_self(tmp_path):
    """The gate passes trivially when fresh == baseline (same report)."""
    engine = _load_engine()
    out = tmp_path / "BENCH_engine.json"
    engine.run_benchmarks(scale="smoke", out_path=out)

    import importlib.util

    gate_path = Path(__file__).parent / "check_regression.py"
    spec = importlib.util.spec_from_file_location("check_regression", gate_path)
    gate = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(gate)
    code = gate.main(
        ["--baseline", str(out), "--fresh", str(out)]
    )
    assert code == 0
