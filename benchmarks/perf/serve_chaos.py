"""Chaos goodput harness for the hardened serving layer (`repro/serve/`).

Drives the full resilience stack -- bounded backpressure, per-endpoint
circuit breaker, supervised flush retry, graceful drain -- under a
deterministic :class:`FaultPlan` and measures **goodput**: the fraction
of submitted requests that complete with correct results while the rest
fail with exactly one typed error (``Overloaded``, ``RetryExhausted``,
``CircuitOpen``).

Everything that decides an outcome is machine-independent by
construction:

* flushes happen at explicit ``flush_all()`` wave boundaries under a
  huge coalescing window (no wall-clock timers decide composition);
* faults are keyed by ``(seed, endpoint label, flush index, attempt)``
  -- the endpoint label carries the weights digest, not ``id()``;
* the breaker cooldown runs on a :class:`TickClock` (one tick per
  breaker decision), not wall-clock seconds;
* the harness pins its own constant seed (NOT ``$CHAOS_SEED`` -- the
  committed baseline's goodput must stay comparable across CI runs).

So ``goodput`` -- unlike the wall-clock ``seconds`` column -- is a pure
function of the harness parameters, and ``check_regression.py`` gates
it hard: a fresh run completing fewer requests than the committed
baseline means the resilience stack broke, not that the machine is
slow.

Correctness rides along: ``verify_flush_log`` replays every executed
flush bitwise, and every served row is compared against a serial
per-row baseline on a fresh identically-seeded engine (exact density
path, 1e-10).

Usage::

    PYTHONPATH=src python benchmarks/perf/serve_chaos.py --scale quick

The ``serve_chaos_goodput`` scenario in ``BENCH_engine.json`` is
produced by :func:`run_serve_chaos` via ``benchmarks/perf/engine.py``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parents[2] / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import (
    QuantumNATConfig,
    QuantumNATModel,
    get_device,
    paper_model,
)
from repro.core.engine import create_engine
from repro.runtime import (
    FaultPlan,
    RetryExhausted,
    SupervisorConfig,
    inject_faults,
)
from repro.serve import (
    BreakerConfig,
    CircuitOpen,
    InferenceServer,
    Overloaded,
    ServeConfig,
    TickClock,
)

#: The harness seed is a constant, deliberately independent of
#: ``$CHAOS_SEED``: the committed baseline's goodput is gated hard, so
#: the schedule must be identical in every CI run.
CHAOS_BENCH_SEED = 1202

#: Wave structure per harness scale: an opening burst against the
#: pending-row cap (exercises deterministic shedding), then steady
#: fault-injected waves (exercise retry, exhaustion, breaker trips and
#: half-open probes).
SERVE_CHAOS_SCALES = {
    "smoke": dict(burst=24, n_waves=6, wave=8, max_pending_rows=16),
    "quick": dict(burst=48, n_waves=12, wave=8, max_pending_rows=32),
    "full": dict(burst=96, n_waves=24, wave=16, max_pending_rows=64),
}


def _make_endpoint(seed: int):
    rng = np.random.default_rng(seed)
    device = get_device("santiago")
    qnn = paper_model(4, 1, 2, 16, 4)
    model = QuantumNATModel(qnn, device, QuantumNATConfig.baseline(), rng=seed)
    weights = qnn.init_weights(rng)
    return model, weights, rng


async def _wave(server, session, xs):
    """Submit concurrently, flush once, collect outcome per request."""
    tasks = [asyncio.ensure_future(session.predict(x)) for x in xs]
    await asyncio.sleep(0)
    server.coalescer.flush_all()
    return await asyncio.gather(*tasks, return_exceptions=True)


def run_serve_chaos(
    scale: str = "quick", *, seed: int = CHAOS_BENCH_SEED
) -> "tuple[dict, dict]":
    """Run the chaos goodput benchmark; returns (record, equivalence).

    The record's gated column is ``goodput`` (completed / submitted);
    ``seconds`` rides along for the advisory wall-clock comparison.
    """
    cfg = SERVE_CHAOS_SCALES[scale]
    plan = FaultPlan(seed, rates={"flush-raise": 0.5}, max_attempt_faults=2)
    config = ServeConfig(
        window_s=10.0,  # timers never fire: waves alone decide flushes
        max_batch=1024,  # overflow never fires: caps alone decide shed
        supervised=True,
        supervisor_config=SupervisorConfig(max_retries=1, backoff_s=0.0),
        max_pending_rows=cfg["max_pending_rows"],
        shed="oldest",
        # threshold 1: any retry-exhausted flush trips the breaker, so
        # the run always exercises trip -> open rejection -> half-open
        # probe, not just supervised retry.
        breaker=BreakerConfig(
            failure_threshold=1, cooldown_s=2.0, clock=TickClock()
        ),
        record_flushes=True,
    )
    model, weights, rng = _make_endpoint(seed)
    burst = rng.normal(0, 1, (cfg["burst"], 16))
    waves = rng.normal(0, 1, (cfg["n_waves"], cfg["wave"], 16))
    n_total = cfg["burst"] + cfg["n_waves"] * cfg["wave"]

    async def main():
        server = InferenceServer(config)
        session = server.session(model, weights, engine="density", rng=seed)
        outcomes = []
        with inject_faults(plan):
            outcomes.extend(await _wave(server, session, burst))
            for wave in waves:
                outcomes.extend(await _wave(server, session, wave))
        server.drain()
        return server, outcomes

    t0 = time.perf_counter()
    server, outcomes = asyncio.run(main())
    seconds = time.perf_counter() - t0

    completed = [o for o in outcomes if isinstance(o, np.ndarray)]
    shed = sum(1 for o in outcomes if isinstance(o, Overloaded))
    exhausted = sum(1 for o in outcomes if isinstance(o, RetryExhausted))
    rejected_open = sum(1 for o in outcomes if isinstance(o, CircuitOpen))
    untyped = (
        len(outcomes) - len(completed) - shed - exhausted - rejected_open
    )
    if untyped:
        raise AssertionError(
            f"{untyped} requests failed with something outside the typed "
            "taxonomy -- the resilience contract is broken"
        )

    flushes_verified = server.verify_flush_log()

    # Serial per-row baseline on a fresh identically-seeded engine: the
    # exact density path must make every served row value-identical no
    # matter how chaos reshaped the batches.
    serial = create_engine("density", model.device.noise_model, rng=seed)
    max_err = 0.0
    for rec in server.flush_log:
        want = model.predict(weights, rec.inputs, serial)
        max_err = max(max_err, float(np.abs(rec.outputs - want).max()))

    breaker = server.endpoint_breaker(
        next(iter(server._endpoints))
    )
    record = {
        "seconds": seconds,
        "goodput": len(completed) / n_total,
        "completed": len(completed),
        "n_requests": n_total,
        "failures": {
            "overloaded": shed,
            "retry_exhausted": exhausted,
            "circuit_open": rejected_open,
        },
        "flushes": server.metrics.flushes,
        "flush_failures": server.metrics.flush_failures,
        "breaker_trips": breaker.trips,
        "breaker_probes": breaker.probes,
        "seed": seed,
        "scale_params": dict(cfg),
    }
    equivalence = {
        "serve_chaos_flushes_verified": flushes_verified,
        "serve_chaos_value_max_err": max_err,
        "serve_chaos_untyped_failures": untyped,
    }
    return record, equivalence


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=sorted(SERVE_CHAOS_SCALES), default="quick"
    )
    parser.add_argument("--seed", type=int, default=CHAOS_BENCH_SEED)
    args = parser.parse_args()
    record, equivalence = run_serve_chaos(args.scale, seed=args.seed)
    print(json.dumps(
        {"serve_chaos_goodput": record, "equivalence": equivalence}, indent=2
    ))
    f = record["failures"]
    print(
        f"\ngoodput {record['goodput']:.3f} "
        f"({record['completed']}/{record['n_requests']} requests; "
        f"{f['overloaded']} shed, {f['retry_exhausted']} retry-exhausted, "
        f"{f['circuit_open']} breaker-rejected; "
        f"{record['breaker_trips']} trips, {record['breaker_probes']} probes; "
        f"{equivalence['serve_chaos_flushes_verified']} flushes verified, "
        f"max err {equivalence['serve_chaos_value_max_err']:.2e})"
    )


if __name__ == "__main__":
    main()
