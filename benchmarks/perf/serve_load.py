"""Load-test harness for the coalescing serving layer (`repro/serve/`).

Simulates heavy single-row traffic against an :class:`InferenceServer`
and measures what the front door is for: the throughput gap between
naive per-request dispatch (one ``model.predict`` sweep per request --
what callers did before the serving layer) and window-coalesced
dispatch (requests stacked into one sweep per window on the same
engine).

Two arrival patterns:

* ``burst`` -- every request in flight at once (the worst-case thundering
  herd; also the *gated* pattern: its fast/naive ratio is measured on
  one host in one run, so it is machine-independent the same way the
  other ``speedup`` columns are);
* ``poisson`` -- seeded exponential inter-arrival gaps sized so several
  requests land per coalescing window (steady heavy traffic; reported
  alongside, never gated, because wall-clock sleeps dominate its
  absolute numbers).

Both report p50/p99 per-request latency, requests/sec and mean
coalesced batch size.  Correctness rides along: the server records
every flush and replays it (`verify_flush_log` -- coalesced output must
be *bit-identical* to the serial predict over the same stack), and the
coalesced logits are compared against the naive baseline's row by row.

Usage::

    PYTHONPATH=src python benchmarks/perf/serve_load.py --scale quick --pattern burst

The ``serve_throughput`` scenario in ``BENCH_engine.json`` is produced
by :func:`run_serve_load` via ``benchmarks/perf/engine.py``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parents[2] / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import (
    QuantumNATConfig,
    QuantumNATModel,
    get_device,
    paper_model,
)
from repro.core.engine import create_engine, engine_spec
from repro.serve import InferenceServer, ServeConfig

#: Request counts / coalescing knobs per harness scale.
SERVE_SCALES = {
    "smoke": dict(n_requests=96, window_s=0.002, max_batch=32),
    "quick": dict(n_requests=512, window_s=0.002, max_batch=64),
    "full": dict(n_requests=2048, window_s=0.002, max_batch=64),
}


def _make_endpoint(seed: int):
    """A 4-qubit noisy endpoint: model, weights, one request row each."""
    rng = np.random.default_rng(seed)
    device = get_device("santiago")
    qnn = paper_model(4, 1, 2, 16, 4)
    model = QuantumNATModel(qnn, device, QuantumNATConfig.baseline(), rng=seed)
    weights = qnn.init_weights(rng)
    return model, weights, rng


def _noise_model_for(engine: str, model):
    if not engine_spec(engine).capabilities.channels:
        return None
    return model.device.noise_model


def _naive_baseline(model, weights, executor, requests) -> "tuple[float, np.ndarray]":
    """Per-request dispatch: one single-row sweep per arriving request."""
    t0 = time.perf_counter()
    outputs = [model.predict(weights, x[None, :], executor)[0] for x in requests]
    return time.perf_counter() - t0, np.stack(outputs)


async def _drive_burst(session, requests) -> np.ndarray:
    outs = await asyncio.gather(*[session.predict(x) for x in requests])
    return np.stack(outs)


async def _drive_poisson(
    session, requests, gaps_s: np.ndarray
) -> np.ndarray:
    """Arrivals spaced by seeded exponential gaps; all results awaited."""

    async def arrive(i: int) -> np.ndarray:
        return await session.predict(requests[i])

    tasks = []
    for i in range(len(requests)):
        tasks.append(asyncio.ensure_future(arrive(i)))
        if gaps_s[i] > 0:
            await asyncio.sleep(gaps_s[i])
    outs = await asyncio.gather(*tasks)
    return np.stack(outs)


def run_serve_load(
    scale: str = "quick",
    *,
    seed: int = 0,
    engine: str = "density",
    window_s: "float | None" = None,
    max_batch: "int | None" = None,
) -> "tuple[dict, dict]":
    """Run the load test; returns (benchmark record, equivalence record).

    The benchmark record's ``speedup`` column is coalesced vs naive
    requests/sec under the ``burst`` pattern; ``poisson`` metrics ride
    along under their own key.
    """
    cfg = SERVE_SCALES[scale]
    window_s = cfg["window_s"] if window_s is None else window_s
    max_batch = cfg["max_batch"] if max_batch is None else max_batch
    n_requests = cfg["n_requests"]

    model, weights, rng = _make_endpoint(seed)
    requests = rng.normal(0, 1, (n_requests, 16))

    # Naive baseline: what per-request dispatch costs on the same engine.
    naive_executor = create_engine(
        engine, _noise_model_for(engine, model), rng=seed
    )
    naive_s, naive_out = _naive_baseline(model, weights, naive_executor, requests)

    # Coalesced burst: the gated fast path.
    server = InferenceServer(
        ServeConfig(window_s=window_s, max_batch=max_batch, record_flushes=True)
    )
    session = server.session(model, weights, engine=engine, rng=seed)
    t0 = time.perf_counter()
    served_out = asyncio.run(_drive_burst(session, requests))
    fast_s = time.perf_counter() - t0
    flushes_verified = server.verify_flush_log()
    burst = server.metrics.snapshot(elapsed_s=fast_s)
    server.close()

    # Poisson arrivals: steady heavy traffic, several requests per window.
    gap_rng = np.random.default_rng(seed + 1)
    gaps = gap_rng.exponential(window_s / 8, size=n_requests)
    server_p = InferenceServer(
        ServeConfig(window_s=window_s, max_batch=max_batch)
    )
    session_p = server_p.session(model, weights, engine=engine, rng=seed)
    t0 = time.perf_counter()
    poisson_out = asyncio.run(_drive_poisson(session_p, requests, gaps))
    poisson_s = time.perf_counter() - t0
    poisson = server_p.metrics.snapshot(elapsed_s=poisson_s)
    server_p.close()

    record = {
        "reference_s": naive_s,
        "fast_s": fast_s,
        "speedup": naive_s / fast_s,
        "requests_per_s": n_requests / fast_s,
        "naive_requests_per_s": n_requests / naive_s,
        "p50_ms": burst["p50_ms"],
        "p99_ms": burst["p99_ms"],
        "mean_batch": burst["mean_batch"],
        "flushes": int(burst["flushes"]),
        "n_requests": n_requests,
        "engine": engine,
        "window_ms": window_s * 1e3,
        "max_batch": max_batch,
        "poisson": {
            "requests_per_s": poisson["requests_per_s"],
            "p50_ms": poisson["p50_ms"],
            "p99_ms": poisson["p99_ms"],
            "mean_batch": poisson["mean_batch"],
        },
    }
    equivalence = {
        "serve_flushes_verified": flushes_verified,
        "serve_vs_naive_max_err": float(np.abs(served_out - naive_out).max()),
        "serve_poisson_vs_naive_max_err": float(
            np.abs(poisson_out - naive_out).max()
        ),
    }
    return record, equivalence


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SERVE_SCALES), default="quick")
    parser.add_argument("--engine", default="density")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--window-ms", type=float, default=None,
                        help="coalescing window (default: the scale's)")
    parser.add_argument("--max-batch", type=int, default=None,
                        help="rows per sweep before overflow flush")
    args = parser.parse_args()
    record, equivalence = run_serve_load(
        args.scale,
        seed=args.seed,
        engine=args.engine,
        window_s=None if args.window_ms is None else args.window_ms * 1e-3,
        max_batch=args.max_batch,
    )
    print(json.dumps({"serve_throughput": record, "equivalence": equivalence},
                     indent=2))
    print(
        f"\ncoalesced {record['requests_per_s']:,.0f} req/s vs naive "
        f"{record['naive_requests_per_s']:,.0f} req/s "
        f"({record['speedup']:.2f}x), p50 {record['p50_ms']:.2f} ms, "
        f"p99 {record['p99_ms']:.2f} ms, "
        f"mean batch {record['mean_batch']:.1f}"
    )


if __name__ == "__main__":
    main()
