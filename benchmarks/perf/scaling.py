"""Sharded-trajectory worker-scaling benchmark.

Sweeps ``trajectory_probabilities`` over worker counts (1/2/4/8 by
default) on both shard backends (``thread`` and ``process``), against a
serial baseline with the *same* chunk layout, and reports the scaling
curve.  Every swept point is asserted **bit-identical** to the serial
run -- the chunk layout and per-chunk RNG streams never depend on the
worker count, so any divergence is a correctness bug and the harness
raises.

The regression-gated number is the speedup at the *effective* worker
point: the largest swept worker count that the host can actually
parallelize (``<= os.cpu_count()``).  Gating the literal 4-worker point
on a 1-core CI runner would measure scheduler overhead, not the code,
so the floor table is keyed by that effective point and the harness
records the floor it expects alongside the measurement
(``check_regression.py`` enforces ``speedup >= floor`` as a hard gate,
plus the usual collapse-vs-committed check).

Usage::

    PYTHONPATH=src python benchmarks/perf/scaling.py --scale quick
    PYTHONPATH=src python benchmarks/perf/scaling.py --scale quick \
        --workers 1 2 --check   # CI smoke: exit nonzero below floor
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parents[2] / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import get_device, paper_model
from repro.compiler import transpile
from repro.noise.trajectory import trajectory_probabilities

BACKENDS = ("thread", "process")

SCALE_PARAMS = {
    # seconds-scale smoke for CI: small stacks, 2 workers max
    "smoke": dict(batch=4, n_trajectories=16, shard_size=2, repeats=2,
                  workers=(1, 2)),
    "quick": dict(batch=16, n_trajectories=64, shard_size=8, repeats=5,
                  workers=(1, 2, 4, 8)),
    "full": dict(batch=32, n_trajectories=128, shard_size=16, repeats=8,
                 workers=(1, 2, 4, 8)),
}

#: Minimum acceptable speedup-vs-serial, keyed by the *effective* gated
#: worker point (the largest swept count ``<= os.cpu_count()``).  One
#: worker through a pool must stay within ~1.4x of serial dispatch
#: overhead; real parallel points must win outright (the ISSUE targets:
#: 4 workers >= 2.0x at quick scale).
FLOORS = {1: 0.7, 2: 1.3, 4: 2.0, 8: 2.5}


def _best_of(f, repeats: int) -> float:
    """Best (minimum) wall-clock over ``repeats`` runs (caller warms up)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        f()
        best = min(best, time.perf_counter() - t0)
    return best


def run_scaling(
    scale: str = "quick",
    seed: int = 0,
    workers: "tuple[int, ...] | None" = None,
) -> "tuple[dict, dict]":
    """Sweep worker counts on both backends; return (record, equivalence).

    The record is one benchmark row (``fast_s`` / ``speedup`` /
    ``floor`` / per-point table); ``equivalence`` carries the max
    bit-identity error (always 0.0 -- the sweep raises otherwise).
    """
    cfg = SCALE_PARAMS[scale]
    sweep = tuple(workers) if workers else cfg["workers"]
    rng = np.random.default_rng(seed)
    device = get_device("santiago")
    qnn = paper_model(4, 2, 2, 16, 4)
    compiled = transpile(qnn.blocks[0], device, 2)
    weights = qnn.init_weights(rng)
    inputs = rng.normal(0, 1, (cfg["batch"], 16))
    hardware = device.noise_model
    call = dict(
        batch=cfg["batch"], n_trajectories=cfg["n_trajectories"],
        shard_size=cfg["shard_size"], rng=2,
    )

    def run(n_workers=0, backend="thread", pool=None):
        return trajectory_probabilities(
            compiled, hardware, weights, inputs,
            n_workers=n_workers, shard_backend=backend, pool=pool, **call,
        )

    run()  # warm plan/fusion caches before the serial baseline
    t_serial = _best_of(run, cfg["repeats"])
    p_serial = run()

    max_err = 0.0
    points = []
    for n_workers in sweep:
        for backend in BACKENDS:
            cls = ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
            pool = cls(max_workers=n_workers)
            try:
                # Warmup primes the pool (process spawn, worker-side
                # plan caches) so the timed region measures steady state
                # -- the regime persistent pools put a training loop in.
                p = run(n_workers, backend, pool)
                if not np.array_equal(p_serial, p):
                    raise AssertionError(
                        f"sharded output diverged from serial at "
                        f"{n_workers} {backend} worker(s)"
                    )
                max_err = max(max_err, float(np.abs(p_serial - p).max()))
                t = _best_of(lambda: run(n_workers, backend, pool),
                             cfg["repeats"])
            finally:
                pool.shutdown(wait=True, cancel_futures=True)
            points.append({
                "workers": n_workers, "backend": backend,
                "seconds": t, "speedup": t_serial / t,
            })

    cpu_count = os.cpu_count() or 1
    affordable = [w for w in sweep if w <= cpu_count]
    gated_workers = max(affordable) if affordable else min(sweep)
    gated = min(
        (p for p in points if p["workers"] == gated_workers),
        key=lambda p: p["seconds"],
    )
    record = {
        "serial_s": t_serial,
        "fast_s": gated["seconds"],
        "speedup": gated["speedup"],
        "workers": gated_workers,
        "backend": gated["backend"],
        "cpu_count": cpu_count,
        "points": points,
    }
    if scale != "smoke":
        # Smoke stacks are too small for stable slope measurement; the
        # smoke run still enforces bit-identity, just not the floor.
        record["floor"] = FLOORS.get(gated_workers, FLOORS[min(FLOORS)])
    equivalence = {"sharded_scaling_max_err": max_err}
    return record, equivalence


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALE_PARAMS), default="quick")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, nargs="+", default=None,
                        help="override the swept worker counts")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero if the gated point is below floor")
    args = parser.parse_args()
    record, equivalence = run_scaling(args.scale, args.seed, args.workers)
    for p in record["points"]:
        print(f"  {p['workers']}x {p['backend']:8s} "
              f"{p['seconds']*1e3:8.2f} ms   {p['speedup']:5.2f}x")
    print(f"serial {record['serial_s']*1e3:.2f} ms; gated point: "
          f"{record['workers']} {record['backend']} worker(s) "
          f"-> {record['speedup']:.2f}x "
          f"(floor {record.get('floor', 'n/a')}, "
          f"{record['cpu_count']} cpu)")
    print("equivalence:", json.dumps(equivalence))
    if args.check:
        floor = record.get("floor", FLOORS.get(record["workers"]))
        if record["cpu_count"] < 2:
            # A 1-core host cannot demonstrate a parallel slope; the
            # bit-identity sweep above is the meaningful check here.
            print("single-CPU host: slope check skipped (bit-identity held)")
        elif floor is not None and record["speedup"] < floor:
            print(f"FAIL: gated speedup {record['speedup']:.2f}x "
                  f"< floor {floor}x")
            raise SystemExit(1)


if __name__ == "__main__":
    main()
