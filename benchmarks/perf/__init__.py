"""Performance benchmarks for the fast execution engine.

Unlike the paper-reproduction benches (``benchmarks/bench_*.py``), this
subpackage measures *wall-clock* of the simulator hot paths -- gate
apply kernels, bind caching, adjoint backward, fused trajectory batching
-- against the retained reference implementations, and verifies the fast
paths are numerically identical where exact equality is expected.

Run with::

    PYTHONPATH=src python benchmarks/perf/engine.py [--scale quick|full] \
        [--out BENCH_engine.json]
"""
