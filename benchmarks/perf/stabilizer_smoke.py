"""Stabilizer-engine smoke benchmark.

Times the batched Aaronson-Gottesman tableau engine against the fused
statevector ``trajectory`` engine on the same Clifford circuit and
Pauli+readout model at the widest width both can reach, then sweeps the
tableau alone at a width no statevector can hold (56 qubits at quick
scale).  Statistical equivalence rides along on every run: two
independently seeded sampled engines must agree on every Z expectation
within ``6 / sqrt(n)`` and the harness raises otherwise, so the speedup
can never be bought by drifting off the statevector answer.

``--check`` turns the shared-width speedup floor and the wide-leg
wall-clock bound into a nonzero exit for CI.  The floors sit far below
the measured numbers (~40x at the quick 12-qubit point, widening
exponentially with width) so a loaded runner cannot flake them; the
committed-baseline collapse check in ``check_regression.py`` remains
the tight gate.

Usage::

    PYTHONPATH=src python benchmarks/perf/stabilizer_smoke.py --scale quick
    PYTHONPATH=src python benchmarks/perf/stabilizer_smoke.py \
        --scale quick --check   # CI smoke: exit nonzero below floor
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parents[2] / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.circuits import Circuit
from repro.compiler.decompositions import lower_to_basis
from repro.compiler.passes import CompiledCircuit
from repro.core.engine import engine_spec
from repro.noise.model import NoiseModel, PauliError, readout_matrix

SCALE_PARAMS = {
    # Mirrors the stab_* knobs in engine.py SCALES.
    "smoke": dict(qubits=10, wide_qubits=32, n_trajectories=16, repeats=2,
                  stat_trajectories=256),
    "quick": dict(qubits=12, wide_qubits=56, n_trajectories=64, repeats=3,
                  stat_trajectories=1024),
    "full": dict(qubits=14, wide_qubits=64, n_trajectories=128, repeats=5,
                 stat_trajectories=4096),
}

#: Minimum acceptable tableau-vs-statevector speedup at the shared
#: width, keyed by scale.  The statevector sweep costs O(2^n) per gate
#: against the tableau's O(n^2), so the measured ratio grows steeply
#: with width (~6x at the 10-qubit smoke point, ~40x at the 12-qubit
#: quick point); the floors absorb runner noise, not kernel regressions
#: -- those are caught by the committed-baseline gate.
FLOORS = {"smoke": 1.5, "quick": 10.0, "full": 20.0}

#: Wide-leg wall-clock bound (seconds).  The quick 56-qubit / 64-
#: trajectory sweep measures ~60 ms on the baseline machine; anything
#: near this bound means the tableau kernels stopped being polynomial.
WIDE_BOUND_S = 5.0


def _pauli_readout_model(n_q: int) -> NoiseModel:
    one_q = {}
    for q in range(n_q):
        for g in ("sx", "x"):
            one_q[(g, q)] = PauliError(1e-3, 1e-3, 1e-3)
    two_q = {(q, q + 1): PauliError(4e-3, 4e-3, 2e-3) for q in range(n_q - 1)}
    return NoiseModel(
        n_q, one_q, two_q, np.stack([readout_matrix(0.01, 0.02)] * n_q)
    )


def _clifford_compiled(n_q: int, n_gates: int, seed: int) -> CompiledCircuit:
    rng = np.random.default_rng(seed)
    clifford = Circuit(n_q)
    one_gates = ("h", "s", "x", "sx")
    for _ in range(n_gates):
        if n_q > 1 and rng.random() < 0.4:
            a = int(rng.integers(n_q - 1))
            clifford.add("cx", (a, a + 1))
        else:
            clifford.add(
                one_gates[rng.integers(len(one_gates))], int(rng.integers(n_q))
            )
    lowered = lower_to_basis(clifford)
    return CompiledCircuit(
        circuit=lowered,
        physical_qubits=tuple(range(n_q)),
        layout={q: q for q in range(n_q)},
        measure_qubits=tuple(range(n_q)),
        device_name="bench-line",
    )


def _best_of(f, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        f()
        best = min(best, time.perf_counter() - t0)
    return best


def run_smoke(scale: str = "quick", seed: int = 0) -> dict:
    """Run the shared-width pair, the wide leg, and the equivalence check."""
    cfg = SCALE_PARAMS[scale]
    n_q, n_traj = cfg["qubits"], cfg["n_trajectories"]
    model = _pauli_readout_model(n_q)
    compiled = _clifford_compiled(n_q, 4 * n_q, seed)
    w_none, x_none = np.zeros(0), np.zeros((1, 0))

    stab = engine_spec("stabilizer").factory(model, rng=7, samples=n_traj)
    traj = engine_spec("trajectory").factory(model, rng=7, samples=n_traj)
    wide_q = cfg["wide_qubits"]
    wide_model = _pauli_readout_model(wide_q)
    wide_compiled = _clifford_compiled(wide_q, 4 * wide_q, seed + 1)
    wide = engine_spec("stabilizer").factory(wide_model, rng=11, samples=n_traj)

    n_stat = cfg["stat_trajectories"]
    stab_stat = engine_spec("stabilizer").factory(model, rng=9, samples=n_stat)
    traj_stat = engine_spec("trajectory").factory(model, rng=10, samples=n_stat)
    try:
        t_fast = _best_of(
            lambda: stab.forward(compiled, w_none, x_none), cfg["repeats"]
        )
        t_ref = _best_of(
            lambda: traj.forward(compiled, w_none, x_none), cfg["repeats"]
        )
        t_wide = _best_of(
            lambda: wide.forward(wide_compiled, w_none, x_none), cfg["repeats"]
        )
        e_stab = stab_stat.forward(compiled, w_none, x_none)[0]
        e_traj = traj_stat.forward(compiled, w_none, x_none)[0]
    finally:
        for executor in (stab, traj, wide, stab_stat, traj_stat):
            executor.close()

    dev = float(np.abs(e_stab - e_traj).max())
    tol = 6.0 / np.sqrt(n_stat)
    if dev > tol:
        raise AssertionError(
            "stabilizer tableau expectations deviate from the statevector "
            f"trajectory sweep: {dev:.3e} > {tol:.3e}"
        )
    return {
        "qubits": n_q, "n_trajectories": n_traj,
        "reference_s": t_ref, "fast_s": t_fast, "speedup": t_ref / t_fast,
        "wide_qubits": wide_q, "wide_s": t_wide,
        "statistical_dev": dev, "statistical_tol": tol,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALE_PARAMS), default="quick")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero below the floor / wide bound")
    args = parser.parse_args()
    row = run_smoke(args.scale, args.seed)
    print(f"shared width ({row['qubits']} qubits, "
          f"{row['n_trajectories']} trajectories): "
          f"tableau {row['fast_s']*1e3:.2f} ms vs statevector "
          f"{row['reference_s']*1e3:.2f} ms -> {row['speedup']:.1f}x")
    print(f"wide leg ({row['wide_qubits']} qubits): {row['wide_s']*1e3:.2f} ms")
    print(f"statistical dev {row['statistical_dev']:.3e} "
          f"(tol {row['statistical_tol']:.3e})")
    if args.check:
        floor = FLOORS[args.scale]
        if row["speedup"] < floor:
            print(f"FAIL: shared-width speedup {row['speedup']:.2f}x "
                  f"< floor {floor}x")
            raise SystemExit(1)
        if row["wide_s"] > WIDE_BOUND_S:
            print(f"FAIL: wide sweep took {row['wide_s']:.2f} s "
                  f"> bound {WIDE_BOUND_S} s")
            raise SystemExit(1)


if __name__ == "__main__":
    main()
