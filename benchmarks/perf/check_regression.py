"""CI perf-regression gate for the fast execution engine.

Re-runs the engine benchmark harness at the committed baseline's scale
and compares every recorded scenario's fast-path timing against the
committed ``BENCH_engine.json``.  A scenario slower than
``--threshold`` (default 2x -- wall-clock timings on shared CI runners
are noisy, so the bar is deliberately loose) fails the gate; ``--soft``
downgrades failures to warnings so the job can run advisory-only while
CI timing variance is being characterized.

Numerical equivalence (fast vs reference < 1e-10 on exact paths) is
asserted unconditionally by the harness itself -- a ``--soft`` run still
hard-fails on a correctness divergence.

Usage::

    PYTHONPATH=src python benchmarks/perf/check_regression.py --soft
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parents[2]
DEFAULT_BASELINE = _REPO / "BENCH_engine.json"

# Allow running from a plain checkout without PYTHONPATH handling.
_SRC = _REPO / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def compare_reports(
    baseline: dict, fresh: dict, threshold: float = 2.0
) -> "list[dict]":
    """Per-scenario comparison rows: fresh run vs committed baseline.

    Two signals per scenario, either of which flags ``regressed=True``:

    * absolute: the fresh fast-path wall-clock exceeds ``threshold``
      times the committed one (meaningful on a comparable machine, noisy
      across machines);
    * relative: the fresh *speedup* (fast vs reference, measured on the
      same host in the same run -- machine-independent) collapses below
      the committed speedup divided by ``threshold``.

    Scenarios are matched by name; ones present on only one side are
    skipped -- the gate protects recorded history, it does not freeze
    the schema.
    """
    if threshold <= 1.0:
        raise ValueError("threshold must be > 1 (a ratio of allowed slowdown)")
    rows = []
    fresh_bench = fresh.get("benchmarks", {})
    for name, record in baseline.get("benchmarks", {}).items():
        new = fresh_bench.get(name)
        if new is None:
            continue
        key = "fast_s" if "fast_s" in record else "seconds"
        if key not in record or key not in new:
            continue
        base_t, new_t = float(record[key]), float(new[key])
        ratio = new_t / base_t if base_t > 0 else float("inf")
        row = {
            "scenario": name,
            "baseline_s": base_t,
            "fresh_s": new_t,
            "ratio": ratio,
            "regressed": ratio > threshold,
        }
        if "speedup" in record and "speedup" in new:
            base_sp, new_sp = float(record["speedup"]), float(new["speedup"])
            row["baseline_speedup"] = base_sp
            row["fresh_speedup"] = new_sp
            if new_sp < base_sp / threshold:
                row["regressed"] = True
        rows.append(row)
    return rows


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE),
        help="committed benchmark report to compare against",
    )
    parser.add_argument(
        "--scale", default=None,
        help="harness scale for the fresh run (default: the baseline's)",
    )
    parser.add_argument(
        "--threshold", type=float, default=2.0,
        help="fail when fresh/baseline exceeds this ratio (default 2.0)",
    )
    parser.add_argument(
        "--soft", action="store_true",
        help="report regressions but exit 0 (advisory mode for CI)",
    )
    parser.add_argument(
        "--fresh", default=None,
        help="use a pre-computed fresh report instead of re-running",
    )
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline)
    if not baseline_path.is_file():
        print(f"no baseline at {baseline_path}; nothing to gate", file=sys.stderr)
        return 0
    baseline = json.loads(baseline_path.read_text())

    if args.fresh is not None:
        fresh = json.loads(Path(args.fresh).read_text())
    else:
        sys.path.insert(0, str(Path(__file__).parent))
        from engine import run_benchmarks

        scale = args.scale or baseline.get("meta", {}).get("scale", "quick")
        # out_path=None: the gate never overwrites the committed baseline.
        fresh = run_benchmarks(scale=scale, out_path=None)

    rows = compare_reports(baseline, fresh, args.threshold)
    regressions = [r for r in rows if r["regressed"]]
    for r in rows:
        flag = "REGRESSED" if r["regressed"] else "ok"
        speedups = ""
        if "baseline_speedup" in r:
            speedups = (
                f"   speedup {r['baseline_speedup']:6.2f}x"
                f" -> {r['fresh_speedup']:6.2f}x"
            )
        print(
            f"{r['scenario']:24s} baseline {r['baseline_s']*1e3:9.2f} ms   "
            f"fresh {r['fresh_s']*1e3:9.2f} ms   {r['ratio']:5.2f}x{speedups}  {flag}"
        )
    if not rows:
        # A baseline that matches nothing means the gate is effectively
        # off (schema drift, truncated file); that is a config breakage,
        # not a timing flake, so even --soft refuses to pass it.
        print(
            "no comparable scenarios between baseline and fresh run; "
            "refresh BENCH_engine.json", file=sys.stderr,
        )
        return 1
    if regressions:
        names = ", ".join(r["scenario"] for r in regressions)
        verdict = "warning (soft mode)" if args.soft else "FAIL"
        print(f"{verdict}: >{args.threshold}x slowdown in: {names}")
        return 0 if args.soft else 1
    print(f"perf gate passed ({len(rows)} scenarios within {args.threshold}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
