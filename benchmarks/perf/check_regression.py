"""CI perf-regression gate for the fast execution engine.

Re-runs the engine benchmark harness at the committed baseline's scale
and compares every recorded scenario's fast-path timing against the
committed ``BENCH_engine.json`` on two signals:

* **speedup collapse** (hard): the fresh *speedup* (fast vs reference,
  measured within the same run on the same host, so machine-independent)
  falling below the committed speedup divided by ``--threshold`` fails
  the gate;
* **absolute slowdown** (advisory): fresh fast-path wall-clock exceeding
  ``threshold`` times the committed one prints a warning only -- raw
  timings are systematically biased across machines of different speed,
  so they never fail CI;
* **floor** (hard): scenarios that record a ``floor`` (the sharded
  speedup-vs-serial and the worker-scaling slope) fail when the fresh
  gated metric drops below it.  The harness computes the floor from the
  host's core count, so the number is comparable across machines: a
  4-core runner must show >= 2.0x at the 4-worker scaling point, a
  1-core runner is held to near-parity.

The sharded scenarios gate on ``shard_speedup``/``speedup`` vs *serial*
(not vs a reference implementation); both the collapse check and the
floor apply to them.

Scenarios listed in ``REQUIRED_SCENARIOS`` must be present in both the
baseline and the fresh run -- a report that silently drops one fails the
gate regardless of timings (schema drift is breakage, not noise).

Numerical equivalence (fast vs reference < 1e-10 on exact paths, sharded
trajectories bit-identical to serial) is asserted unconditionally by the
harness itself -- even ``--soft`` runs hard-fail on a correctness
divergence.

Usage::

    PYTHONPATH=src python benchmarks/perf/check_regression.py
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parents[2]
DEFAULT_BASELINE = _REPO / "BENCH_engine.json"

# Allow running from a plain checkout without PYTHONPATH handling.
_SRC = _REPO / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

#: Fast-vs-reference pairs: these must be present AND carry the
#: ``speedup`` column in both reports -- the hard criterion lives in
#: that column, so a scenario silently losing it would turn the gate
#: advisory-only.
SPEEDUP_SCENARIOS = frozenset({
    "forward",
    "forward_backward",
    "trajectory_inference",
    "mcwf_trajectory",
    "density_inference",
    "density_relaxation",
    "training_step",
    "stacked_noise_training",
    "fused_inference",
    # batched stabilizer tableau vs the statevector trajectory sweep on
    # the same Clifford circuit + Pauli/readout model (widest width the
    # statevector leg can still reach; the row also records the
    # wide-only tableau wall-clock).  Collapsing means the tableau
    # kernels stopped being polynomial-cheap.
    "stabilizer_trajectory",
    # coalesced serving vs naive per-request dispatch (burst pattern,
    # measured on one host in one run -- machine-independent like the
    # other pairs).  Collapsing means the front door stopped batching.
    "serve_throughput",
    # t_unsupervised_sharded / t_supervised: supervision overhead gate.
    # ~1.0 by construction; collapsing means chunk supervision got
    # expensive (per-chunk deadline/checksum/bookkeeping is meant to be
    # noise against the statevector sweeps it wraps).
    "supervised_trajectory",
    # worker-scaling slope at the host's gated worker point, vs serial
    # (same run, same host -- machine-independent, plus a hard floor).
    "sharded_scaling",
})

#: Scenarios whose gated ratio lives in the ``shard_speedup`` column
#: (sharded-vs-serial, measured within one run): same collapse check as
#: :data:`SPEEDUP_SCENARIOS`, different column name.
SHARD_SPEEDUP_SCENARIOS = frozenset({"sharded_trajectory"})

#: Scenarios gated on ``goodput`` instead of a timing ratio: the chaos
#: harness pins its seed and runs every outcome-deciding clock on
#: deterministic ticks, so goodput is machine-independent and a fresh
#: run completing *fewer* requests than the committed baseline is a
#: hard failure (the resilience stack broke), not noise.
GOODPUT_SCENARIOS = frozenset({"serve_chaos_goodput"})

#: Scenarios the gate refuses to run without: the speedup pairs, the
#: chaos goodput scenario, and the sharded scenarios (collapse-gated on
#: ``shard_speedup`` and floor-gated; their bit-identity checks ride
#: along in the harness).
REQUIRED_SCENARIOS = (
    SPEEDUP_SCENARIOS | GOODPUT_SCENARIOS | SHARD_SPEEDUP_SCENARIOS
)


def compare_reports(
    baseline: dict, fresh: dict, threshold: float = 2.0
) -> "list[dict]":
    """Per-scenario comparison rows: fresh run vs committed baseline.

    Each row carries ``regressed_absolute`` (wall-clock ratio over the
    threshold -- advisory), ``regressed_speedup`` (the
    machine-independent speedup ratio collapsing -- hard; sharded
    scenarios compare their ``shard_speedup`` column), and
    ``regressed_floor`` (the fresh gated metric below the core-aware
    floor the fresh harness recorded -- hard); ``regressed`` is their
    union for display.  Scenarios are matched by name; ones present on
    only one side are skipped here and policed separately via
    :data:`REQUIRED_SCENARIOS`.
    """
    if threshold <= 1.0:
        raise ValueError("threshold must be > 1 (a ratio of allowed slowdown)")
    rows = []
    fresh_bench = fresh.get("benchmarks", {})
    for name, record in baseline.get("benchmarks", {}).items():
        new = fresh_bench.get(name)
        if new is None:
            continue
        key = "fast_s" if "fast_s" in record else "seconds"
        if key not in record or key not in new:
            continue
        base_t, new_t = float(record[key]), float(new[key])
        ratio = new_t / base_t if base_t > 0 else float("inf")
        row = {
            "scenario": name,
            "baseline_s": base_t,
            "fresh_s": new_t,
            "ratio": ratio,
            "regressed_absolute": ratio > threshold,
            "regressed_speedup": False,
        }
        sp_key = "shard_speedup" if name in SHARD_SPEEDUP_SCENARIOS else "speedup"
        row["regressed_floor"] = False
        if sp_key in record and sp_key in new:
            base_sp, new_sp = float(record[sp_key]), float(new[sp_key])
            row["baseline_speedup"] = base_sp
            row["fresh_speedup"] = new_sp
            if new_sp < base_sp / threshold:
                row["regressed_speedup"] = True
            # Hard floor: the fresh harness records the minimum gated
            # ratio it expects for *this* host's core count; dropping
            # below it is a regression regardless of the baseline.
            if "floor" in new and new_sp < float(new["floor"]):
                row["regressed_floor"] = True
                row["floor"] = float(new["floor"])
        row["regressed_goodput"] = False
        if "goodput" in record and "goodput" in new:
            base_gp, new_gp = float(record["goodput"]), float(new["goodput"])
            row["baseline_goodput"] = base_gp
            row["fresh_goodput"] = new_gp
            # Goodput is deterministic under the harness's pinned seed:
            # any drop below the committed baseline is a hard failure.
            if new_gp < base_gp - 1e-12:
                row["regressed_goodput"] = True
        row["regressed"] = (
            row["regressed_absolute"]
            or row["regressed_speedup"]
            or row["regressed_goodput"]
            or row["regressed_floor"]
        )
        rows.append(row)
    return rows


def missing_required(baseline: dict, fresh: dict) -> "list[str]":
    """Required scenarios absent or de-fanged in either report, sorted.

    A :data:`SPEEDUP_SCENARIOS` entry counts as missing when either
    report drops its ``speedup`` field, a
    :data:`SHARD_SPEEDUP_SCENARIOS` entry when either drops
    ``shard_speedup``, and a :data:`GOODPUT_SCENARIOS` entry when either
    drops ``goodput`` -- the hard criteria compare those columns, so
    losing a key must read as schema breakage, not as a scenario that
    quietly passes.
    """
    missing = set(REQUIRED_SCENARIOS)
    for name in REQUIRED_SCENARIOS:
        base_row = baseline.get("benchmarks", {}).get(name)
        fresh_row = fresh.get("benchmarks", {}).get(name)
        if base_row is None or fresh_row is None:
            continue
        if name in SPEEDUP_SCENARIOS and not (
            "speedup" in base_row and "speedup" in fresh_row
        ):
            continue
        if name in SHARD_SPEEDUP_SCENARIOS and not (
            "shard_speedup" in base_row and "shard_speedup" in fresh_row
        ):
            continue
        if name in GOODPUT_SCENARIOS and not (
            "goodput" in base_row and "goodput" in fresh_row
        ):
            continue
        missing.discard(name)
    return sorted(missing)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE),
        help="committed benchmark report to compare against",
    )
    parser.add_argument(
        "--scale", default=None,
        help="harness scale for the fresh run (default: the baseline's)",
    )
    parser.add_argument(
        "--threshold", type=float, default=2.0,
        help="fail when fresh/baseline exceeds this ratio (default 2.0)",
    )
    parser.add_argument(
        "--soft", action="store_true",
        help="downgrade even speedup-collapse failures to warnings "
             "(recharacterizing a new runner's variance only)",
    )
    parser.add_argument(
        "--fresh", default=None,
        help="use a pre-computed fresh report instead of re-running",
    )
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline)
    if not baseline_path.is_file():
        print(f"no baseline at {baseline_path}; nothing to gate", file=sys.stderr)
        return 0
    baseline = json.loads(baseline_path.read_text())

    if args.fresh is not None:
        fresh = json.loads(Path(args.fresh).read_text())
    else:
        sys.path.insert(0, str(Path(__file__).parent))
        from engine import run_benchmarks

        scale = args.scale or baseline.get("meta", {}).get("scale", "quick")
        # out_path=None: the gate never overwrites the committed baseline.
        fresh = run_benchmarks(scale=scale, out_path=None)

    rows = compare_reports(baseline, fresh, args.threshold)

    def is_hard(r):
        return (
            r["regressed_speedup"]
            or r["regressed_goodput"]
            or r["regressed_floor"]
        )

    hard = [r for r in rows if is_hard(r)]
    advisory = [r for r in rows if r["regressed_absolute"] and not is_hard(r)]
    for r in rows:
        if is_hard(r):
            flag = "REGRESSED"
        elif r["regressed_absolute"]:
            flag = "slow (advisory)"
        else:
            flag = "ok"
        speedups = ""
        if "baseline_speedup" in r:
            speedups = (
                f"   speedup {r['baseline_speedup']:6.2f}x"
                f" -> {r['fresh_speedup']:6.2f}x"
            )
        if r["regressed_floor"]:
            speedups += f"   below floor {r['floor']:.2f}x"
        if "baseline_goodput" in r:
            speedups += (
                f"   goodput {r['baseline_goodput']:.3f}"
                f" -> {r['fresh_goodput']:.3f}"
            )
        print(
            f"{r['scenario']:24s} baseline {r['baseline_s']*1e3:9.2f} ms   "
            f"fresh {r['fresh_s']*1e3:9.2f} ms   {r['ratio']:5.2f}x{speedups}  {flag}"
        )
    if not rows:
        # A baseline that matches nothing means the gate is effectively
        # off (schema drift, truncated file); that is a config breakage,
        # not a timing flake, so even --soft refuses to pass it.
        print(
            "no comparable scenarios between baseline and fresh run; "
            "refresh BENCH_engine.json", file=sys.stderr,
        )
        return 1
    missing = missing_required(baseline, fresh)
    if missing:
        print(
            f"required scenarios missing from the reports: {', '.join(missing)}; "
            "refresh BENCH_engine.json", file=sys.stderr,
        )
        return 1
    if advisory:
        names = ", ".join(r["scenario"] for r in advisory)
        print(
            f"warning: >{args.threshold}x absolute slowdown in: {names} "
            "(advisory -- raw wall-clock is machine-dependent)"
        )
    if hard:
        names = ", ".join(r["scenario"] for r in hard)
        verdict = "warning (soft mode)" if args.soft else "FAIL"
        print(
            f"{verdict}: speedup collapsed >{args.threshold}x, "
            f"goodput dropped, or floor missed in: {names}"
        )
        return 0 if args.soft else 1
    print(
        f"perf gate passed ({len(rows)} scenarios, speedups within "
        f"{args.threshold}x of baseline, goodput at baseline, "
        "floors held)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
