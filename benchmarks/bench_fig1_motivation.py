"""Figure 1: device error rates and the noise-induced accuracy drop.

Paper values (MNIST-4): noise-free 0.87; Santiago 0.73 > Lima 0.56 >
Yorktown 0.23, tracking the devices' 1q gate error rates (2.03e-4,
4.84e-4, 1.01e-3).  This bench trains one noise-unaware QNN and deploys
it on the three devices; expected shape: noise-free highest, then
Santiago > Lima > Yorktown.
"""

from benchmarks.common import (
    QuantumNATConfig,
    bench_task,
    build_model,
    eval_suite,
    format_table,
    get_device,
    make_real_qc_executor,
    record,
    train_model,
)
from repro.core import NoiselessExecutor

DEVICES = ("santiago", "lima", "yorktown")


def run_figure1():
    task = bench_task("mnist-4")
    model = build_model(task, "santiago", QuantumNATConfig.baseline(), 2, 2)
    result = train_model(model, task)
    noise_free, _ = model.evaluate(
        result.weights, task.test_x, task.test_y, NoiselessExecutor()
    )
    rows = [["1-qubit gate error rate", 0.0]]
    accs = [["Accuracy", noise_free]]
    headers = ["Metric", "Noise-Free"]
    for name in DEVICES:
        device = get_device(name)
        deploy = build_model(task, name, QuantumNATConfig.baseline(), 2, 2)
        executor = make_real_qc_executor(deploy, rng=5)
        acc, _ = deploy.evaluate(result.weights, task.test_x, task.test_y, executor)
        headers.append(f"IBMQ-{name.capitalize()}")
        rows[0].append(device.spec.base_1q_error)
        accs[0].append(acc)
    text = format_table(
        "Figure 1: quantum error rates and accuracy drop (MNIST-4)",
        headers,
        [[r[0]] + [f"{v:.2e}" if isinstance(v, float) and v < 0.01 else v for v in r[1:]] for r in rows]
        + accs,
    )
    record("fig01_motivation", text)
    return {"noise_free": noise_free}


def test_fig1_motivation(benchmark):
    result = benchmark.pedantic(run_figure1, rounds=1, iterations=1)
    assert 0 <= result["noise_free"] <= 1
