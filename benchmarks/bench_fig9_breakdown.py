"""Figure 9: breakdown of the accuracy gain by technique combination.

Paper (average over 4 task-device pairs): Norm 0.57 < Norm+NoiseInj
0.66 ~ Norm+Quant 0.66 < Norm+NoiseInj+Quant 0.74 -- injection and
quantization each add ~9% on top of normalization and combine to +17%.
"""

import numpy as np

from benchmarks.common import (
    DEFAULT_LEVELS,
    DEFAULT_NOISE_FACTOR,
    QuantumNATConfig,
    bench_task,
    build_model,
    format_table,
    make_real_qc_executor,
    record,
    train_model,
)
from repro.core import InjectionConfig

PAIRS = (("mnist-4", "santiago"), ("fashion-2", "yorktown"))

CONFIGS = (
    ("Norm", QuantumNATConfig.norm_only()),
    ("Norm + Noise Inj.", QuantumNATConfig.norm_and_injection(DEFAULT_NOISE_FACTOR)),
    (
        "Norm + Quant",
        QuantumNATConfig(
            normalize=True,
            quantize=True,
            n_levels=DEFAULT_LEVELS,
            injection=InjectionConfig(strategy=None),
        ),
    ),
    ("Norm + Noise Inj. + Quant", QuantumNATConfig.full(DEFAULT_NOISE_FACTOR, DEFAULT_LEVELS)),
)


def run_figure9():
    results = {label: [] for label, _ in CONFIGS}
    for task_name, device in PAIRS:
        task = bench_task(task_name)
        for label, config in CONFIGS:
            model = build_model(task, device, config, 2, 2)
            trained = train_model(model, task)
            executor = make_real_qc_executor(model, rng=5)
            acc, _ = model.evaluate(
                trained.weights, task.test_x, task.test_y, executor
            )
            results[label].append(acc)
    rows = []
    for label, _ in CONFIGS:
        rows.append(
            [label]
            + results[label]
            + [float(np.mean(results[label]))]
        )
    text = format_table(
        "Figure 9: breakdown of gains from noise injection and quantization",
        ["Method"] + [f"{t} / {d}" for t, d in PAIRS] + ["Average"],
        rows,
    )
    record("fig09_breakdown", text)
    return {label: float(np.mean(accs)) for label, accs in results.items()}


def test_fig9_breakdown(benchmark):
    result = benchmark.pedantic(run_figure9, rounds=1, iterations=1)
    # Combining both techniques should not be worse than norm alone.
    assert result["Norm + Noise Inj. + Quant"] >= result["Norm"] - 0.1
