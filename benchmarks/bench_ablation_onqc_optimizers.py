"""Ablation: parameter-shift vs SPSA for on-QC training (Table 3 setting).

Parameter shift measures every gradient component exactly (2 circuit
evaluations per weight per step); SPSA estimates the whole gradient
from 2 evaluations total.  On hardware, circuit evaluations are the
budget that matters, so this bench trains the Table 3 model both ways
and reports accuracy per evaluation budget.
"""

import numpy as np

from benchmarks.common import FULL, format_table, record
from repro import (
    QuantumNATConfig,
    QuantumNATModel,
    get_device,
    load_scalar_pair_task,
    make_real_qc_executor,
    paper_model,
)
from repro.core import DensityEvalExecutor, SPSAConfig, minimize_spsa
from repro.core.losses import cross_entropy

DEVICE = "santiago"
SPSA_ITERATIONS = 120 if FULL else 60


def _make_model():
    qnn = paper_model(2, 2, 1, 2, 2, design="ry_cnot")
    return QuantumNATModel(
        qnn, get_device(DEVICE), QuantumNATConfig.norm_only(), rng=0
    )


def _device_loss(model, executor, x, y):
    """Loss of a full noisy forward pass at given weights."""

    def loss(weights):
        logits = model.predict(weights, x, executor)
        value, _grad, _probs = cross_entropy(logits, y)
        return float(value)

    return loss


def run_onqc_optimizer_ablation():
    task = load_scalar_pair_task(n_train=64, n_valid=16, n_test=60, seed=0)
    device_executor = DensityEvalExecutor(
        get_device(DEVICE).noise_model, shots=2048, rng=3
    )

    # -- SPSA: 2 evaluations per step, any number of weights -----------------
    model = _make_model()
    loss_fn = _device_loss(model, device_executor, task.train_x, task.train_y)
    rng = np.random.default_rng(1)
    x0 = model.qnn.init_weights(rng)
    spsa_result = minimize_spsa(
        loss_fn,
        x0,
        n_iterations=SPSA_ITERATIONS,
        config=SPSAConfig(a=2.0, c=0.3),
        rng=2,
    )
    spsa_evals = spsa_result.n_evaluations
    real_qc = make_real_qc_executor(model, rng=7)
    spsa_acc, _ = model.evaluate(
        spsa_result.best_weights, task.test_x, task.test_y, real_qc
    )

    # -- Parameter shift: reuse the Table 3 trainer ---------------------------
    from benchmarks.bench_table3_onqc_training import EPOCHS, _train_on_qc

    ps_model, ps_weights = _train_on_qc(task, DEVICE)
    n_weights = ps_model.qnn.n_weights
    # 1 unshifted + 2 per weight forwards per step, one step per epoch.
    ps_evals = EPOCHS * (1 + 2 * n_weights)
    real_qc = make_real_qc_executor(ps_model, rng=7)
    ps_acc, _ = ps_model.evaluate(ps_weights, task.test_x, task.test_y, real_qc)

    rows = [
        ["parameter shift", ps_acc, ps_evals],
        [f"SPSA ({SPSA_ITERATIONS} iters)", spsa_acc, spsa_evals],
    ]
    text = format_table(
        f"Ablation: on-QC optimizers (2-feature 2-class, {DEVICE})",
        ["Optimizer", "Real-QC accuracy", "Circuit evaluations"],
        rows,
    )
    # Per-step cost scaling: parameter shift grows with the weight count,
    # SPSA does not -- this is why SPSA wins on larger models even though
    # the 4-weight Table 3 model slightly favors parameter shift.
    scaling_rows = [
        [n, 1 + 2 * n, 3] for n in (4, 48, 480)
    ]
    text += "\n" + format_table(
        "Evaluations per optimizer step vs weight count",
        ["Weights", "Parameter shift", "SPSA"],
        scaling_rows,
    )
    record("ablation_onqc_optimizers", text)
    return {"spsa": (spsa_acc, spsa_evals), "pshift": (ps_acc, ps_evals)}


def test_ablation_onqc_optimizers(benchmark):
    results = benchmark.pedantic(
        run_onqc_optimizer_ablation, rounds=1, iterations=1
    )
    spsa_acc, _spsa_evals = results["spsa"]
    ps_acc, _ps_evals = results["pshift"]
    # SPSA stays competitive (within 15 points) on this tiny model.
    assert spsa_acc >= ps_acc - 0.15
    # Both clearly beat chance on the 2-class task.
    assert spsa_acc > 0.6 and ps_acc > 0.6
