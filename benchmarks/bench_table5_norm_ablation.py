"""Table 5: normalization ablation -- accuracy AND SNR, 4 archs x 3 devices.

Paper: +Norm raises both accuracy and SNR on every (architecture,
device) cell, e.g. Santiago 2Bx2L 0.61/6.15 -> 0.66/15.69.
"""

import numpy as np

from benchmarks.common import (
    FULL,
    QuantumNATConfig,
    bench_task,
    build_model,
    format_table,
    make_real_qc_executor,
    record,
    train_model,
)
from repro.core import DensityEvalExecutor, normalize
from repro.metrics import snr

ARCHS = ((2, 2), (2, 4), (4, 2), (4, 4)) if FULL else ((2, 2), (4, 1))
DEVICES = ("santiago", "quito", "athens") if FULL else ("santiago", "quito")


def run_table5():
    task = bench_task("mnist-4")
    rows = []
    improvements = []
    for blocks, layers in ARCHS:
        for device in DEVICES:
            cell = {}
            for label, config in [
                ("Baseline", QuantumNATConfig.baseline()),
                ("+Norm", QuantumNATConfig.norm_only()),
            ]:
                model = build_model(task, device, config, blocks, layers)
                result = train_model(model, task)
                executor = make_real_qc_executor(model, rng=5)
                acc, _ = model.evaluate(
                    result.weights, task.test_x, task.test_y, executor
                )
                # SNR of first-block outcomes, clean vs noisy.
                clean = model.measure_block_outcomes(result.weights, task.test_x, 0)
                noisy = model.measure_block_outcomes(
                    result.weights, task.test_x, 0,
                    executor=DensityEvalExecutor(model.device.noise_model),
                )
                if label == "+Norm":
                    clean, _ = normalize(clean)
                    noisy, _ = normalize(noisy)
                cell[label] = (acc, snr(clean, noisy))
            rows.append(
                [
                    f"{blocks}Bx{layers}L",
                    device,
                    cell["Baseline"][0],
                    cell["Baseline"][1],
                    cell["+Norm"][0],
                    cell["+Norm"][1],
                ]
            )
            improvements.append(cell["+Norm"][1] - cell["Baseline"][1])
    text = format_table(
        "Table 5: post-measurement normalization ablation (MNIST-4)",
        ["Model", "Device", "Base acc", "Base SNR", "+Norm acc", "+Norm SNR"],
        rows,
    )
    record("table05_norm_ablation", text)
    return {"snr_improvements": improvements}


def test_table5_norm_ablation(benchmark):
    result = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    # Paper: normalization "significantly and consistently" increases SNR.
    assert np.mean(result["snr_improvements"]) > 0
