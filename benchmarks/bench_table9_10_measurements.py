"""Tables 9 + 10: how many intermediate measurements are best?

Paper: at a fixed total depth of 6 layers, MNIST-4 accuracy peaks at
2 blocks x 3 layers (0.74) -- more measurements allow more norm/quant
denoising, but each measurement collapses the Hilbert space; fully
quantum (1Bx6L, 0.62) and maximally measured (6Bx1L, 0.66) are both
worse.  Table 10 confirms 2Bx3L > 1Bx6L on most task/device pairs.
"""

import numpy as np

from benchmarks.common import (
    DEFAULT_LEVELS,
    DEFAULT_NOISE_FACTOR,
    FULL,
    QuantumNATConfig,
    bench_task,
    build_model,
    format_table,
    make_real_qc_executor,
    record,
    train_model,
)
from repro.core import InjectionConfig

# (blocks, layers): total depth fixed at 4 in quick mode, 6 in full mode.
SPLITS = ((1, 6), (2, 3), (3, 2), (6, 1)) if FULL else ((1, 4), (2, 2), (4, 1))


def _config(blocks: int) -> QuantumNATConfig:
    return QuantumNATConfig(
        normalize=True,
        quantize=True,
        n_levels=DEFAULT_LEVELS,
        injection=InjectionConfig("gate_insertion", DEFAULT_NOISE_FACTOR),
        transform_final=(blocks == 1),
    )


def run_table9_10():
    rows = []
    out = {}
    for task_name in ("mnist-4", "fashion-4"):
        task = bench_task(task_name)
        for blocks, layers in SPLITS:
            model = build_model(task, "santiago", _config(blocks), blocks, layers)
            result = train_model(model, task)
            executor = make_real_qc_executor(model, rng=5)
            acc, _ = model.evaluate(
                result.weights, task.test_x, task.test_y, executor
            )
            rows.append([task_name, f"{blocks}Bx{layers}L", acc])
            out[(task_name, blocks)] = acc
    text = format_table(
        "Tables 9+10: intermediate-measurement tradeoff at fixed total depth "
        "(Santiago)",
        ["Task", "Split", "Real-QC acc"],
        rows,
    )
    record("table09_10_measurements", text)
    return out


def test_table9_10_measurements(benchmark):
    out = benchmark.pedantic(run_table9_10, rounds=1, iterations=1)
    # Shape check: some multi-block split beats the fully-quantum split
    # on at least one task (the paper's sweet-spot claim).
    better = sum(
        out[(t, b)] >= out[(t, 1)]
        for t in ("mnist-4", "fashion-4")
        for b in {b for (_t, b) in out} - {1}
    )
    assert better >= 1
