"""Table 6: hardware-specific noise models matter (3x3 cross grid).

Paper (Fashion-2): training with device A's noise model and deploying
on device B shows a diagonal pattern -- best accuracy when A == B
(e.g. Yorktown's 5x-larger errors are too strong for a model deployed
on Santiago).
"""

import numpy as np

from benchmarks.common import (
    DEFAULT_LEVELS,
    DEFAULT_NOISE_FACTOR,
    QuantumNATConfig,
    bench_task,
    format_table,
    get_device,
    make_real_qc_executor,
    record,
    train_model,
)
from repro import QuantumNATModel, paper_model
from repro.core import GateInsertionExecutor

DEVICES = ("santiago", "yorktown", "lima")


def run_table6():
    task = bench_task("fashion-2")
    trained = {}
    for source in DEVICES:
        # Train with `source`'s noise model but compile for each target at
        # deploy time; weight-compatible because all models share the
        # logical architecture.
        config = QuantumNATConfig.full(DEFAULT_NOISE_FACTOR, DEFAULT_LEVELS)
        model = QuantumNATModel(
            paper_model(task.n_qubits, 2, 2, task.n_features, task.n_classes),
            get_device(source),
            config,
            rng=0,
        )
        result = train_model(model, task)
        trained[source] = result.weights

    grid = {}
    rows = []
    for target in DEVICES:
        row = [target]
        deploy = QuantumNATModel(
            paper_model(task.n_qubits, 2, 2, task.n_features, task.n_classes),
            get_device(target),
            QuantumNATConfig.full(DEFAULT_NOISE_FACTOR, DEFAULT_LEVELS),
            rng=0,
        )
        executor = make_real_qc_executor(deploy, rng=5)
        for source in DEVICES:
            acc, _ = deploy.evaluate(
                trained[source], task.test_x, task.test_y, executor
            )
            grid[(target, source)] = acc
            row.append(acc)
        rows.append(row)
    text = format_table(
        "Table 6: noise model used for training (columns) vs inference "
        "device (rows), Fashion-2",
        ["Inference on \\ model of"] + list(DEVICES),
        rows,
    )
    record("table06_cross_device", text)
    return grid


def test_table6_cross_device(benchmark):
    grid = benchmark.pedantic(run_table6, rounds=1, iterations=1)
    # Diagonal should on average beat off-diagonal (hardware-specific wins).
    diag = np.mean([grid[(d, d)] for d in DEVICES])
    off = np.mean([grid[(t, s)] for t in DEVICES for s in DEVICES if t != s])
    assert diag >= off - 0.05
