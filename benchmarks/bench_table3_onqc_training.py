"""Table 3: scalable noise-aware training on the QC via parameter shift.

Paper: a tiny 2-block RY+CNOT model on a 2-feature 2-class task.  The
noise-unaware baseline trains classically and tests on the device;
QuantumNAT trains *on the device* with parameter-shift gradients (so
gradients are naturally noise-aware).  QuantumNAT wins on all of
Bogota (0.74 -> 0.79), Santiago (0.97 -> 0.99), Lima (0.87 -> 0.90).
"""

import numpy as np

from benchmarks.common import FULL, format_table, record
from repro import (
    QuantumNATConfig,
    QuantumNATModel,
    TrainConfig,
    get_device,
    load_scalar_pair_task,
    make_real_qc_executor,
    paper_model,
    train,
)
from repro.core import Adam, ParameterShiftEngine, cross_entropy
from repro.core.normalization import normalize

DEVICES = ("bogota", "santiago", "lima")
EPOCHS = 16 if FULL else 12


def _train_on_qc(task, device_name, seed=1):
    """Parameter-shift training where every forward runs on the device."""
    qnn = paper_model(2, 2, 1, 2, 2, design="ry_cnot")
    model = QuantumNATModel(
        qnn, get_device(device_name), QuantumNATConfig.norm_only(), rng=0
    )
    executor = make_real_qc_executor(model, shots=2048, rng=seed)
    rng = np.random.default_rng(seed)
    weights = qnn.init_weights(rng)
    optimizer = Adam(weights.size, lr=0.3)

    def block_executor(block):
        def run(w_local, inputs):
            expectations, _ = executor.forward(model.compiled[block], w_local, inputs)
            return expectations

        return run

    best_weights = weights.copy()
    best_valid_loss = float("inf")
    for _epoch in range(EPOCHS):
        order = rng.permutation(task.train_x.shape[0])[:16]
        x, y = task.train_x[order], task.train_y[order]
        # Forward through both blocks on the "device".
        exp0 = block_executor(0)(qnn.block_weights(weights, 0), x)
        normed, cache0 = normalize(exp0)
        exp1 = block_executor(1)(qnn.block_weights(weights, 1), normed)
        logits = exp1 @ model.head.T
        _loss, grad_logits, _ = cross_entropy(logits, y)
        grad_e1 = grad_logits @ model.head
        # Parameter-shift Jacobians per block, chained classically.
        engine1 = ParameterShiftEngine(block_executor(1))
        gw1, gx1 = engine1.backward(qnn.block_weights(weights, 1), normed, grad_e1)
        from repro.core.normalization import normalize_backward

        grad_e0 = normalize_backward(cache0, gx1)
        engine0 = ParameterShiftEngine(block_executor(0))
        gw0, _ = engine0.backward(qnn.block_weights(weights, 0), x, grad_e0)
        grad = np.concatenate([gw0, gw1])
        weights = optimizer.step(weights, grad)
        # Noisy-validation model selection, mirroring train(): the raw
        # final iterate of a stochastic on-QC run is a coin flip.
        _valid_acc, valid_loss = model.evaluate(
            weights, task.valid_x, task.valid_y, executor
        )
        if valid_loss < best_valid_loss:
            best_valid_loss = valid_loss
            best_weights = weights.copy()
    return model, best_weights


def run_table3():
    task = load_scalar_pair_task(n_train=96, n_valid=24, n_test=60, seed=0)
    rows = []
    out = {}
    for device_name in DEVICES:
        # Noise-unaware: classical training, device testing.
        qnn = paper_model(2, 2, 1, 2, 2, design="ry_cnot")
        model = QuantumNATModel(
            qnn, get_device(device_name), QuantumNATConfig.baseline(), rng=0
        )
        result = train(
            model, task.train_x, task.train_y, task.valid_x, task.valid_y,
            TrainConfig(epochs=EPOCHS, seed=1),
        )
        executor = make_real_qc_executor(model, rng=7)
        unaware, _ = model.evaluate(
            result.weights, task.test_x, task.test_y, executor
        )
        # QuantumNAT: on-QC parameter-shift training, device testing.
        qc_model, qc_weights = _train_on_qc(task, device_name)
        executor = make_real_qc_executor(qc_model, rng=7)
        aware, _ = qc_model.evaluate(qc_weights, task.test_x, task.test_y, executor)
        rows.append([device_name, unaware, aware])
        out[device_name] = (unaware, aware)
    text = format_table(
        "Table 3: noise-unaware vs on-QC parameter-shift training "
        "(2-feature 2-class, RY+CNOT blocks)",
        ["Machine", "Noise-unaware", "QuantumNAT (on-QC)"],
        rows,
    )
    record("table03_onqc_training", text)
    return out


def test_table3_onqc_training(benchmark):
    result = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    # The 4-weight model's on-QC run is inherently seed-noisy (stochastic
    # parameter-shift gradients on 16-sample batches): require on-QC
    # training to be competitive on most devices and to clearly beat
    # chance everywhere, rather than to win every seeded coin flip.
    wins = sum(aware >= unaware - 0.08 for unaware, aware in result.values())
    assert wins >= 2
    assert all(aware > 0.6 for _unaware, aware in result.values())
