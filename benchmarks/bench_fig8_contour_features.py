"""Figure 8: (left) accuracy contour over noise factor x quantization
levels; (right) feature-space visualization of the margin effect.

Paper: Fashion-4 on IBMQ-Athens peaks near noise factor 0.2 with 5
levels; accuracy falls off for too-small/too-large noise factors and
too-few/too-many levels.  The right panel shows MNIST-2 features on
Belem: baseline features huddle together, normalization expands them,
noise injection pushes classes apart from the decision boundary.
"""

import numpy as np

from benchmarks.common import (
    FULL,
    QuantumNATConfig,
    bench_task,
    build_model,
    format_table,
    make_real_qc_executor,
    record,
    train_model,
)

NOISE_FACTORS = (0.05, 0.25, 1.0) if FULL else (0.05, 0.5)
LEVELS = (3, 4, 5, 6) if FULL else (3, 5)


def run_figure8():
    task = bench_task("fashion-4")
    grid = {}
    rows = []
    for noise_factor in NOISE_FACTORS:
        row = [f"T={noise_factor}"]
        for levels in LEVELS:
            model = build_model(
                task, "athens", QuantumNATConfig.full(noise_factor, levels), 2, 2
            )
            result = train_model(model, task)
            executor = make_real_qc_executor(model, rng=5)
            acc, _ = model.evaluate(
                result.weights, task.test_x, task.test_y, executor
            )
            grid[(noise_factor, levels)] = acc
            row.append(acc)
        rows.append(row)
    contour = format_table(
        "Figure 8 (left): accuracy over (noise factor, #levels), "
        "Fashion-4 on Athens",
        ["Noise factor"] + [f"{k} levels" for k in LEVELS],
        rows,
    )

    # Right panel: class-margin statistics for MNIST-2 on Belem.
    task2 = bench_task("mnist-2")
    margin_rows = []
    margins = {}
    for label, config in [
        ("Baseline", QuantumNATConfig.baseline()),
        ("+ Normalization", QuantumNATConfig.norm_only()),
        ("+ Noise Injection", QuantumNATConfig.norm_and_injection(0.25)),
    ]:
        model = build_model(task2, "belem", config, 2, 2)
        result = train_model(model, task2)
        executor = make_real_qc_executor(model, rng=6)
        logits = model.predict(result.weights, task2.test_x, executor)
        # Feature 1 - feature 2, signed by true class: the margin.
        signed = (logits[:, 0] - logits[:, 1]) * (1 - 2 * task2.test_y)
        margins[label] = float(signed.mean())
        spread = float(np.abs(logits).mean())
        margin_rows.append([label, signed.mean(), spread])
    features = format_table(
        "Figure 8 (right): feature margin on MNIST-2, Belem "
        "(signed margin: higher = farther from the boundary)",
        ["Method", "Mean signed margin", "Feature spread"],
        margin_rows,
    )
    record("fig08_contour_features", contour + "\n" + features)
    return {"grid": grid, "margins": margins}


def test_fig8_contour_features(benchmark):
    result = benchmark.pedantic(run_figure8, rounds=1, iterations=1)
    assert all(0 <= v <= 1 for v in result["grid"].values())
