"""Figure 6: quantization denoises measurement outcomes.

Paper example (Fashion-4 on IBMQ-Santiago, 5 levels over [-2, 2]):
"Most errors can be corrected back to zero with few exceptions of being
quantized to a wrong centroid"; MSE 0.235 -> 0.167, SNR 4.256 -> 6.455.

This bench measures the error of the noisy pipeline relative to what the
next block consumes in the clean pipeline (the quantized clean
outcomes).  The headline qualitative claim -- the majority of errors are
snapped exactly to zero -- reproduces; the MSE ordering additionally
requires clean outcomes tightly clustered on centroids, which small-
scale training achieves only partially (see EXPERIMENTS.md; the
mechanism itself is unit-tested in tests/test_quantization.py).
"""

import numpy as np

from benchmarks.common import (
    QuantumNATConfig,
    bench_task,
    build_model,
    format_table,
    record,
    train_model,
)
from repro.core import DensityEvalExecutor, Quantizer, normalize


def run_figure6():
    task = bench_task("fashion-4")
    model = build_model(task, "santiago", QuantumNATConfig.full(0.25, 5), 2, 2)
    result = train_model(model, task)
    clean = model.measure_block_outcomes(result.weights, task.test_x, 0)
    noisy = model.measure_block_outcomes(
        result.weights, task.test_x, 0,
        executor=DensityEvalExecutor(model.device.hardware_model),
    )
    norm_clean, _ = normalize(clean)
    norm_noisy, _ = normalize(noisy)
    quantizer = Quantizer(5, -2.0, 2.0)
    reference = quantizer.quantize(norm_clean)
    err_before = norm_noisy - reference
    err_after = quantizer.quantize(norm_noisy) - reference
    zero_before = float((np.abs(err_before) < 1e-9).mean())
    zero_after = float((np.abs(err_after) < 1e-9).mean())
    signal = float((reference**2).sum())
    rows = [
        [
            "Before quantize",
            float((err_before**2).mean()),
            signal / max(float((err_before**2).sum()), 1e-12),
            zero_before,
        ],
        [
            "After quantize",
            float((err_after**2).mean()),
            signal / max(float((err_after**2).sum()), 1e-12),
            zero_after,
        ],
    ]
    text = format_table(
        "Figure 6: error maps before/after post-measurement quantization\n"
        "(Fashion-4, Santiago, 5 levels, p = [-2, 2]; paper: MSE 0.235 -> "
        "0.167, SNR 4.256 -> 6.455, 'most errors corrected back to zero')",
        ["Stage", "MSE", "SNR", "Errors exactly zero"],
        rows,
    )
    record("fig06_quantization_denoise", text)
    return {"zero_before": zero_before, "zero_after": zero_after}


def test_fig6_quantization_denoise(benchmark):
    report = benchmark.pedantic(run_figure6, rounds=1, iterations=1)
    # The paper's qualitative claim: most errors snap exactly back to zero.
    assert report["zero_after"] > 0.5
    assert report["zero_after"] > report["zero_before"]
