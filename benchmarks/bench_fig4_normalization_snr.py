"""Figure 4: normalization reduces clean-vs-noisy distribution mismatch.

Paper: on a 3-block model's 2nd-block output (IBMQ-Quito, MNIST-4),
post-measurement normalization visibly aligns the noisy outcome
distribution with the noise-free one and raises per-qubit /
per-outcome SNR.  Expected shape: SNR(normalized) > SNR(raw) on every
qubit.
"""

import numpy as np

from benchmarks.common import (
    QuantumNATConfig,
    bench_task,
    build_model,
    format_table,
    record,
    train_model,
)
from repro.core import DensityEvalExecutor, normalize
from repro.metrics import per_qubit_snr, snr


def run_figure4():
    task = bench_task("mnist-4")
    model = build_model(task, "quito", QuantumNATConfig.norm_only(), 3, 1)
    result = train_model(model, task)
    x = task.test_x
    clean = model.measure_block_outcomes(result.weights, x, 1)
    noisy = model.measure_block_outcomes(
        result.weights, x, 1,
        executor=DensityEvalExecutor(model.device.noise_model),
    )
    raw_per_q = per_qubit_snr(clean, noisy)
    norm_clean, _ = normalize(clean)
    norm_noisy, _ = normalize(noisy)
    norm_per_q = per_qubit_snr(norm_clean, norm_noisy)
    rows = [
        ["Baseline (raw)", snr(clean, noisy)]
        + [raw_per_q[q] for q in range(4)],
        ["With Post-Meas. Norm.", snr(norm_clean, norm_noisy)]
        + [norm_per_q[q] for q in range(4)],
    ]
    text = format_table(
        "Figure 4: SNR of 2nd-block outcomes, 3-block model, IBMQ-Quito",
        ["Setting", "SNR (all)", "q0", "q1", "q2", "q3"],
        rows,
    )
    record("fig04_normalization_snr", text)
    return {"raw": snr(clean, noisy), "norm": snr(norm_clean, norm_noisy)}


def test_fig4_normalization_snr(benchmark):
    result = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    # The paper's headline effect: normalization improves SNR.
    assert result["norm"] > result["raw"]
