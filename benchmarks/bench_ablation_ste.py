"""Ablation: quantization-aware training (STE) vs post-hoc quantization.

QuantumNAT trains *through* the quantizer with a straight-through
estimator plus the quadratic centroid-attraction loss (Section 3.3).
The lazy alternative quantizes only at inference.  This bench trains
both ways on the same task/device/seed and deploys both with the full
pipeline, reproducing the design rationale for STE training.
"""

from benchmarks.common import (
    QuantumNATConfig,
    bench_task,
    build_model,
    record,
    train_model,
    format_table,
)
from repro import QuantumNATModel, make_real_qc_executor

DEVICE = "santiago"
NOISE_FACTOR = 0.5
LEVELS = 5


def run_ste_ablation():
    task = bench_task("mnist-4")

    # (a) Quantization-aware: train with STE + quant loss in the loop.
    aware = build_model(
        task, DEVICE, QuantumNATConfig.full(NOISE_FACTOR, LEVELS), 2, 2
    )
    aware_result = train_model(aware, task)

    # (b) Post-hoc: train without quantization, bolt it on at inference.
    posthoc_train = build_model(
        task, DEVICE, QuantumNATConfig.norm_and_injection(NOISE_FACTOR), 2, 2
    )
    posthoc_result = train_model(posthoc_train, task)
    posthoc_eval = QuantumNATModel(
        posthoc_train.qnn,
        posthoc_train.device,
        QuantumNATConfig.full(NOISE_FACTOR, LEVELS),
        rng=0,
    )

    rows = []
    results = {}
    for label, model, weights in (
        ("STE quantization-aware training", aware, aware_result.weights),
        ("post-hoc quantization", posthoc_eval, posthoc_result.weights),
    ):
        executor = make_real_qc_executor(model, rng=11)
        acc, _ = model.evaluate(weights, task.test_x, task.test_y, executor)
        rows.append([label, acc])
        results[label] = acc

    text = format_table(
        f"Ablation: STE training vs post-hoc quantization "
        f"(MNIST-4, {DEVICE}, T={NOISE_FACTOR}, {LEVELS} levels)",
        ["Method", "Real-QC accuracy"],
        rows,
    )
    record("ablation_ste", text)
    return results


def test_ablation_ste(benchmark):
    results = benchmark.pedantic(run_ste_ablation, rounds=1, iterations=1)
    aware = results["STE quantization-aware training"]
    posthoc = results["post-hoc quantization"]
    # Training through the quantizer should not lose to bolting it on.
    assert aware >= posthoc - 0.08
