"""Table 4: compatibility with zero-noise extrapolation.

Paper: on a 2-block model with 3 U3+CU3 layers per block, normalization
alone gives 0.78 / 0.81 (MNIST-4 / Fashion-4); adding std-extrapolation
(repeating the 3 layers to 6/9/12, linearly extrapolating the outcome
std to zero depth, rescaling before normalization) improves to
0.81 / 0.83.  Expected shape: extrapolation does not hurt and usually
adds a little.
"""

import numpy as np

from benchmarks.common import (
    QuantumNATConfig,
    bench_task,
    build_model,
    format_table,
    make_real_qc_executor,
    record,
    train_model,
)
from repro.core import cross_entropy, normalize
from repro.core.normalization import normalize_with_stats
from repro.mitigation import extrapolate_noise_free_std, rescale_to_extrapolated_std

TASKS = ("mnist-4", "fashion-4")


def _predict_with_extrapolation(model, weights, x, extrapolated_std, executor):
    """Manual 2-block inference inserting the extrapolation rescale."""
    w0 = model.qnn.block_weights(weights, 0)
    w1 = model.qnn.block_weights(weights, 1)
    e0, _ = executor.forward(model.compiled[0], w0, x)
    rescaled = rescale_to_extrapolated_std(e0, extrapolated_std)
    normed, _ = normalize(rescaled)
    e1, _ = executor.forward(model.compiled[1], w1, normed)
    return e1 @ model.head.T


def run_table4():
    rows = []
    out = {}
    for task_name in TASKS:
        task = bench_task(task_name)
        model = build_model(task, "santiago", QuantumNATConfig.norm_only(), 2, 3)
        result = train_model(model, task)
        executor = make_real_qc_executor(model, rng=5)
        norm_acc, _ = model.evaluate(
            result.weights, task.test_x, task.test_y, executor
        )

        def run_block(compiled, w_local, inputs):
            expectations, _ = executor.forward(compiled, w_local, inputs)
            return expectations

        extrapolation = extrapolate_noise_free_std(
            model, result.weights, task.valid_x, run_block,
            block=0, repeats=(1, 2, 3, 4), mode="repeat",
        )
        logits = _predict_with_extrapolation(
            model, result.weights, task.test_x,
            extrapolation.extrapolated_std, executor,
        )
        extrap_acc = float((logits.argmax(1) == task.test_y).mean())
        rows.append([task_name, norm_acc, extrap_acc])
        out[task_name] = (norm_acc, extrap_acc)
    text = format_table(
        "Table 4: normalization alone vs normalization + extrapolation "
        "(2 blocks x 3 U3+CU3 layers, Santiago)",
        ["Task", "Normalization only", "Norm. + Extrapolation"],
        rows,
    )
    record("table04_extrapolation", text)
    return out


def test_table4_extrapolation(benchmark):
    result = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    for norm_acc, extrap_acc in result.values():
        assert extrap_acc >= norm_acc - 0.15  # orthogonal, not harmful
