"""Figure 7: ablation of noise-injection methods.

Paper, left panel (no quantization): gate insertion and measurement-
outcome perturbation perform similarly across noise factors; rotation-
angle perturbation is worse (it ignores non-rotation gates).  Right
panel (with quantization): gate insertion beats outcome perturbation by
~11% because added outcome noise is cancelled by quantization, blunting
its training effect.
"""

import numpy as np

from benchmarks.common import (
    EPOCHS_INJECT,
    QuantumNATConfig,
    bench_task,
    build_model,
    format_table,
    make_real_qc_executor,
    record,
    train_model,
)
from repro.core import InjectionConfig

STRATEGIES = ("gate_insertion", "outcome_perturbation", "angle_perturbation")
NOISE_FACTORS = (0.1, 0.5)
LEVELS = (4, 6)


def _train_eval(task, strategy, noise_factor, quantize, n_levels=5):
    injection = InjectionConfig(strategy, noise_factor, 0.0, 0.15, 0.08)
    config = QuantumNATConfig(
        normalize=True,
        quantize=quantize,
        n_levels=n_levels,
        injection=injection,
    )
    model = build_model(task, "yorktown", config, 2, 2)
    result = train_model(model, task, epochs=EPOCHS_INJECT)
    executor = make_real_qc_executor(model, rng=5)
    acc, _ = model.evaluate(result.weights, task.test_x, task.test_y, executor)
    return acc


def run_figure7():
    task = bench_task("fashion-4")
    # Left: accuracy vs noise factor, no quantization.
    left_rows = []
    left = {}
    for strategy in STRATEGIES:
        row = [strategy]
        for noise_factor in NOISE_FACTORS:
            acc = _train_eval(task, strategy, noise_factor, quantize=False)
            row.append(acc)
            left[(strategy, noise_factor)] = acc
        left_rows.append(row)
    left_text = format_table(
        "Figure 7 (left): injection methods without quantization "
        "(Fashion-4, Yorktown)",
        ["Method"] + [f"T={t}" for t in NOISE_FACTORS],
        left_rows,
    )
    # Right: gate insertion vs outcome perturbation with quantization.
    right_rows = []
    right = {}
    for strategy in ("gate_insertion", "outcome_perturbation"):
        row = [strategy]
        for levels in LEVELS:
            acc = _train_eval(task, strategy, 0.5, quantize=True, n_levels=levels)
            row.append(acc)
            right[(strategy, levels)] = acc
        right_rows.append(row)
    right_text = format_table(
        "Figure 7 (right): with quantization (T=0.5), accuracy vs #levels",
        ["Method"] + [f"{k} levels" for k in LEVELS],
        right_rows,
    )
    record("fig07_injection_ablation", left_text + "\n" + right_text)
    return {"left": left, "right": right}


def test_fig7_injection_ablation(benchmark):
    result = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    gate_mean = np.mean(
        [v for (s, _), v in result["right"].items() if s == "gate_insertion"]
    )
    assert 0 <= gate_mean <= 1
