"""Table 1: the main results -- four method stages across models/devices.

Paper shape: on every device x task cell, accuracy improves monotonically
Baseline -> +Post Norm. -> +Gate Insert. -> +Post Quant. (on average
+10%, +9%, +3% per stage; QuantumNAT best in all 26 benchmarks).

Scaled-down protocol: the paper's architectures are depth-reduced
(2Bx12L -> 2Bx4L etc.) so the suite runs in minutes; tasks per device are
subsampled in quick mode.  Shapes, not absolute numbers, are the target.
"""

import numpy as np

from benchmarks.common import (
    FULL,
    bench_task,
    format_table,
    record,
    run_stages,
)

# (device, paper arch, bench arch (blocks, layers), tasks)
CELLS = [
    ("santiago", "2Bx12L", (2, 4), ["mnist-4", "fashion-4", "mnist-2"]),
    ("yorktown", "2Bx2L", (2, 2), ["mnist-4", "fashion-4", "mnist-2"]),
    ("belem", "2Bx6L", (2, 3), ["mnist-4", "mnist-2"]),
    ("athens", "3Bx10L", (3, 2), ["mnist-4"]),
    ("melbourne", "2Bx2L", (2, 1), ["mnist-10"]),
]
if not FULL:
    CELLS = [
        ("santiago", "2Bx12L", (2, 4), ["mnist-4", "fashion-2"]),
        ("yorktown", "2Bx2L", (2, 2), ["mnist-4", "fashion-2"]),
        ("melbourne", "2Bx2L", (2, 1), ["mnist-10"]),
    ]

STAGE_LABELS = ("Baseline", "+ Post Norm.", "+ Gate Insert.", "+ Post Quant.")


def run_table1():
    rows = []
    summary = {}
    for device, paper_arch, (blocks, layers), tasks in CELLS:
        for task_name in tasks:
            task = bench_task(task_name)
            stages = run_stages(task, device, blocks, layers)
            for label in STAGE_LABELS:
                rows.append(
                    [
                        f"{blocks}Bx{layers}L {device} (paper {paper_arch})",
                        label,
                        task_name,
                        stages[label]["real_qc"],
                        stages[label]["noise_free"],
                    ]
                )
                summary.setdefault(label, []).append(stages[label]["real_qc"])
    avg_rows = [
        [label, float(np.mean(values))] for label, values in summary.items()
    ]
    text = format_table(
        "Table 1: main results (real-QC accuracy per method stage)",
        ["Model", "Method", "Task", "Real-QC acc", "Noise-free acc"],
        rows,
    )
    text += "\n" + format_table(
        "Table 1 (averages over all cells)",
        ["Method", "Avg real-QC acc"],
        avg_rows,
    )
    record("table01_main", text)
    return {label: float(np.mean(v)) for label, v in summary.items()}


def test_table1_main(benchmark):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    # Headline claim: the full pipeline beats the noise-unaware baseline.
    assert result["+ Post Quant."] > result["Baseline"]
