"""Echo every recorded result table in the pytest terminal summary."""

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_terminal_summary(terminalreporter):
    if not RESULTS_DIR.is_dir():
        return
    files = sorted(RESULTS_DIR.glob("*.txt"))
    if not files:
        return
    terminalreporter.section("paper reproduction results")
    for path in files:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"=== {path.name} ===")
        for line in path.read_text().splitlines():
            terminalreporter.write_line(line)
