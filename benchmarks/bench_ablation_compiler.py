"""Ablation: compiler optimization levels vs circuit cost and noise.

Every gate removed is a Pauli channel that never fires, so the
commutation-aware passes (level >= 2) should shrink circuits *and*
shrink the noisy-vs-ideal expectation error.  This bench quantifies
both across the paper's four optimization levels on one QNN block.
"""

import numpy as np

from benchmarks.common import format_table, record
from repro import get_device, paper_model, transpile
from repro.core import DensityEvalExecutor, NoiselessExecutor

RNG = np.random.default_rng(23)


def run_compiler_ablation():
    qnn = paper_model(4, 1, 2, 16, 4)
    block = qnn.blocks[0]
    device = get_device("yorktown")
    weights = qnn.init_weights(5)
    inputs = RNG.uniform(-1, 1, (24, 16))

    rows = []
    results = {}
    for level in range(4):
        compiled = transpile(block, device, optimization_level=level)
        ops = compiled.circuit.count_ops()
        ideal, _ = NoiselessExecutor().forward(compiled, weights, inputs)
        noisy, _ = DensityEvalExecutor(device.noise_model, rng=0).forward(
            compiled, weights, inputs
        )
        error = float(np.mean(np.abs(noisy - ideal)))
        rows.append(
            [
                level,
                len(compiled.circuit),
                ops.get("cx", 0),
                compiled.circuit.depth(),
                f"{error:.4f}",
            ]
        )
        results[level] = (len(compiled.circuit), error)

    text = format_table(
        "Ablation: optimization level vs gate count and noisy error "
        "(1B x 2L U3+CU3 on Yorktown)",
        ["Opt level", "Gates", "CX", "Depth", "Mean |dE| vs ideal"],
        rows,
    )
    record("ablation_compiler", text)
    return results


def test_ablation_compiler(benchmark):
    results = benchmark.pedantic(run_compiler_ablation, rounds=1, iterations=1)
    # Optimization never grows the circuit...
    assert results[1][0] <= results[0][0]
    assert results[2][0] <= results[1][0]
    # ...and the shorter level-2 circuit is no noisier than level 0.
    assert results[2][1] <= results[0][1] + 1e-6
