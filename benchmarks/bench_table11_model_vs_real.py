"""Table 11: accuracy gap between noise-model evaluation and real QC.

Paper: evaluating a trained model with the vendor noise model predicts
the real-device accuracy within ~5% across 18 cells -- noise models are
reliable.  Our 'real QC' is the drifted hardware twin plus coherent
miscalibration and shot noise, so a small gap should remain.
"""

import numpy as np

from benchmarks.common import (
    DEFAULT_LEVELS,
    DEFAULT_NOISE_FACTOR,
    FULL,
    QuantumNATConfig,
    bench_task,
    build_model,
    eval_suite,
    format_table,
    record,
    train_model,
)

CELLS = (
    [("santiago", (2, 3)), ("yorktown", (2, 2)), ("belem", (2, 2))]
    if FULL
    else [("santiago", (2, 2)), ("yorktown", (2, 2))]
)
TASKS = ("mnist-4", "mnist-2", "fashion-4") if FULL else ("mnist-4", "mnist-2")


def run_table11():
    rows = []
    gaps = []
    for device, (blocks, layers) in CELLS:
        for task_name in TASKS:
            task = bench_task(task_name)
            model = build_model(
                task, device,
                QuantumNATConfig.full(DEFAULT_NOISE_FACTOR, DEFAULT_LEVELS),
                blocks, layers,
            )
            result = train_model(model, task)
            evals = eval_suite(model, result.weights, task)
            gap = abs(evals["noise_model"] - evals["real_qc"])
            gaps.append(gap)
            rows.append(
                [device, f"{blocks}Bx{layers}L", task_name,
                 evals["noise_model"], evals["real_qc"], gap]
            )
    text = format_table(
        "Table 11: noise-model evaluation vs real-QC accuracy "
        "(paper: gaps typically < 5%)",
        ["Machine", "Model", "Task", "Noise model", "Real QC", "Gap"],
        rows,
    )
    record("table11_model_vs_real", text)
    return {"mean_gap": float(np.mean(gaps)), "max_gap": float(np.max(gaps))}


def test_table11_model_vs_real(benchmark):
    result = benchmark.pedantic(run_table11, rounds=1, iterations=1)
    # Noise models should predict deployment accuracy reasonably well.
    assert result["mean_gap"] < 0.15
