"""Ablation: fast fine-tuning vs full retraining after calibration drift.

Paper appendix A.3.1 flags stale noise models as the framework's main
limitation and proposes fine-tuning as future work.  This bench trains
against the published model, deploys on the drifted hardware twin, then
compares: doing nothing, fine-tuning for a few epochs against the
refreshed calibration (with 50% gradient pruning), and retraining from
scratch -- reporting accuracy and relative training cost.
"""

from benchmarks.common import (
    EPOCHS_INJECT,
    QuantumNATConfig,
    bench_task,
    build_model,
    format_table,
    record,
    train_model,
)
from repro import make_real_qc_executor
from repro.core import (
    FinetuneConfig,
    adapt_model,
    device_with_updated_calibration,
    finetune,
)

DEVICE = "yorktown"
FT_EPOCHS = 4


def run_adaptation_ablation():
    task = bench_task("fashion-2")
    config = QuantumNATConfig.full(0.5, 5)

    # Initial training against the published calibration.
    model = build_model(task, DEVICE, config, 2, 2)
    result = train_model(model, task)
    real_qc = make_real_qc_executor(model, rng=13)
    stale_acc, _ = model.evaluate(
        result.weights, task.test_x, task.test_y, real_qc
    )

    # Re-calibrate: adopt the hardware twin as the published model.
    refreshed = device_with_updated_calibration(
        model.device, noise_model=model.device.hardware_model
    )
    adapted = adapt_model(model, refreshed)
    tuned = finetune(
        adapted,
        result.weights,
        task.train_x,
        task.train_y,
        task.valid_x,
        task.valid_y,
        FinetuneConfig(epochs=FT_EPOCHS, lr=0.03, keep_fraction=0.5, seed=2),
    )
    tuned_acc, _ = adapted.evaluate(
        tuned.weights, task.test_x, task.test_y, real_qc
    )

    # Full retrain against the refreshed calibration.
    retrain_model = adapt_model(build_model(task, DEVICE, config, 2, 2), refreshed)
    retrain_result = train_model(retrain_model, task)
    retrain_acc, _ = retrain_model.evaluate(
        retrain_result.weights, task.test_x, task.test_y, real_qc
    )

    rows = [
        ["stale model (no adaptation)", stale_acc, "0%"],
        [
            f"fine-tune {FT_EPOCHS} epochs, 50% grads",
            tuned_acc,
            f"{100 * FT_EPOCHS // EPOCHS_INJECT}%",
        ],
        ["full retrain", retrain_acc, "100%"],
    ]
    text = format_table(
        f"Ablation: adaptation to calibration drift (Fashion-2, {DEVICE})",
        ["Strategy", "Real-QC accuracy", "Training cost"],
        rows,
    )
    record("ablation_adaptation", text)
    return {"stale": stale_acc, "finetune": tuned_acc, "retrain": retrain_acc}


def test_ablation_adaptation(benchmark):
    results = benchmark.pedantic(run_adaptation_ablation, rounds=1, iterations=1)
    # Fine-tuning at ~10% of the cost should roughly close the gap:
    # no worse than stale deployment, competitive with retraining.
    assert results["finetune"] >= results["stale"] - 0.06
    assert results["finetune"] >= results["retrain"] - 0.12
