"""Shared infrastructure for the paper-reproduction benchmarks.

Every ``bench_*.py`` file regenerates one table or figure of the paper.
Workloads are scaled down (small synthetic datasets, fewer epochs) so the
whole suite runs in tens of minutes; set ``REPRO_BENCH_SCALE=full`` for
larger, slower runs closer to the paper's protocol.  Absolute accuracies
differ from the paper (different data, simulated devices); the *shape* --
method orderings, device orderings, crossovers -- is what each bench
checks and reports.

Results are printed and also written to ``benchmarks/results/*.txt``;
``conftest.py`` echoes all result files in the pytest terminal summary.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro import (
    QuantumNATConfig,
    QuantumNATModel,
    TrainConfig,
    get_device,
    load_task,
    make_noise_model_executor,
    make_real_qc_executor,
    paper_model,
    train,
)
from repro.core import NoiselessExecutor

FULL = os.environ.get("REPRO_BENCH_SCALE", "quick").lower() == "full"

RESULTS_DIR = Path(__file__).parent / "results"

#: Data sizes (train, valid, test).
DATA_SIZES = (240, 60, 120) if FULL else (128, 32, 64)
DATA_SIZES_10C = (160, 40, 60) if FULL else (96, 32, 40)

#: Epochs for plain / noise-injected training.
EPOCHS_PLAIN = 50 if FULL else 20
EPOCHS_INJECT = 90 if FULL else 35

DEFAULT_NOISE_FACTOR = 0.25
DEFAULT_LEVELS = 6


def bench_task(name: str, seed: int = 0):
    """Load a task at benchmark scale."""
    if name.endswith("-10"):
        n_train, n_valid, n_test = DATA_SIZES_10C
    else:
        n_train, n_valid, n_test = DATA_SIZES
    return load_task(name, n_train=n_train, n_valid=n_valid, n_test=n_test, seed=seed)


def build_model(
    task,
    device_name: str,
    config: QuantumNATConfig,
    n_blocks: int = 2,
    n_layers: int = 2,
    design: str = "u3cu3",
    seed: int = 0,
) -> QuantumNATModel:
    qnn = paper_model(
        task.n_qubits, n_blocks, n_layers, task.n_features, task.n_classes, design
    )
    return QuantumNATModel(qnn, get_device(device_name), config, rng=seed)


def train_model(model, task, epochs: "int | None" = None, seed: int = 1):
    """Train and return best-validation weights."""
    if epochs is None:
        injected = model.config.injection.enabled
        epochs = EPOCHS_INJECT if injected else EPOCHS_PLAIN
    result = train(
        model,
        task.train_x,
        task.train_y,
        task.valid_x,
        task.valid_y,
        TrainConfig(epochs=epochs, seed=seed),
    )
    return result


def eval_suite(model, weights, task, rng_seed: int = 5) -> "dict[str, float]":
    """Accuracy under noise-free / published-model / real-QC backends."""
    noise_free, _ = model.evaluate(
        weights, task.test_x, task.test_y, NoiselessExecutor()
    )
    noise_model_exec = make_noise_model_executor(model)
    noise_model, _ = model.evaluate(
        weights, task.test_x, task.test_y, noise_model_exec
    )
    real_exec = make_real_qc_executor(model, rng=rng_seed)
    real_qc, _ = model.evaluate(weights, task.test_x, task.test_y, real_exec)
    return {
        "noise_free": noise_free,
        "noise_model": noise_model,
        "real_qc": real_qc,
    }


STAGES = (
    ("Baseline", lambda T, L: QuantumNATConfig.baseline()),
    ("+ Post Norm.", lambda T, L: QuantumNATConfig.norm_only()),
    ("+ Gate Insert.", lambda T, L: QuantumNATConfig.norm_and_injection(T)),
    ("+ Post Quant.", lambda T, L: QuantumNATConfig.full(T, L)),
)


def run_stages(
    task,
    device_name: str,
    n_blocks: int,
    n_layers: int,
    noise_factor: float = DEFAULT_NOISE_FACTOR,
    n_levels: int = DEFAULT_LEVELS,
    design: str = "u3cu3",
    seed: int = 1,
) -> "dict[str, dict[str, float]]":
    """Train and evaluate the paper's four method stages on one cell."""
    out = {}
    for label, make_config in STAGES:
        config = make_config(noise_factor, n_levels)
        model = build_model(
            task, device_name, config, n_blocks, n_layers, design, seed=0
        )
        result = train_model(model, task, seed=seed)
        out[label] = eval_suite(model, result.weights, task)
    return out


def format_table(title: str, headers: "list[str]", rows: "list[list]") -> str:
    """Fixed-width text table."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, ""]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines) + "\n"


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def record(name: str, text: str) -> None:
    """Print and persist a result table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text)
    print("\n" + text)
