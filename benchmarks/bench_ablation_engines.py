"""Ablations on this reproduction's own design choices (DESIGN.md section 5).

* adjoint vs parameter-shift gradient cost (adjoint is one backward
  sweep; parameter shift costs 2 evaluations per parameter),
* trajectory-count convergence toward the exact density-matrix channel,
* drift magnitude vs the Table 11 noise-model/real-QC gap.
"""

import time

import numpy as np

from benchmarks.common import format_table, record
from repro import get_device, paper_model, transpile
from repro.core import ParameterShiftEngine, adjoint_backward, forward_with_tape
from repro.noise import run_noisy_density, run_noisy_trajectories

RNG = np.random.default_rng(9)


def run_gradient_cost():
    qnn = paper_model(4, 1, 2, 16, 4)
    circuit = qnn.blocks[0]
    weights = qnn.init_weights(0)
    inputs = RNG.uniform(-1, 1, (16, 16))
    upstream = RNG.normal(0, 1, (16, 4))

    start = time.perf_counter()
    _, tape = forward_with_tape(circuit, weights, inputs,
                                n_weights=weights.size, n_inputs=16)
    adjoint_backward(tape, upstream)
    adjoint_time = time.perf_counter() - start

    def executor(w, x):
        exp, _ = forward_with_tape(circuit, w, x, n_weights=w.size,
                                   n_inputs=x.shape[1])
        return exp

    start = time.perf_counter()
    ParameterShiftEngine(executor).weight_jacobian(weights, inputs)
    shift_time = time.perf_counter() - start

    rows = [
        ["adjoint (1 fwd + 1 bwd)", adjoint_time * 1e3, 1.0],
        [
            f"parameter shift (2 x {weights.size} evals)",
            shift_time * 1e3,
            shift_time / adjoint_time,
        ],
    ]
    return format_table(
        "Ablation: gradient engine cost (48-weight block, batch 16)",
        ["Engine", "Time (ms)", "Relative"],
        rows,
    ), shift_time / adjoint_time


def run_trajectory_convergence():
    device = get_device("yorktown")
    qnn = paper_model(4, 1, 1, 16, 4)
    compiled = transpile(qnn.blocks[0], device, 2)
    weights = qnn.init_weights(1)
    inputs = RNG.uniform(-1, 1, (4, 16))
    exact = run_noisy_density(compiled, device.noise_model, weights, inputs)
    rows = []
    errors = []
    for k in (4, 16, 64, 256):
        approx = run_noisy_trajectories(
            compiled, device.noise_model, weights, inputs,
            n_trajectories=k, shots=None, rng=3,
        )
        err = float(np.abs(approx - exact).max())
        errors.append(err)
        rows.append([k, err])
    return format_table(
        "Ablation: trajectory count vs exact channel (max |dE|)",
        ["Trajectories", "Max deviation"],
        rows,
    ), errors


def run_drift_vs_gap():
    device = get_device("santiago")
    qnn = paper_model(4, 1, 1, 16, 4)
    compiled = transpile(qnn.blocks[0], device, 2)
    weights = qnn.init_weights(2)
    inputs = RNG.uniform(-1, 1, (8, 16))
    published = run_noisy_density(compiled, device.noise_model, weights, inputs)
    rows = []
    for sigma in (0.0, 0.1, 0.3, 0.6):
        drifted_model = device.noise_model.drifted(
            np.random.default_rng(0), sigma=sigma
        )
        drifted = run_noisy_density(compiled, drifted_model, weights, inputs)
        rows.append([sigma, float(np.abs(drifted - published).mean())])
    return format_table(
        "Ablation: calibration drift sigma vs expectation gap",
        ["Drift sigma", "Mean |dE|"],
        rows,
    ), rows


def run_all():
    grad_table, speedup = run_gradient_cost()
    traj_table, errors = run_trajectory_convergence()
    drift_table, drift_rows = run_drift_vs_gap()
    record("ablation_engines", "\n".join([grad_table, traj_table, drift_table]))
    return {"shift_cost_ratio": speedup, "traj_errors": errors,
            "drift_rows": drift_rows}


def test_ablation_engines(benchmark):
    result = benchmark.pedantic(run_all, rounds=1, iterations=1)
    # Adjoint must be much cheaper than parameter shift.
    assert result["shift_cost_ratio"] > 3
    # Trajectory estimate converges monotonically-ish to the exact channel.
    assert result["traj_errors"][-1] < result["traj_errors"][0]
    # More drift, bigger model-vs-hardware gap.
    gaps = [g for _s, g in result["drift_rows"]]
    assert gaps[-1] > gaps[0]
