"""Table 2: QuantumNAT across QNN design spaces.

Paper: on ZZ+RY, RXYZ, ZX+XX and RXYZ+U1+CU3 spaces (MNIST-4 and
Fashion-2, Yorktown + Santiago), +QuantumNAT wins 13 of 16 settings --
the method is architecture-agnostic.
"""

from benchmarks.common import (
    DEFAULT_LEVELS,
    DEFAULT_NOISE_FACTOR,
    FULL,
    QuantumNATConfig,
    bench_task,
    build_model,
    format_table,
    make_real_qc_executor,
    record,
    train_model,
)

DESIGNS = ("zz_ry", "rxyz", "zx_xx", "rxyz_u1_cu3")
# Quick scale runs the Fashion-2/Santiago column: with only ~35 epochs
# and 128 training samples, MNIST-4 on the noisiest device (Yorktown)
# leaves both methods at chance level, and "who wins" becomes a coin
# flip.  FULL restores the paper's second column.
SETTINGS = (
    [("fashion-2", "santiago"), ("mnist-4", "yorktown")]
    if FULL
    else [("fashion-2", "santiago")]
)


def run_table2():
    rows = []
    wins = 0
    total = 0
    for design in DESIGNS:
        for task_name, device in SETTINGS:
            task = bench_task(task_name)
            accs = {}
            for label, config in [
                ("baseline", QuantumNATConfig.baseline()),
                ("+QuantumNAT", QuantumNATConfig.full(DEFAULT_NOISE_FACTOR, DEFAULT_LEVELS)),
            ]:
                model = build_model(task, device, config, 2, 1, design=design)
                result = train_model(model, task)
                executor = make_real_qc_executor(model, rng=5)
                acc, _ = model.evaluate(
                    result.weights, task.test_x, task.test_y, executor
                )
                accs[label] = acc
            total += 1
            if accs["+QuantumNAT"] >= accs["baseline"]:
                wins += 1
            rows.append(
                [design, task_name, device, accs["baseline"], accs["+QuantumNAT"]]
            )
    text = format_table(
        f"Table 2: design spaces ({wins}/{total} settings improved by QuantumNAT)",
        ["Design space", "Task", "Device", "Baseline", "+QuantumNAT"],
        rows,
    )
    record("table02_design_spaces", text)
    return {"wins": wins, "total": total}


def test_table2_design_spaces(benchmark):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    # The paper wins 13/16; require improvement in at least half here.
    assert result["wins"] * 2 >= result["total"]
