"""Table 7: compatibility with noise-adaptive compilation (opt level 3).

Paper (MNIST-2): raising Qiskit's optimization level to 3 (noise-
adaptive qubit mapping) improves the baseline, and QuantumNAT still
adds >10% on top -- the techniques compose.
"""

import numpy as np

from benchmarks.common import (
    DEFAULT_LEVELS,
    DEFAULT_NOISE_FACTOR,
    FULL,
    QuantumNATConfig,
    bench_task,
    format_table,
    get_device,
    make_real_qc_executor,
    record,
    train_model,
)
from repro import QuantumNATModel, paper_model

DEVICES = ("santiago", "yorktown", "belem", "athens") if FULL else (
    "yorktown",
    "belem",
)

CONFIGS = (
    ("Baseline", QuantumNATConfig.baseline()),
    ("+Norm", QuantumNATConfig.norm_only()),
    ("+Noise & Quant", QuantumNATConfig.full(DEFAULT_NOISE_FACTOR, DEFAULT_LEVELS)),
)


def run_table7():
    task = bench_task("mnist-2")
    rows = []
    out = {}
    for label, config in CONFIGS:
        row = [label]
        for device in DEVICES:
            model = QuantumNATModel(
                paper_model(task.n_qubits, 2, 2, task.n_features, task.n_classes),
                get_device(device),
                config,
                optimization_level=3,  # noise-adaptive layout
                rng=0,
            )
            result = train_model(model, task)
            executor = make_real_qc_executor(model, rng=5)
            acc, _ = model.evaluate(
                result.weights, task.test_x, task.test_y, executor
            )
            row.append(acc)
            out[(label, device)] = acc
        rows.append(row)
    text = format_table(
        "Table 7: MNIST-2 with noise-adaptive compilation "
        "(optimization level 3)",
        ["Method"] + list(DEVICES),
        rows,
    )
    record("table07_optlevel3", text)
    return out


def test_table7_optlevel3(benchmark):
    result = benchmark.pedantic(run_table7, rounds=1, iterations=1)
    base = np.mean([v for (l, _d), v in result.items() if l == "Baseline"])
    full = np.mean([v for (l, _d), v in result.items() if l == "+Noise & Quant"])
    assert full >= base - 0.05
