"""Table 12: improvements grow with the number of classes.

Paper: relative accuracy improvement of QuantumNAT over baseline is 48%
for 2-class, 84% for 4-class and 230% for 10-class tasks -- harder tasks
benefit more.
"""

import numpy as np

from benchmarks.common import (
    DEFAULT_LEVELS,
    DEFAULT_NOISE_FACTOR,
    QuantumNATConfig,
    bench_task,
    build_model,
    format_table,
    make_real_qc_executor,
    record,
    train_model,
)

# (task, device, blocks, layers)
GROUPS = {
    "2-classification": [("mnist-2", "yorktown", 2, 2)],
    "4-classification": [("mnist-4", "yorktown", 2, 2)],
    "10-classification": [("mnist-10", "melbourne", 2, 1)],
}


def run_table12():
    rows = []
    out = {}
    for group, cells in GROUPS.items():
        base_accs, nat_accs = [], []
        for task_name, device, blocks, layers in cells:
            task = bench_task(task_name)
            for label, config in [
                ("base", QuantumNATConfig.baseline()),
                ("nat", QuantumNATConfig.full(DEFAULT_NOISE_FACTOR, DEFAULT_LEVELS)),
            ]:
                model = build_model(task, device, config, blocks, layers)
                result = train_model(model, task)
                executor = make_real_qc_executor(model, rng=5)
                acc, _ = model.evaluate(
                    result.weights, task.test_x, task.test_y, executor
                )
                (base_accs if label == "base" else nat_accs).append(acc)
        base = float(np.mean(base_accs))
        nat = float(np.mean(nat_accs))
        absolute = nat - base
        relative = absolute / max(base, 1e-9)
        rows.append([group, base, nat, absolute, f"{relative:.0%}"])
        out[group] = (base, nat)
    text = format_table(
        "Table 12: baseline vs QuantumNAT accuracy by class count",
        ["Task", "Baseline", "QuantumNAT", "Absolute gain", "Relative gain"],
        rows,
    )
    record("table12_class_scaling", text)
    return out


def test_table12_class_scaling(benchmark):
    out = benchmark.pedantic(run_table12, rounds=1, iterations=1)
    gains = {g: nat - base for g, (base, nat) in out.items()}
    assert np.mean(list(gains.values())) > -0.05
