"""Table 14: the (noise factor, quantization level) grid search.

Paper: for every benchmark, 16 combinations of T in {0.1, 0.5, 1, 1.5}
x levels in {3, 4, 5, 6} are trained and the lowest validation loss is
selected; Table 14 records the winners.  This bench runs the search on
one benchmark and reports the full exploration record.
"""

from benchmarks.common import (
    EPOCHS_INJECT,
    FULL,
    bench_task,
    format_table,
    get_device,
    record,
)
from repro import TrainConfig, paper_model
from repro.core import grid_search, make_noise_model_executor

NOISE_FACTORS = (0.1, 0.5, 1.0, 1.5) if FULL else (0.1, 0.5)
LEVELS = (3, 4, 5, 6) if FULL else (4, 6)


def run_table14():
    task = bench_task("fashion-4")
    device = get_device("yorktown")
    result = grid_search(
        lambda: paper_model(task.n_qubits, 2, 2, task.n_features, task.n_classes),
        device,
        task.train_x,
        task.train_y,
        task.valid_x,
        task.valid_y,
        noise_factors=NOISE_FACTORS,
        quant_levels=LEVELS,
        train_config=TrainConfig(epochs=max(10, EPOCHS_INJECT // 2), seed=1),
        valid_executor_factory=lambda model: make_noise_model_executor(model),
    )
    rows = [
        [r["noise_factor"], int(r["n_levels"]), r["valid_loss"], r["valid_acc"]]
        for r in result.records
    ]
    rows.append(["BEST ->", f"T={result.best_noise_factor}",
                 f"levels={result.best_n_levels}",
                 result.best_result.best_valid_acc])
    text = format_table(
        "Table 14: (noise factor, quantization level) grid search, "
        "Fashion-4 on Yorktown (validation-loss selection)",
        ["Noise factor", "Levels", "Valid loss", "Valid acc"],
        rows,
    )
    record("table14_hyperparams", text)
    return {
        "best": (result.best_noise_factor, result.best_n_levels),
        "n_tried": len(result.records),
    }


def test_table14_hyperparams(benchmark):
    result = benchmark.pedantic(run_table14, rounds=1, iterations=1)
    assert result["n_tried"] == len(NOISE_FACTORS) * len(LEVELS)
