"""Ablation: zero-noise-extrapolation variants on a noisy QNN block.

Compares raw noisy expectations against linear / Richardson /
exponential ZNE (unitary folding, scales 1-3) at several noise
amplifications.  Complements the paper's Table 4, which studies the
std-extrapolation variant inside the QuantumNAT pipeline; here we
measure the estimator error of each extrapolator directly.
"""

import numpy as np

from benchmarks.common import format_table, record
from repro import Circuit, get_device
from repro.compiler.decompositions import lower_to_basis
from repro.compiler.passes import CompiledCircuit
from repro.mitigation import zne_expectations
from repro.noise.density_backend import run_noisy_density
from repro.sim.statevector import run_circuit, z_expectations

METHODS = ("linear", "richardson", "exponential")
NOISE_FACTORS = (2.0, 6.0, 12.0)


def _circuit() -> Circuit:
    circuit = Circuit(2)
    for step in range(5):
        circuit.add("ry", 0, 0.3 + 0.1 * step)
        circuit.add("cx", (0, 1))
        circuit.add("rx", 1, -0.25)
    return circuit


def _runner(device, noise_factor):
    def run(circuit):
        lowered = lower_to_basis(circuit)
        compiled = CompiledCircuit(
            circuit=lowered,
            physical_qubits=tuple(range(circuit.n_qubits)),
            layout={q: q for q in range(circuit.n_qubits)},
            measure_qubits=tuple(range(circuit.n_qubits)),
            device_name=device.name,
        )
        return run_noisy_density(
            compiled,
            device.noise_model,
            np.zeros(0),
            np.zeros((1, 0)),
            noise_factor=noise_factor,
        )[0]

    return run


def run_zne_ablation():
    device = get_device("yorktown")
    circuit = _circuit()
    state, _ = run_circuit(lower_to_basis(circuit), batch=1)
    ideal = z_expectations(state, 2)[0]

    rows = []
    results = {}
    for factor in NOISE_FACTORS:
        run = _runner(device, factor)
        raw = run(circuit)
        row = [f"T={factor:g}", f"{np.linalg.norm(raw - ideal):.4f}"]
        errors = {}
        for method in METHODS:
            mitigated = zne_expectations(run, circuit, (1.0, 2.0, 3.0), method)
            err = float(np.linalg.norm(mitigated - ideal))
            row.append(f"{err:.4f}")
            errors[method] = err
        results[factor] = (float(np.linalg.norm(raw - ideal)), errors)
        rows.append(row)

    text = format_table(
        "Ablation: ZNE extrapolator error vs raw (2q block on Yorktown, "
        "folding scales 1/2/3)",
        ["Noise", "Raw |err|"] + [f"ZNE {m}" for m in METHODS],
        rows,
    )
    record("ablation_zne", text)
    return results


def test_ablation_zne(benchmark):
    results = benchmark.pedantic(run_zne_ablation, rounds=1, iterations=1)
    for _factor, (raw_err, errors) in results.items():
        # The best extrapolator beats no mitigation at every noise level.
        assert min(errors.values()) < raw_err
