"""Repo-root pytest bootstrap: plain ``pytest`` works from a checkout.

Puts ``./src`` on ``sys.path`` for in-process imports and exports it via
``PYTHONPATH`` so subprocess-based tests (the examples smoke suite) and
any tooling the tests shell out to inherit the same import path.  This
mirrors what CI runs; ``PYTHONPATH=src`` remains equivalent but is no
longer required.
"""

import os
import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent / "src")

if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

_existing = os.environ.get("PYTHONPATH", "")
if _SRC not in _existing.split(os.pathsep):
    os.environ["PYTHONPATH"] = (
        _SRC + os.pathsep + _existing if _existing else _SRC
    )
