"""Repo-root pytest bootstrap: plain ``pytest`` works from a checkout.

Puts ``./src`` on ``sys.path`` for in-process imports and exports it via
``PYTHONPATH`` so subprocess-based tests (the examples smoke suite) and
any tooling the tests shell out to inherit the same import path.  This
mirrors what CI runs; ``PYTHONPATH=src`` remains equivalent but is no
longer required.
"""

import os
import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent / "src")

if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

_existing = os.environ.get("PYTHONPATH", "")
if _SRC not in _existing.split(os.pathsep):
    os.environ["PYTHONPATH"] = (
        _SRC + os.pathsep + _existing if _existing else _SRC
    )


def pytest_addoption(parser):
    """Absorb the ``timeout`` ini key when pytest-timeout is absent.

    CI installs pytest-timeout (requirements-dev.txt) so hung workers
    fail fast; a local environment without the plugin would otherwise
    warn about the unknown ini option in pytest.ini.  Registering it as
    a no-op keeps plain ``pytest`` quiet while changing nothing when
    the real plugin is present (it registers the key itself first).
    """
    try:
        import pytest_timeout  # noqa: F401
    except ImportError:
        parser.addini(
            "timeout",
            "no-op fallback for the pytest-timeout ini key",
            default=None,
        )
