"""QNN model zoo: encoders, trainable-layer design spaces and architectures."""

from repro.qnn.encoders import (
    EncoderSpec,
    image_4x4_encoder,
    image_6x6_encoder,
    vowel_encoder,
    reupload_encoder,
    scalar_pair_encoder,
    encoder_for_features,
)
from repro.qnn.layers import DESIGN_SPACES, design_space
from repro.qnn.model import QNN, QNNArchitecture, head_matrix, paper_model

__all__ = [
    "EncoderSpec",
    "image_4x4_encoder",
    "image_6x6_encoder",
    "vowel_encoder",
    "reupload_encoder",
    "scalar_pair_encoder",
    "encoder_for_features",
    "DESIGN_SPACES",
    "design_space",
    "QNN",
    "QNNArchitecture",
    "head_matrix",
    "paper_model",
]
