"""QNN architectures: blocks of encoder + trainable layers + measurement.

Figure 2 of the paper: a QNN is a cascade of blocks.  Block 0 encodes the
classical features (image pixels / vowel PCA components); each subsequent
block re-encodes the previous block's (normalized, quantized) measurement
outcomes with RY gates.  Every block ends in a Pauli-Z measurement of all
qubits.

Naming follows the paper: "2B x 12L on Santiago" is
``QNNArchitecture(n_qubits=4, n_blocks=2, n_layers=12)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import Circuit
from repro.qnn.encoders import EncoderSpec, encoder_for_features, reupload_encoder
from repro.qnn.layers import design_space
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class QNNArchitecture:
    """Hyper-structure of a QNN model.

    ``n_features`` is the raw input dimension consumed by block 0 (16 for
    4x4 images, 36 for 6x6, 10 for vowel); later blocks always consume
    ``n_qubits`` re-uploaded values.
    """

    n_qubits: int
    n_blocks: int
    n_layers: int
    n_features: int
    n_classes: int
    design: str = "u3cu3"

    def __post_init__(self) -> None:
        if self.n_blocks < 1 or self.n_layers < 1:
            raise ValueError("need at least one block and one layer")
        if self.n_classes < 2:
            raise ValueError("need at least two classes")
        if self.n_classes > 2 and self.n_classes > self.n_qubits:
            raise ValueError(
                f"{self.n_classes}-class head needs >= {self.n_classes} qubits"
            )
        design_space(self.design)  # validate the name eagerly

    @property
    def label(self) -> str:
        return f"{self.n_blocks}B x {self.n_layers}L ({self.design})"


class QNN:
    """A concrete QNN: per-block circuits plus weight bookkeeping.

    Each block's circuit indexes its trainable weights locally from 0;
    :attr:`weight_slices` maps block-local weights into the single global
    weight vector that the optimizer updates.
    """

    def __init__(self, arch: QNNArchitecture):
        self.arch = arch
        self.blocks: "list[Circuit]" = []
        self.encoders: "list[EncoderSpec]" = []
        self.weight_slices: "list[slice]" = []
        #: Derived circuits (folded / repeated blocks) memoized per
        #: (kind, block, count).  Returning the *same* Circuit object on
        #: repeat lets downstream caches -- the statevector BindPlan, the
        #: transpile cache ZNE sweeps attach -- survive across calls
        #: instead of being rebuilt every extrapolation step.
        self._derived: "dict[tuple[str, int, int], Circuit]" = {}
        offset = 0
        builder = design_space(arch.design)
        for b in range(arch.n_blocks):
            if b == 0:
                encoder = encoder_for_features(arch.n_features, arch.n_qubits)
            else:
                encoder = reupload_encoder(arch.n_qubits)
            circuit = Circuit(arch.n_qubits)
            encoder.append_to(circuit)
            w = 0
            for _layer in range(arch.n_layers):
                w = builder(circuit, w)
            self.blocks.append(circuit)
            self.encoders.append(encoder)
            self.weight_slices.append(slice(offset, offset + w))
            offset += w
        self.n_weights = offset

    @property
    def n_qubits(self) -> int:
        return self.arch.n_qubits

    @property
    def n_blocks(self) -> int:
        return self.arch.n_blocks

    def block_weights(self, weights: np.ndarray, block: int) -> np.ndarray:
        """Slice the global weight vector for one block."""
        return weights[self.weight_slices[block]]

    def init_weights(
        self, rng: "int | np.random.Generator | None" = None, scale: float = 0.3
    ) -> np.ndarray:
        """Gaussian initialization of all rotation angles."""
        rng = as_rng(rng)
        return rng.normal(0.0, scale, size=self.n_weights)

    def folded_block(self, block: int, n_folds: int) -> Circuit:
        """Function-preserving noise amplification: U (U^dag U)^k.

        Folds only the *trainable* part (the encoder stays single), giving
        layer-count multiples 1x, 3x, 5x, ... -- the knob zero-noise
        extrapolation turns (paper Table 4).
        """
        if n_folds < 0:
            raise ValueError("n_folds must be >= 0")
        cached = self._derived.get(("fold", block, n_folds))
        if cached is not None:
            return cached
        circuit = self.blocks[block]
        n_encoder_gates = self.encoders[block].n_inputs
        encoder_part = Circuit(circuit.n_qubits, circuit.gates[:n_encoder_gates])
        trainable_part = Circuit(circuit.n_qubits, circuit.gates[n_encoder_gates:])
        folded = encoder_part.copy()
        folded.extend(trainable_part)
        inverse = trainable_part.inverse()
        for _ in range(n_folds):
            folded.extend(inverse)
            folded.extend(trainable_part)
        self._derived[("fold", block, n_folds)] = folded
        return folded

    def repeated_block(self, block: int, n_repeats: int) -> Circuit:
        """Literal layer repetition (weights shared), as described in
        Table 4: "repeat the 3 layers to 6, 9, 12 layers".

        Unlike folding this changes the computed function; it is used only
        to scale noise for std-extrapolation, never for classification.
        """
        if n_repeats < 1:
            raise ValueError("n_repeats must be >= 1")
        cached = self._derived.get(("repeat", block, n_repeats))
        if cached is not None:
            return cached
        circuit = self.blocks[block]
        n_encoder_gates = self.encoders[block].n_inputs
        encoder_part = Circuit(circuit.n_qubits, circuit.gates[:n_encoder_gates])
        trainable_part = Circuit(circuit.n_qubits, circuit.gates[n_encoder_gates:])
        repeated = encoder_part.copy()
        for _ in range(n_repeats):
            repeated.extend(trainable_part)
        self._derived[("repeat", block, n_repeats)] = repeated
        return repeated


def head_matrix(n_classes: int, n_qubits: int) -> np.ndarray:
    """Classification head: ``logits = expectations @ head.T``.

    * 2-class: sum the first and second half of the qubits ("we sum the
      qubit 0 and 1, 2 and 3 measurement outcomes"),
    * 4/10-class: softmax directly on the first ``n_classes`` outcomes.
    """
    if n_classes == 2:
        head = np.zeros((2, n_qubits))
        half = n_qubits // 2
        head[0, :half] = 1.0
        head[1, half : 2 * (n_qubits // 2)] = 1.0
        return head
    if n_classes > n_qubits:
        raise ValueError(f"{n_classes} classes need >= {n_classes} qubits")
    head = np.zeros((n_classes, n_qubits))
    head[np.arange(n_classes), np.arange(n_classes)] = 1.0
    return head


# -- paper model shorthands ---------------------------------------------------


def paper_model(
    task_qubits: int,
    n_blocks: int,
    n_layers: int,
    n_features: int,
    n_classes: int,
    design: str = "u3cu3",
) -> QNN:
    """Build a QNN with the paper's naming convention (e.g. 2B x 12L)."""
    arch = QNNArchitecture(
        n_qubits=task_qubits,
        n_blocks=n_blocks,
        n_layers=n_layers,
        n_features=n_features,
        n_classes=n_classes,
        design=design,
    )
    return QNN(arch)
