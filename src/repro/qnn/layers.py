"""Trainable-layer design spaces (paper Table 2 + Section 4.1).

Each builder appends one *layer* of its design space to a circuit,
allocating trainable weights sequentially from a running offset, and
returns the new offset.  The spaces:

* ``u3cu3``  -- U3 on every qubit + CU3 ring (the paper's default,
  "U3 and CU3 layers interleaved as in Figure 2"),
* ``zz_ry``  -- ZZ ring with ring connections + RY layer [17],
* ``rxyz``   -- sqrt(H), RX, RY, RZ, CZ ring [20],
* ``zx_xx``  -- ZX ring + XX ring [5],
* ``rxyz_u1_cu3`` -- RX, S, CNOT, RY, T, SWAP, RZ, H, sqrt(SWAP), U1, CU3
  (the random-circuit basis of [7]),
* ``ry_cnot`` -- RY per qubit + CNOT chain (Table 3's minimal model).
"""

from __future__ import annotations

from typing import Callable

from repro.circuits.circuit import Circuit
from repro.circuits.parameters import ParamExpr


def _ring(n_qubits: int) -> "list[tuple[int, int]]":
    """Ring connections (i, i+1 mod n); a single pair when n == 2."""
    if n_qubits < 2:
        return []
    if n_qubits == 2:
        return [(0, 1)]
    return [(i, (i + 1) % n_qubits) for i in range(n_qubits)]


def _chain(n_qubits: int) -> "list[tuple[int, int]]":
    return [(i, i + 1) for i in range(n_qubits - 1)]


def _w(index: int) -> ParamExpr:
    return ParamExpr.weight(index)


def u3cu3_layer(circuit: Circuit, w0: int) -> int:
    """U3 on all qubits, then CU3 along the ring: 3n + 3|ring| weights."""
    n = circuit.n_qubits
    w = w0
    for q in range(n):
        circuit.add("u3", q, _w(w), _w(w + 1), _w(w + 2))
        w += 3
    for a, b in _ring(n):
        circuit.add("cu3", (a, b), _w(w), _w(w + 1), _w(w + 2))
        w += 3
    return w


def zz_ry_layer(circuit: Circuit, w0: int) -> int:
    """ZZ ring (trainable angles) + RY layer."""
    n = circuit.n_qubits
    w = w0
    for a, b in _ring(n):
        circuit.add("rzz", (a, b), _w(w))
        w += 1
    for q in range(n):
        circuit.add("ry", q, _w(w))
        w += 1
    return w


def rxyz_layer(circuit: Circuit, w0: int) -> int:
    """sqrt(H), RX, RY, RZ, CZ ring -- five sub-layers."""
    n = circuit.n_qubits
    w = w0
    for q in range(n):
        circuit.add("sh", q)
    for gate in ("rx", "ry", "rz"):
        for q in range(n):
            circuit.add(gate, q, _w(w))
            w += 1
    for a, b in _ring(n):
        circuit.add("cz", (a, b))
    return w


def zx_xx_layer(circuit: Circuit, w0: int) -> int:
    """ZX ring + XX ring, both with trainable angles."""
    n = circuit.n_qubits
    w = w0
    for a, b in _ring(n):
        circuit.add("rzx", (a, b), _w(w))
        w += 1
    for a, b in _ring(n):
        circuit.add("rxx", (a, b), _w(w))
        w += 1
    return w


def rxyz_u1_cu3_layer(circuit: Circuit, w0: int) -> int:
    """11 sub-layers: RX, S, CNOT, RY, T, SWAP, RZ, H, sqrt(SWAP), U1, CU3."""
    n = circuit.n_qubits
    w = w0
    for q in range(n):
        circuit.add("rx", q, _w(w))
        w += 1
    for q in range(n):
        circuit.add("s", q)
    for a, b in _ring(n):
        circuit.add("cx", (a, b))
    for q in range(n):
        circuit.add("ry", q, _w(w))
        w += 1
    for q in range(n):
        circuit.add("t", q)
    for a, b in _chain(n):
        if a % 2 == 0:
            circuit.add("swap", (a, b))
    for q in range(n):
        circuit.add("rz", q, _w(w))
        w += 1
    for q in range(n):
        circuit.add("h", q)
    for a, b in _chain(n):
        if a % 2 == 1:
            circuit.add("sqswap", (a, b))
    for q in range(n):
        circuit.add("u1", q, _w(w))
        w += 1
    for a, b in _ring(n):
        circuit.add("cu3", (a, b), _w(w), _w(w + 1), _w(w + 2))
        w += 3
    return w


def ry_cnot_layer(circuit: Circuit, w0: int) -> int:
    """RY on each qubit + CNOT chain (Table 3 minimal architecture)."""
    n = circuit.n_qubits
    w = w0
    for q in range(n):
        circuit.add("ry", q, _w(w))
        w += 1
    for a, b in _chain(n):
        circuit.add("cx", (a, b))
    return w


LayerBuilder = Callable[[Circuit, int], int]

DESIGN_SPACES: "dict[str, LayerBuilder]" = {
    "u3cu3": u3cu3_layer,
    "zz_ry": zz_ry_layer,
    "rxyz": rxyz_layer,
    "zx_xx": zx_xx_layer,
    "rxyz_u1_cu3": rxyz_u1_cu3_layer,
    "ry_cnot": ry_cnot_layer,
}


def design_space(name: str) -> LayerBuilder:
    """Look up a design-space layer builder by name."""
    try:
        return DESIGN_SPACES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown design space {name!r}; available: {sorted(DESIGN_SPACES)}"
        ) from None
