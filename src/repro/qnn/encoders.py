"""Input encoders: classical values -> rotation angles (paper Section 3).

Each encoder is a list of ``(gate_name, qubit)`` slots; slot ``j`` encodes
input feature ``x[j]`` as that gate's rotation angle.  The paper's three
first-block encoders:

* 4x4 images (16 features, 4 qubits): 4 layers of RY, RX, RZ, RY,
* 6x6 images (36 features, 10 qubits): 10 RY, 10 RX, 10 RZ, 6 RY,
* Vowel (10 features, 4 qubits): 4 RY, 4 RX, 2 RZ.

Re-uploading blocks (block 2+) encode the previous block's measurement
outcomes with one RY per qubit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import Circuit
from repro.circuits.parameters import ParamExpr


@dataclass(frozen=True)
class EncoderSpec:
    """An ordered list of encoding gates; slot j consumes feature x[j]."""

    n_qubits: int
    slots: "tuple[tuple[str, int], ...]"

    @property
    def n_inputs(self) -> int:
        return len(self.slots)

    def append_to(self, circuit: Circuit) -> None:
        """Append encoding gates; feature j binds as ParamExpr.input(j)."""
        if circuit.n_qubits != self.n_qubits:
            raise ValueError(
                f"encoder built for {self.n_qubits} qubits, "
                f"circuit has {circuit.n_qubits}"
            )
        for j, (gate, qubit) in enumerate(self.slots):
            circuit.add(gate, qubit, ParamExpr.input(j))


def _layered(n_qubits: int, plan: "list[tuple[str, int]]") -> EncoderSpec:
    """Build slots from a plan of (gate_name, how_many_qubits) layers."""
    slots: "list[tuple[str, int]]" = []
    for gate, count in plan:
        if count > n_qubits:
            raise ValueError(f"layer of {count} gates exceeds {n_qubits} qubits")
        slots.extend((gate, q) for q in range(count))
    return EncoderSpec(n_qubits, tuple(slots))


def image_4x4_encoder() -> EncoderSpec:
    """16 pixels on 4 qubits: RY x4, RX x4, RZ x4, RY x4 (paper Sec. 4.1)."""
    return _layered(4, [("ry", 4), ("rx", 4), ("rz", 4), ("ry", 4)])


def image_6x6_encoder() -> EncoderSpec:
    """36 pixels on 10 qubits: RY x10, RX x10, RZ x10, RY x6."""
    return _layered(10, [("ry", 10), ("rx", 10), ("rz", 10), ("ry", 6)])


def vowel_encoder() -> EncoderSpec:
    """10 PCA features on 4 qubits: RY x4, RX x4, RZ x2."""
    return _layered(4, [("ry", 4), ("rx", 4), ("rz", 2)])


def reupload_encoder(n_qubits: int) -> EncoderSpec:
    """One RY per qubit: encodes the previous block's outcomes."""
    return _layered(n_qubits, [("ry", n_qubits)])


def scalar_pair_encoder() -> EncoderSpec:
    """Two features on two qubits (Table 3's minimal 2-class task)."""
    return _layered(2, [("ry", 2)])


def encoder_for_features(n_features: int, n_qubits: int) -> EncoderSpec:
    """Choose the paper's encoder matching a feature/qubit combination."""
    if (n_features, n_qubits) == (16, 4):
        return image_4x4_encoder()
    if (n_features, n_qubits) == (36, 10):
        return image_6x6_encoder()
    if (n_features, n_qubits) == (10, 4):
        return vowel_encoder()
    if (n_features, n_qubits) == (2, 2):
        return scalar_pair_encoder()
    if n_features == n_qubits:
        return reupload_encoder(n_qubits)
    # Generic fallback: cycle RY/RX/RZ layers until all features encoded.
    plan: "list[tuple[str, int]]" = []
    remaining = n_features
    gates = ("ry", "rx", "rz")
    i = 0
    while remaining > 0:
        take = min(n_qubits, remaining)
        plan.append((gates[i % 3], take))
        remaining -= take
        i += 1
    return _layered(n_qubits, plan)
