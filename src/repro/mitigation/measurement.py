"""Measurement (readout) error mitigation.

The inverse of the noise-*injection* story: where QuantumNAT emulates
readout confusion during training, readout mitigation removes it from
deployment results.  Per-qubit confusion matrices (from the noise model
or a :func:`repro.characterization.calibrate_readout` run) act on the
joint distribution as a tensor product, so the correction also factors
per qubit:

* ``method='inverse'`` applies each qubit's inverse confusion matrix --
  unbiased but can produce (small) negative quasi-probabilities;
* ``method='least_squares'`` projects onto the probability simplex by
  constrained least squares -- biased but always a valid distribution.

For QNN pipelines that only consume per-qubit <Z>,
:func:`mitigate_expectations` inverts the per-qubit affine map directly.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import lsq_linear

from repro.noise.readout import readout_affine
from repro.utils.linalg import kron_all


def mitigate_expectations(
    expectations: np.ndarray, readout: np.ndarray
) -> np.ndarray:
    """Invert the per-qubit affine readout map on <Z> values.

    ``expectations`` is ``(batch, n_qubits)``; ``readout`` the matching
    ``(n_qubits, 2, 2)`` confusion matrices.  Inverse of
    :func:`repro.noise.readout.apply_readout_to_expectations`.
    """
    expectations = np.asarray(expectations, dtype=float)
    n_qubits = expectations.shape[1]
    out = np.empty_like(expectations)
    for q in range(n_qubits):
        scale, shift = readout_affine(readout[q])
        if abs(scale) < 1e-9:
            raise ValueError(
                f"qubit {q} readout is non-invertible (assignment ~50/50)"
            )
        out[:, q] = (expectations[:, q] - shift) / scale
    return out


def _per_qubit_inverse(probs: np.ndarray, readout: np.ndarray) -> np.ndarray:
    """Apply each qubit's inverse confusion matrix along its bit axis."""
    batch, dim = probs.shape
    n_qubits = dim.bit_length() - 1
    out = probs
    for q in range(n_qubits):
        inv = np.linalg.inv(readout[q])
        reshaped = out.reshape(batch, dim // (2 ** (q + 1)), 2, 2**q)
        measured0 = reshaped[:, :, 0, :]
        measured1 = reshaped[:, :, 1, :]
        fixed = np.empty_like(reshaped)
        # inv maps measured -> true: true_t = sum_m inv[m, t]... careful:
        # forward was P'(m) = sum_t P(t) M[t, m]; inverse uses M^-1 as
        # P(t) = sum_m P'(m) Minv[m, t].
        fixed[:, :, 0, :] = inv[0, 0] * measured0 + inv[1, 0] * measured1
        fixed[:, :, 1, :] = inv[0, 1] * measured0 + inv[1, 1] * measured1
        out = fixed.reshape(batch, dim)
    return out


def full_confusion_matrix(readout: np.ndarray) -> np.ndarray:
    """Joint ``(2^n, 2^n)`` confusion matrix ``A[true, measured]``.

    Tensor product of the per-qubit matrices; row-stochastic.  Qubit 0
    is the least-significant bit of the joint index, so the Kronecker
    product runs from the highest qubit down.
    """
    readout = np.asarray(readout, dtype=float)
    return kron_all([readout[q] for q in reversed(range(readout.shape[0]))])


def mitigate_probabilities(
    probs: np.ndarray,
    readout: np.ndarray,
    method: str = "inverse",
) -> np.ndarray:
    """Undo readout confusion on joint outcome distributions.

    ``probs`` is ``(batch, 2^n)`` measured frequencies; ``readout`` the
    per-qubit confusion matrices.  Returns corrected distributions
    (rows summing to 1; 'inverse' may contain negative entries).
    """
    probs = np.asarray(probs, dtype=float)
    if probs.ndim != 2:
        raise ValueError(f"probs must be (batch, 2^n), got {probs.shape}")
    dim = probs.shape[1]
    n_qubits = dim.bit_length() - 1
    if 2**n_qubits != dim:
        raise ValueError(f"dimension {dim} is not a power of two")
    if readout.shape != (n_qubits, 2, 2):
        raise ValueError(
            f"readout shape {readout.shape} does not match {n_qubits} qubits"
        )

    if method == "inverse":
        return _per_qubit_inverse(probs, readout)
    if method == "least_squares":
        # Solve min || A^T p - q ||^2 with 0 <= p <= 1, then renormalize.
        design = full_confusion_matrix(readout).T
        out = np.empty_like(probs)
        for b in range(probs.shape[0]):
            result = lsq_linear(design, probs[b], bounds=(0.0, 1.0))
            p = result.x
            total = p.sum()
            out[b] = p / total if total > 0 else np.full(dim, 1.0 / dim)
        return out
    raise ValueError(f"unknown method {method!r}; use 'inverse' or 'least_squares'")
