"""Zero-noise extrapolation (ZNE) of expectation values.

The paper's Table 4 uses a std-extrapolation variant tailored to
QuantumNAT's normalization (see :mod:`repro.mitigation.extrapolation`);
this module implements the *general* Temme-style ZNE it descends from:
run the same circuit at amplified noise levels and extrapolate each
expectation value back to the zero-noise limit.

Noise amplification uses unitary folding, ``U -> U (U^dag U)^k``, which
preserves the function while multiplying depth (and hence accumulated
noise) by an odd factor; fractional scales fold only a suffix of the
gate list.  Extrapolators: linear least squares, Richardson (exact
polynomial through all points) and a saturating exponential fit.
"""

from __future__ import annotations

import warnings
from typing import Callable

import numpy as np
from scipy.optimize import OptimizeWarning, curve_fit

from repro.circuits.circuit import Circuit

Runner = Callable[[Circuit], np.ndarray]


def fold_circuit(circuit: Circuit, scale: float) -> Circuit:
    """Depth-amplified, function-preserving copy of ``circuit``.

    ``scale`` >= 1 is the target depth multiplier.  Whole numbers of
    ``U^dag U`` pairs come from global folding; any remainder folds the
    trailing gates individually (``g -> g g^dag g``), so the effective
    scale is the closest achievable ``(len + 2*folded) / len``.
    """
    if scale < 1.0:
        raise ValueError(f"fold scale must be >= 1, got {scale}")
    folded = circuit.copy()
    n_global = int((scale - 1.0) // 2.0)
    for _ in range(n_global):
        folded.extend(circuit.inverse())
        folded.extend(circuit)
    achieved = 1.0 + 2.0 * n_global
    if len(circuit) == 0:
        return folded
    # Remaining fractional scale via per-gate folding of a suffix.
    remainder = scale - achieved
    n_gates = int(round(remainder * len(circuit) / 2.0))
    n_gates = min(n_gates, len(circuit))
    if n_gates > 0:
        suffix = Circuit(circuit.n_qubits, list(circuit.gates[-n_gates:]))
        folded.extend(suffix.inverse())
        folded.extend(suffix)
    return folded


def achieved_scale(circuit: Circuit, folded: Circuit) -> float:
    """The realized depth multiplier of a folded circuit."""
    if len(circuit) == 0:
        return 1.0
    return len(folded) / len(circuit)


def cached_fold(circuit: Circuit, scale: float) -> Circuit:
    """:func:`fold_circuit` memoized on the circuit, per scale.

    Repeated ZNE sweeps over the same circuit then reuse the *same*
    folded circuit objects -- which is what lets the execution-side
    caches attached to them (statevector bind plans, trajectory segment
    plans, density superoperator plans) survive across calls instead of
    being rebuilt per sweep.  Staleness follows the bind-plan
    convention: entries are invalidated when the circuit's gate *list*
    (identity or length) changes, not just its length.
    """
    cache = getattr(circuit, "_fold_cache", None)
    if cache is None:
        cache = circuit._fold_cache = {}
    key = float(scale)
    entry = cache.get(key)
    if entry is not None:
        gates_ref, n_gates, folded = entry
        if gates_ref is circuit.gates and n_gates == len(circuit.gates):
            return folded
    folded = fold_circuit(circuit, scale)
    cache[key] = (circuit.gates, len(circuit.gates), folded)
    return folded


# -- extrapolators -----------------------------------------------------------------


def linear_zero(scales: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Least-squares linear fit evaluated at scale 0."""
    scales = np.asarray(scales, dtype=float)
    values = np.asarray(values, dtype=float)
    design = np.stack([scales, np.ones_like(scales)], axis=1)
    coef, *_ = np.linalg.lstsq(design, values, rcond=None)
    return coef[1]


def richardson_zero(scales: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Richardson extrapolation: the degree-(n-1) polynomial at 0.

    Exact when the noise response really is polynomial of that degree;
    aggressive (high variance) otherwise -- the classic ZNE tradeoff.
    """
    scales = np.asarray(scales, dtype=float)
    values = np.asarray(values, dtype=float)
    if len(set(scales.tolist())) != scales.size:
        raise ValueError("Richardson extrapolation needs distinct scales")
    total = np.zeros(values.shape[1:] if values.ndim > 1 else ())
    for i, x_i in enumerate(scales):
        weight = 1.0
        for j, x_j in enumerate(scales):
            if i != j:
                weight *= x_j / (x_j - x_i)
        total = total + weight * values[i]
    return total


def exponential_zero(scales: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Fit ``y = a + b exp(-c x)`` per column; evaluate at 0.

    Matches the physical saturation of Pauli noise (expectations decay
    toward a fixed point as depth grows).  Falls back to the linear
    extrapolator when the fit does not converge.
    """
    scales = np.asarray(scales, dtype=float)
    values = np.asarray(values, dtype=float)
    flat = values.reshape(len(scales), -1)
    out = np.empty(flat.shape[1])

    def model(x, a, b, c):
        return a + b * np.exp(-c * x)

    for col in range(flat.shape[1]):
        y = flat[:, col]
        spread = float(np.max(np.abs(y))) or 1.0
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", OptimizeWarning)
                # Bound the fit to genuine decays (c >= 0) with bounded
                # amplitude, otherwise near-flat data lets the optimizer
                # run off to enormous extrapolations.
                popt, _ = curve_fit(
                    model,
                    scales,
                    y,
                    p0=(float(y[-1]), float(y[0] - y[-1]), 0.1),
                    bounds=(
                        [-4 * spread, -4 * spread, 0.0],
                        [4 * spread, 4 * spread, 20.0],
                    ),
                    maxfev=5000,
                )
            out[col] = model(0.0, *popt)
        except RuntimeError:
            out[col] = np.atleast_1d(linear_zero(scales, y))[()]
    return out.reshape(values.shape[1:]) if values.ndim > 1 else float(out[0])


_EXTRAPOLATORS = {
    "linear": linear_zero,
    "richardson": richardson_zero,
    "exponential": exponential_zero,
}


def zne_expectations(
    run: Runner,
    circuit: Circuit,
    scales: "tuple[float, ...]" = (1.0, 2.0, 3.0),
    method: str = "linear",
) -> np.ndarray:
    """Zero-noise-extrapolated expectations for a circuit.

    ``run(circuit)`` executes one circuit on the noisy backend and
    returns an expectation array (any shape, as long as it is consistent
    across calls).  The same circuit is executed once per noise scale;
    the chosen extrapolator combines the results.
    """
    if method not in _EXTRAPOLATORS:
        raise ValueError(
            f"unknown method {method!r}; choose from {sorted(_EXTRAPOLATORS)}"
        )
    if len(scales) < 2:
        raise ValueError("ZNE needs at least two noise scales")
    realized = []
    results = []
    for scale in scales:
        # Folded circuits are memoized per (scale, length): repeated ZNE
        # sweeps hand the runner identical circuit objects, so the noisy
        # backends' per-circuit plans (segment fusion, superoperators)
        # are reused across every fold of every call.
        folded = cached_fold(circuit, scale)
        realized.append(achieved_scale(circuit, folded))
        results.append(np.asarray(run(folded), dtype=float))
    values = np.stack(results)
    return _EXTRAPOLATORS[method](np.asarray(realized), values)
