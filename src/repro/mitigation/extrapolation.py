"""Zero-noise extrapolation of measurement statistics (paper Table 4).

The extrapolation baseline [23] is *orthogonal* to QuantumNAT: the paper
combines it with post-measurement normalization by

1. repeating a block's trainable layers k = 1, 2, 3, 4 times (scaling
   the accumulated noise roughly linearly with depth),
2. measuring the std of the measurement outcomes at each repetition,
3. linearly extrapolating std vs. k back to k = 0: the noise-free std,
4. rescaling the noisy outcomes so their std matches the extrapolated
   noise-free value, then applying post-measurement normalization.

Both literal layer repetition (the paper's wording) and function-
preserving folding ``U (U^dag U)^k`` are supported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compiler.passes import transpile
from repro.core.pipeline import QuantumNATModel


def linear_extrapolate_to_zero(xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Least-squares line through (xs, ys[:, q]) evaluated at x = 0.

    ``ys`` may be 1-D or (len(xs), n_qubits); returns the intercept(s).
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.ndim != 1 or len(xs) < 2:
        raise ValueError("need at least two noise-scale points")
    design = np.stack([xs, np.ones_like(xs)], axis=1)
    coef, *_ = np.linalg.lstsq(design, ys, rcond=None)
    return coef[1]


@dataclass
class ExtrapolationResult:
    """Measured stds per repetition and the zero-noise estimate."""

    repeats: np.ndarray
    stds: np.ndarray  # (n_repeats, n_qubits)
    extrapolated_std: np.ndarray  # (n_qubits,)


def extrapolate_noise_free_std(
    model: QuantumNATModel,
    weights: np.ndarray,
    inputs: np.ndarray,
    executor_factory,
    block: int = 0,
    repeats: "tuple[int, ...]" = (1, 2, 3, 4),
    mode: str = "repeat",
) -> ExtrapolationResult:
    """Estimate a block's noise-free outcome std by depth scaling.

    ``executor_factory(compiled)`` must return expectations
    ``(batch, n_qubits)`` when called as ``f(compiled, weights, inputs)``
    -- typically a closure over a noisy evaluation backend.
    ``mode='repeat'`` literally repeats the trainable layers (paper
    wording: "repeat the 3 layers to 6, 9, 12 layers"); ``mode='fold'``
    uses function-preserving folding with odd depth multiples.
    """
    if mode not in ("repeat", "fold"):
        raise ValueError("mode must be 'repeat' or 'fold'")
    w_local = model.qnn.block_weights(weights, block)
    stds = []
    scaled_depths = []
    for k in repeats:
        if mode == "repeat":
            circuit = model.qnn.repeated_block(block, k)
            depth_scale = k
        else:
            circuit = model.qnn.folded_block(block, k - 1)
            depth_scale = 2 * (k - 1) + 1
        # The QNN memoizes derived circuits, so repeated extrapolation
        # sweeps (drift-adaptation loops re-estimate every step) see the
        # same circuit objects and can reuse their compilations.  The
        # cache lives on the *model*: a model's device (and thus layout,
        # coupling and calibration) is fixed for its lifetime, and
        # calibration refreshes build a new model via adapt_model, so
        # entries can never go stale -- at any optimization level.
        cache = getattr(model, "_zne_transpile_cache", None)
        if cache is None:
            cache = model._zne_transpile_cache = {}
        key = (id(circuit), model.optimization_level)
        entry = cache.get(key)
        # The entry pins the source circuit, so an id() can never be
        # recycled by a new object while its cache row is alive.
        if entry is None or entry[0] is not circuit:
            entry = (circuit, transpile(circuit, model.device, model.optimization_level))
            cache[key] = entry
        compiled = entry[1]
        expectations = executor_factory(compiled, w_local, inputs)
        stds.append(expectations.std(axis=0))
        scaled_depths.append(depth_scale)
    stds = np.stack(stds)
    extrapolated = linear_extrapolate_to_zero(np.asarray(scaled_depths, float), stds)
    extrapolated = np.clip(extrapolated, 1e-4, None)
    return ExtrapolationResult(np.asarray(scaled_depths), stds, extrapolated)


def rescale_to_extrapolated_std(
    outcomes: np.ndarray, extrapolated_std: np.ndarray
) -> np.ndarray:
    """Rescale noisy outcomes so each qubit's std matches the estimate.

    Centering is preserved; the paper then applies post-measurement
    normalization on top.
    """
    outcomes = np.asarray(outcomes, dtype=float)
    mean = outcomes.mean(axis=0, keepdims=True)
    std = outcomes.std(axis=0, keepdims=True) + 1e-8
    return mean + (outcomes - mean) * (extrapolated_std[None, :] / std)
