"""Orthogonal noise-mitigation baselines.

Std-extrapolation (the paper's Table 4 variant), general zero-noise
extrapolation with unitary folding, and readout-error mitigation.
"""

from repro.mitigation.extrapolation import (
    linear_extrapolate_to_zero,
    extrapolate_noise_free_std,
    rescale_to_extrapolated_std,
    ExtrapolationResult,
)
from repro.mitigation.measurement import (
    full_confusion_matrix,
    mitigate_expectations,
    mitigate_probabilities,
)
from repro.mitigation.zne import (
    achieved_scale,
    cached_fold,
    exponential_zero,
    fold_circuit,
    linear_zero,
    richardson_zero,
    zne_expectations,
)

__all__ = [
    "linear_extrapolate_to_zero",
    "extrapolate_noise_free_std",
    "rescale_to_extrapolated_std",
    "ExtrapolationResult",
    "fold_circuit",
    "cached_fold",
    "achieved_scale",
    "linear_zero",
    "richardson_zero",
    "exponential_zero",
    "zne_expectations",
    "mitigate_expectations",
    "mitigate_probabilities",
    "full_confusion_matrix",
]
