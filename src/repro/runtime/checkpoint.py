"""Atomic training checkpoints with bit-identical resume.

A killed training run used to lose everything; with checkpointing, the
loop persists its complete state at epoch boundaries and
``train(resume=...)`` continues as if the interruption never happened
-- *bit-identically*: the resumed run's final weights equal the
uninterrupted run's, which the runtime test suite asserts.

Bit-identity requires capturing every stochastic and stateful input to
the remaining epochs:

* the current **weights** (and the best-validation weights/loss/acc
  tracked for model selection);
* the **optimizer state** -- Adam's first/second moments and step
  counter (the cosine schedule is a pure function of ``t``);
* every live **RNG state**, by name: the training loop's shuffle
  generator, the model's generator (shared with the swapped training
  executor via :func:`repro.utils.rng.as_rng` passthrough, but captured
  separately in case an executor owns a distinct stream), and the
  validation executor's shot-noise generator;
* the **engine name** -- resuming under a different engine would
  silently change training semantics, so ``train()`` rejects it;
* the **history** so far, so the resumed result's history matches.

The checkpoint file is a pickled, versioned dict written atomically:
payload goes to ``<path>.tmp`` and is ``os.replace``-d into place, so a
crash mid-write leaves the previous checkpoint intact and a reader
never observes a torn file.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "CHECKPOINT_FORMAT",
    "TrainCheckpoint",
    "capture_rng_states",
    "load_checkpoint",
    "restore_rng_states",
    "save_checkpoint",
]

#: Bump when the on-disk layout changes; loaders reject other versions.
CHECKPOINT_FORMAT = 1


@dataclass
class TrainCheckpoint:
    """Complete training-loop state at an epoch boundary.

    ``epoch`` counts *completed* epochs -- resume starts at this epoch
    index.  ``optimizer`` holds Adam's ``{"m", "v", "t"}``;
    ``rng_states`` maps stream names (``"loop"``, ``"model"``,
    ``"train_executor"``, ``"valid_executor"``) to
    ``Generator.bit_generator.state`` dicts.
    """

    epoch: int
    engine: str
    weights: np.ndarray
    optimizer: dict
    rng_states: dict
    best_weights: np.ndarray
    best_loss: float
    best_acc: float
    history: list = field(default_factory=list)


def capture_rng_states(**generators) -> dict:
    """Snapshot named generators' bit-generator states (None skipped)."""
    return {
        name: gen.bit_generator.state
        for name, gen in generators.items()
        if gen is not None
    }


def restore_rng_states(states: dict, **generators) -> None:
    """Restore named generators from :func:`capture_rng_states` output.

    Generators absent from either side are skipped, so callers can pass
    every stream they *might* have and restore whatever was captured.
    """
    for name, gen in generators.items():
        if gen is None or name not in states:
            continue
        gen.bit_generator.state = states[name]


def save_checkpoint(path: str, checkpoint: TrainCheckpoint) -> None:
    """Atomically persist ``checkpoint`` to ``path``.

    Writes to ``<path>.tmp`` then ``os.replace``-s into place: a crash
    mid-write never corrupts an existing checkpoint, and readers always
    see either the old complete file or the new complete file.
    """
    payload = {
        "format": CHECKPOINT_FORMAT,
        "epoch": int(checkpoint.epoch),
        "engine": checkpoint.engine,
        "weights": np.asarray(checkpoint.weights, dtype=float),
        "optimizer": dict(checkpoint.optimizer),
        "rng_states": dict(checkpoint.rng_states),
        "best_weights": np.asarray(checkpoint.best_weights, dtype=float),
        "best_loss": float(checkpoint.best_loss),
        "best_acc": float(checkpoint.best_acc),
        "history": list(checkpoint.history),
    }
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def load_checkpoint(path: str) -> TrainCheckpoint:
    """Load a checkpoint written by :func:`save_checkpoint`."""
    with open(path, "rb") as fh:
        payload = pickle.load(fh)
    fmt = payload.get("format")
    if fmt != CHECKPOINT_FORMAT:
        raise ValueError(
            f"checkpoint {path!r} has format {fmt!r}; "
            f"this build reads format {CHECKPOINT_FORMAT}"
        )
    return TrainCheckpoint(
        epoch=payload["epoch"],
        engine=payload["engine"],
        weights=payload["weights"],
        optimizer=payload["optimizer"],
        rng_states=payload["rng_states"],
        best_weights=payload["best_weights"],
        best_loss=payload["best_loss"],
        best_acc=payload["best_acc"],
        history=payload["history"],
    )
