"""Chunk supervision: deadlines, crash detection, deterministic retry.

The sharded execution paths (:func:`repro.noise.trajectory
.trajectory_probabilities` and the executors built on it) decompose a
sweep into *chunks* whose payloads are pure functions of their inputs:
each chunk owns a ``SeedSequence.spawn``-derived stream, the chunk
layout never depends on the worker count, and results are reduced in
fixed chunk order.  That determinism is what makes supervision cheap
and *exact*: a chunk that timed out, crashed its worker, or came back
corrupted can simply be re-run -- the retry reproduces the identical
payload, so a recovered run is bit-identical to a fault-free one (the
cross-backend and chaos suites assert this).

:class:`ChunkSupervisor` wraps chunk execution with:

* **per-chunk deadlines** -- ``future.result(timeout=...)`` on pooled
  runs (covering queue + run time), post-hoc elapsed checks on serial
  ones;
* **crash detection** -- a worker raising, or a process pool breaking
  under a killed worker, classifies as :class:`WorkerCrash`;
* **payload validation** -- chunks return a CRC32 alongside their
  arrays; a mismatch on receipt classifies as
  :class:`ChunkCorruption`;
* **bounded retry with backoff** -- every fault re-enqueues the chunk
  up to ``max_retries`` times with exponential backoff, then raises
  :class:`RetryExhausted` chained from the terminal fault;
* **graceful pool degradation** -- a broken process pool is rebuilt
  through the caller's ``rebuild`` hook when available, otherwise the
  remaining chunks run serially in the parent under a
  :class:`DegradedExecution` warning.

:meth:`ChunkSupervisor.call` extends the same guarantees to *unchunked*
stochastic executors (e.g. gate-insertion training forwards): it
snapshots the caller's RNG state before each attempt and restores it on
retry, so a retried call consumes the exact same stream the failed
attempt did.

Fault injection (:mod:`repro.runtime.faults`) plugs in here: the
supervisor resolves the ambient/explicit :class:`FaultPlan` into a
picklable :class:`FaultSpec` per (chunk, attempt) in the parent and
ships it with the task, so chaos reaches process workers without any
global state crossing the pickle boundary.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.runtime.errors import (
    ChunkCorruption,
    ChunkFault,
    ChunkTimeout,
    DegradedExecution,
    RetryExhausted,
    WorkerCrash,
)
from repro.runtime.faults import (
    FaultSpec,
    active_fault_plan,
    apply_fault,
    corrupt_payload,
)

__all__ = [
    "ChunkSupervisor",
    "ChunkTask",
    "SupervisionReport",
    "SupervisorConfig",
    "payload_checksum",
]


@dataclass(frozen=True)
class SupervisorConfig:
    """Retry/deadline policy for supervised chunk execution.

    ``max_retries`` bounds *additional* attempts per chunk (total
    attempts = 1 + max_retries).  ``deadline_s`` is the per-chunk
    deadline; ``None`` disables timeout detection.  Backoff before the
    k-th retry is ``backoff_s * backoff_factor**k`` seconds.
    ``checksum`` turns CRC32 payload validation on (the cost is a
    linear pass over each chunk's result array -- noise against the
    statevector sweep that produced it).  ``degrade_to_serial`` lets a
    broken, unrebuildable pool fall back to in-parent serial execution
    instead of failing the run.
    """

    max_retries: int = 2
    deadline_s: "float | None" = 60.0
    backoff_s: float = 0.02
    backoff_factor: float = 2.0
    checksum: bool = True
    degrade_to_serial: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive or None, got {self.deadline_s}"
            )
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )


@dataclass(frozen=True)
class ChunkTask:
    """One supervised unit of work: a deterministic, re-runnable call.

    ``fn(*args)`` must be pure given its arguments (chunk functions
    derive their randomness from shipped seeds, never from ambient
    state), and picklable for process-pool execution.
    """

    index: int
    fn: object
    args: tuple = ()


@dataclass
class SupervisionReport:
    """What one supervised run observed and survived."""

    chunks: int = 0
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    corruptions: int = 0
    #: Fallback hops taken, e.g. ("process-pool", "serial").
    degraded: "tuple[str, ...]" = ()
    faults_injected: int = 0

    def merge_fault(self, fault: ChunkFault) -> None:
        if isinstance(fault, ChunkTimeout):
            self.timeouts += 1
        elif isinstance(fault, ChunkCorruption):
            self.corruptions += 1
        else:
            self.crashes += 1


def payload_checksum(payload) -> int:
    """CRC32 over a chunk payload (an ndarray or a list of ndarrays)."""
    crc = 0
    items = payload if isinstance(payload, list) else [payload]
    for arr in items:
        crc = zlib.crc32(np.ascontiguousarray(arr).tobytes(), crc)
    return crc


def _guarded_call(
    fn,
    args: tuple,
    spec: "FaultSpec | None",
    want_crc: bool,
):
    """Run one chunk attempt (in the worker), returning (payload, crc).

    Raising faults fire before the body; ``"corrupt"`` faults perturb
    the payload *after* its checksum is computed, so validation on the
    receiving side must catch them.  Top-level so process pools can
    pickle it.
    """
    apply_fault(spec)
    payload = fn(*args)
    crc = payload_checksum(payload) if want_crc else None
    if spec is not None and spec.kind == "corrupt":
        payload = corrupt_payload(payload)
    return payload, crc


class ChunkSupervisor:
    """Supervised execution of deterministic chunk tasks.

    One instance may be reused across calls (executors hold one for
    their lifetime); :attr:`last_report` describes the most recent run.
    ``fault_plan`` defaults to the ambient plan installed by
    :func:`repro.runtime.faults.inject_faults` (``None`` outside chaos
    tests -- the supervision fast path then never touches the fault
    machinery).
    """

    def __init__(
        self,
        config: "SupervisorConfig | None" = None,
        fault_plan=None,
        label: str = "chunks",
    ):
        self.config = config or SupervisorConfig()
        self._explicit_plan = fault_plan
        self.label = label
        self.last_report = SupervisionReport()

    # -- fault schedule -----------------------------------------------------

    def _fault_for(self, index: int, attempt: int) -> "FaultSpec | None":
        plan = self._explicit_plan or active_fault_plan()
        if plan is None:
            return None
        spec = plan.fault_for(self.label, index, attempt)
        if spec is not None:
            self.last_report.faults_injected += 1
        return spec

    def _backoff(self, attempt: int) -> None:
        cfg = self.config
        if cfg.backoff_s > 0:
            time.sleep(cfg.backoff_s * cfg.backoff_factor**attempt)

    def _register(self, fault: ChunkFault) -> None:
        """Count a fault and fail hard once the retry budget is spent."""
        report = self.last_report
        report.merge_fault(fault)
        if fault.attempt >= self.config.max_retries:
            raise RetryExhausted(fault.index, fault.attempt + 1) from fault
        report.retries += 1

    # -- public API ---------------------------------------------------------

    def run(
        self,
        tasks: "list[ChunkTask]",
        pool=None,
        rebuild=None,
    ) -> list:
        """Run all tasks under supervision; results in task order.

        ``pool`` is an already-running ``concurrent.futures`` executor
        (thread or process) or ``None`` for serial in-parent execution.
        ``rebuild`` is an optional zero-argument callable returning a
        replacement pool after the current one breaks (process workers
        dying); without one, remaining chunks degrade to serial under a
        :class:`DegradedExecution` warning (``degrade_to_serial``).
        Rebuilt pools are run-scoped: the supervisor shuts them down
        before returning, and callers holding a persistent pool should
        treat a non-empty ``last_report.degraded`` as "my pool is gone,
        recreate lazily".
        """
        self.last_report = SupervisionReport(chunks=len(tasks))
        results: "dict[int, object]" = {}
        queue: "list[tuple[ChunkTask, int]]" = [(t, 0) for t in tasks]
        owned: list = []
        try:
            while queue:
                if pool is None:
                    self._serial_pass(queue, results)
                    queue = []
                else:
                    queue, pool = self._pooled_pass(
                        queue, pool, rebuild, results, owned
                    )
            return [results[t.index] for t in tasks]
        finally:
            for created in owned:
                created.shutdown(wait=False, cancel_futures=True)

    def call(self, fn, *args, rng=None, index: int = 0):
        """One supervised call with RNG-snapshot retry determinism.

        For unchunked stochastic executors: ``fn`` may consume ``rng``;
        the generator's state is snapshotted before every attempt and
        restored on retry, so the successful attempt always sees the
        stream the first attempt saw -- a recovered call is
        bit-identical to a fault-free one.
        """
        snapshot = None if rng is None else rng.bit_generator.state
        self.last_report = SupervisionReport(chunks=1)
        attempt = 0
        while True:
            if rng is not None:
                rng.bit_generator.state = snapshot
            try:
                return self._attempt(
                    ChunkTask(index, fn, tuple(args)), attempt
                )
            except ChunkFault as fault:
                self._register(fault)
                self._backoff(attempt)
                attempt += 1

    # -- serial path --------------------------------------------------------

    def _attempt(self, task: ChunkTask, attempt: int):
        """One in-parent attempt: guarded call + deadline + validation."""
        cfg = self.config
        self.last_report.attempts += 1
        spec = self._fault_for(task.index, attempt)
        start = time.perf_counter()
        try:
            payload, crc = _guarded_call(task.fn, task.args, spec, cfg.checksum)
        except ChunkFault:
            raise
        except BaseException as exc:
            raise WorkerCrash(
                task.index, attempt, f"{type(exc).__name__}: {exc}"
            ) from exc
        elapsed = time.perf_counter() - start
        if cfg.deadline_s is not None and elapsed > cfg.deadline_s:
            # Serial execution cannot preempt; detect the overrun
            # post-hoc so a hung-chunk regression still surfaces as a
            # typed timeout instead of silent slowness.
            raise ChunkTimeout(task.index, attempt, cfg.deadline_s)
        self._validate(payload, crc, task.index, attempt)
        return payload

    def _serial_pass(self, queue, results) -> None:
        for task, first_attempt in queue:
            attempt = first_attempt
            while True:
                try:
                    results[task.index] = self._attempt(task, attempt)
                    break
                except ChunkFault as fault:
                    self._register(fault)
                    self._backoff(attempt)
                    attempt += 1

    # -- pooled path --------------------------------------------------------

    def _pooled_pass(self, queue, pool, rebuild, results, owned):
        """Submit one attempt per queued task; classify every failure.

        Returns ``(retry_queue, pool)``: tasks that faulted re-enter the
        queue with their attempt incremented, and a broken pool comes
        back rebuilt (or ``None`` -- degraded to serial).
        """
        from concurrent.futures import TimeoutError as FuturesTimeout
        from concurrent.futures.process import BrokenProcessPool

        cfg = self.config
        report = self.last_report
        pool_broken = False
        retry: "list[tuple[ChunkTask, int]]" = []
        submitted = []
        for task, attempt in queue:
            report.attempts += 1
            spec = self._fault_for(task.index, attempt)
            future = pool.submit(
                _guarded_call, task.fn, task.args, spec, cfg.checksum
            )
            submitted.append((task, attempt, future))
        max_backoff_attempt = -1
        try:
            for task, attempt, future in submitted:
                if pool_broken:
                    # The pool died under us; everything unharvested gets a
                    # fresh attempt on whatever executes the retry queue.
                    retry.append((task, attempt + 1))
                    continue
                try:
                    payload, crc = future.result(timeout=cfg.deadline_s)
                    self._validate(payload, crc, task.index, attempt)
                    results[task.index] = payload
                    continue
                except ChunkFault as fault:
                    observed = fault
                except FuturesTimeout:
                    future.cancel()
                    observed = ChunkTimeout(task.index, attempt, cfg.deadline_s)
                except BrokenProcessPool as exc:
                    pool_broken = True
                    observed = WorkerCrash(
                        task.index, attempt, f"process pool broke: {exc}"
                    )
                except BaseException as exc:
                    observed = WorkerCrash(
                        task.index, attempt, f"{type(exc).__name__}: {exc}"
                    )
                self._register(observed)
                retry.append((task, attempt + 1))
                max_backoff_attempt = max(max_backoff_attempt, attempt)
        except RetryExhausted:
            # Retries exhausted mid-harvest: cancel the un-harvested
            # sibling futures instead of abandoning them running on the
            # pool (queued work would otherwise execute uselessly after
            # the run has already failed).  Mirrored by the unsupervised
            # sharded dispatch's fail-fast collection.
            for _task, _attempt, future in submitted:
                future.cancel()
            raise
        if max_backoff_attempt >= 0:
            self._backoff(max_backoff_attempt)
        if pool_broken:
            pool = self._recover_pool(pool, rebuild)
            if pool is not None:
                owned.append(pool)
        return retry, pool

    def _recover_pool(self, broken, rebuild):
        """Replace a broken pool: rebuild it, or degrade to serial."""
        import warnings

        try:
            broken.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - defensive cleanup
            pass
        if rebuild is not None:
            try:
                fresh = rebuild()
            except Exception:
                fresh = None
            if fresh is not None:
                self.last_report.degraded += ("pool-rebuilt",)
                return fresh
        if not self.config.degrade_to_serial:
            raise WorkerCrash(
                -1, 0, "process pool broke and no rebuild hook was provided"
            )
        self.last_report.degraded += ("process-pool", "serial")
        warnings.warn(
            DegradedExecution(
                "worker pool broke; remaining chunks run serially "
                "in the parent (results are unaffected: chunk payloads "
                "are worker-independent)",
                ("process-pool", "serial"),
            ),
            stacklevel=3,
        )
        return None

    # -- validation ---------------------------------------------------------

    def _validate(self, payload, crc, index: int, attempt: int) -> None:
        if not self.config.checksum or crc is None:
            return
        if payload_checksum(payload) != crc:
            raise ChunkCorruption(index, attempt)
