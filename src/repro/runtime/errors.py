"""Structured failure taxonomy for the fault-tolerant runtime.

Before this module, execution failures surfaced as whatever the stack
happened to raise: a worker crash as a bare ``BrokenProcessPool``, a
capability miss as an ad-hoc ``ValueError`` assembled at the call site,
a hung chunk as CI stalling until the job timeout.  The runtime layer
(:mod:`repro.runtime.supervisor`, the engine-registry fallback chain)
instead raises *typed* faults so callers can distinguish "retry this"
from "degrade to another backend" from "give up":

* :class:`RuntimeFault` -- common base of every runtime failure.
* :class:`ChunkFault` -- one chunk attempt failed; carries the chunk
  index and attempt number.  Concrete kinds: :class:`ChunkTimeout`
  (deadline exceeded), :class:`WorkerCrash` (the worker raised or the
  pool broke under it), :class:`ChunkCorruption` (the returned payload
  failed checksum validation).
* :class:`RetryExhausted` -- the supervisor's bounded retry budget was
  spent; chains from (``__cause__``) the last :class:`ChunkFault`.
* :class:`EngineUnavailable` -- no registered engine can serve a
  (channel kinds, width) request.  Subclasses ``ValueError`` so
  pre-runtime callers catching the registry's historical error type
  keep working.
* :class:`DegradedExecution` -- a *warning*, not an error: the runtime
  recovered by falling back (``density`` -> ``mcwf``, worker pool ->
  serial) and execution continued on the degraded path.  Carries the
  fallback path so callers and logs can see what actually ran.

The serving layer extends the taxonomy from :mod:`repro.serve.errors`:
``Overloaded`` (backpressure shed), ``CircuitOpen`` (endpoint breaker
open) and ``ServerClosed`` (drained/closed server) all subclass
:class:`RuntimeFault`, so ``except RuntimeFault`` covers front-door
refusals and execution faults alike.
"""

from __future__ import annotations


class RuntimeFault(Exception):
    """Base class for every structured runtime failure."""


class ChunkFault(RuntimeFault):
    """One supervised chunk attempt failed.

    ``index`` is the chunk's position in the task list (its payload is
    deterministic, so the index fully identifies what was being
    computed); ``attempt`` is the 0-based attempt number that failed.
    """

    def __init__(self, message: str, index: int = -1, attempt: int = 0):
        super().__init__(message)
        self.index = index
        self.attempt = attempt


class ChunkTimeout(ChunkFault):
    """A chunk exceeded its per-chunk deadline (queue + run time)."""

    def __init__(self, index: int, attempt: int, deadline_s: float):
        super().__init__(
            f"chunk {index} exceeded its {deadline_s:g}s deadline "
            f"(attempt {attempt})",
            index,
            attempt,
        )
        self.deadline_s = deadline_s


class WorkerCrash(ChunkFault):
    """The worker executing a chunk raised, died, or broke its pool."""

    def __init__(self, index: int, attempt: int, cause: str):
        super().__init__(
            f"worker crashed on chunk {index} (attempt {attempt}): {cause}",
            index,
            attempt,
        )
        self.cause = cause


class ChunkCorruption(ChunkFault):
    """A chunk's returned payload failed checksum validation."""

    def __init__(self, index: int, attempt: int):
        super().__init__(
            f"chunk {index} returned a corrupted payload "
            f"(checksum mismatch, attempt {attempt})",
            index,
            attempt,
        )


class RetryExhausted(RuntimeFault):
    """A chunk failed every attempt in the supervisor's retry budget.

    Raised ``from`` the last :class:`ChunkFault`, so ``__cause__``
    carries the terminal failure kind.
    """

    def __init__(self, index: int, attempts: int):
        super().__init__(
            f"chunk {index} failed all {attempts} attempts; giving up"
        )
        self.index = index
        self.attempts = attempts


class EngineUnavailable(RuntimeFault, ValueError):
    """No registered engine can serve the requested execution.

    Subclasses ``ValueError`` for compatibility with pre-runtime
    callers of the engine registry's resolution helpers.
    """


class DegradedExecution(UserWarning):
    """The runtime recovered by falling back to a lesser path.

    ``fallback_path`` lists the hops actually taken, e.g.
    ``("density", "mcwf")`` or ``("process-pool", "serial")``.
    """

    def __init__(self, message: str, fallback_path: "tuple[str, ...]" = ()):
        super().__init__(message)
        self.fallback_path = tuple(fallback_path)

    def __str__(self) -> str:  # pragma: no cover - display plumbing
        base = super().__str__()
        if self.fallback_path:
            return f"{base} [fallback: {' -> '.join(self.fallback_path)}]"
        return base
