"""Fault-tolerant execution runtime.

The numerics layers (compiled sweeps, sharded trajectory pools, the
engine registry) assume nothing ever fails; this package makes the
execution layer survive failure without changing a single result:

* :mod:`repro.runtime.errors` -- the structured failure taxonomy
  (typed chunk faults, :class:`EngineUnavailable`, the
  :class:`DegradedExecution` warning);
* :mod:`repro.runtime.supervisor` -- chunk supervision with per-chunk
  deadlines, crash detection, checksum validation and bounded
  deterministic retry (recovered runs are bit-identical to fault-free
  runs);
* :mod:`repro.runtime.faults` -- the seed-driven fault-injection
  harness the chaos suite and CI chaos job drive;
* :mod:`repro.runtime.pools` -- process-wide shared worker pools keyed
  by ``(backend, n_workers)``, so sharded calls without a caller-held
  executor stop paying pool spawn (and cold worker caches) per call;
* :mod:`repro.runtime.checkpoint` -- atomic epoch-boundary training
  checkpoints with bit-identical resume.
"""

from repro.runtime.checkpoint import (
    TrainCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.runtime.errors import (
    ChunkCorruption,
    ChunkFault,
    ChunkTimeout,
    DegradedExecution,
    EngineUnavailable,
    RetryExhausted,
    RuntimeFault,
    WorkerCrash,
)
from repro.runtime.faults import (
    ALL_FAULT_KINDS,
    FAULT_KINDS,
    SERVE_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedFlushError,
    chaos_seed,
    inject_faults,
)
from repro.runtime.pools import (
    discard_shared_pool,
    shared_pool,
    shutdown_shared_pools,
)
from repro.runtime.supervisor import (
    ChunkSupervisor,
    ChunkTask,
    SupervisionReport,
    SupervisorConfig,
)

__all__ = [
    "ALL_FAULT_KINDS",
    "FAULT_KINDS",
    "SERVE_FAULT_KINDS",
    "ChunkCorruption",
    "ChunkFault",
    "ChunkSupervisor",
    "ChunkTask",
    "ChunkTimeout",
    "DegradedExecution",
    "EngineUnavailable",
    "FaultPlan",
    "FaultSpec",
    "InjectedFlushError",
    "RetryExhausted",
    "RuntimeFault",
    "SupervisionReport",
    "SupervisorConfig",
    "TrainCheckpoint",
    "WorkerCrash",
    "chaos_seed",
    "discard_shared_pool",
    "inject_faults",
    "load_checkpoint",
    "save_checkpoint",
    "shared_pool",
    "shutdown_shared_pools",
]
