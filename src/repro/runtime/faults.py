"""Deterministic, seed-driven fault injection for the chunk supervisor.

Chaos testing only earns its keep when a failing run can be replayed:
every fault this harness injects is a pure function of
``(seed, label, chunk index, attempt)``, so a chaos seed printed by CI
reproduces the exact same crashes, delays and corruptions locally.

A :class:`FaultPlan` is a schedule, not a hook registry: the supervisor
asks it :meth:`~FaultPlan.fault_for` each (chunk, attempt) pair and
receives either ``None`` or a :class:`FaultSpec` naming one of four
chaos actions:

* ``"raise"``   -- raise :class:`InjectedKernelError` inside the chunk
  body (a kernel bug / assertion blowing up in a worker);
* ``"kill"``    -- hard-kill the worker process via ``os._exit`` (a
  segfault / OOM-kill; in thread or serial execution, where killing the
  interpreter would take the suite down with it, it degrades to raising
  :class:`InjectedWorkerCrash`);
* ``"delay"``   -- sleep past the supervisor's per-chunk deadline (a
  hung worker);
* ``"corrupt"`` -- perturb the chunk's returned payload *after* its
  checksum was computed (a torn/garbled result in transit), so checksum
  validation must catch it.

The serving layer (PR 8) extends the vocabulary with three
*serve-scoped* kinds, keyed by ``(seed, endpoint label, flush index,
attempt)`` instead of chunk coordinates:

* ``"flush-raise"``   -- raise :class:`InjectedFlushError` before a
  coalesced flush sweep executes (the engine blowing up under a whole
  batch of requests at once);
* ``"flush-delay"``   -- sleep before the sweep runs (a stalled flush:
  parked requests blow their deadlines while the loop is blocked);
* ``"slow-executor"`` -- sleep *as if inside* the executor's forward
  (a degraded engine; under a supervised flush the supervisor's
  per-attempt deadline classifies it as a :class:`ChunkTimeout`).

Specs are plain picklable dataclasses: the supervisor resolves the
schedule in the parent and ships the spec with the task, so process
workers need no access to the plan object itself.

By default faults fire only on attempt 0 (``max_attempt_faults=1``):
the first try fails, the retry is clean, and -- because chunk payloads
are deterministic -- the recovered run is bit-identical to a fault-free
one.  Raising ``max_attempt_faults`` lets tests exercise the
retry-exhaustion path.
"""

from __future__ import annotations

import os
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ALL_FAULT_KINDS",
    "FAULT_KINDS",
    "SERVE_FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFlushError",
    "InjectedKernelError",
    "InjectedWorkerCrash",
    "active_fault_plan",
    "apply_fault",
    "chaos_seed",
    "inject_faults",
]

#: The chunk-level chaos vocabulary, in the order probability mass is
#: assigned.
FAULT_KINDS = ("raise", "kill", "delay", "corrupt")

#: Serve-scoped kinds (coalesced-flush chaos), appended after the chunk
#: kinds in the probability-mass order.
SERVE_FAULT_KINDS = ("flush-raise", "flush-delay", "slow-executor")

#: Every valid fault kind, chunk and serve scoped, in mass order.
ALL_FAULT_KINDS = FAULT_KINDS + SERVE_FAULT_KINDS

#: Kinds whose action is a sleep (they carry ``delay_s``).
_DELAY_KINDS = frozenset({"delay", "flush-delay", "slow-executor"})

#: Environment variable the CI chaos job pins its seed through.
CHAOS_SEED_ENV = "CHAOS_SEED"


class InjectedKernelError(RuntimeError):
    """An injected exception standing in for a kernel bug in a worker."""


class InjectedWorkerCrash(RuntimeError):
    """An injected crash standing in for a dead worker (thread/serial)."""


class InjectedFlushError(RuntimeError):
    """An injected exception standing in for an engine failing a flush."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled chaos action, picklable into process workers."""

    kind: str
    #: Sleep duration for ``"delay"`` faults.
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ALL_FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {ALL_FAULT_KINDS}, "
                f"got {self.kind!r}"
            )


class FaultPlan:
    """A deterministic chaos schedule over (label, chunk, attempt).

    ``rates`` maps fault kinds to per-attempt probabilities (summing to
    at most 1); a uniform draw seeded from ``(seed, label, index,
    attempt)`` picks at most one.  ``max_attempt_faults`` bounds how
    many *attempts of the same chunk* may fault (default 1: only the
    first), which guarantees a supervisor with at least that many
    retries always recovers.
    """

    def __init__(
        self,
        seed: int,
        rates: "dict[str, float] | None" = None,
        delay_s: float = 0.25,
        max_attempt_faults: int = 1,
    ):
        rates = dict(rates or {})
        unknown = set(rates) - set(ALL_FAULT_KINDS)
        if unknown:
            raise ValueError(
                f"unknown fault kinds {sorted(unknown)}; "
                f"valid kinds: {list(ALL_FAULT_KINDS)}"
            )
        total = sum(rates.values())
        if total > 1.0 + 1e-12:
            raise ValueError(f"fault rates sum to {total} > 1")
        if any(r < 0 for r in rates.values()):
            raise ValueError("fault rates must be non-negative")
        if max_attempt_faults < 0:
            raise ValueError("max_attempt_faults must be >= 0")
        self.seed = int(seed)
        self.rates = rates
        self.delay_s = float(delay_s)
        self.max_attempt_faults = int(max_attempt_faults)

    def fault_for(
        self, label: str, index: int, attempt: int
    ) -> "FaultSpec | None":
        """The scheduled fault for one chunk attempt, or None.

        Pure: repeated calls with the same arguments return the same
        answer, on any host, in any process.
        """
        if attempt >= self.max_attempt_faults:
            return None
        entropy = [
            self.seed,
            zlib.crc32(label.encode()),
            int(index) & 0xFFFFFFFF,
            int(attempt),
        ]
        u = np.random.default_rng(np.random.SeedSequence(entropy)).random()
        edge = 0.0
        for kind in ALL_FAULT_KINDS:
            edge += self.rates.get(kind, 0.0)
            if u < edge:
                if kind in _DELAY_KINDS:
                    return FaultSpec(kind, delay_s=self.delay_s)
                return FaultSpec(kind)
        return None


def chaos_seed(default: int = 0) -> int:
    """The chaos seed: ``$CHAOS_SEED`` when set (the CI chaos job pins
    it there so a red run names its replay seed), else ``default``."""
    raw = os.environ.get(CHAOS_SEED_ENV)
    return int(raw) if raw else int(default)


def apply_fault(spec: "FaultSpec | None") -> None:
    """Execute a scheduled fault's *raising* side inside a chunk body.

    ``"corrupt"`` is a no-op here -- payload corruption happens after
    the checksum is computed (see the supervisor's guarded call).
    ``"kill"`` hard-exits only when running in a genuine worker
    *process*; in the parent interpreter it raises
    :class:`InjectedWorkerCrash` instead, standing in for the pool
    breaking without taking the test suite down.  The serve-scoped
    kinds act here too: ``"flush-raise"`` raises
    :class:`InjectedFlushError`, ``"flush-delay"``/``"slow-executor"``
    sleep (under a supervised flush the supervisor's per-attempt
    deadline turns the sleep into a typed timeout).
    """
    if spec is None or spec.kind == "corrupt":
        return
    if spec.kind in _DELAY_KINDS:
        time.sleep(spec.delay_s)
        return
    if spec.kind == "flush-raise":
        raise InjectedFlushError("injected flush failure")
    if spec.kind == "kill":
        import multiprocessing

        if multiprocessing.parent_process() is not None:
            os._exit(17)
        raise InjectedWorkerCrash("injected worker kill")
    raise InjectedKernelError("injected kernel fault")


def corrupt_payload(payload):
    """Deterministically perturb a chunk result (post-checksum).

    Arrays get their first element nudged; lists of arrays corrupt the
    first entry.  Returns the corrupted payload (copies -- the clean
    result is never mutated in place, mirroring transport corruption).
    """
    if isinstance(payload, list):
        return [corrupt_payload(payload[0])] + payload[1:]
    corrupted = np.array(payload, copy=True)
    flat = corrupted.reshape(-1)
    flat[0] = flat[0] + 1.0 if flat.size else flat[0]
    return corrupted


# -- ambient plan (tests / chaos runs) ----------------------------------------

_ACTIVE: "FaultPlan | None" = None


def active_fault_plan() -> "FaultPlan | None":
    """The ambient fault plan installed by :func:`inject_faults`."""
    return _ACTIVE


@contextmanager
def inject_faults(plan: FaultPlan):
    """Install ``plan`` as the ambient chaos schedule for the block.

    Supervisors constructed without an explicit ``fault_plan`` pick up
    the ambient one, so a test can wrap any execution path without
    threading the plan through every layer.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous
