"""Process-wide shared worker pools for callers without a persistent one.

``_run_sharded`` (and through it every ``n_workers > 0`` evaluation)
used to spawn a fresh executor and tear it down around a *single* call
whenever the caller did not hold a pool -- inside a training loop that
meant paying process spawn plus (for the process backend) a cold
worker-side plan cache on every step.  This registry keeps one lazily
spawned executor per ``(backend, n_workers)`` key for the life of the
process instead:

* :func:`shared_pool` returns the keyed executor, spawning it on first
  use (an ``OSError`` from the spawn propagates to the caller, which
  decides whether to degrade to serial);
* :func:`discard_shared_pool` evicts a pool that stopped being safe --
  a ``BrokenProcessPool`` escaping a run, or a supervised run whose
  report came back ``degraded`` (the supervisor shuts replacement pools
  down itself, so the registry entry would be a corpse) -- and shuts it
  down, so the next call respawns cleanly;
* :func:`shutdown_shared_pools` drains the registry (tests; also
  registered ``atexit`` so interpreter shutdown reaps worker
  processes).

Sharing is safe because sharded chunk execution is stateless from the
pool's point of view: tasks carry their whole payload, worker-side
caches are keyed by content digest, and results never depend on which
pool (or how many workers) ran them.
"""

from __future__ import annotations

import atexit
import threading

# Late-bound module reference (not `from ... import`): spawn-failure
# paths are tested by monkeypatching the classes on this module, and
# callers degrade on the OSError that surfaces.
import concurrent.futures as _futures

_POOLS: dict = {}
_LOCK = threading.Lock()


def shared_pool(backend: str, n_workers: int):
    """The process-global persistent executor for ``(backend, n_workers)``.

    Spawned lazily on first use and kept alive until
    :func:`discard_shared_pool` / :func:`shutdown_shared_pools` or
    interpreter exit.  ``backend`` is ``"thread"`` or ``"process"``.
    """
    if backend not in ("thread", "process"):
        raise ValueError(f"unknown pool backend {backend!r}")
    key = (backend, int(n_workers))
    with _LOCK:
        pool = _POOLS.get(key)
        if pool is None:
            cls = (
                _futures.ThreadPoolExecutor
                if backend == "thread"
                else _futures.ProcessPoolExecutor
            )
            pool = cls(max_workers=int(n_workers))
            _POOLS[key] = pool
        return pool


def discard_shared_pool(pool) -> None:
    """Evict ``pool`` from the registry (if present) and shut it down.

    Call when a shared pool stopped being trustworthy -- its workers
    died or a supervisor replaced it mid-run -- so the next
    :func:`shared_pool` call spawns a clean one.  Safe on pools that
    were never shared (plain shutdown) and idempotent.
    """
    with _LOCK:
        for key, held in list(_POOLS.items()):
            if held is pool:
                del _POOLS[key]
    pool.shutdown(wait=False, cancel_futures=True)


def shutdown_shared_pools(wait: bool = True) -> None:
    """Shut down and forget every registered shared pool."""
    with _LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=wait, cancel_futures=True)


@atexit.register
def _reap_at_exit() -> None:  # pragma: no cover - interpreter shutdown
    shutdown_shared_pools(wait=False)
