"""repro: a from-scratch reproduction of QuantumNAT (DAC 2022).

QuantumNAT (Wang et al.) is a noise-aware training and inference pipeline
for parameterized quantum circuits built from three techniques:
post-measurement normalization, realistic noise injection during
training, and post-measurement quantization.

This package re-implements the paper *and every substrate it depends on*
in pure numpy: batched statevector and density-matrix simulators with
analytic adjoint gradients, a basis-gate compiler with noise-adaptive
layout, a synthetic IBMQ-style device catalog with Pauli + readout noise
models and calibration drift, the QNN model zoo across five design
spaces, and the full training stack.

Quickstart::

    from repro import (
        load_task, paper_model, get_device,
        QuantumNATModel, QuantumNATConfig, TrainConfig, train, predict,
    )

    task = load_task("mnist-4")
    qnn = paper_model(4, n_blocks=2, n_layers=2, n_features=16, n_classes=4)
    device = get_device("santiago")
    model = QuantumNATModel(qnn, device, QuantumNATConfig.full())
    result = train(model, task.train_x, task.train_y,
                   task.valid_x, task.valid_y, TrainConfig(epochs=10))
    logits = predict(model, result.weights, task.test_x, engine="trajectory")

Serving (coalesced asyncio front door, :mod:`repro.serve`)::

    from repro.serve import InferenceServer, ServeConfig

    server = InferenceServer(ServeConfig(window_s=0.002, max_batch=64))
    session = server.session(model, result.weights, engine="density")
    logits = await session.predict(x)   # coalesced across callers
"""

from repro.characterization import (
    calibrate_readout,
    characterize_device,
    run_rb_experiment,
)
from repro.circuits import Circuit, Gate, ParamExpr
from repro.core import (
    QuantumNATConfig,
    QuantumNATModel,
    InjectionConfig,
    Quantizer,
    TrainConfig,
    TrainResult,
    train,
    predict,
    grid_search,
    EvalExecutor,
    InferenceExecutor,
    NoiselessExecutor,
    GateInsertionExecutor,
    DensityEvalExecutor,
    DensityTrainExecutor,
    MCWFTrainExecutor,
    TrajectoryEvalExecutor,
    make_real_qc_executor,
    make_noise_model_executor,
    EngineSpec,
    EngineCapabilities,
    capability_matrix,
    create_engine,
    create_engine_with_fallback,
    engine_names,
    engine_spec,
    register_engine,
    ParameterShiftEngine,
    accuracy,
)
from repro.compiler import transpile, CompiledCircuit, optimize_circuit
from repro.core import (
    FinetuneConfig,
    adapt_model,
    device_with_updated_calibration,
    finetune,
    minimize_spsa,
)
from repro.data import load_task, load_scalar_pair_task, TaskData, TASK_NAMES
from repro.metrics import snr, rmd, mse, per_qubit_snr
from repro.mitigation import zne_expectations, mitigate_expectations
from repro.noise import get_device, list_devices, Device, NoiseModel, PauliError
from repro.qasm import from_qasm, to_qasm
from repro.qnn import QNN, QNNArchitecture, paper_model, head_matrix
from repro.serve import (
    CircuitOpen,
    InferenceServer,
    Overloaded,
    ServeConfig,
    ServerClosed,
    Session,
)
from repro import serve
from repro.viz import draw_circuit

__version__ = "1.3.0"

__all__ = [
    "Circuit",
    "Gate",
    "ParamExpr",
    "QuantumNATConfig",
    "QuantumNATModel",
    "InjectionConfig",
    "Quantizer",
    "TrainConfig",
    "TrainResult",
    "train",
    "predict",
    "grid_search",
    "EvalExecutor",
    "InferenceExecutor",
    "NoiselessExecutor",
    "GateInsertionExecutor",
    "DensityEvalExecutor",
    "DensityTrainExecutor",
    "MCWFTrainExecutor",
    "TrajectoryEvalExecutor",
    "make_real_qc_executor",
    "make_noise_model_executor",
    "EngineSpec",
    "EngineCapabilities",
    "capability_matrix",
    "create_engine",
    "create_engine_with_fallback",
    "engine_names",
    "engine_spec",
    "register_engine",
    "ParameterShiftEngine",
    "accuracy",
    "transpile",
    "CompiledCircuit",
    "load_task",
    "load_scalar_pair_task",
    "TaskData",
    "TASK_NAMES",
    "snr",
    "rmd",
    "mse",
    "per_qubit_snr",
    "get_device",
    "list_devices",
    "Device",
    "NoiseModel",
    "PauliError",
    "QNN",
    "QNNArchitecture",
    "paper_model",
    "head_matrix",
    "optimize_circuit",
    "run_rb_experiment",
    "calibrate_readout",
    "characterize_device",
    "FinetuneConfig",
    "finetune",
    "adapt_model",
    "device_with_updated_calibration",
    "minimize_spsa",
    "zne_expectations",
    "mitigate_expectations",
    "from_qasm",
    "to_qasm",
    "draw_circuit",
    "serve",
    "InferenceServer",
    "ServeConfig",
    "Session",
    "Overloaded",
    "CircuitOpen",
    "ServerClosed",
    "__version__",
]
