"""Exact-channel noisy training: adjoint gradients on superoperators.

Noise-injection training (paper Section 3.2) samples one concrete error
realization per step; its gradient is therefore a stochastic estimate of
the gradient under the *channel*.  This module computes that channel
gradient exactly: the forward pass evolves the density matrix through
the per-site superoperators compiled by :mod:`repro.compiler.superop`
(gate unitary x Pauli x relaxation x coherent channel per site), and the
backward pass runs the adjoint sweep *in superoperator space*.

The math is the linear-map analogue of the statevector adjoint
(:func:`repro.core.gradients.adjoint_backward`).  With the vectorized
density ``vec(rho)`` and per-site superoperators ``S_i``, the measured
loss is linear in the final state, ``L = a^T S_K ... S_1 vec(rho_0)``
(``a`` encodes the upstream dL/dprobs on the diagonal).  Propagating the
covector ``lam_{i-1} = S_i^T lam_i`` backward gives every parameter
gradient as

    dL/dtheta_i = Re[ lam_i^T (C_i dV_i) vec(rho_{i-1}) ],

where ``C_i`` is the site's constant noise channel and
``dV_i = kron(dU, U*) + kron(U, dU*)`` the derivative of the unitary
superoperator -- exact for every affine parameter expression (no
two-term shift-rule restrictions), noise channels included.  Unlike the
statevector adjoint, channels are not invertible, so the forward pass
stores the pre-site density at each differentiable site (k <= 8 qubits
keeps this cheap).

The executor wrapper lives in :class:`repro.core.executors.
DensityTrainExecutor`; ``TrainConfig(engine="density")`` switches a
training run onto this backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.circuits.parameters import INPUT, WEIGHT
from repro.sim.density import (
    apply_superop_to_density,
    density_probabilities,
    zero_density,
)
from repro.sim.statevector import z_signs

if TYPE_CHECKING:  # pragma: no cover
    from repro.compiler.passes import CompiledCircuit
    from repro.noise.model import NoiseModel


@dataclass
class _Site:
    """One step of a density tape.

    ``op`` is None for fused constant segments (runs of
    constant-parameter sites merged into one superoperator by
    :meth:`repro.compiler.superop.SuperopPlan.training_stream`): no
    gradient flows through them, so forward and backward each apply a
    single merged matrix.
    """

    op: object  # BoundOp, or None for a fused constant segment
    superop: object  # SuperOp (gate x channel, ready to apply)
    channel: "np.ndarray | None"  # the constant channel factor alone
    rho_pre: "np.ndarray | None"  # pre-site density (differentiable sites)


@dataclass
class DensityTape:
    """Everything a density forward saves for the superop adjoint sweep."""

    sites: "list[_Site]"
    n_qubits: int
    n_weights: int
    n_inputs: int
    batch: int


def _unitary_superop_derivative(
    matrix: np.ndarray, dmatrix: np.ndarray
) -> np.ndarray:
    """d/dtheta of ``kron(U, U*)``: ``kron(dU, U*) + kron(U, dU*)``.

    Shared ``(d, d)`` or per-sample ``(batch, d, d)`` matrices, matching
    :func:`repro.sim.density.unitary_superop`'s conventions.
    """
    if matrix.ndim == 2:
        return np.kron(dmatrix, matrix.conj()) + np.kron(matrix, dmatrix.conj())
    batch, d = matrix.shape[0], matrix.shape[-1]
    full = np.einsum("bij,buv->biujv", dmatrix, matrix.conj())
    full = full + np.einsum("bij,buv->biujv", matrix, dmatrix.conj())
    return np.ascontiguousarray(full.reshape(batch, d * d, d * d))


def density_forward_with_tape(
    compiled: "CompiledCircuit",
    noise_model: "NoiseModel",
    weights: "np.ndarray | None",
    inputs: "np.ndarray | None",
    noise_factor: float = 1.0,
    batch: int = 1,
    n_weights: "int | None" = None,
    n_inputs: "int | None" = None,
) -> "tuple[np.ndarray, DensityTape]":
    """Exact noisy forward keeping the superoperator tape.

    Returns per-qubit Z expectations ``(batch, n_qubits)`` of the exact
    channel (readout excluded -- the executor applies it as an affine
    map, like the gate-insertion backend) and the tape for
    :func:`density_adjoint_backward`.
    """
    from repro.compiler.superop import superop_plan_for
    from repro.noise.density_backend import MAX_DENSITY_QUBITS

    circuit = compiled.circuit
    n = circuit.n_qubits
    if n > MAX_DENSITY_QUBITS:
        raise ValueError(
            f"{n}-qubit density training too large; use gate insertion "
            "(with the Pauli-twirled noise model if this one carries "
            "exact relaxation channels)"
        )
    if inputs is not None:
        inputs = np.asarray(inputs, dtype=float)
        batch = inputs.shape[0]
    plan = superop_plan_for(compiled, noise_model, noise_factor)
    rho = zero_density(n, batch)
    sites: "list[_Site]" = []
    # Constant-parameter runs arrive pre-fused into segment superops
    # (built once per plan, reused across every minibatch and weight
    # vector); weight-only differentiable sites are cached per weight
    # vector, and only input-dependent encoder sites rebuild per step.
    for entry in plan.training_stream(weights, inputs, batch):
        if entry[0] == "segment":
            superop = entry[1]
            sites.append(_Site(None, superop, None, None))
        else:
            _, op, superop, index = entry
            sites.append(
                _Site(
                    op,
                    superop,
                    plan.channel(index) if op.grad_params else None,
                    rho if op.grad_params else None,
                )
            )
        rho = apply_superop_to_density(
            rho, superop.matrix, superop.qubits, n, diagonal=superop.diagonal
        )
    probs = density_probabilities(rho)
    expectations = probs @ z_signs(n).T
    table = circuit.parameter_table
    tape = DensityTape(
        sites,
        n,
        n_weights if n_weights is not None else table.num_weights,
        n_inputs if n_inputs is not None else table.num_inputs,
        batch,
    )
    return expectations, tape


def density_adjoint_backward(
    tape: DensityTape, grad_expectations: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Backpropagate dL/dE through the exact channel in one adjoint sweep.

    ``grad_expectations`` is ``(batch, n_qubits)`` upstream dL/dE_q.
    Returns ``(weight_grad summed over batch, per-sample input_grad)`` --
    the same contract as :func:`repro.core.gradients.adjoint_backward`,
    but exact under the full noise channel.
    """
    n = tape.n_qubits
    batch = tape.batch
    grad_expectations = np.asarray(grad_expectations, dtype=float)
    if grad_expectations.shape != (batch, n):
        raise ValueError(
            f"grad shape {grad_expectations.shape} != ({batch}, {n})"
        )
    dim = 2**n
    # L = sum_i dL/dprobs[i] * rho[i, i]: the covector starts as the
    # diagonal observable, stored matrix-shaped so superop kernels apply.
    dprobs = grad_expectations @ z_signs(n)  # (batch, dim)
    lam = np.zeros((batch, dim, dim), dtype=complex)
    lam[:, np.arange(dim), np.arange(dim)] = dprobs

    weight_grad = np.zeros(tape.n_weights)
    input_grad = np.zeros((batch, tape.n_inputs))

    for site in reversed(tape.sites):
        op, superop = site.op, site.superop
        if op is not None and op.grad_params:
            for which, expr in op.grad_params:
                dv = _unitary_superop_derivative(op.matrix, op.dmatrix(which))
                if site.channel is not None:
                    dv = np.matmul(site.channel, dv)
                drho = apply_superop_to_density(
                    site.rho_pre, dv, op.qubits, n, diagonal=False
                )
                # Plain (non-conjugated) pairing lam^T vec(drho).
                g = np.real(np.einsum("bij,bij->b", lam, drho))
                for kind, index, coeff in expr.terms:
                    if kind == WEIGHT:
                        weight_grad[index] += coeff * g.sum()
                    elif kind == INPUT:
                        input_grad[:, index] += coeff * g
        # lam_{i-1} = S_i^T lam_i: the transposed channel applies through
        # the same kernel (the embedding permutation is orthogonal, so
        # transposing the local matrix transposes the full superop).
        matrix = superop.matrix
        transposed = (
            matrix.transpose(0, 2, 1) if superop.batched else matrix.T
        )
        lam = apply_superop_to_density(
            lam, transposed, superop.qubits, n, diagonal=superop.diagonal
        )

    return weight_grad, input_grad
