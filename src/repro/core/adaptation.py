"""Fast adaptation of trained QNNs to updated noise calibrations.

Paper appendix A.3.1 closes on the limitation that "repeated training
may be required when the noise model is updated" and names fast
fine-tuning as the future direction.  This module implements it: given
weights trained against one calibration, :func:`finetune` continues
training for a few low-learning-rate epochs under the *new* noise model
-- optionally updating only the most sensitive weights (gradient
pruning) or only the later blocks (freezing) -- which costs a small
fraction of retraining from scratch.

:func:`device_with_updated_calibration` builds the refreshed device
object (e.g. from a :mod:`repro.characterization` run), and
:func:`adapt_model` rebinds an existing model to it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import QuantumNATModel
from repro.core.pruning import prune_gradients
from repro.core.optim import Adam
from repro.core.training import TrainResult, iterate_minibatches
from repro.noise.devices import Device
from repro.noise.model import NoiseModel
from repro.utils.rng import as_rng


def device_with_updated_calibration(
    device: Device,
    noise_model: "NoiseModel | None" = None,
    hardware_model: "NoiseModel | None" = None,
) -> Device:
    """A copy of ``device`` with refreshed noise model(s).

    Typical flow: characterize the hardware twin, convert the measured
    rates into a :class:`NoiseModel`, and pass it as the new published
    ``noise_model`` so noise-injected fine-tuning trains against
    reality instead of the stale datasheet.
    """
    return dataclasses.replace(
        device,
        noise_model=noise_model or device.noise_model,
        hardware_model=hardware_model or device.hardware_model,
    )


def adapt_model(model: QuantumNATModel, device: Device) -> QuantumNATModel:
    """Rebind a model (same QNN, config, compilation level) to a device."""
    return QuantumNATModel(
        model.qnn,
        device,
        model.config,
        optimization_level=model.optimization_level,
        rng=model.rng,
    )


@dataclass(frozen=True)
class FinetuneConfig:
    """Knobs for the adaptation run.

    ``keep_fraction < 1`` prunes each step's gradient to its largest
    components; ``freeze_blocks`` pins whole blocks' weights (the usual
    choice is freezing early feature-extraction blocks).
    """

    epochs: int = 5
    batch_size: int = 16
    lr: float = 0.02
    keep_fraction: float = 1.0
    prune_mode: str = "topk"
    freeze_blocks: "tuple[int, ...]" = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if not 0 < self.keep_fraction <= 1:
            raise ValueError("keep_fraction must be in (0, 1]")


def finetune(
    model: QuantumNATModel,
    weights: np.ndarray,
    train_x: np.ndarray,
    train_y: np.ndarray,
    valid_x: np.ndarray,
    valid_y: np.ndarray,
    config: "FinetuneConfig | None" = None,
    valid_executor: "object | None" = None,
) -> TrainResult:
    """Low-cost continuation training from already-trained weights.

    Returns a :class:`TrainResult` whose weights are the best-validation
    iterate, *including* the starting point -- adaptation can only help.
    """
    config = config or FinetuneConfig()
    for block in config.freeze_blocks:
        if not 0 <= block < model.n_blocks:
            raise ValueError(f"freeze_blocks entry {block} out of range")
    rng = as_rng(config.seed)
    weights = np.asarray(weights, dtype=float).copy()

    frozen = np.zeros(model.n_weights, dtype=bool)
    for block in config.freeze_blocks:
        frozen[model.qnn.weight_slices[block]] = True
    if frozen.all():
        raise ValueError("all blocks frozen: nothing to fine-tune")

    optimizer = Adam(weights.size, lr=config.lr, total_steps=None)

    best_acc, best_loss = model.evaluate(weights, valid_x, valid_y, valid_executor)
    best_weights = weights.copy()
    history: "list[dict[str, float]]" = []

    for epoch in range(config.epochs):
        epoch_loss, epoch_acc, n_batches = 0.0, 0.0, 0
        for batch_x, batch_y in iterate_minibatches(
            train_x, train_y, config.batch_size, rng
        ):
            loss, acc, grad = model.loss_and_gradients(weights, batch_x, batch_y)
            grad[frozen] = 0.0
            if config.keep_fraction < 1.0:
                grad, _mask = prune_gradients(
                    grad, config.keep_fraction, config.prune_mode, rng
                )
            weights = optimizer.step(weights, grad)
            epoch_loss += loss
            epoch_acc += acc
            n_batches += 1
        valid_acc, valid_loss = model.evaluate(
            weights, valid_x, valid_y, valid_executor
        )
        history.append(
            {
                "epoch": float(epoch),
                "train_loss": epoch_loss / n_batches,
                "train_acc": epoch_acc / n_batches,
                "valid_loss": valid_loss,
                "valid_acc": valid_acc,
            }
        )
        if valid_loss < best_loss:
            best_loss = valid_loss
            best_acc = valid_acc
            best_weights = weights.copy()

    return TrainResult(best_weights, best_loss, best_acc, history)
