"""Classification loss: softmax cross-entropy with analytic gradients."""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilized."""
    logits = np.asarray(logits, dtype=float)
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> "tuple[float, np.ndarray, np.ndarray]":
    """Mean cross-entropy loss.

    Returns ``(loss, grad_logits, probs)`` where ``grad_logits`` is
    ``(softmax - onehot) / batch`` -- ready to chain into the QNN head.
    """
    labels = np.asarray(labels, dtype=int)
    probs = softmax(logits)
    batch = probs.shape[0]
    picked = np.clip(probs[np.arange(batch), labels], 1e-12, None)
    loss = float(-np.log(picked).mean())
    grad = probs.copy()
    grad[np.arange(batch), labels] -= 1.0
    grad /= batch
    return loss, grad, probs


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy."""
    predictions = np.asarray(logits).argmax(axis=1)
    return float((predictions == np.asarray(labels)).mean())
