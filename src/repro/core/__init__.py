"""QuantumNAT core: the paper's noise-aware training/inference pipeline."""

from repro.core.normalization import (
    normalize,
    normalize_backward,
    normalize_with_stats,
    denormalize,
    batch_statistics,
    NormCache,
)
from repro.core.quantization import Quantizer
from repro.core.injection import (
    InjectionConfig,
    GATE_INSERTION,
    OUTCOME_PERTURBATION,
    ANGLE_PERTURBATION,
    STRATEGIES,
    benchmark_error_statistics,
    perturb_outcomes,
    perturb_angles,
)
from repro.core.gradients import (
    forward_with_tape,
    adjoint_backward,
    adjoint_backward_reference,
    finite_difference_gradients,
    ParameterShiftEngine,
    QuantumTape,
)
from repro.core.executors import (
    make_real_qc_executor,
    make_noise_model_executor,
    NoiselessExecutor,
    GateInsertionExecutor,
    DensityEvalExecutor,
    DensityTrainExecutor,
    TrajectoryEvalExecutor,
    BlockCache,
)
from repro.core.losses import softmax, cross_entropy, accuracy
from repro.core.optim import Adam, SGD
from repro.core.pipeline import QuantumNATConfig, QuantumNATModel, ForwardCache
from repro.core.training import TrainConfig, TrainResult, train, iterate_minibatches
from repro.core.hyperparam import (
    grid_search,
    GridSearchResult,
    PAPER_NOISE_FACTORS,
    PAPER_QUANT_LEVELS,
)
from repro.core.adaptation import (
    FinetuneConfig,
    adapt_model,
    device_with_updated_calibration,
    finetune,
)
from repro.core.pruning import measurements_saved, prune_gradients
from repro.core.schedulers import ConstantLR, CosineLR, StepLR, WarmupCosineLR
from repro.core.spsa import SPSA, SPSAConfig, SPSAResult, minimize_spsa

__all__ = [
    "normalize",
    "normalize_backward",
    "normalize_with_stats",
    "denormalize",
    "batch_statistics",
    "NormCache",
    "Quantizer",
    "InjectionConfig",
    "GATE_INSERTION",
    "OUTCOME_PERTURBATION",
    "ANGLE_PERTURBATION",
    "STRATEGIES",
    "benchmark_error_statistics",
    "perturb_outcomes",
    "perturb_angles",
    "forward_with_tape",
    "adjoint_backward",
    "adjoint_backward_reference",
    "finite_difference_gradients",
    "ParameterShiftEngine",
    "QuantumTape",
    "make_real_qc_executor",
    "make_noise_model_executor",
    "NoiselessExecutor",
    "GateInsertionExecutor",
    "DensityEvalExecutor",
    "DensityTrainExecutor",
    "TrajectoryEvalExecutor",
    "BlockCache",
    "softmax",
    "cross_entropy",
    "accuracy",
    "Adam",
    "SGD",
    "QuantumNATConfig",
    "QuantumNATModel",
    "ForwardCache",
    "TrainConfig",
    "TrainResult",
    "train",
    "iterate_minibatches",
    "grid_search",
    "GridSearchResult",
    "PAPER_NOISE_FACTORS",
    "PAPER_QUANT_LEVELS",
    "FinetuneConfig",
    "finetune",
    "adapt_model",
    "device_with_updated_calibration",
    "prune_gradients",
    "measurements_saved",
    "ConstantLR",
    "StepLR",
    "CosineLR",
    "WarmupCosineLR",
    "SPSA",
    "SPSAConfig",
    "SPSAResult",
    "minimize_spsa",
]
