"""Optimizers for QNN weights (the classical part of hybrid training)."""

from __future__ import annotations

import numpy as np


class Adam:
    """Adam with optional cosine learning-rate decay."""

    def __init__(
        self,
        n_params: int,
        lr: float = 0.05,
        betas: "tuple[float, float]" = (0.9, 0.999),
        eps: float = 1e-8,
        total_steps: "int | None" = None,
        min_lr_fraction: float = 0.1,
    ):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.m = np.zeros(n_params)
        self.v = np.zeros(n_params)
        self.t = 0
        self.total_steps = total_steps
        self.min_lr_fraction = min_lr_fraction

    def current_lr(self) -> float:
        """Cosine-decayed learning rate (constant when no schedule)."""
        if not self.total_steps:
            return self.lr
        progress = min(self.t / self.total_steps, 1.0)
        floor = self.lr * self.min_lr_fraction
        return floor + 0.5 * (self.lr - floor) * (1 + np.cos(np.pi * progress))

    def step(self, weights: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """Return updated weights (input array is not modified)."""
        grad = np.asarray(grad, dtype=float)
        self.t += 1
        self.m = self.beta1 * self.m + (1 - self.beta1) * grad
        self.v = self.beta2 * self.v + (1 - self.beta2) * grad**2
        m_hat = self.m / (1 - self.beta1**self.t)
        v_hat = self.v / (1 - self.beta2**self.t)
        lr = self.current_lr()
        return weights - lr * m_hat / (np.sqrt(v_hat) + self.eps)


class SGD:
    """Plain SGD with momentum (baseline optimizer)."""

    def __init__(self, n_params: int, lr: float = 0.05, momentum: float = 0.9):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self.velocity = np.zeros(n_params)
        self.t = 0

    def current_lr(self) -> float:
        return self.lr

    def step(self, weights: np.ndarray, grad: np.ndarray) -> np.ndarray:
        self.t += 1
        self.velocity = self.momentum * self.velocity - self.lr * np.asarray(grad)
        return weights + self.velocity
