"""Gradient pruning for cheap on-QC training steps.

On real hardware every gradient component costs two parameter-shift
circuit executions, so the follow-up work the paper cites (QOC, DAC'22)
prunes the gradient: only the most promising components are measured
and updated each step.  We implement the two standard policies:

* ``topk`` -- keep the largest-magnitude fraction (needs all components
  measured once; saves *optimizer* work and regularizes),
* ``random`` -- keep a random fraction (saves *measurement* work: the
  dropped components never need their shifted circuits run).

Both return a pruned copy plus the boolean mask, so callers can count
the measurements a real deployment would have saved.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng


def prune_gradients(
    gradient: np.ndarray,
    keep_fraction: float,
    mode: str = "topk",
    rng: "int | np.random.Generator | None" = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """Zero out all but a fraction of gradient components.

    Returns ``(pruned gradient, keep mask)``.  ``keep_fraction=1`` is a
    no-op; at least one component is always kept.
    """
    if not 0 < keep_fraction <= 1:
        raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
    gradient = np.asarray(gradient, dtype=float)
    n = gradient.size
    n_keep = max(1, int(round(keep_fraction * n)))
    if n_keep >= n:
        return gradient.copy(), np.ones(n, dtype=bool)

    mask = np.zeros(n, dtype=bool)
    if mode == "topk":
        order = np.argsort(np.abs(gradient.ravel()))
        mask[order[-n_keep:]] = True
    elif mode == "random":
        rng = as_rng(rng)
        mask[rng.choice(n, size=n_keep, replace=False)] = True
    else:
        raise ValueError(f"unknown mode {mode!r}; use 'topk' or 'random'")
    pruned = np.where(mask, gradient.ravel(), 0.0).reshape(gradient.shape)
    return pruned, mask.reshape(gradient.shape)


def measurements_saved(
    mask: np.ndarray, shots_per_component: int = 2
) -> int:
    """Parameter-shift circuit executions avoided by a pruning mask.

    Each dropped component skips its two shifted-circuit evaluations
    (``shots_per_component`` lets callers account for repetitions).
    """
    mask = np.asarray(mask, dtype=bool)
    return int((mask.size - mask.sum()) * shots_per_component)
