"""Training loop for QuantumNAT models.

Minibatch Adam with per-epoch validation; keeps the weights that achieve
the best validation loss (evaluated on the configured validation
executor, which for noise-aware training should be a noisy backend so
model selection sees what deployment will see).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import engine_spec, train_engine_names
from repro.core.optim import Adam
from repro.core.pipeline import QuantumNATModel
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class TrainConfig:
    epochs: int = 30
    batch_size: int = 16
    lr: float = 0.2
    seed: int = 0
    weight_init_scale: float = 0.3
    use_lr_schedule: bool = True
    verbose: bool = False
    #: Training engine, resolved through the engine registry
    #: (:func:`repro.core.engine.train_engine_names`).  "fast" runs each
    #: minibatch as one stacked statevector sweep; "reference" loops
    #: per-sample through the retained baseline kernels (equivalence
    #: checks and perf baselines only); engines carrying a training
    #: executor factory ("gate_insertion", "density", "mcwf") swap the
    #: model's training executor for the run -- e.g. "density" trains
    #: against the exact channel (adjoint on superoperators, compact
    #: blocks only) and "mcwf" against sampled quantum-jump
    #: trajectories of the exact channel (any width).
    engine: str = "fast"
    #: > 0 shards trajectory-backed validation executors across that many
    #: workers (`TrajectoryEvalExecutor.n_workers`) and hands the same
    #: count to the training-engine factory, whose executors row-band
    #: their stacked sweeps over a persistent thread pool; results are
    #: unchanged, so this is purely a throughput knob.
    trajectory_workers: int = 0
    #: When set, the loop writes an atomic checkpoint (weights,
    #: optimizer state, RNG states, engine name) to this path at epoch
    #: boundaries; ``train(resume=path)`` continues a killed run
    #: bit-identically (see :mod:`repro.runtime.checkpoint`).
    checkpoint_path: "str | None" = None
    #: Checkpoint every this many epochs (the final epoch always saves).
    checkpoint_every: int = 1

    def __post_init__(self) -> None:
        names = train_engine_names()
        if self.engine not in names:
            raise ValueError(
                f"engine must be one of {', '.join(repr(n) for n in names)}, "
                f"got {self.engine!r}"
            )
        if self.trajectory_workers < 0:
            raise ValueError("trajectory_workers must be >= 0")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")


@dataclass
class TrainResult:
    """Outcome of one training run."""

    weights: np.ndarray
    best_valid_loss: float
    best_valid_acc: float
    history: "list[dict[str, float]]" = field(default_factory=list)

    @property
    def final_epoch(self) -> int:
        return len(self.history)


def iterate_minibatches(
    inputs: np.ndarray,
    labels: np.ndarray,
    batch_size: int,
    rng: np.random.Generator,
):
    """Shuffled minibatch generator."""
    n = inputs.shape[0]
    order = rng.permutation(n)
    for start in range(0, n, batch_size):
        idx = order[start : start + batch_size]
        yield inputs[idx], labels[idx]


def train(
    model: QuantumNATModel,
    train_x: np.ndarray,
    train_y: np.ndarray,
    valid_x: np.ndarray,
    valid_y: np.ndarray,
    config: "TrainConfig | None" = None,
    valid_executor: "object | None" = None,
    initial_weights: "np.ndarray | None" = None,
    resume: "str | None" = None,
) -> TrainResult:
    """Train a QuantumNAT model; returns best-validation weights.

    ``valid_executor`` controls which backend validation runs on
    (noise-free by default; pass a noisy executor for noise-aware model
    selection as the paper does for its (T, levels) grid search).

    ``config.engine`` resolves through the engine registry.  Engines
    whose spec carries a training executor factory (``"density"``,
    ``"mcwf"``, ``"gate_insertion"``) swap the model's training
    executor for the run -- noise-aware training against the engine's
    channel representation; the model's own executor is restored on
    exit.

    ``resume`` loads a checkpoint written by a previous run with
    ``config.checkpoint_path`` set and continues from its epoch
    boundary.  Every stochastic input (loop/model/executor RNG states)
    and the optimizer state are restored, so an interrupted-then-resumed
    run produces the *same final weights* as an uninterrupted one (the
    runtime suite asserts this).  The checkpoint's engine must match
    ``config.engine`` -- resuming onto a different backend would
    silently change training semantics.
    """
    config = config or TrainConfig()
    checkpoint = None
    if resume is not None:
        from repro.runtime.checkpoint import load_checkpoint

        checkpoint = load_checkpoint(resume)
        if checkpoint.engine != config.engine:
            raise ValueError(
                f"checkpoint {resume!r} was written by engine "
                f"{checkpoint.engine!r} but config.engine is "
                f"{config.engine!r}; resuming onto a different backend "
                "would change training semantics"
            )
        if checkpoint.epoch > config.epochs:
            raise ValueError(
                f"checkpoint {resume!r} has {checkpoint.epoch} completed "
                f"epochs but config.epochs is {config.epochs}"
            )
    spec = engine_spec(config.engine)
    shard_restore = None
    executor_restore = None
    if spec.train.executor_factory is not None:
        from repro.core.injection import GATE_INSERTION

        injection = model.config.injection
        if injection.strategy != GATE_INSERTION:
            # These engines are alternative backends for *gate-insertion*
            # noise injection; silently noise-training a baseline (or
            # stacking on a perturbation strategy) would change training
            # semantics, not just the backend.
            raise ValueError(
                f"engine={config.engine!r} computes noisy-channel "
                "gradients for gate-insertion noise injection, but the "
                f"model's injection strategy is {injection.strategy!r}; "
                "configure InjectionConfig(GATE_INSERTION, ...) or use "
                "the default engine"
            )
        widest = max(c.circuit.n_qubits for c in model.compiled)
        max_qubits = spec.capabilities.max_qubits
        if max_qubits is not None and widest > max_qubits:
            alternatives = ", ".join(
                s.name
                for s in _trainable_alternatives(
                    model.device.noise_model.channel_kinds, widest
                )
                if s.name != spec.name
            )
            raise ValueError(
                f"engine={config.engine!r} is density-matrix-bound and "
                f"the model has {widest}-qubit blocks (max {max_qubits}); "
                f"engines supporting this width: {alternatives or 'none'}"
            )
        executor_restore = model._train_executor
        model._train_executor = spec.train.executor_factory(
            model.device.noise_model,
            injection,
            rng=model.rng,
            n_workers=config.trajectory_workers,
        )
    if (
        config.trajectory_workers > 0
        and valid_executor is not None
        and hasattr(valid_executor, "n_workers")
    ):
        # Engine switch: shard the validation executor's trajectory
        # chunks for the duration of this run.  Bit-identical to serial,
        # so model selection is unaffected -- epochs just validate
        # faster; the caller's executor is restored on exit.
        shard_restore = valid_executor.n_workers
        valid_executor.n_workers = config.trajectory_workers
    try:
        return _train_loop(
            model, train_x, train_y, valid_x, valid_y, config,
            valid_executor, initial_weights, checkpoint,
        )
    finally:
        if shard_restore is not None:
            valid_executor.n_workers = shard_restore
            # Release any persistent worker pool the sharded validation
            # spawned: the caller configured the executor with its own
            # worker count and may never trigger another sharded run to
            # reconcile the pool (it is lazily rebuilt on next use).
            close = getattr(valid_executor, "close", None)
            if close is not None:
                close()
        if executor_restore is not None:
            # The swapped-in training executor may hold a persistent
            # worker pool (row-banded sweeps); release it before the
            # caller's executor comes back, as nothing else will.
            close = getattr(model._train_executor, "close", None)
            if close is not None:
                close()
            model._train_executor = executor_restore


def _trainable_alternatives(channels: "frozenset[str]", widest: int):
    """Registry-derived engines that could back this training run."""
    from repro.core.engine import engines_supporting

    return engines_supporting(*channels, trainable=True, max_width=widest)


def _train_loop(
    model: QuantumNATModel,
    train_x: np.ndarray,
    train_y: np.ndarray,
    valid_x: np.ndarray,
    valid_y: np.ndarray,
    config: TrainConfig,
    valid_executor: "object | None",
    initial_weights: "np.ndarray | None",
    checkpoint=None,
) -> TrainResult:
    rng = as_rng(config.seed)
    if initial_weights is None:
        weights = model.qnn.init_weights(rng, config.weight_init_scale)
    else:
        weights = np.asarray(initial_weights, dtype=float).copy()

    steps_per_epoch = max(1, int(np.ceil(train_x.shape[0] / config.batch_size)))
    optimizer = Adam(
        weights.size,
        lr=config.lr,
        total_steps=config.epochs * steps_per_epoch if config.use_lr_schedule else None,
    )

    best_weights = weights.copy()
    best_loss = float("inf")
    best_acc = 0.0
    history: "list[dict[str, float]]" = []
    start_epoch = 0
    if checkpoint is not None:
        from repro.runtime.checkpoint import restore_rng_states

        weights = np.asarray(checkpoint.weights, dtype=float).copy()
        optimizer.m = np.asarray(checkpoint.optimizer["m"], dtype=float).copy()
        optimizer.v = np.asarray(checkpoint.optimizer["v"], dtype=float).copy()
        optimizer.t = int(checkpoint.optimizer["t"])
        best_weights = np.asarray(checkpoint.best_weights, dtype=float).copy()
        best_loss = checkpoint.best_loss
        best_acc = checkpoint.best_acc
        history = list(checkpoint.history)
        start_epoch = checkpoint.epoch
        # Every stream the remaining epochs will consume: the shuffle
        # rng, the model's (train-executor-shared) rng and the
        # validation executor's shot-noise rng.  Restoring all of them
        # is what makes resumed runs bit-identical to uninterrupted
        # ones.
        restore_rng_states(
            checkpoint.rng_states,
            loop=rng,
            valid_executor=getattr(valid_executor, "rng", None),
            **model.rng_generators(),
        )
    # Executor-swapping engines reuse the batched pipeline loop -- the
    # swapped executor is what changes the backend; the registry's
    # step_attr selects the per-sample baseline only for "reference".
    step = getattr(model, engine_spec(config.engine).train.step_attr)

    for epoch in range(start_epoch, config.epochs):
        epoch_loss = 0.0
        epoch_acc = 0.0
        n_batches = 0
        for batch_x, batch_y in iterate_minibatches(
            train_x, train_y, config.batch_size, rng
        ):
            loss, acc, grad = step(weights, batch_x, batch_y)
            weights = optimizer.step(weights, grad)
            epoch_loss += loss
            epoch_acc += acc
            n_batches += 1
        valid_acc, valid_loss = model.evaluate(
            weights, valid_x, valid_y, valid_executor
        )
        history.append(
            {
                "epoch": float(epoch),
                "train_loss": epoch_loss / n_batches,
                "train_acc": epoch_acc / n_batches,
                "valid_loss": valid_loss,
                "valid_acc": valid_acc,
            }
        )
        if config.verbose:  # pragma: no cover - console output
            print(
                f"epoch {epoch:3d}  train_loss {epoch_loss / n_batches:.4f}  "
                f"train_acc {epoch_acc / n_batches:.3f}  "
                f"valid_loss {valid_loss:.4f}  valid_acc {valid_acc:.3f}"
            )
        if valid_loss < best_loss:
            best_loss = valid_loss
            best_acc = valid_acc
            best_weights = weights.copy()
        if config.checkpoint_path is not None and (
            (epoch + 1) % config.checkpoint_every == 0
            or epoch == config.epochs - 1
        ):
            from repro.runtime.checkpoint import (
                TrainCheckpoint,
                capture_rng_states,
                save_checkpoint,
            )

            save_checkpoint(
                config.checkpoint_path,
                TrainCheckpoint(
                    epoch=epoch + 1,
                    engine=config.engine,
                    weights=weights,
                    optimizer={
                        "m": optimizer.m,
                        "v": optimizer.v,
                        "t": optimizer.t,
                    },
                    rng_states=capture_rng_states(
                        loop=rng,
                        valid_executor=getattr(valid_executor, "rng", None),
                        **model.rng_generators(),
                    ),
                    best_weights=best_weights,
                    best_loss=best_loss,
                    best_acc=best_acc,
                    history=history,
                ),
            )

    return TrainResult(best_weights, best_loss, best_acc, history)
