"""Post-measurement normalization (paper Section 3.1, Theorem 3.1).

Quantum noise maps each qubit's measurement expectation through
``E' = gamma * E + beta`` with input-independent ``gamma``.  Normalizing
each qubit's outcomes to zero mean / unit variance *across the batch*
cancels both the scale and the (mean) shift:

    (gamma*y + beta - mean(gamma*y + beta)) / std(gamma*y + beta) = y_hat

Unlike classical BatchNorm there are no trainable affine parameters, and
at test time the *test batch's own statistics* are used (or, when test
batches are too small, statistics profiled on the validation set --
paper Appendix A.3.7 / Table 13).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Variance floor guarding against degenerate (constant) outcome columns.
EPS = 1e-8


@dataclass
class NormCache:
    """Saved activations for the backward pass."""

    normalized: np.ndarray
    std: np.ndarray


def batch_statistics(outcomes: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """Per-qubit mean and std across the batch dimension."""
    outcomes = np.asarray(outcomes, dtype=float)
    mean = outcomes.mean(axis=0)
    std = np.sqrt(outcomes.var(axis=0) + EPS)
    return mean, std


def normalize(outcomes: np.ndarray) -> "tuple[np.ndarray, NormCache]":
    """Normalize a batch of measurement outcomes (forward pass).

    ``outcomes`` is ``(batch, n_qubits)``; each column becomes
    zero-centered with unit variance.
    """
    mean, std = batch_statistics(outcomes)
    normalized = (outcomes - mean[None, :]) / std[None, :]
    return normalized, NormCache(normalized, std)


def normalize_backward(cache: NormCache, grad: np.ndarray) -> np.ndarray:
    """Standard batch-norm backward without affine parameters.

    dL/dy_i = (g_i - mean(g) - y_hat_i * mean(g * y_hat)) / std
    """
    grad = np.asarray(grad, dtype=float)
    y_hat = cache.normalized
    g_mean = grad.mean(axis=0, keepdims=True)
    gy_mean = (grad * y_hat).mean(axis=0, keepdims=True)
    return (grad - g_mean - y_hat * gy_mean) / cache.std[None, :]


def normalize_with_stats(
    outcomes: np.ndarray, mean: np.ndarray, std: np.ndarray
) -> np.ndarray:
    """Normalize using externally profiled statistics (Table 13 mode).

    Used when the deployment batch is too small for reliable statistics:
    the mean/std are measured once on the validation set *on the same
    hardware* and then reused.
    """
    outcomes = np.asarray(outcomes, dtype=float)
    std = np.maximum(np.asarray(std, dtype=float), np.sqrt(EPS))
    return (outcomes - np.asarray(mean)[None, :]) / std[None, :]


def denormalize(normalized: np.ndarray, mean: np.ndarray, std: np.ndarray) -> np.ndarray:
    """Inverse of :func:`normalize_with_stats` (used in tests)."""
    return np.asarray(normalized) * np.asarray(std)[None, :] + np.asarray(mean)[None, :]
