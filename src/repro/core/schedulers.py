"""Learning-rate schedules, standalone and composable.

:class:`~repro.core.optim.Adam` bakes in one cosine decay; these
schedule objects factor that policy out so fine-tuning
(:mod:`repro.core.adaptation`) and SPSA can pick schedules
independently.  A schedule is a callable ``step -> lr``.
"""

from __future__ import annotations

import numpy as np


class ConstantLR:
    """Fixed learning rate."""

    def __init__(self, lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.base_lr = lr

    def lr(self, step: int) -> float:
        return self.base_lr

    def __call__(self, step: int) -> float:
        return self.lr(step)


class StepLR(ConstantLR):
    """Multiply the rate by ``gamma`` every ``period`` steps."""

    def __init__(self, lr: float, period: int, gamma: float = 0.5):
        super().__init__(lr)
        if period < 1:
            raise ValueError("period must be >= 1")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.period = period
        self.gamma = gamma

    def lr(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.period)


class CosineLR(ConstantLR):
    """Cosine decay from ``lr`` to ``lr * min_fraction`` over ``total_steps``."""

    def __init__(self, lr: float, total_steps: int, min_fraction: float = 0.1):
        super().__init__(lr)
        if total_steps < 1:
            raise ValueError("total_steps must be >= 1")
        if not 0 <= min_fraction <= 1:
            raise ValueError("min_fraction must be in [0, 1]")
        self.total_steps = total_steps
        self.min_fraction = min_fraction

    def lr(self, step: int) -> float:
        progress = min(step / self.total_steps, 1.0)
        floor = self.base_lr * self.min_fraction
        return floor + 0.5 * (self.base_lr - floor) * (1 + np.cos(np.pi * progress))


class WarmupCosineLR(CosineLR):
    """Linear warmup for ``warmup_steps``, then cosine decay."""

    def __init__(
        self,
        lr: float,
        total_steps: int,
        warmup_steps: int,
        min_fraction: float = 0.1,
    ):
        super().__init__(lr, total_steps, min_fraction)
        if not 0 <= warmup_steps < total_steps:
            raise ValueError("need 0 <= warmup_steps < total_steps")
        self.warmup_steps = warmup_steps

    def lr(self, step: int) -> float:
        if self.warmup_steps and step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        remaining = self.total_steps - self.warmup_steps
        progress = min((step - self.warmup_steps) / max(remaining, 1), 1.0)
        floor = self.base_lr * self.min_fraction
        return floor + 0.5 * (self.base_lr - floor) * (1 + np.cos(np.pi * progress))
