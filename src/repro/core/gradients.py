"""Gradients through quantum circuits: adjoint method + parameter shift.

The paper trains with PyTorch autograd through TorchQuantum's simulator.
This module provides the equivalent from scratch:

* :func:`adjoint_backward` -- exact reverse-mode gradients in a *single*
  backward sweep.  The trick: the upstream gradients dL/dE_q weight the
  per-qubit Pauli-Z observables into one per-sample *effective diagonal
  observable* ``O_eff = sum_q (dL/dE_q) Z_q``; a standard adjoint sweep
  against O_eff then yields dL/d(every bound gate parameter) at the cost
  of one extra pass over the circuit, batched over samples.  Parameter
  derivatives chain onto weights / inputs through the affine coefficients
  of each :class:`ParamExpr`.

* :class:`ParameterShiftEngine` -- the hardware-executable two-term rule
  ``dE/dt = (E(t + pi/2) - E(t - pi/2)) / 2`` used for the paper's
  on-QC training experiment (Table 3), valid for weights that enter the
  compiled circuit exactly once with coefficient +-1 (single-Pauli
  rotations).

Both are cross-validated against finite differences and against each
other in ``tests/test_gradients.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.parameters import INPUT, WEIGHT
from repro.sim.statevector import (
    BoundOp,
    apply_matrix,
    apply_matrix_reference,
    bind_circuit,
    run_ops,
    z_signs,
)


@dataclass
class QuantumTape:
    """Everything saved by a forward pass that backward needs."""

    circuit: Circuit
    ops: "list[BoundOp]"
    state: np.ndarray  # final statevector (batch, dim)
    n_weights: int
    n_inputs: int

    @property
    def batch(self) -> int:
        return self.state.shape[0]


def forward_with_tape(
    circuit: Circuit,
    weights: "np.ndarray | None",
    inputs: "np.ndarray | None",
    batch: "int | None" = None,
    n_weights: "int | None" = None,
    n_inputs: "int | None" = None,
) -> "tuple[np.ndarray, QuantumTape]":
    """Run a circuit and keep the tape for adjoint backward.

    Returns per-qubit Z expectations ``(batch, n_qubits)`` and the tape.
    """
    if inputs is not None:
        inputs = np.asarray(inputs, dtype=float)
        batch = inputs.shape[0]
    if batch is None:
        batch = 1
    ops = bind_circuit(circuit, weights, inputs, batch)
    state = run_ops(ops, circuit.n_qubits, batch)
    table = circuit.parameter_table
    tape = QuantumTape(
        circuit,
        ops,
        state,
        n_weights if n_weights is not None else table.num_weights,
        n_inputs if n_inputs is not None else table.num_inputs,
    )
    probs = np.abs(state) ** 2
    expectations = probs @ z_signs(circuit.n_qubits).T
    return expectations, tape


def adjoint_backward(
    tape: QuantumTape, grad_expectations: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Backpropagate dL/dE through the circuit in one adjoint sweep.

    Parameters
    ----------
    tape:
        Output of :func:`forward_with_tape`.
    grad_expectations:
        ``(batch, n_qubits)`` upstream gradients dL/dE_q (qubits indexed
        in the tape circuit's own ordering).

    Returns
    -------
    (weight_grad, input_grad):
        ``(n_weights,)`` summed over the batch, and ``(batch, n_inputs)``
        per-sample.
    """
    n = tape.circuit.n_qubits
    batch = tape.batch
    grad_expectations = np.asarray(grad_expectations, dtype=float)
    if grad_expectations.shape != (batch, n):
        raise ValueError(
            f"grad shape {grad_expectations.shape} != ({batch}, {n})"
        )

    # Effective per-sample diagonal observable O_eff = sum_q g_q * Z_q.
    diag = grad_expectations @ z_signs(n)  # (batch, dim)
    dim = tape.state.shape[1]

    # |psi> and O_eff|psi> live stacked in one (2*batch, dim) buffer: ops
    # with no differentiable parameters (the vast majority after error
    # insertion) advance both with a single fused gate application.  Two
    # ping-pong work buffers remove all per-gate allocation; the cached
    # BoundOp.adjoint_matrix is computed once per op, not per sweep.
    pair = np.empty((2 * batch, dim), dtype=complex)
    pair[:batch] = tape.state
    np.multiply(diag, tape.state, out=pair[batch:])
    scratch = np.empty_like(pair)

    weight_grad = np.zeros(tape.n_weights)
    input_grad = np.zeros((batch, tape.n_inputs))

    for op in reversed(tape.ops):
        adj = op.adjoint_matrix()
        if not op.grad_params:
            if op.batched:
                apply_matrix(pair[:batch], adj, op.qubits, n, out=scratch[:batch])
                apply_matrix(pair[batch:], adj, op.qubits, n, out=scratch[batch:])
            else:
                apply_matrix(pair, adj, op.qubits, n, out=scratch)
            pair, scratch = scratch, pair
            continue
        # |psi_{k-1}>; the bra (old value) is still needed for the inner
        # products, so it advances only after the parameter gradients.
        psi = apply_matrix(pair[:batch], adj, op.qubits, n, out=scratch[:batch])
        bra = pair[batch:]
        for which, expr in op.grad_params:
            dmat = op.dmatrix(which)
            dpsi = apply_matrix(psi, dmat, op.qubits, n)
            # dL/d(param) per sample: 2 Re <bra | dU | psi_{k-1}>
            inner = np.einsum("bi,bi->b", bra.conj(), dpsi)
            g = 2.0 * np.real(inner)
            for kind, index, coeff in expr.terms:
                if kind == WEIGHT:
                    weight_grad[index] += coeff * g.sum()
                elif kind == INPUT:
                    input_grad[:, index] += coeff * g
        apply_matrix(bra, adj, op.qubits, n, out=scratch[batch:])
        pair, scratch = scratch, pair

    return weight_grad, input_grad


def adjoint_backward_reference(
    tape: QuantumTape, grad_expectations: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """The original adjoint sweep over the reference apply kernel.

    Re-derives every permutation and allocates fresh states per gate;
    kept as the numerical baseline for :func:`adjoint_backward` in the
    equivalence tests and the ``benchmarks/perf`` harness.
    """
    n = tape.circuit.n_qubits
    batch = tape.batch
    grad_expectations = np.asarray(grad_expectations, dtype=float)
    if grad_expectations.shape != (batch, n):
        raise ValueError(
            f"grad shape {grad_expectations.shape} != ({batch}, {n})"
        )

    diag = grad_expectations @ z_signs(n)
    psi = tape.state
    bra = diag * psi

    weight_grad = np.zeros(tape.n_weights)
    input_grad = np.zeros((batch, tape.n_inputs))

    for op in reversed(tape.ops):
        if op.batched:
            adj = op.matrix.conj().transpose(0, 2, 1)
        else:
            adj = op.matrix.conj().T
        psi = apply_matrix_reference(psi, adj, op.qubits, n)
        gate = op.gate
        if gate.params:
            for which, expr in enumerate(gate.params):
                if expr.is_constant:
                    continue
                dmat = op.dmatrix(which)
                dpsi = apply_matrix_reference(psi, dmat, op.qubits, n)
                inner = np.einsum("bi,bi->b", bra.conj(), dpsi)
                g = 2.0 * np.real(inner)
                for kind, index, coeff in expr.terms:
                    if kind == WEIGHT:
                        weight_grad[index] += coeff * g.sum()
                    elif kind == INPUT:
                        input_grad[:, index] += coeff * g
        bra = apply_matrix_reference(bra, adj, op.qubits, n)

    return weight_grad, input_grad


def finite_difference_gradients(
    f: "Callable[[np.ndarray], float]", x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central finite differences (testing reference)."""
    x = np.asarray(x, dtype=float)
    grad = np.zeros_like(x)
    for i in range(x.size):
        plus = x.copy()
        minus = x.copy()
        plus.flat[i] += eps
        minus.flat[i] -= eps
        grad.flat[i] = (f(plus) - f(minus)) / (2 * eps)
    return grad


class ParameterShiftEngine:
    """Two-term parameter-shift Jacobians through a black-box executor.

    ``executor`` is any callable ``(weights, inputs) -> (batch, n_qubits)``
    expectations -- including *noisy, shot-sampled hardware surrogates*,
    which is the whole point: this is how the paper trains directly on a
    quantum device (Table 3, "train the model with parameter shift").
    """

    SHIFT = np.pi / 2.0

    def __init__(
        self, executor: "Callable[[np.ndarray, np.ndarray], np.ndarray]"
    ):
        self.executor = executor

    @staticmethod
    def validate_shiftable(circuit: Circuit, n_weights: int) -> None:
        """Check each weight enters the circuit once with coefficient +-1.

        That is the condition under which the two-term rule is exact.
        """
        occurrences = np.zeros(n_weights, dtype=int)
        for gate in circuit.gates:
            for expr in gate.params:
                for kind, index, coeff in expr.terms:
                    if kind != WEIGHT:
                        continue
                    occurrences[index] += 1
                    if abs(abs(coeff) - 1.0) > 1e-12:
                        raise ValueError(
                            f"weight {index} has coefficient {coeff}; "
                            "two-term parameter shift requires +-1"
                        )
        multiple = np.nonzero(occurrences > 1)[0]
        if multiple.size:
            raise ValueError(
                f"weights {multiple.tolist()} appear multiple times; "
                "two-term parameter shift is not exact for them"
            )

    def weight_jacobian(
        self, weights: np.ndarray, inputs: np.ndarray
    ) -> np.ndarray:
        """d E[b, q] / d w[i] of shape (batch, n_qubits, n_weights)."""
        weights = np.asarray(weights, dtype=float)
        base = self.executor(weights, inputs)
        batch, n_qubits = base.shape
        jac = np.zeros((batch, n_qubits, weights.size))
        for i in range(weights.size):
            shifted = weights.copy()
            shifted[i] += self.SHIFT
            plus = self.executor(shifted, inputs)
            shifted[i] -= 2 * self.SHIFT
            minus = self.executor(shifted, inputs)
            jac[:, :, i] = (plus - minus) / 2.0
        return jac

    def input_jacobian(
        self, weights: np.ndarray, inputs: np.ndarray
    ) -> np.ndarray:
        """d E[b, q] / d x[b, j] of shape (batch, n_qubits, n_inputs)."""
        inputs = np.asarray(inputs, dtype=float)
        batch, n_inputs = inputs.shape
        sample = self.executor(weights, inputs)
        jac = np.zeros((batch, sample.shape[1], n_inputs))
        for j in range(n_inputs):
            shifted = inputs.copy()
            shifted[:, j] += self.SHIFT
            plus = self.executor(weights, shifted)
            shifted[:, j] -= 2 * self.SHIFT
            minus = self.executor(weights, shifted)
            jac[:, :, j] = (plus - minus) / 2.0
        return jac

    def backward(
        self,
        weights: np.ndarray,
        inputs: np.ndarray,
        grad_expectations: np.ndarray,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Chain upstream dL/dE through shift-rule Jacobians.

        Returns (weight_grad summed over batch, per-sample input_grad).
        """
        jac_w = self.weight_jacobian(weights, inputs)
        jac_x = self.input_jacobian(weights, inputs)
        weight_grad = np.einsum("bq,bqi->i", grad_expectations, jac_w)
        input_grad = np.einsum("bq,bqj->bj", grad_expectations, jac_x)
        return weight_grad, input_grad
