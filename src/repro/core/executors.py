"""Block executors: how one QNN block's circuit actually runs.

The same compiled block can execute on several backends:

* :class:`NoiselessExecutor` -- exact statevector, differentiable
  (adjoint).  The paper's "noise-free simulation" baseline and the
  backbone of noise-unaware training.
* :class:`GateInsertionExecutor` -- statevector with freshly sampled
  Pauli error gates per call plus analytic readout-error emulation,
  differentiable.  This is QuantumNAT's noise-injected *training*
  backend (a new error sample every training step, Figure 5).
* :class:`DensityEvalExecutor` -- exact noisy channel evaluation
  (inference only), the "evaluation with noise model" of Table 11.
* :class:`DensityTrainExecutor` -- exact noisy channel *training*:
  forward through the compiled superoperator stream, backward via the
  adjoint-on-superops sweep (:mod:`repro.core.density_training`), so
  noise-injection training runs against the exact channel instead of
  sampled realizations (``TrainConfig(engine="density")``).
* :class:`TrajectoryEvalExecutor` -- Monte-Carlo trajectories + shot
  sampling against the *drifted hardware* model: the "real QC" surrogate
  (inference only).  ``unravel="jump"`` switches it to the quantum-jump
  (MCWF) unraveling, the sampled backend that evaluates exact
  relaxation channels.
* :class:`MCWFTrainExecutor` -- noise-injection *training* on the
  quantum-jump unraveling: sampled relaxation jumps with non-unitary
  no-jump evolution, differentiable via the checkpointed adjoint
  (``TrainConfig(engine="mcwf")``) -- the stochastic-wavefunction
  counterpart of :class:`DensityTrainExecutor` with no density-matrix
  width bound.
* :class:`StabilizerEvalExecutor` -- Clifford-tableau trajectories
  (inference only): Pauli-noise sweeps in polynomial time with no
  qubit cap, admitting only circuits that pass the Clifford screen
  (:func:`repro.sim.stabilizer.clifford_ops`).

Every executor is enrolled in the engine registry
(:mod:`repro.core.engine`) under a name with declared capabilities;
``TrainConfig``, the pipeline and the cross-backend test harness
resolve backends through that registry rather than through these
classes directly.  All executors consume/produce expectations in
logical qubit order.
"""

from __future__ import annotations

import warnings
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.core.gradients import QuantumTape, adjoint_backward, forward_with_tape
from repro.noise.density_backend import run_noisy_density
from repro.noise.readout import apply_readout_to_expectations
from repro.noise.sampler import ErrorGateSampler
from repro.noise.trajectory import (
    mcwf_adjoint_backward,
    mcwf_forward_with_tape,
    run_noisy_trajectories,
    stacked_noisy_backward,
    stacked_noisy_forward_with_tape,
)
from repro.utils.rng import as_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.compiler.passes import CompiledCircuit
    from repro.noise.model import NoiseModel


@runtime_checkable
class EvalExecutor(Protocol):
    """The inference contract every evaluation backend implements.

    ``forward(compiled, weights, inputs)`` returns ``(logical
    expectations, cache)`` for one compiled block; ``differentiable``
    says whether ``backward`` exists and is exact.  This protocol *is*
    the inference API: :meth:`repro.core.pipeline.QuantumNATModel
    .predict` and the serving layer (:mod:`repro.serve`) accept any
    conforming object and nothing else -- the registry's executor fleet,
    test stubs and user-supplied backends all type-check the same way
    (``isinstance(executor, EvalExecutor)``) instead of being probed by
    duck-typed ``getattr``.
    """

    differentiable: bool

    def forward(
        self,
        compiled: "CompiledCircuit",
        weights: np.ndarray,
        inputs: np.ndarray,
    ) -> "tuple[np.ndarray, object]": ...


@runtime_checkable
class InferenceExecutor(EvalExecutor, Protocol):
    """An :class:`EvalExecutor` with a tape-free inference fast path.

    ``forward_inference`` skips gradient bookkeeping entirely (e.g. the
    gate-fusion sweep of :class:`NoiselessExecutor`); ``predict``
    dispatches to it when the executor conforms, to ``forward``
    otherwise.
    """

    def forward_inference(
        self,
        compiled: "CompiledCircuit",
        weights: np.ndarray,
        inputs: np.ndarray,
    ) -> np.ndarray: ...


def _param_counts(
    weights: "np.ndarray | None", inputs: "np.ndarray | None"
) -> "tuple[int | None, int | None]":
    """(n_weights, n_inputs) hints for tape builders; None defers to
    the circuit's parameter table (weight-/input-free harness runs)."""
    n_weights = None if weights is None else np.asarray(weights).size
    n_inputs = None if inputs is None else np.asarray(inputs).shape[1]
    return n_weights, n_inputs


@dataclass
class BlockCache:
    """Per-block state saved by a differentiable forward pass."""

    tape: QuantumTape
    measure_qubits: "tuple[int, ...]"
    readout_scales: "np.ndarray | None" = None
    #: >1 when the tape's state stacks multiple noise realizations.
    n_realizations: int = 1


def _gather_logical(expectations: np.ndarray, measure: "tuple[int, ...]") -> np.ndarray:
    return expectations[:, list(measure)]


def _scatter_logical(
    grad_logical: np.ndarray, measure: "tuple[int, ...]", n_compact: int
) -> np.ndarray:
    grad = np.zeros((grad_logical.shape[0], n_compact))
    grad[:, list(measure)] = grad_logical
    return grad


#: Sentinel distinguishing "keyword not passed" from an explicit value,
#: so the deprecation shim can detect genuine positional/keyword clashes.
_UNSET = object()

#: Legacy positional order of the ``make_*_executor`` helpers before the
#: keyword-only unification (PR 7); the shim maps stray positionals onto
#: these names under a DeprecationWarning.
_LEGACY_EXECUTOR_PARAMS = ("shots", "rng", "n_trajectories", "n_workers", "supervisor")


def _apply_legacy_executor_args(
    name: str, legacy_args: tuple, kwargs: dict, n_trajectories
) -> dict:
    """Fold deprecated call forms into the keyword-only signature.

    Two deprecated spellings are accepted with a warning: positional
    arguments after ``model`` (the pre-PR-7 ``(model, shots, rng,
    n_trajectories, n_workers, supervisor)`` order) and the
    ``n_trajectories=`` keyword (now ``samples=``, the registry
    factories' uniform name).  Mixing a deprecated spelling with its
    replacement keyword raises ``TypeError`` rather than guessing.
    """
    if legacy_args:
        if len(legacy_args) > len(_LEGACY_EXECUTOR_PARAMS):
            raise TypeError(
                f"{name}() takes at most {len(_LEGACY_EXECUTOR_PARAMS) + 1} "
                f"positional arguments ({len(legacy_args) + 1} given)"
            )
        warnings.warn(
            f"positional arguments to {name}() are deprecated; use the "
            "keyword-only signature (shots=, rng=, samples=, n_workers=, "
            "supervisor=, noise_factor=)",
            DeprecationWarning,
            stacklevel=3,
        )
        for param, value in zip(_LEGACY_EXECUTOR_PARAMS, legacy_args):
            target = "samples" if param == "n_trajectories" else param
            if target in kwargs:
                raise TypeError(
                    f"{name}() got both a positional value and keyword "
                    f"{target!r}"
                )
            kwargs[target] = value
    if n_trajectories is not None:
        warnings.warn(
            f"the n_trajectories argument of {name}() is deprecated; "
            "use samples= (the registry factories' uniform name)",
            DeprecationWarning,
            stacklevel=3,
        )
        if "samples" in kwargs:
            raise TypeError(
                f"{name}() got both n_trajectories and samples"
            )
        kwargs["samples"] = n_trajectories
    return kwargs


def _explicit_kwargs(
    shots, rng, samples, n_workers, supervisor, noise_factor
) -> dict:
    """Only the keywords the caller actually passed (sentinel-filtered)."""
    passed = dict(
        shots=shots, rng=rng, samples=samples, n_workers=n_workers,
        supervisor=supervisor, noise_factor=noise_factor,
    )
    return {k: v for k, v in passed.items() if v is not _UNSET}


def make_real_qc_executor(
    model,
    *legacy_args,
    shots: "int | None" = _UNSET,
    rng: "int | np.random.Generator | None" = _UNSET,
    samples: int = _UNSET,
    n_workers: int = _UNSET,
    supervisor=_UNSET,
    noise_factor: float = _UNSET,
    n_trajectories: "int | None" = None,
) -> EvalExecutor:
    """The 'real QC' surrogate for a model's device.

    A physical device run samples errors independently on every shot, so
    the faithful emulation is the *exact* noisy channel (density matrix,
    drifted hardware noise model) plus multinomial shot noise.  The
    backend is resolved through the engine registry from the model's
    channel kinds and widest block: exact (density) engines are
    preferred, and wide circuits fall back to Monte-Carlo trajectories
    (quantum-jump unraveling when the model carries exact relaxation
    channels); ``n_workers`` shards their chunks across a worker pool
    (bit-identical to serial).

    The signature is keyword-only and identical to
    :func:`make_noise_model_executor` and ``EngineSpec.factory``
    (``shots``, ``rng``, ``samples``, ``n_workers``, ``supervisor``,
    ``noise_factor``); the pre-unification positional form and the
    ``n_trajectories`` spelling still work under a
    ``DeprecationWarning``.
    """
    kwargs = _apply_legacy_executor_args(
        "make_real_qc_executor",
        legacy_args,
        _explicit_kwargs(shots, rng, samples, n_workers, supervisor, noise_factor),
        n_trajectories,
    )
    kwargs.setdefault("shots", 8192)
    return _resolve_eval_executor(
        model, model.device.hardware_model, **kwargs
    )


def make_noise_model_executor(
    model,
    *legacy_args,
    shots: "int | None" = _UNSET,
    rng: "int | np.random.Generator | None" = _UNSET,
    samples: int = _UNSET,
    n_workers: int = _UNSET,
    supervisor=_UNSET,
    noise_factor: float = _UNSET,
    n_trajectories: "int | None" = None,
) -> EvalExecutor:
    """Evaluation under the *published* noise model (paper Table 11).

    Resolved through the engine registry exactly like
    :func:`make_real_qc_executor` (same keyword-only signature, same
    deprecation shims), just against the published model.
    """
    kwargs = _apply_legacy_executor_args(
        "make_noise_model_executor",
        legacy_args,
        _explicit_kwargs(shots, rng, samples, n_workers, supervisor, noise_factor),
        n_trajectories,
    )
    return _resolve_eval_executor(
        model, model.device.noise_model, **kwargs
    )


def _resolve_eval_executor(
    model, noise_model, *, shots=None, rng=None, samples=32, n_workers=0,
    supervisor=None, noise_factor=1.0,
):
    from repro.core.engine import resolve_eval_engine

    widest = max(c.circuit.n_qubits for c in model.compiled)
    spec = resolve_eval_engine(noise_model.channel_kinds, widest)
    return spec.factory(
        noise_model, rng=rng, samples=samples, shots=shots,
        n_workers=n_workers, supervisor=supervisor,
        noise_factor=noise_factor,
    )


class NoiselessExecutor:
    """Exact statevector execution with adjoint gradients.

    Repeated forwards over the same compiled block hit the circuit's
    :class:`~repro.sim.statevector.BindPlan`, so constant gate matrices
    are evaluated once per block, not once per training step.
    """

    differentiable = True

    def forward(
        self,
        compiled: "CompiledCircuit",
        weights: np.ndarray,
        inputs: np.ndarray,
    ) -> "tuple[np.ndarray, BlockCache]":
        n_weights, n_inputs = _param_counts(weights, inputs)
        expectations, tape = forward_with_tape(
            compiled.circuit,
            weights,
            inputs,
            n_weights=n_weights,
            n_inputs=n_inputs,
        )
        logical = _gather_logical(expectations, compiled.measure_qubits)
        return logical, BlockCache(tape, compiled.measure_qubits)

    def forward_inference(
        self,
        compiled: "CompiledCircuit",
        weights: np.ndarray,
        inputs: np.ndarray,
    ) -> np.ndarray:
        """Tape-free forward through the gate-fusion pass.

        Inference sweeps need no per-gate tape, so adjacent gate runs are
        merged into single matrices (cached per weight vector) before the
        statevector sweep -- see :mod:`repro.compiler.fusion`.
        """
        from repro.compiler.fusion import fusion_plan_for
        from repro.sim.statevector import run_ops, z_expectations

        circuit = compiled.circuit
        inputs = np.asarray(inputs, dtype=float)
        ops = fusion_plan_for(circuit).fused_ops(weights, inputs)
        state = run_ops(ops, circuit.n_qubits, inputs.shape[0])
        expectations = z_expectations(state, circuit.n_qubits)
        return _gather_logical(expectations, compiled.measure_qubits)

    def backward(
        self, cache: BlockCache, grad_logical: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        grad = _scatter_logical(
            grad_logical, cache.measure_qubits, cache.tape.circuit.n_qubits
        )
        return adjoint_backward(cache.tape, grad)


class _ReadoutEmulationMixin:
    """Analytic readout-error emulation shared by the training backends.

    Readout confusion acts on per-qubit <Z> as an affine map (scale
    cached for the backward pass); the confusion matrices are stacked
    once per compiled block -- executors only ever see a handful of
    blocks -- instead of on every training step.  Consumers must set
    ``self.noise_model`` and ``self._readout_cache = []``.
    """

    def _readout_matrices(self, compiled: "CompiledCircuit") -> np.ndarray:
        for cached, matrices in self._readout_cache:
            if cached is compiled:
                return matrices
        matrices = compiled.readout_matrices(self.noise_model)
        self._readout_cache.append((compiled, matrices))
        return matrices

    def _emulate_readout(
        self, compiled: "CompiledCircuit", logical: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Apply the block's readout confusion; returns (noisy, scales)."""
        return apply_readout_to_expectations(
            logical, self._readout_matrices(compiled)
        )


class _WorkerPoolMixin:
    """Persistent executor-held worker pool: lazy, keyed, reaped.

    Shared by the executors that shard work across calls --
    :class:`GateInsertionExecutor` / :class:`MCWFTrainExecutor` band
    their stacked training sweeps over a thread pool, and
    :class:`TrajectoryEvalExecutor` shards trajectory chunks over a
    thread or process pool.  The pool stays open *across calls* (the
    whole point: spawn cost is paid once per executor, not once per
    training step), is recreated when ``(shard_backend, n_workers)``
    change, and is released by :meth:`close`, the context-manager
    protocol, or -- leak guard -- a finalizer at collection time.
    """

    n_workers: int = 0
    shard_backend: str = "thread"

    def _init_pool_state(self) -> None:
        self._pool = None
        self._pool_key = None
        self._pool_finalizer = None

    def _ensure_pool(self):
        """The persistent worker pool, (re)built to match the settings."""
        if self.n_workers <= 0:
            self.close()
            return None
        key = (self.shard_backend, self.n_workers)
        if self._pool is not None and self._pool_key != key:
            self.close()
        if self._pool is None:
            from concurrent.futures import (
                ProcessPoolExecutor,
                ThreadPoolExecutor,
            )

            cls = (
                ThreadPoolExecutor
                if self.shard_backend == "thread"
                else ProcessPoolExecutor
            )
            self._pool = cls(max_workers=self.n_workers)
            self._pool_key = key
            # Belt-and-braces leak guard: an executor dropped without
            # close() still reaps its workers when it is collected (the
            # mid-sweep exception path additionally closes eagerly).
            self._pool_finalizer = weakref.finalize(
                self, _reap_pool, self._pool
            )
        return self._pool

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
            self._pool_key = None

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class GateInsertionExecutor(_ReadoutEmulationMixin, _WorkerPoolMixin):
    """QuantumNAT's training backend: sampled error gates + readout noise.

    Every ``forward`` call samples a fresh set of Pauli error gates
    (scaled by noise factor ``T``) and applies the device's readout
    confusion to the measured expectations.  The inserted Paulis are
    constant unitaries and the readout map is affine, so the adjoint
    backward pass stays exact.

    With ``n_realizations > 1`` each step averages that many independent
    error realizations, executed as one fused
    ``(n_realizations * batch, 2**n)`` statevector sweep -- the training
    batch axis composed with the stacked-trajectory axis (see
    :func:`~repro.noise.trajectory.stacked_noisy_forward_with_tape`).

    ``n_workers > 0`` bands that stacked sweep (one fixed row band per
    realization) over an executor-held persistent *thread* pool, so a
    training loop pays pool spawn once instead of once per step.  The
    band layout never depends on the worker count: results are bitwise
    identical across worker counts, and match the ``n_workers = 0``
    serial sweep to float tolerance (the sampled error events are
    identical -- the rng is consumed before any banding decision).
    """

    differentiable = True

    def __init__(
        self,
        noise_model: "NoiseModel",
        noise_factor: float = 1.0,
        readout: bool = True,
        rng: "int | np.random.Generator | None" = None,
        n_realizations: int = 1,
        n_workers: int = 0,
    ):
        if n_realizations < 1:
            raise ValueError("need at least one noise realization")
        if n_workers < 0:
            raise ValueError(f"n_workers must be >= 0, got {n_workers}")
        self.noise_model = noise_model
        self.noise_factor = noise_factor
        self.readout = readout
        self.rng = as_rng(rng)
        self.n_realizations = n_realizations
        self.n_workers = n_workers
        self.sampler = ErrorGateSampler(noise_model, noise_factor)
        self.last_insertion_stats = None
        self._readout_cache: "list[tuple[CompiledCircuit, np.ndarray]]" = []
        self._init_pool_state()

    def forward(
        self,
        compiled: "CompiledCircuit",
        weights: np.ndarray,
        inputs: np.ndarray,
    ) -> "tuple[np.ndarray, BlockCache]":
        n_weights, n_inputs = _param_counts(weights, inputs)
        if self.n_realizations > 1:
            expectations, tape, n_inserted = stacked_noisy_forward_with_tape(
                compiled, self.sampler, weights, inputs,
                self.n_realizations, self.rng,
                n_weights=n_weights,
                n_inputs=n_inputs,
                # Supplier, not instance: the pool only spawns on sweeps
                # that actually band (n_workers = 0 stays pool-free).
                pool=self._ensure_pool if self.n_workers > 0 else None,
            )
            from repro.noise.sampler import InsertionStats

            self.last_insertion_stats = InsertionStats(
                len(compiled.circuit.gates) * self.n_realizations, n_inserted
            )
        else:
            noisy_circuit, stats = self.sampler.sample(
                compiled.circuit, compiled.physical_qubits, self.rng
            )
            self.last_insertion_stats = stats
            expectations, tape = forward_with_tape(
                noisy_circuit,
                weights,
                inputs,
                n_weights=n_weights,
                n_inputs=n_inputs,
            )
        logical = _gather_logical(expectations, compiled.measure_qubits)
        scales = None
        if self.readout:
            logical, scales = self._emulate_readout(compiled, logical)
        return logical, BlockCache(
            tape, compiled.measure_qubits, scales, self.n_realizations
        )

    def backward(
        self, cache: BlockCache, grad_logical: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        if cache.readout_scales is not None:
            grad_logical = grad_logical * cache.readout_scales[None, :]
        grad = _scatter_logical(
            grad_logical, cache.measure_qubits, cache.tape.circuit.n_qubits
        )
        if cache.n_realizations > 1:
            return stacked_noisy_backward(cache.tape, grad, cache.n_realizations)
        return adjoint_backward(cache.tape, grad)


class DensityTrainExecutor(_ReadoutEmulationMixin):
    """Exact-channel noisy training backend (adjoint on superoperators).

    The deterministic counterpart of :class:`GateInsertionExecutor`:
    instead of sampling one Pauli error realization per step, every
    forward evolves the density matrix through the compiled
    superoperator stream -- Pauli + relaxation + coherent channels exact
    -- and backward runs the adjoint sweep in superoperator space
    (:func:`repro.core.density_training.density_adjoint_backward`),
    which is exact for noise channels and arbitrary affine parameter
    expressions alike.  Readout confusion applies as the same affine
    per-qubit map the insertion backend uses, keeping it differentiable.

    Deterministic (no sampling noise in the gradient), at density-matrix
    cost: reserved for compact (<= 8 qubit) blocks, selected via
    ``TrainConfig(engine="density")``.
    """

    differentiable = True

    def __init__(
        self,
        noise_model: "NoiseModel",
        noise_factor: float = 1.0,
        readout: bool = True,
    ):
        if noise_factor < 0:
            raise ValueError("noise factor must be non-negative")
        self.noise_model = noise_model
        self.noise_factor = noise_factor
        self.readout = readout
        self._readout_cache: "list[tuple[CompiledCircuit, np.ndarray]]" = []

    def forward(
        self,
        compiled: "CompiledCircuit",
        weights: np.ndarray,
        inputs: np.ndarray,
    ) -> "tuple[np.ndarray, BlockCache]":
        from repro.core.density_training import density_forward_with_tape

        n_weights, n_inputs = _param_counts(weights, inputs)
        expectations, tape = density_forward_with_tape(
            compiled,
            self.noise_model,
            weights,
            inputs,
            noise_factor=self.noise_factor,
            n_weights=n_weights,
            n_inputs=n_inputs,
        )
        logical = _gather_logical(expectations, compiled.measure_qubits)
        scales = None
        if self.readout:
            logical, scales = self._emulate_readout(compiled, logical)
        # BlockCache is duck-typed over the tape: backward only needs
        # the DensityTape's n_qubits and the shared readout-scale fields.
        return logical, BlockCache(tape, compiled.measure_qubits, scales)

    def backward(
        self, cache: BlockCache, grad_logical: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        from repro.core.density_training import density_adjoint_backward

        if cache.readout_scales is not None:
            grad_logical = grad_logical * cache.readout_scales[None, :]
        grad = _scatter_logical(
            grad_logical, cache.measure_qubits, cache.tape.n_qubits
        )
        return density_adjoint_backward(cache.tape, grad)


class DensityEvalExecutor:
    """Exact noisy-channel inference via density matrices (no gradients).

    ``engine`` selects the density backend: ``"superop"`` (default) runs
    the compiled superoperator stream of :mod:`repro.compiler.superop`;
    ``"reference"`` the retained per-Kraus baseline.  The two agree to
    < 1e-10 (enforced by the equivalence suite and the perf harness).
    """

    differentiable = False

    def __init__(
        self,
        noise_model: "NoiseModel",
        noise_factor: float = 1.0,
        shots: "int | None" = None,
        rng: "int | np.random.Generator | None" = None,
        engine: str = "superop",
    ):
        if engine not in ("superop", "reference"):
            raise ValueError(
                f"engine must be 'superop' or 'reference', got {engine!r}"
            )
        self.noise_model = noise_model
        self.noise_factor = noise_factor
        self.shots = shots
        self.rng = as_rng(rng)
        self.engine = engine

    def forward(
        self,
        compiled: "CompiledCircuit",
        weights: np.ndarray,
        inputs: np.ndarray,
    ) -> "tuple[np.ndarray, None]":
        expectations = run_noisy_density(
            compiled,
            self.noise_model,
            weights,
            inputs,
            noise_factor=self.noise_factor,
            shots=self.shots,
            rng=self.rng,
            engine=self.engine,
        )
        return expectations, None

    def backward(self, cache, grad):  # pragma: no cover - defensive
        raise NotImplementedError("density evaluation is inference-only")


class MCWFTrainExecutor(_ReadoutEmulationMixin, _WorkerPoolMixin):
    """Quantum-jump (MCWF) noise-injection training backend.

    The stochastic-wavefunction counterpart of
    :class:`DensityTrainExecutor`: every forward samples one (or
    ``n_realizations``) concrete quantum-jump trajectories of the *full*
    noise model -- Pauli insertions, exact relaxation Kraus jumps with
    non-unitary no-jump evolution and per-row renormalization, coherent
    miscalibration -- and backward runs the checkpointed adjoint sweep
    (:func:`repro.noise.trajectory.mcwf_adjoint_backward`), exact for
    the realized trajectory's frozen linear map.  Because it is
    statevector-bound rather than density-bound, it is the training
    backend for *wide* blocks whose noise model carries exact channels.
    Readout applies as the shared affine emulation.

    ``n_workers > 0`` holds a persistent thread pool and row-bands the
    stacked sweep over it -- but only on models *without* jump sites
    (each jump's probabilities depend on the evolved state mid-sweep,
    so a jump-carrying sweep stays a single serial pass and the pool is
    not consulted; results are unchanged either way).
    """

    differentiable = True

    def __init__(
        self,
        noise_model: "NoiseModel",
        noise_factor: float = 1.0,
        readout: bool = True,
        rng: "int | np.random.Generator | None" = None,
        n_realizations: int = 1,
        n_workers: int = 0,
    ):
        if n_realizations < 1:
            raise ValueError("need at least one noise realization")
        if n_workers < 0:
            raise ValueError(f"n_workers must be >= 0, got {n_workers}")
        self.noise_model = noise_model
        self.noise_factor = noise_factor
        self.readout = readout
        self.rng = as_rng(rng)
        self.n_realizations = n_realizations
        self.n_workers = n_workers
        self.sampler = ErrorGateSampler(
            noise_model, noise_factor, allow_exact=True
        )
        self.last_insertion_stats = None
        self._readout_cache: "list[tuple[CompiledCircuit, np.ndarray]]" = []
        # Per-block jump-site table (Kraus + effect stacks): depends only
        # on the compiled circuit and the scaled model, so it is built
        # once per block rather than once per training step.
        self._jump_cache: "list[tuple[CompiledCircuit, list]]" = []
        self._init_pool_state()

    def _jump_sites(self, compiled: "CompiledCircuit") -> list:
        for cached, sites in self._jump_cache:
            if cached is compiled:
                return sites
        sites = self.sampler.jump_table(
            compiled.circuit, compiled.physical_qubits
        )
        self._jump_cache.append((compiled, sites))
        return sites

    def forward(
        self,
        compiled: "CompiledCircuit",
        weights: np.ndarray,
        inputs: np.ndarray,
    ) -> "tuple[np.ndarray, BlockCache]":
        from repro.noise.sampler import InsertionStats

        n_weights, n_inputs = _param_counts(weights, inputs)
        expectations, tape, n_inserted = mcwf_forward_with_tape(
            compiled, self.sampler, weights, inputs,
            self.n_realizations, self.rng,
            n_weights=n_weights, n_inputs=n_inputs,
            jump_sites=self._jump_sites(compiled),
            pool=self._ensure_pool if self.n_workers > 0 else None,
        )
        self.last_insertion_stats = InsertionStats(
            len(compiled.circuit.gates) * self.n_realizations, n_inserted
        )
        logical = _gather_logical(expectations, compiled.measure_qubits)
        scales = None
        if self.readout:
            logical, scales = self._emulate_readout(compiled, logical)
        return logical, BlockCache(
            tape, compiled.measure_qubits, scales, self.n_realizations
        )

    def backward(
        self, cache: BlockCache, grad_logical: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        if cache.readout_scales is not None:
            grad_logical = grad_logical * cache.readout_scales[None, :]
        grad = _scatter_logical(
            grad_logical, cache.measure_qubits, cache.tape.circuit.n_qubits
        )
        return mcwf_adjoint_backward(cache.tape, grad, cache.n_realizations)


def _reap_pool(pool) -> None:
    """Finalizer target: shut a leaked worker pool down without waiting."""
    pool.shutdown(wait=False, cancel_futures=True)


class TrajectoryEvalExecutor(_WorkerPoolMixin):
    """'Real QC' surrogate: drifted noise + trajectories + shot sampling.

    ``n_workers > 0`` shards trajectory chunks across a
    ``shard_backend`` pool ("thread" or "process"); chunk layout and
    per-chunk RNG streams never depend on the worker count, so sharded
    output is bit-identical to the serial run for a fixed seed.
    ``shard_size`` overrides the default trajectories-per-chunk
    granularity (16) -- runs with ``n_trajectories`` above it have
    work to distribute out of the box.

    The executor holds its worker pool *open across calls* (training
    validates every epoch; respawning processes per call dominated the
    sharding win).  The pool is created lazily on the first sharded
    forward, recreated if ``n_workers``/``shard_backend`` change, and
    released by :meth:`close` (or the context-manager protocol; an
    unclosed pool is reaped at interpreter exit).

    ``unravel="jump"`` runs the quantum-jump (MCWF) unraveling instead
    of Pauli insertion -- the only sampled evaluation mode that
    represents exact relaxation channels.

    ``supervisor`` enables fault-tolerant execution: pass ``True`` for a
    default :class:`repro.runtime.supervisor.ChunkSupervisor` or an
    instance to control the retry/deadline policy.  Supervised runs
    return exactly what unsupervised runs return (chunks are
    re-runnable from their spawned seeds); a broken worker pool is
    replaced or degraded to serial under a
    :class:`~repro.runtime.errors.DegradedExecution` warning, and the
    executor's persistent pool is lazily recreated afterwards.
    """

    differentiable = False

    def __init__(
        self,
        noise_model: "NoiseModel",
        n_trajectories: int = 8,
        shots: "int | None" = 8192,
        noise_factor: float = 1.0,
        rng: "int | np.random.Generator | None" = None,
        n_workers: int = 0,
        shard_size: "int | None" = None,
        shard_backend: str = "thread",
        unravel: str = "pauli",
        supervisor=None,
    ):
        if shard_backend not in ("thread", "process"):
            raise ValueError(
                f"shard_backend must be 'thread' or 'process', got {shard_backend!r}"
            )
        if shard_size is not None and int(shard_size) < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        if n_workers < 0:
            raise ValueError(f"n_workers must be >= 0, got {n_workers}")
        if unravel not in ("pauli", "jump"):
            raise ValueError(
                f"unravel must be 'pauli' or 'jump', got {unravel!r}"
            )
        self.noise_model = noise_model
        self.n_trajectories = n_trajectories
        self.shots = shots
        self.noise_factor = noise_factor
        self.rng = as_rng(rng)
        self.n_workers = n_workers
        self.shard_size = shard_size
        self.shard_backend = shard_backend
        self.unravel = unravel
        if supervisor is True:
            from repro.runtime.supervisor import ChunkSupervisor

            supervisor = ChunkSupervisor(label="trajectory")
        self.supervisor = supervisor
        self._init_pool_state()

    def forward(
        self,
        compiled: "CompiledCircuit",
        weights: np.ndarray,
        inputs: np.ndarray,
    ) -> "tuple[np.ndarray, None]":
        try:
            expectations = run_noisy_trajectories(
                compiled,
                self.noise_model,
                weights,
                inputs,
                n_trajectories=self.n_trajectories,
                shots=self.shots,
                noise_factor=self.noise_factor,
                rng=self.rng,
                n_workers=self.n_workers,
                shard_size=self.shard_size,
                shard_backend=self.shard_backend,
                unravel=self.unravel,
                # Supplier, not instance: workers only spawn on runs that
                # actually shard (single-chunk forwards stay pool-free).
                pool=self._ensure_pool,
                supervisor=self.supervisor,
            )
        except BaseException:
            # An exception escaping mid-sweep may strand queued chunk
            # tasks in the persistent pool; release it so no orphaned
            # workers outlive the failed call (lazily rebuilt on the
            # next sharded forward).
            self.close()
            raise
        if self.supervisor is not None and self.supervisor.last_report.degraded:
            # The supervisor shut down (and possibly replaced, run-
            # scoped) our broken pool; drop the stale reference so the
            # next sharded forward lazily spawns a fresh one.
            self.close()
        return expectations, None

    def backward(self, cache, grad):  # pragma: no cover - defensive
        raise NotImplementedError("trajectory evaluation is inference-only")


#: Default trajectories per tableau chunk.  Tableau chunks are far
#: cheaper than statevector ones, so the grain is coarser than the
#: trajectory engine's 16; the layout never depends on the worker
#: count, keeping sharded output bit-identical to serial.
_STABILIZER_SHARD_SIZE = 64


def _stabilizer_program(compiled, sampler, rz_tolerance: float) -> tuple:
    """Compile one block into a flat tableau program (pure data, picklable).

    Entries are ``("g", name, qubits)`` tableau gates or ``("p", qubit,
    cum)`` Pauli-noise sites (``cum`` the sampler's cumulative
    thresholds), in sweep order: each gate's error sites follow the
    gate, exactly as the statevector trajectory sweep schedules them.
    Raises :class:`~repro.sim.stabilizer.NonCliffordCircuitError` when
    the circuit fails the Clifford screen.
    """
    from repro.sim.stabilizer import clifford_ops

    circuit = compiled.circuit
    ops_by_gate = clifford_ops(circuit, rz_tolerance)
    pauli_sites, _coherent = sampler.site_table(
        circuit, compiled.physical_qubits
    )
    sites_by_gate: "dict[int, list[tuple[int, np.ndarray]]]" = {}
    for gate_index, local_q, cum in pauli_sites:
        sites_by_gate.setdefault(gate_index, []).append(
            (int(local_q), np.asarray(cum, dtype=float))
        )
    steps: "list[tuple]" = []
    for i in range(len(circuit.gates)):
        for name, qubits in ops_by_gate[i]:
            steps.append(("g", name, tuple(qubits)))
        for local_q, cum in sites_by_gate.get(i, ()):
            steps.append(("p", local_q, cum))
    return tuple(steps)


def _stabilizer_chunk(steps: tuple, n_qubits: int, n_traj: int, seed) -> np.ndarray:
    """One tableau trajectory chunk (pure and picklable; seed-rerunnable).

    Runs ``n_traj`` independent noisy tableaus through the program in
    one batched boolean sweep and returns the ``(n_qubits,)`` *sum* of
    per-trajectory ``<Z>`` rows -- the caller divides by the global
    trajectory count after a fixed-order reduction, so serial, sharded
    and supervised runs accumulate identically.
    """
    from repro.sim.stabilizer import BatchedStabilizerState

    rng = np.random.default_rng(seed)
    state = BatchedStabilizerState(n_qubits, n_traj)
    for step in steps:
        if step[0] == "g":
            state.apply(step[1], step[2])
        else:
            _tag, qubit, cum = step
            u = rng.random(n_traj)
            choices = (u[:, None] >= cum[None, :]).sum(axis=1)
            state.apply_pauli_choices(qubit, choices)
    return state.z_expectations().sum(axis=0)


class StabilizerEvalExecutor(_WorkerPoolMixin):
    """Clifford-tableau trajectory backend: polynomial-time noisy sweeps.

    Runs ``n_trajectories`` Pauli-noise trajectories of a Clifford
    block through one :class:`~repro.sim.stabilizer
    .BatchedStabilizerState` boolean-ufunc sweep -- O(gates * B * n)
    bit operations instead of O(gates * B * 2^n) statevector work --
    so 50-100+ qubit noise characterization completes in seconds.

    Admission is screened per block by
    :func:`repro.sim.stabilizer.clifford_ops`: gates must be Clifford,
    and constant ``rz`` angles within ``rz_tolerance`` of a multiple of
    pi/2 round onto the tableau (anything else raises
    :class:`~repro.sim.stabilizer.NonCliffordCircuitError`).  Because
    admitted circuits carry no free parameters, the expectations are
    input-independent; a batched ``inputs`` only tiles the output (and
    draws independent shot noise per row).  Noise models with coherent
    miscalibration (non-Clifford rotations) or exact relaxation
    channels are rejected at construction.

    Sharding follows the trajectory engine's contract: chunk layout and
    per-chunk seed streams depend only on ``shard_size``, never on the
    worker count, so sharded output is bit-identical to serial, and a
    ``supervisor`` retries failed chunks bit-identically from their
    seeds.  Readout error applies analytically to the per-qubit
    expectations (unscaled model, like every sampled engine); ``shots``
    adds per-qubit binomial sampling noise.
    """

    differentiable = False

    def __init__(
        self,
        noise_model: "NoiseModel",
        n_trajectories: int = 256,
        shots: "int | None" = None,
        noise_factor: float = 1.0,
        rng: "int | np.random.Generator | None" = None,
        n_workers: int = 0,
        shard_size: "int | None" = None,
        shard_backend: str = "thread",
        rz_tolerance: float = 1e-8,
        supervisor=None,
    ):
        from repro.noise.model import CHANNEL_COHERENT

        if shard_backend not in ("thread", "process"):
            raise ValueError(
                f"shard_backend must be 'thread' or 'process', got {shard_backend!r}"
            )
        if shard_size is not None and int(shard_size) < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        if n_workers < 0:
            raise ValueError(f"n_workers must be >= 0, got {n_workers}")
        if n_trajectories < 1:
            raise ValueError("need at least one trajectory")
        # Raises on exact (relaxation) channels, naming capable engines.
        self.sampler = ErrorGateSampler(noise_model, noise_factor)
        if CHANNEL_COHERENT in noise_model.channel_kinds:
            raise ValueError(
                "coherent miscalibration rotations are not Clifford; the "
                "stabilizer engine cannot represent this noise model -- "
                "use a statevector or density engine"
            )
        self.noise_model = noise_model
        self.n_trajectories = n_trajectories
        self.shots = shots
        self.noise_factor = noise_factor
        self.rng = as_rng(rng)
        self.n_workers = n_workers
        self.shard_size = shard_size
        self.shard_backend = shard_backend
        self.rz_tolerance = rz_tolerance
        if supervisor is True:
            from repro.runtime.supervisor import ChunkSupervisor

            supervisor = ChunkSupervisor(label="stabilizer")
        self.supervisor = supervisor
        self._program_cache: "list[tuple[CompiledCircuit, tuple]]" = []
        self._init_pool_state()

    def _program(self, compiled: "CompiledCircuit") -> tuple:
        for cached, program in self._program_cache:
            if cached is compiled:
                return program
        program = _stabilizer_program(compiled, self.sampler, self.rz_tolerance)
        self._program_cache.append((compiled, program))
        return program

    def _sweep(self, compiled: "CompiledCircuit") -> np.ndarray:
        """Mean per-qubit <Z> over the trajectory batch, compact order."""
        program = self._program(compiled)
        n = compiled.circuit.n_qubits
        size = (
            int(self.shard_size)
            if self.shard_size is not None
            else _STABILIZER_SHARD_SIZE
        )
        chunks = [size] * (self.n_trajectories // size)
        if self.n_trajectories % size:
            chunks.append(self.n_trajectories % size)
        # One root draw off the executor's generator: the stream layout
        # depends only on the chunk decomposition, never on workers.
        root = np.random.SeedSequence(int(self.rng.integers(0, 2**63)))
        seeds = root.spawn(len(chunks))
        if self.n_workers > 0 and len(chunks) > 1:
            results = self._run_sharded(program, n, chunks, seeds)
        elif self.supervisor is not None:
            from repro.runtime.supervisor import ChunkTask

            results = self.supervisor.run(
                [
                    ChunkTask(i, _stabilizer_chunk, (program, n, count, seed))
                    for i, (count, seed) in enumerate(zip(chunks, seeds))
                ]
            )
        else:
            results = [
                _stabilizer_chunk(program, n, count, seed)
                for count, seed in zip(chunks, seeds)
            ]
        total = np.zeros(n)
        for result in results:  # fixed chunk-order accumulation
            total += result
        return total / self.n_trajectories

    def _run_sharded(self, program, n, chunks, seeds) -> list:
        pool = self._ensure_pool()
        if self.supervisor is not None:
            from repro.runtime.supervisor import ChunkTask

            rebuild = None
            if self.shard_backend == "process":
                from concurrent.futures import ProcessPoolExecutor

                def rebuild(workers=self.n_workers):
                    return ProcessPoolExecutor(max_workers=workers)

            return self.supervisor.run(
                [
                    ChunkTask(i, _stabilizer_chunk, (program, n, count, seed))
                    for i, (count, seed) in enumerate(zip(chunks, seeds))
                ],
                pool=pool,
                rebuild=rebuild,
            )
        from repro.noise.trajectory import _collect_fail_fast

        return _collect_fail_fast([
            pool.submit(_stabilizer_chunk, program, n, count, seed)
            for count, seed in zip(chunks, seeds)
        ])

    def forward(
        self,
        compiled: "CompiledCircuit",
        weights: np.ndarray,
        inputs: np.ndarray,
    ) -> "tuple[np.ndarray, None]":
        try:
            mean = self._sweep(compiled)
        except BaseException:
            # Release stranded chunk tasks with the pool (rebuilt lazily
            # on the next sharded forward), mirroring the trajectory
            # executor's failure path.
            self.close()
            raise
        if self.supervisor is not None and self.supervisor.last_report.degraded:
            self.close()
        readout = np.stack(
            [self.noise_model.readout_for(p) for p in compiled.physical_qubits]
        )
        noisy, _scales = apply_readout_to_expectations(mean[None, :], readout)
        logical = _gather_logical(noisy, compiled.measure_qubits)
        batch = 1 if inputs is None else int(np.asarray(inputs).shape[0])
        logical = np.repeat(logical, batch, axis=0)
        if self.shots is not None:
            p_one = np.clip((1.0 - logical) / 2.0, 0.0, 1.0)
            ones = self.rng.binomial(self.shots, p_one)
            logical = 1.0 - 2.0 * ones / self.shots
        return logical, None

    def backward(self, cache, grad):  # pragma: no cover - defensive
        raise NotImplementedError("stabilizer evaluation is inference-only")
