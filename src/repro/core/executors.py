"""Block executors: how one QNN block's circuit actually runs.

The same compiled block can execute on four backends:

* :class:`NoiselessExecutor` -- exact statevector, differentiable
  (adjoint).  The paper's "noise-free simulation" baseline and the
  backbone of noise-unaware training.
* :class:`GateInsertionExecutor` -- statevector with freshly sampled
  Pauli error gates per call plus analytic readout-error emulation,
  differentiable.  This is QuantumNAT's noise-injected *training*
  backend (a new error sample every training step, Figure 5).
* :class:`DensityEvalExecutor` -- exact noisy channel evaluation
  (inference only), the "evaluation with noise model" of Table 11.
* :class:`DensityTrainExecutor` -- exact noisy channel *training*:
  forward through the compiled superoperator stream, backward via the
  adjoint-on-superops sweep (:mod:`repro.core.density_training`), so
  noise-injection training runs against the exact channel instead of
  sampled realizations (``TrainConfig(engine="density")``).
* :class:`TrajectoryEvalExecutor` -- Monte-Carlo trajectories + shot
  sampling against the *drifted hardware* model: the "real QC" surrogate
  (inference only).

All executors consume/produce expectations in logical qubit order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.gradients import QuantumTape, adjoint_backward, forward_with_tape
from repro.noise.density_backend import run_noisy_density
from repro.noise.readout import apply_readout_to_expectations
from repro.noise.sampler import ErrorGateSampler
from repro.noise.trajectory import (
    run_noisy_trajectories,
    stacked_noisy_backward,
    stacked_noisy_forward_with_tape,
)
from repro.utils.rng import as_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.compiler.passes import CompiledCircuit
    from repro.noise.model import NoiseModel


@dataclass
class BlockCache:
    """Per-block state saved by a differentiable forward pass."""

    tape: QuantumTape
    measure_qubits: "tuple[int, ...]"
    readout_scales: "np.ndarray | None" = None
    #: >1 when the tape's state stacks multiple noise realizations.
    n_realizations: int = 1


def _gather_logical(expectations: np.ndarray, measure: "tuple[int, ...]") -> np.ndarray:
    return expectations[:, list(measure)]


def _scatter_logical(
    grad_logical: np.ndarray, measure: "tuple[int, ...]", n_compact: int
) -> np.ndarray:
    grad = np.zeros((grad_logical.shape[0], n_compact))
    grad[:, list(measure)] = grad_logical
    return grad


def make_real_qc_executor(
    model,
    shots: "int | None" = 8192,
    rng: "int | np.random.Generator | None" = None,
    n_trajectories: int = 32,
    n_workers: int = 0,
):
    """The 'real QC' surrogate for a model's device.

    A physical device run samples errors independently on every shot, so
    the faithful emulation is the *exact* noisy channel (density matrix,
    drifted hardware noise model) plus multinomial shot noise.  For wide
    circuits where density simulation is infeasible (10-qubit models),
    falls back to Monte-Carlo Pauli trajectories; ``n_workers`` shards
    their chunks across a worker pool (bit-identical to serial).
    """
    from repro.noise.density_backend import MAX_DENSITY_QUBITS

    device = model.device
    widest = max(c.circuit.n_qubits for c in model.compiled)
    if widest <= MAX_DENSITY_QUBITS:
        return DensityEvalExecutor(device.hardware_model, shots=shots, rng=rng)
    return TrajectoryEvalExecutor(
        device.hardware_model, n_trajectories=n_trajectories, shots=shots,
        rng=rng, n_workers=n_workers,
    )


def make_noise_model_executor(
    model,
    shots: "int | None" = None,
    rng: "int | np.random.Generator | None" = None,
    n_trajectories: int = 32,
    n_workers: int = 0,
):
    """Evaluation under the *published* noise model (paper Table 11)."""
    from repro.noise.density_backend import MAX_DENSITY_QUBITS

    device = model.device
    widest = max(c.circuit.n_qubits for c in model.compiled)
    if widest <= MAX_DENSITY_QUBITS:
        return DensityEvalExecutor(device.noise_model, shots=shots, rng=rng)
    return TrajectoryEvalExecutor(
        device.noise_model, n_trajectories=n_trajectories, shots=shots,
        rng=rng, n_workers=n_workers,
    )


class NoiselessExecutor:
    """Exact statevector execution with adjoint gradients.

    Repeated forwards over the same compiled block hit the circuit's
    :class:`~repro.sim.statevector.BindPlan`, so constant gate matrices
    are evaluated once per block, not once per training step.
    """

    differentiable = True

    def forward(
        self,
        compiled: "CompiledCircuit",
        weights: np.ndarray,
        inputs: np.ndarray,
    ) -> "tuple[np.ndarray, BlockCache]":
        expectations, tape = forward_with_tape(
            compiled.circuit,
            weights,
            inputs,
            n_weights=weights.size,
            n_inputs=np.asarray(inputs).shape[1],
        )
        logical = _gather_logical(expectations, compiled.measure_qubits)
        return logical, BlockCache(tape, compiled.measure_qubits)

    def forward_inference(
        self,
        compiled: "CompiledCircuit",
        weights: np.ndarray,
        inputs: np.ndarray,
    ) -> np.ndarray:
        """Tape-free forward through the gate-fusion pass.

        Inference sweeps need no per-gate tape, so adjacent gate runs are
        merged into single matrices (cached per weight vector) before the
        statevector sweep -- see :mod:`repro.compiler.fusion`.
        """
        from repro.compiler.fusion import fusion_plan_for
        from repro.sim.statevector import run_ops, z_expectations

        circuit = compiled.circuit
        inputs = np.asarray(inputs, dtype=float)
        ops = fusion_plan_for(circuit).fused_ops(weights, inputs)
        state = run_ops(ops, circuit.n_qubits, inputs.shape[0])
        expectations = z_expectations(state, circuit.n_qubits)
        return _gather_logical(expectations, compiled.measure_qubits)

    def backward(
        self, cache: BlockCache, grad_logical: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        grad = _scatter_logical(
            grad_logical, cache.measure_qubits, cache.tape.circuit.n_qubits
        )
        return adjoint_backward(cache.tape, grad)


class _ReadoutEmulationMixin:
    """Analytic readout-error emulation shared by the training backends.

    Readout confusion acts on per-qubit <Z> as an affine map (scale
    cached for the backward pass); the confusion matrices are stacked
    once per compiled block -- executors only ever see a handful of
    blocks -- instead of on every training step.  Consumers must set
    ``self.noise_model`` and ``self._readout_cache = []``.
    """

    def _readout_matrices(self, compiled: "CompiledCircuit") -> np.ndarray:
        for cached, matrices in self._readout_cache:
            if cached is compiled:
                return matrices
        matrices = compiled.readout_matrices(self.noise_model)
        self._readout_cache.append((compiled, matrices))
        return matrices

    def _emulate_readout(
        self, compiled: "CompiledCircuit", logical: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Apply the block's readout confusion; returns (noisy, scales)."""
        return apply_readout_to_expectations(
            logical, self._readout_matrices(compiled)
        )


class GateInsertionExecutor(_ReadoutEmulationMixin):
    """QuantumNAT's training backend: sampled error gates + readout noise.

    Every ``forward`` call samples a fresh set of Pauli error gates
    (scaled by noise factor ``T``) and applies the device's readout
    confusion to the measured expectations.  The inserted Paulis are
    constant unitaries and the readout map is affine, so the adjoint
    backward pass stays exact.

    With ``n_realizations > 1`` each step averages that many independent
    error realizations, executed as one fused
    ``(n_realizations * batch, 2**n)`` statevector sweep -- the training
    batch axis composed with the stacked-trajectory axis (see
    :func:`~repro.noise.trajectory.stacked_noisy_forward_with_tape`).
    """

    differentiable = True

    def __init__(
        self,
        noise_model: "NoiseModel",
        noise_factor: float = 1.0,
        readout: bool = True,
        rng: "int | np.random.Generator | None" = None,
        n_realizations: int = 1,
    ):
        if n_realizations < 1:
            raise ValueError("need at least one noise realization")
        self.noise_model = noise_model
        self.noise_factor = noise_factor
        self.readout = readout
        self.rng = as_rng(rng)
        self.n_realizations = n_realizations
        self.sampler = ErrorGateSampler(noise_model, noise_factor)
        self.last_insertion_stats = None
        self._readout_cache: "list[tuple[CompiledCircuit, np.ndarray]]" = []

    def forward(
        self,
        compiled: "CompiledCircuit",
        weights: np.ndarray,
        inputs: np.ndarray,
    ) -> "tuple[np.ndarray, BlockCache]":
        if self.n_realizations > 1:
            expectations, tape, n_inserted = stacked_noisy_forward_with_tape(
                compiled, self.sampler, weights, inputs,
                self.n_realizations, self.rng,
                n_weights=weights.size,
                n_inputs=np.asarray(inputs).shape[1],
            )
            from repro.noise.sampler import InsertionStats

            self.last_insertion_stats = InsertionStats(
                len(compiled.circuit.gates) * self.n_realizations, n_inserted
            )
        else:
            noisy_circuit, stats = self.sampler.sample(
                compiled.circuit, compiled.physical_qubits, self.rng
            )
            self.last_insertion_stats = stats
            expectations, tape = forward_with_tape(
                noisy_circuit,
                weights,
                inputs,
                n_weights=weights.size,
                n_inputs=np.asarray(inputs).shape[1],
            )
        logical = _gather_logical(expectations, compiled.measure_qubits)
        scales = None
        if self.readout:
            logical, scales = self._emulate_readout(compiled, logical)
        return logical, BlockCache(
            tape, compiled.measure_qubits, scales, self.n_realizations
        )

    def backward(
        self, cache: BlockCache, grad_logical: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        if cache.readout_scales is not None:
            grad_logical = grad_logical * cache.readout_scales[None, :]
        grad = _scatter_logical(
            grad_logical, cache.measure_qubits, cache.tape.circuit.n_qubits
        )
        if cache.n_realizations > 1:
            return stacked_noisy_backward(cache.tape, grad, cache.n_realizations)
        return adjoint_backward(cache.tape, grad)


class DensityTrainExecutor(_ReadoutEmulationMixin):
    """Exact-channel noisy training backend (adjoint on superoperators).

    The deterministic counterpart of :class:`GateInsertionExecutor`:
    instead of sampling one Pauli error realization per step, every
    forward evolves the density matrix through the compiled
    superoperator stream -- Pauli + relaxation + coherent channels exact
    -- and backward runs the adjoint sweep in superoperator space
    (:func:`repro.core.density_training.density_adjoint_backward`),
    which is exact for noise channels and arbitrary affine parameter
    expressions alike.  Readout confusion applies as the same affine
    per-qubit map the insertion backend uses, keeping it differentiable.

    Deterministic (no sampling noise in the gradient), at density-matrix
    cost: reserved for compact (<= 8 qubit) blocks, selected via
    ``TrainConfig(engine="density")``.
    """

    differentiable = True

    def __init__(
        self,
        noise_model: "NoiseModel",
        noise_factor: float = 1.0,
        readout: bool = True,
    ):
        if noise_factor < 0:
            raise ValueError("noise factor must be non-negative")
        self.noise_model = noise_model
        self.noise_factor = noise_factor
        self.readout = readout
        self._readout_cache: "list[tuple[CompiledCircuit, np.ndarray]]" = []

    def forward(
        self,
        compiled: "CompiledCircuit",
        weights: np.ndarray,
        inputs: np.ndarray,
    ) -> "tuple[np.ndarray, BlockCache]":
        from repro.core.density_training import density_forward_with_tape

        expectations, tape = density_forward_with_tape(
            compiled,
            self.noise_model,
            weights,
            inputs,
            noise_factor=self.noise_factor,
            n_weights=weights.size,
            n_inputs=np.asarray(inputs).shape[1],
        )
        logical = _gather_logical(expectations, compiled.measure_qubits)
        scales = None
        if self.readout:
            logical, scales = self._emulate_readout(compiled, logical)
        # BlockCache is duck-typed over the tape: backward only needs
        # the DensityTape's n_qubits and the shared readout-scale fields.
        return logical, BlockCache(tape, compiled.measure_qubits, scales)

    def backward(
        self, cache: BlockCache, grad_logical: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        from repro.core.density_training import density_adjoint_backward

        if cache.readout_scales is not None:
            grad_logical = grad_logical * cache.readout_scales[None, :]
        grad = _scatter_logical(
            grad_logical, cache.measure_qubits, cache.tape.n_qubits
        )
        return density_adjoint_backward(cache.tape, grad)


class DensityEvalExecutor:
    """Exact noisy-channel inference via density matrices (no gradients).

    ``engine`` selects the density backend: ``"superop"`` (default) runs
    the compiled superoperator stream of :mod:`repro.compiler.superop`;
    ``"reference"`` the retained per-Kraus baseline.  The two agree to
    < 1e-10 (enforced by the equivalence suite and the perf harness).
    """

    differentiable = False

    def __init__(
        self,
        noise_model: "NoiseModel",
        noise_factor: float = 1.0,
        shots: "int | None" = None,
        rng: "int | np.random.Generator | None" = None,
        engine: str = "superop",
    ):
        if engine not in ("superop", "reference"):
            raise ValueError(
                f"engine must be 'superop' or 'reference', got {engine!r}"
            )
        self.noise_model = noise_model
        self.noise_factor = noise_factor
        self.shots = shots
        self.rng = as_rng(rng)
        self.engine = engine

    def forward(
        self,
        compiled: "CompiledCircuit",
        weights: np.ndarray,
        inputs: np.ndarray,
    ) -> "tuple[np.ndarray, None]":
        expectations = run_noisy_density(
            compiled,
            self.noise_model,
            weights,
            inputs,
            noise_factor=self.noise_factor,
            shots=self.shots,
            rng=self.rng,
            engine=self.engine,
        )
        return expectations, None

    def backward(self, cache, grad):  # pragma: no cover - defensive
        raise NotImplementedError("density evaluation is inference-only")


class TrajectoryEvalExecutor:
    """'Real QC' surrogate: drifted noise + trajectories + shot sampling.

    ``n_workers > 0`` shards trajectory chunks across a
    ``shard_backend`` pool ("thread" or "process"); chunk layout and
    per-chunk RNG streams never depend on the worker count, so sharded
    output is bit-identical to the serial run for a fixed seed.
    ``shard_size`` overrides the default trajectories-per-chunk
    granularity (16) -- runs with ``n_trajectories`` above it have
    work to distribute out of the box.
    """

    differentiable = False

    def __init__(
        self,
        noise_model: "NoiseModel",
        n_trajectories: int = 8,
        shots: "int | None" = 8192,
        noise_factor: float = 1.0,
        rng: "int | np.random.Generator | None" = None,
        n_workers: int = 0,
        shard_size: "int | None" = None,
        shard_backend: str = "thread",
    ):
        if shard_backend not in ("thread", "process"):
            raise ValueError(
                f"shard_backend must be 'thread' or 'process', got {shard_backend!r}"
            )
        if shard_size is not None and int(shard_size) < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        self.noise_model = noise_model
        self.n_trajectories = n_trajectories
        self.shots = shots
        self.noise_factor = noise_factor
        self.rng = as_rng(rng)
        self.n_workers = n_workers
        self.shard_size = shard_size
        self.shard_backend = shard_backend

    def forward(
        self,
        compiled: "CompiledCircuit",
        weights: np.ndarray,
        inputs: np.ndarray,
    ) -> "tuple[np.ndarray, None]":
        expectations = run_noisy_trajectories(
            compiled,
            self.noise_model,
            weights,
            inputs,
            n_trajectories=self.n_trajectories,
            shots=self.shots,
            noise_factor=self.noise_factor,
            rng=self.rng,
            n_workers=self.n_workers,
            shard_size=self.shard_size,
            shard_backend=self.shard_backend,
        )
        return expectations, None

    def backward(self, cache, grad):  # pragma: no cover - defensive
        raise NotImplementedError("trajectory evaluation is inference-only")
