"""Post-measurement quantization (paper Section 3.3, Figure 6).

Normalized outcomes are clipped to ``[p_min, p_max]`` and snapped to one
of ``n_levels`` uniformly spaced centroids.  Small noise-induced
deviations are corrected back to the nearest centroid -- the denoising
effect.  Training adds a quadratic pull ``||y - Q(y)||^2`` toward the
centroids so outcomes sit far from quantization-decision boundaries, and
gradients flow through the (non-differentiable) rounding with a
straight-through estimator masked by the clipping range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Quantizer:
    """Uniform quantizer over [p_min, p_max] with n_levels centroids."""

    n_levels: int
    p_min: float = -2.0
    p_max: float = 2.0

    def __post_init__(self) -> None:
        if self.n_levels < 2:
            raise ValueError("need at least 2 quantization levels")
        if self.p_min >= self.p_max:
            raise ValueError("p_min must be below p_max")

    @property
    def step(self) -> float:
        return (self.p_max - self.p_min) / (self.n_levels - 1)

    @property
    def centroids(self) -> np.ndarray:
        return np.linspace(self.p_min, self.p_max, self.n_levels)

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Clip then snap each value to the nearest centroid."""
        values = np.asarray(values, dtype=float)
        clipped = np.clip(values, self.p_min, self.p_max)
        idx = np.round((clipped - self.p_min) / self.step)
        return self.p_min + idx * self.step

    def forward(self, values: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """Quantize and return (quantized, straight-through mask).

        The mask is 1 where the input was inside the clipping range --
        the positions where the straight-through estimator passes
        gradients.
        """
        values = np.asarray(values, dtype=float)
        mask = ((values >= self.p_min) & (values <= self.p_max)).astype(float)
        return self.quantize(values), mask

    @staticmethod
    def backward(mask: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """Straight-through estimator: pass gradients inside the range."""
        return np.asarray(grad) * mask

    def quantization_loss(self, values: np.ndarray) -> float:
        """Mean squared distance to the nearest centroid.

        This is the paper's ``||y - Q(y)||_2^2`` penalty (averaged so the
        weight is batch-size independent).
        """
        values = np.asarray(values, dtype=float)
        return float(np.mean((values - self.quantize(values)) ** 2))

    def quantization_loss_grad(self, values: np.ndarray) -> np.ndarray:
        """Gradient of :meth:`quantization_loss` (Q treated constant)."""
        values = np.asarray(values, dtype=float)
        return 2.0 * (values - self.quantize(values)) / values.size

    def denoising_report(
        self, clean: np.ndarray, noisy: np.ndarray
    ) -> "dict[str, float]":
        """The Figure 6 experiment: error MSE / SNR before and after.

        ``clean`` are noise-free (normalized) outcomes, ``noisy`` their
        noisy counterparts; quantization should pull most noisy values
        back onto the centroid their clean value quantizes to.
        """
        clean = np.asarray(clean, dtype=float)
        noisy = np.asarray(noisy, dtype=float)
        q_clean = self.quantize(clean)
        q_noisy = self.quantize(noisy)
        err_before = noisy - clean
        err_after = q_noisy - q_clean

        def _snr(reference: np.ndarray, error: np.ndarray) -> float:
            denom = float(np.sum(error**2))
            if denom == 0:
                return float("inf")
            return float(np.sum(reference**2) / denom)

        return {
            "mse_before": float(np.mean(err_before**2)),
            "mse_after": float(np.mean(err_after**2)),
            "snr_before": _snr(clean, err_before),
            "snr_after": _snr(q_clean, err_after),
        }
