"""The engine registry: one place every execution backend enrolls.

Four PRs of engine growth (fast statevector, batched training, compiled
superop density, full-noise channels) left backend selection scattered
across string-valued ``TrainConfig.engine`` switches, ``isinstance``
checks and per-test capability tables.  This module replaces all of
that with a first-class registry:

* an :class:`EngineSpec` describes one backend -- its *capabilities*
  (which channel kinds it can represent, whether it is differentiable,
  exact or Monte-Carlo, shot-sampling, shardable, and any qubit-width
  bound), an evaluation ``factory`` with a uniform construction
  signature, and optional :class:`TrainSupport` describing how a
  training run uses it;
* :func:`register_engine` / :func:`engine_spec` / :func:`engine_specs`
  provide registration and lookup by name;
* :func:`engines_supporting`, :func:`resolve_eval_engine` and
  :func:`resolve_train_engine` are the capability queries the pipeline,
  ``TrainConfig`` and error messages resolve backends through;
* :func:`capability_matrix` renders the registry as a text table for
  docs and diagnostics.

The cross-backend equivalence harness (``tests/test_cross_backend.py``)
enrolls every registered engine from its declared capabilities, so a
new backend registered here is automatically held to the per-Kraus
reference channel on every channel mix it claims to support -- no test
edits required.

Channel-kind names are shared with
:meth:`repro.noise.model.NoiseModel.channel_kinds`, which reports the
kinds a concrete model actually exercises; capability matching is plain
``frozenset`` containment between the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.executors import (
    DensityEvalExecutor,
    DensityTrainExecutor,
    GateInsertionExecutor,
    MCWFTrainExecutor,
    NoiselessExecutor,
    StabilizerEvalExecutor,
    TrajectoryEvalExecutor,
)
from repro.noise.model import (
    ALL_CHANNEL_KINDS,
    CHANNEL_COHERENT,
    CHANNEL_PAULI,
    CHANNEL_READOUT,
    CHANNEL_RELAXATION,
)
from repro.runtime.errors import DegradedExecution, EngineUnavailable

__all__ = [
    "ALL_CHANNEL_KINDS",
    "CHANNEL_COHERENT",
    "CHANNEL_PAULI",
    "CHANNEL_READOUT",
    "CHANNEL_RELAXATION",
    "EngineCapabilities",
    "EngineSpec",
    "EngineUnavailable",
    "TrainSupport",
    "capability_matrix",
    "create_engine",
    "create_engine_with_fallback",
    "engine_fallback_chain",
    "engine_names",
    "engine_spec",
    "engine_specs",
    "engines_supporting",
    "register_engine",
    "resolve_eval_engine",
    "resolve_train_engine",
    "train_engine_names",
    "unregister_engine",
]


@dataclass(frozen=True)
class EngineCapabilities:
    """What one execution backend can faithfully represent.

    ``channels`` uses the shared channel-kind vocabulary of
    :mod:`repro.noise.model`; an engine can run a noise model iff the
    model's :meth:`~repro.noise.model.NoiseModel.channel_kinds` is a
    subset of it.  ``exact`` distinguishes deterministic channel
    evaluation from Monte-Carlo sampling (the cross-backend harness
    holds exact engines to ``TOL_EXACT`` and sampled ones to the
    large-N statistical bound).  ``max_qubits`` is the width above
    which the engine refuses (density-matrix backends); None means
    unbounded.  ``clifford_only`` marks engines that additionally
    screen the *circuit* (the stabilizer tableau runs Clifford gates
    only): they are skipped by default resolution and preferred only
    when the caller declares the workload Clifford
    (``resolve_eval_engine(..., clifford=True)``).
    """

    channels: "frozenset[str]" = frozenset()
    differentiable: bool = False
    exact: bool = False
    shots: bool = False
    shardable: bool = False
    max_qubits: "int | None" = None
    clifford_only: bool = False


@dataclass(frozen=True)
class TrainSupport:
    """How a training run (``TrainConfig.engine``) uses an engine.

    ``step_attr`` names the :class:`~repro.core.pipeline.QuantumNATModel`
    method computing one training step (the batched default or the
    retained per-sample reference).  ``executor_factory`` -- signature
    ``(noise_model, injection, rng=None, n_workers=0) -> executor`` --
    builds the training executor the run swaps in (``n_workers`` comes
    from ``TrainConfig.trajectory_workers`` and backends without a
    sharded training sweep accept and ignore it); None means the engine
    only selects a step implementation and keeps the model's own
    executor.
    """

    step_attr: str = "loss_and_gradients"
    executor_factory: "Callable | None" = None


@dataclass(frozen=True)
class EngineSpec:
    """One registered execution backend.

    ``factory`` builds an *evaluation* executor with the uniform
    signature ``(noise_model=None, *, rng=None, samples=1, shots=None,
    noise_factor=1.0, n_workers=0, supervisor=None)`` (``samples``
    meaning trajectories
    or stacked noise realizations for Monte-Carlo engines; exact
    engines ignore it); None marks training-loop-only pseudo engines
    (``fast`` / ``reference``).  ``train`` is the engine's
    :class:`TrainSupport`, or None when it cannot back a training run.
    """

    name: str
    description: str
    capabilities: EngineCapabilities = field(default_factory=EngineCapabilities)
    factory: "Callable | None" = None
    train: "TrainSupport | None" = None


_REGISTRY: "dict[str, EngineSpec]" = {}


def register_engine(spec: EngineSpec, replace: bool = False) -> EngineSpec:
    """Enroll an engine; duplicate names raise unless ``replace``."""
    if not spec.name:
        raise ValueError("engine name must be non-empty")
    if spec.name in _REGISTRY and not replace:
        raise ValueError(
            f"engine {spec.name!r} is already registered; "
            "pass replace=True to override"
        )
    _REGISTRY[spec.name] = spec
    return spec


def unregister_engine(name: str) -> None:
    """Remove an engine (testing hook for round-trip checks)."""
    _REGISTRY.pop(name, None)


def engine_names() -> "tuple[str, ...]":
    """All registered engine names, in registration order."""
    return tuple(_REGISTRY)


def engine_specs() -> "tuple[EngineSpec, ...]":
    """All registered specs, in registration order."""
    return tuple(_REGISTRY.values())


def engine_spec(name: str) -> EngineSpec:
    """Lookup by name; unknown names raise listing what exists."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ValueError(
            f"unknown engine {name!r}; registered engines: "
            + ", ".join(_REGISTRY)
        )
    return spec


def train_engine_names() -> "tuple[str, ...]":
    """Engines usable as ``TrainConfig.engine``, in registration order."""
    return tuple(s.name for s in _REGISTRY.values() if s.train is not None)


def engines_supporting(
    *channels: str,
    trainable: bool = False,
    max_width: "int | None" = None,
) -> "tuple[EngineSpec, ...]":
    """Engines whose capabilities cover the given channel kinds.

    ``trainable`` restricts to engines that can back a training run
    with their own executor; ``max_width`` to engines accepting blocks
    of that many qubits.  Pseudo engines (no factory, no training
    executor) never match.
    """
    required = frozenset(channels)
    unknown = required - ALL_CHANNEL_KINDS
    if unknown:
        raise ValueError(
            f"unknown channel kinds {sorted(unknown)}; "
            f"valid kinds: {sorted(ALL_CHANNEL_KINDS)}"
        )
    out = []
    for spec in _REGISTRY.values():
        caps = spec.capabilities
        if not required <= caps.channels:
            continue
        if trainable:
            if spec.train is None or spec.train.executor_factory is None:
                continue
        elif spec.factory is None:
            continue
        if (
            max_width is not None
            and caps.max_qubits is not None
            and max_width > caps.max_qubits
        ):
            continue
        out.append(spec)
    return tuple(out)


def create_engine(name: str, noise_model=None, **kwargs):
    """Build an evaluation executor by registry name."""
    spec = engine_spec(name)
    if spec.factory is None:
        raise ValueError(
            f"engine {name!r} is a training-loop engine with no "
            "evaluation executor"
        )
    return spec.factory(noise_model, **kwargs)


#: Resolution-time fallbacks: when the named engine cannot serve a
#: request (width cap, channel miss, memory), these engines are tried in
#: order.  ``density`` falls to the quantum-jump sampler (same channel
#: coverage, statevector-bound so no width cap); ``trajectory`` falls to
#: ``mcwf`` when the model carries exact relaxation channels the Pauli
#: unraveling cannot represent.
_FALLBACK_CHAINS: "dict[str, tuple[str, ...]]" = {
    "density": ("mcwf",),
    "trajectory": ("mcwf",),
}


def engine_fallback_chain(name: str) -> "tuple[str, ...]":
    """The resolution order for ``name``: itself, then its fallbacks."""
    return (name,) + _FALLBACK_CHAINS.get(name, ())


def create_engine_with_fallback(
    name: str,
    noise_model=None,
    *,
    widest: "int | None" = None,
    **kwargs,
):
    """Build ``name``'s executor, degrading along its fallback chain.

    Each candidate engine is checked against the request before its
    factory runs -- the channel kinds of ``noise_model`` must be within
    the engine's declared capabilities and ``widest`` (the widest block
    the executor will see) within its width cap -- and a candidate whose
    factory still fails with ``MemoryError`` (density allocation at the
    width boundary) is skipped the same way.  Using a fallback instead
    of the requested engine emits a :class:`DegradedExecution` warning
    carrying the path actually taken (e.g. ``("density", "mcwf")``);
    exhausting the chain raises :class:`EngineUnavailable` listing why
    each candidate was rejected.
    """
    import warnings

    required = (
        noise_model.channel_kinds if noise_model is not None else frozenset()
    )
    rejected: "list[str]" = []
    tried: "list[str]" = []
    for candidate in engine_fallback_chain(name):
        spec = _REGISTRY.get(candidate)
        if spec is None or spec.factory is None:
            rejected.append(f"{candidate}: not an evaluation engine")
            continue
        caps = spec.capabilities
        tried.append(candidate)
        if required and not required <= caps.channels:
            missing = sorted(required - caps.channels)
            rejected.append(
                f"{candidate}: cannot represent channel kinds {missing}"
            )
            continue
        if (
            widest is not None
            and caps.max_qubits is not None
            and widest > caps.max_qubits
        ):
            rejected.append(
                f"{candidate}: width cap {caps.max_qubits} < {widest} qubits"
            )
            continue
        try:
            executor = spec.factory(noise_model, **kwargs)
        except MemoryError as exc:
            rejected.append(f"{candidate}: allocation failed ({exc})")
            continue
        if candidate != name:
            path = tuple(tried)
            warnings.warn(
                DegradedExecution(
                    f"engine {name!r} cannot serve this request; "
                    f"running on {candidate!r} instead",
                    path,
                ),
                stacklevel=2,
            )
        return executor
    raise EngineUnavailable(
        f"engine {name!r} and its fallback chain "
        f"{engine_fallback_chain(name)} cannot serve this request:\n  "
        + "\n  ".join(rejected)
        + "\n"
        + capability_matrix()
    )


def resolve_eval_engine(
    required_channels: "frozenset[str]", widest: int, clifford: bool = False
) -> EngineSpec:
    """The preferred evaluation engine for a channel set and width.

    Preference is registration order among *noisy* engines (exact
    density first, then sampled trajectories) -- the same policy the
    ``make_*_executor`` helpers historically hard-coded, now derived
    from declared capabilities: a model carrying exact relaxation
    channels on wide blocks resolves to the quantum-jump trajectory
    engine instead of failing.  Only shot-capable noisy engines
    qualify -- a deployment surrogate must be able to model shot noise
    (which also keeps differentiable training backends like gate
    insertion out of evaluation duty).

    ``clifford=True`` declares the workload Clifford-only (RB, Pauli
    twirling): ``clifford_only`` engines -- the stabilizer tableau,
    polynomial-time at any width -- are preferred ahead of the general
    fleet, still subject to the same channel/width screens, so a model
    whose channels the tableau cannot represent (coherent, relaxation)
    falls through to density/mcwf exactly as before.  By default
    ``clifford_only`` engines are skipped: general circuits would fail
    their admission screen at run time.
    """
    candidates = list(_REGISTRY.values())
    if clifford:
        candidates.sort(key=lambda s: not s.capabilities.clifford_only)
    for spec in candidates:
        caps = spec.capabilities
        if spec.factory is None or not caps.channels or not caps.shots:
            continue  # pseudo engines, noiseless, training-only samplers
        if caps.clifford_only and not clifford:
            continue
        if not required_channels <= caps.channels:
            continue
        if caps.max_qubits is not None and widest > caps.max_qubits:
            continue
        return spec
    raise EngineUnavailable(
        "no registered evaluation engine supports channel kinds "
        f"{sorted(required_channels)} at {widest} qubits;\n"
        + capability_matrix()
    )


def resolve_train_engine(
    required_channels: "frozenset[str]", widest: int
) -> EngineSpec:
    """The preferred training executor engine for a channel set + width.

    Registration order encodes preference: sampled gate insertion (the
    paper's scheme) when the model is Pauli-representable, else the
    exact-channel density trainer for compact blocks, else the
    quantum-jump trainer (statevector-bound, any width).
    """
    for spec in _REGISTRY.values():
        if spec.train is None or spec.train.executor_factory is None:
            continue
        caps = spec.capabilities
        if not required_channels <= caps.channels:
            continue
        if caps.max_qubits is not None and widest > caps.max_qubits:
            continue
        return spec
    raise EngineUnavailable(
        "no registered training engine supports channel kinds "
        f"{sorted(required_channels)} at {widest} qubits;\n"
        + capability_matrix()
    )


def capability_matrix() -> str:
    """The registry as a text table (docs, diagnostics, error messages)."""
    kinds = sorted(ALL_CHANNEL_KINDS)
    header = (
        ["engine"] + kinds
        + ["grad", "exact", "shots", "shardable", "max qubits",
           "clifford", "trains"]
    )
    rows = [header]
    for spec in _REGISTRY.values():
        caps = spec.capabilities
        rows.append(
            [spec.name]
            + [("x" if kind in caps.channels else "-") for kind in kinds]
            + [
                "x" if caps.differentiable else "-",
                "x" if caps.exact else "-",
                "x" if caps.shots else "-",
                "x" if caps.shardable else "-",
                "-" if caps.max_qubits is None else str(caps.max_qubits),
                "x" if caps.clifford_only else "-",
                "x" if spec.train is not None else "-",
            ]
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = [
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
        for row in rows
    ]
    lines.insert(1, "  ".join("-" * w for w in widths))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# default registrations: the built-in executor fleet
# ---------------------------------------------------------------------------

_SAMPLED_CHANNELS = frozenset(
    {CHANNEL_PAULI, CHANNEL_COHERENT, CHANNEL_READOUT}
)


def _noiseless_factory(
    noise_model=None, *, rng=None, samples=1, shots=None, noise_factor=1.0,
    n_workers=0, supervisor=None,
):
    return NoiselessExecutor()


def _gate_insertion_factory(
    noise_model, *, rng=None, samples=1, shots=None, noise_factor=1.0,
    n_workers=0, supervisor=None,
):
    return GateInsertionExecutor(
        noise_model, noise_factor=noise_factor, rng=rng,
        n_realizations=samples, n_workers=n_workers,
    )


def _density_factory(
    noise_model, *, rng=None, samples=1, shots=None, noise_factor=1.0,
    n_workers=0, supervisor=None,
):
    return DensityEvalExecutor(
        noise_model, noise_factor=noise_factor, shots=shots, rng=rng
    )


def _trajectory_factory(
    noise_model, *, rng=None, samples=8, shots=None, noise_factor=1.0,
    n_workers=0, supervisor=None,
):
    return TrajectoryEvalExecutor(
        noise_model, n_trajectories=samples, shots=shots,
        noise_factor=noise_factor, rng=rng, n_workers=n_workers,
        supervisor=supervisor,
    )


def _mcwf_factory(
    noise_model, *, rng=None, samples=8, shots=None, noise_factor=1.0,
    n_workers=0, supervisor=None,
):
    return TrajectoryEvalExecutor(
        noise_model, n_trajectories=samples, shots=shots,
        noise_factor=noise_factor, rng=rng, n_workers=n_workers,
        unravel="jump", supervisor=supervisor,
    )


def _stabilizer_factory(
    noise_model, *, rng=None, samples=256, shots=None, noise_factor=1.0,
    n_workers=0, supervisor=None,
):
    return StabilizerEvalExecutor(
        noise_model, n_trajectories=samples, shots=shots,
        noise_factor=noise_factor, rng=rng, n_workers=n_workers,
        supervisor=supervisor,
    )


def _gate_insertion_train(noise_model, injection, rng=None, n_workers=0):
    return GateInsertionExecutor(
        noise_model,
        noise_factor=injection.noise_factor,
        rng=rng,
        n_realizations=injection.n_realizations,
        n_workers=n_workers,
    )


def _density_train(noise_model, injection, rng=None, n_workers=0):
    # Exact density sweeps are one fused pass; n_workers is accepted for
    # the uniform factory signature and ignored.
    return DensityTrainExecutor(
        noise_model, noise_factor=injection.noise_factor
    )


def _mcwf_train(noise_model, injection, rng=None, n_workers=0):
    return MCWFTrainExecutor(
        noise_model,
        noise_factor=injection.noise_factor,
        rng=rng,
        n_realizations=injection.n_realizations,
        n_workers=n_workers,
    )


def _register_defaults() -> None:
    from repro.noise.density_backend import MAX_DENSITY_QUBITS

    register_engine(EngineSpec(
        "fast",
        "batched training loop: whole minibatch as one stacked sweep per "
        "block, using the model's own training executor",
        EngineCapabilities(
            channels=_SAMPLED_CHANNELS, differentiable=True,
        ),
        train=TrainSupport(),
    ))
    register_engine(EngineSpec(
        "reference",
        "retained per-sample training baseline "
        "(loss_and_gradients_reference); equivalence and perf baselines",
        EngineCapabilities(
            channels=_SAMPLED_CHANNELS, differentiable=True,
        ),
        train=TrainSupport(step_attr="loss_and_gradients_reference"),
    ))
    register_engine(EngineSpec(
        "gate_insertion",
        "sampled Pauli error-gate insertion + affine readout emulation: "
        "the paper's noise-injection training backend",
        EngineCapabilities(
            channels=_SAMPLED_CHANNELS, differentiable=True,
        ),
        factory=_gate_insertion_factory,
        train=TrainSupport(executor_factory=_gate_insertion_train),
    ))
    register_engine(EngineSpec(
        "density",
        "superoperator-compiled exact noisy channel: density evaluation "
        "(Table 11) and adjoint-on-superops exact-channel training",
        EngineCapabilities(
            channels=ALL_CHANNEL_KINDS, differentiable=True, exact=True,
            shots=True, max_qubits=MAX_DENSITY_QUBITS,
        ),
        factory=_density_factory,
        train=TrainSupport(executor_factory=_density_train),
    ))
    register_engine(EngineSpec(
        "trajectory",
        "segment-fused Monte-Carlo Pauli trajectories + shot sampling: "
        "the 'real QC' surrogate",
        EngineCapabilities(
            channels=_SAMPLED_CHANNELS, shots=True, shardable=True,
        ),
        factory=_trajectory_factory,
    ))
    register_engine(EngineSpec(
        "mcwf",
        "quantum-jump (MCWF) stochastic wavefunction: sampled exact "
        "relaxation Kraus jumps with non-unitary no-jump evolution; "
        "evaluation and noise-injection training at any width",
        EngineCapabilities(
            channels=ALL_CHANNEL_KINDS, differentiable=True, shots=True,
            shardable=True,
        ),
        factory=_mcwf_factory,
        train=TrainSupport(executor_factory=_mcwf_train),
    ))
    register_engine(EngineSpec(
        "stabilizer",
        "batched Aaronson-Gottesman tableau trajectories: Pauli-noise "
        "sweeps of Clifford circuits in polynomial time at any width "
        "(admission screened per block)",
        EngineCapabilities(
            channels=frozenset({CHANNEL_PAULI, CHANNEL_READOUT}),
            shots=True, shardable=True, clifford_only=True,
        ),
        factory=_stabilizer_factory,
    ))
    register_engine(EngineSpec(
        "noiseless",
        "exact statevector with adjoint gradients: the noise-free "
        "baseline",
        EngineCapabilities(differentiable=True, exact=True),
        factory=_noiseless_factory,
    ))


_register_defaults()
