"""Hyperparameter grid search over (noise factor T, quantization levels).

The paper: "For each benchmark, we experiment with noise factor
T = {0.1, 0.5, 1, 1.5} and quantization level among {3, 4, 5, 6} and
select one out of 16 combinations with the lowest loss on the validation
set" (Section 4.2; chosen values recorded in Table 14).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.injection import InjectionConfig
from repro.core.pipeline import QuantumNATConfig, QuantumNATModel
from repro.core.training import TrainConfig, TrainResult, train
from repro.noise.devices import Device
from repro.qnn.model import QNN

PAPER_NOISE_FACTORS = (0.1, 0.5, 1.0, 1.5)
PAPER_QUANT_LEVELS = (3, 4, 5, 6)


@dataclass
class GridSearchResult:
    """Winner of the grid plus the whole exploration record."""

    best_noise_factor: float
    best_n_levels: int
    best_result: TrainResult
    best_model: QuantumNATModel
    records: "list[dict[str, float]]"


def grid_search(
    qnn_factory,
    device: Device,
    train_x: np.ndarray,
    train_y: np.ndarray,
    valid_x: np.ndarray,
    valid_y: np.ndarray,
    noise_factors: "tuple[float, ...]" = PAPER_NOISE_FACTORS,
    quant_levels: "tuple[int, ...]" = PAPER_QUANT_LEVELS,
    base_config: "QuantumNATConfig | None" = None,
    train_config: "TrainConfig | None" = None,
    valid_executor_factory=None,
    model_rng_seed: int = 0,
) -> GridSearchResult:
    """Train every (T, levels) combination; keep the lowest valid loss.

    ``qnn_factory`` builds a fresh :class:`QNN` per combination (weights
    must not leak between runs); ``valid_executor_factory`` (optional)
    builds the validation backend per model, e.g. a noisy evaluator.
    """
    base = base_config or QuantumNATConfig.full()
    records: "list[dict[str, float]]" = []
    best: "tuple[float, float, int, TrainResult, QuantumNATModel] | None" = None

    for noise_factor in noise_factors:
        for n_levels in quant_levels:
            config = replace(
                base,
                n_levels=n_levels,
                injection=InjectionConfig(
                    base.injection.strategy,
                    noise_factor,
                    base.injection.outcome_mu,
                    base.injection.outcome_sigma,
                    base.injection.angle_sigma,
                ),
            )
            qnn: QNN = qnn_factory()
            model = QuantumNATModel(qnn, device, config, rng=model_rng_seed)
            valid_executor = (
                valid_executor_factory(model) if valid_executor_factory else None
            )
            result = train(
                model,
                train_x,
                train_y,
                valid_x,
                valid_y,
                config=train_config,
                valid_executor=valid_executor,
            )
            records.append(
                {
                    "noise_factor": noise_factor,
                    "n_levels": float(n_levels),
                    "valid_loss": result.best_valid_loss,
                    "valid_acc": result.best_valid_acc,
                }
            )
            if best is None or result.best_valid_loss < best[0]:
                best = (
                    result.best_valid_loss,
                    noise_factor,
                    n_levels,
                    result,
                    model,
                )

    assert best is not None
    _loss, noise_factor, n_levels, result, model = best
    return GridSearchResult(noise_factor, n_levels, result, model, records)
