"""The QuantumNAT model: QNN + normalization + injection + quantization.

This ties the whole paper together (Figure 3).  A :class:`QuantumNATModel`
owns a QNN compiled for a device and runs the three-stage pipeline:

* training forward: per block, execute on the *training executor* (gate
  insertion / perturbation / noiseless), then -- between blocks --
  post-measurement normalization and quantization (with the quadratic
  centroid penalty added to the loss);
* backward: softmax-CE gradient chains through the head, the
  straight-through quantizer, the batch-norm-style normalization
  backward, and one adjoint sweep per block;
* inference: the same classical pipeline over any evaluation backend
  (noise-free / density "noise model" / trajectory "real QC"), using the
  *test batch's own statistics* for normalization (or fixed validation
  statistics, Table 13).

Per the paper, normalization/quantization are applied between blocks but
*not* after the last block of multi-block models; single-block ("fully
quantum", Table 8) models instead normalize/quantize their final
outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.compiler.passes import CompiledCircuit, transpile
from repro.core.executors import (
    GateInsertionExecutor,
    NoiselessExecutor,
)
from repro.core.injection import (
    ANGLE_PERTURBATION,
    GATE_INSERTION,
    InjectionConfig,
    OUTCOME_PERTURBATION,
    perturb_angles,
    perturb_outcomes,
)
from repro.core.losses import accuracy, cross_entropy
from repro.core.normalization import (
    NormCache,
    normalize,
    normalize_backward,
    normalize_with_stats,
)
from repro.core.quantization import Quantizer
from repro.noise.devices import Device
from repro.qnn.model import QNN, head_matrix
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class QuantumNATConfig:
    """Which pieces of the pipeline are enabled, and their knobs.

    The three method stages of paper Table 1 map to:

    * Baseline:        ``QuantumNATConfig.baseline()``
    * + Post Norm.:    ``normalize=True``
    * + Gate Insert.:  ``+ injection=InjectionConfig('gate_insertion', T)``
    * + Post Quant.:   ``+ quantize=True, n_levels=k``
    """

    normalize: bool = True
    quantize: bool = True
    n_levels: int = 5
    p_min: float = -2.0
    p_max: float = 2.0
    quant_loss_weight: float = 0.1
    injection: InjectionConfig = field(default_factory=InjectionConfig)
    #: Apply norm/quant to the last block's outputs (single-block models).
    transform_final: bool = False
    #: Softmax temperature on the head: expectations live in [-1, 1], so
    #: unscaled logits give a nearly flat softmax and slow training.
    logit_scale: float = 3.0

    @staticmethod
    def baseline() -> "QuantumNATConfig":
        """Noise-unaware training, no pipeline stages (paper's Baseline)."""
        return QuantumNATConfig(
            normalize=False,
            quantize=False,
            injection=InjectionConfig(strategy=None),
        )

    @staticmethod
    def norm_only() -> "QuantumNATConfig":
        return QuantumNATConfig(
            normalize=True,
            quantize=False,
            injection=InjectionConfig(strategy=None),
        )

    @staticmethod
    def norm_and_injection(noise_factor: float = 0.5) -> "QuantumNATConfig":
        return QuantumNATConfig(
            normalize=True,
            quantize=False,
            injection=InjectionConfig(GATE_INSERTION, noise_factor),
        )

    @staticmethod
    def full(noise_factor: float = 0.5, n_levels: int = 5) -> "QuantumNATConfig":
        """The complete QuantumNAT pipeline."""
        return QuantumNATConfig(
            normalize=True,
            quantize=True,
            n_levels=n_levels,
            injection=InjectionConfig(GATE_INSERTION, noise_factor),
        )

    def with_injection(self, injection: InjectionConfig) -> "QuantumNATConfig":
        return replace(self, injection=injection)


@dataclass
class ForwardCache:
    """Everything one training forward pass saves for backward."""

    block_caches: list
    norm_caches: "list[NormCache | None]"
    ste_masks: "list[np.ndarray | None]"
    normalized: "list[np.ndarray | None]"  # pre-quantization activations
    logits: np.ndarray
    quant_loss: float


class QuantumNATModel:
    """A QNN wrapped with the QuantumNAT noise-aware pipeline."""

    def __init__(
        self,
        qnn: QNN,
        device: Device,
        config: "QuantumNATConfig | None" = None,
        optimization_level: int = 2,
        rng: "int | np.random.Generator | None" = None,
    ):
        self.qnn = qnn
        self.device = device
        self.config = config or QuantumNATConfig()
        self.optimization_level = optimization_level
        self.rng = as_rng(rng)
        self.compiled: "list[CompiledCircuit]" = [
            transpile(block, device, optimization_level) for block in qnn.blocks
        ]
        self.head = (
            head_matrix(qnn.arch.n_classes, qnn.arch.n_qubits)
            * self.config.logit_scale
        )
        self.quantizer = Quantizer(
            self.config.n_levels, self.config.p_min, self.config.p_max
        )
        self._train_executor = self._build_train_executor()
        #: Fixed normalization statistics per block boundary (Table 13
        #: valid-stats mode); None means use the batch's own statistics.
        self.fixed_stats: "list[tuple[np.ndarray, np.ndarray]] | None" = None

    # -- executors -------------------------------------------------------

    def _build_train_executor(self):
        injection = self.config.injection
        if injection.strategy == GATE_INSERTION:
            return GateInsertionExecutor(
                self.device.noise_model,
                noise_factor=injection.noise_factor,
                rng=self.rng,
            )
        return NoiselessExecutor()

    @property
    def n_weights(self) -> int:
        return self.qnn.n_weights

    @property
    def n_blocks(self) -> int:
        return self.qnn.n_blocks

    def _transform_after(self, block: int) -> bool:
        """Normalize/quantize after this block?"""
        is_last = block == self.n_blocks - 1
        return (not is_last) or self.config.transform_final

    # -- training forward / backward ----------------------------------------

    def forward_train(
        self, weights: np.ndarray, inputs: np.ndarray
    ) -> ForwardCache:
        """Noise-injected, differentiable forward pass."""
        config = self.config
        injection = config.injection
        executor = self._train_executor

        if injection.strategy == ANGLE_PERTURBATION:
            weights = perturb_angles(weights, injection, self.rng)
            inputs = perturb_angles(np.asarray(inputs, dtype=float), injection, self.rng)

        block_caches = []
        norm_caches: "list[NormCache | None]" = []
        ste_masks: "list[np.ndarray | None]" = []
        normalized_acts: "list[np.ndarray | None]" = []
        quant_loss = 0.0
        current = np.asarray(inputs, dtype=float)

        for b in range(self.n_blocks):
            w_local = self.qnn.block_weights(weights, b)
            expectations, cache = executor.forward(self.compiled[b], w_local, current)
            block_caches.append(cache)

            if not self._transform_after(b):
                norm_caches.append(None)
                ste_masks.append(None)
                normalized_acts.append(None)
                current = expectations
                continue

            values = expectations
            if config.normalize:
                values, norm_cache = normalize(values)
                norm_caches.append(norm_cache)
            else:
                norm_caches.append(None)
            if injection.strategy == OUTCOME_PERTURBATION:
                values = perturb_outcomes(values, injection, self.rng)
            if config.quantize:
                normalized_acts.append(values)
                quant_loss += self.quantizer.quantization_loss(values)
                values, mask = self.quantizer.forward(values)
                ste_masks.append(mask)
            else:
                normalized_acts.append(None)
                ste_masks.append(None)
            current = values

        logits = current @ self.head.T
        return ForwardCache(
            block_caches, norm_caches, ste_masks, normalized_acts, logits, quant_loss
        )

    def loss_and_gradients(
        self, weights: np.ndarray, inputs: np.ndarray, labels: np.ndarray
    ) -> "tuple[float, float, np.ndarray]":
        """One training step's loss, accuracy and weight gradient."""
        config = self.config
        cache = self.forward_train(weights, inputs)
        ce_loss, grad_logits, _probs = cross_entropy(cache.logits, labels)
        loss = ce_loss + config.quant_loss_weight * cache.quant_loss
        acc = accuracy(cache.logits, labels)

        grad_weights = np.zeros_like(np.asarray(weights, dtype=float))
        # dL/d(last block output after transforms)
        grad_current = grad_logits @ self.head

        for b in reversed(range(self.n_blocks)):
            if self._transform_after(b):
                if config.quantize:
                    grad_current = self.quantizer.backward(
                        cache.ste_masks[b], grad_current
                    )
                    grad_current = grad_current + (
                        config.quant_loss_weight
                        * self.quantizer.quantization_loss_grad(
                            cache.normalized[b]
                        )
                    )
                if config.normalize:
                    grad_current = normalize_backward(
                        cache.norm_caches[b], grad_current
                    )
            w_grad_local, x_grad = self._train_executor.backward(
                cache.block_caches[b], grad_current
            )
            grad_weights[self.qnn.weight_slices[b]] += w_grad_local
            grad_current = x_grad  # dL/d(previous block's outputs)

        return loss, acc, grad_weights

    # -- inference ---------------------------------------------------------

    def predict(
        self,
        weights: np.ndarray,
        inputs: np.ndarray,
        executor: "object | None" = None,
    ) -> np.ndarray:
        """Run the inference pipeline; returns logits.

        ``executor`` defaults to noise-free simulation; pass a
        :class:`DensityEvalExecutor` ("noise model") or
        :class:`TrajectoryEvalExecutor` ("real QC") for noisy inference.
        Normalization uses the batch's own statistics unless
        :attr:`fixed_stats` is set (validation-statistics mode).
        """
        config = self.config
        executor = executor or NoiselessExecutor()
        current = np.asarray(inputs, dtype=float)
        for b in range(self.n_blocks):
            w_local = self.qnn.block_weights(weights, b)
            expectations, _cache = executor.forward(self.compiled[b], w_local, current)
            if not self._transform_after(b):
                current = expectations
                continue
            values = expectations
            if config.normalize:
                if self.fixed_stats is not None:
                    mean, std = self.fixed_stats[b]
                    values = normalize_with_stats(values, mean, std)
                else:
                    values, _ = normalize(values)
            if config.quantize:
                values = self.quantizer.quantize(values)
            current = values
        return current @ self.head.T

    def evaluate(
        self,
        weights: np.ndarray,
        inputs: np.ndarray,
        labels: np.ndarray,
        executor: "object | None" = None,
    ) -> "tuple[float, float]":
        """(accuracy, cross-entropy loss) of the pipeline on a dataset."""
        logits = self.predict(weights, inputs, executor)
        loss, _grad, _probs = cross_entropy(logits, labels)
        return accuracy(logits, labels), loss

    def measure_block_outcomes(
        self,
        weights: np.ndarray,
        inputs: np.ndarray,
        block: int,
        executor: "object | None" = None,
        apply_transforms_before: bool = True,
    ) -> np.ndarray:
        """Raw measurement outcomes of one block (analysis/figures).

        Runs the pipeline up to ``block`` and returns that block's
        *untransformed* expectations -- what Figures 4 and 6 histogram.
        """
        config = self.config
        executor = executor or NoiselessExecutor()
        current = np.asarray(inputs, dtype=float)
        for b in range(block + 1):
            w_local = self.qnn.block_weights(weights, b)
            expectations, _cache = executor.forward(self.compiled[b], w_local, current)
            if b == block:
                return expectations
            if not self._transform_after(b) or not apply_transforms_before:
                current = expectations
                continue
            values = expectations
            if config.normalize:
                values, _ = normalize(values)
            if config.quantize:
                values = self.quantizer.quantize(values)
            current = values
        raise AssertionError("unreachable")

    def profile_statistics(
        self,
        weights: np.ndarray,
        inputs: np.ndarray,
        executor: "object | None" = None,
    ) -> "list[tuple[np.ndarray, np.ndarray]]":
        """Per-block-boundary normalization statistics on a dataset.

        Run once on the validation set and assign to :attr:`fixed_stats`
        to reproduce the paper's small-test-batch deployment mode
        (Appendix A.3.7, Table 13).
        """
        config = self.config
        executor = executor or NoiselessExecutor()
        current = np.asarray(inputs, dtype=float)
        stats: "list[tuple[np.ndarray, np.ndarray]]" = []
        for b in range(self.n_blocks):
            w_local = self.qnn.block_weights(weights, b)
            expectations, _cache = executor.forward(self.compiled[b], w_local, current)
            if not self._transform_after(b):
                stats.append((np.zeros(expectations.shape[1]), np.ones(expectations.shape[1])))
                current = expectations
                continue
            mean = expectations.mean(axis=0)
            std = expectations.std(axis=0)
            stats.append((mean, std))
            values = expectations
            if config.normalize:
                values = normalize_with_stats(values, mean, std)
            if config.quantize:
                values = self.quantizer.quantize(values)
            current = values
        return stats
