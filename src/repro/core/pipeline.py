"""The QuantumNAT model: QNN + normalization + injection + quantization.

This ties the whole paper together (Figure 3).  A :class:`QuantumNATModel`
owns a QNN compiled for a device and runs the three-stage pipeline:

* training forward: per block, execute on the *training executor* (gate
  insertion / perturbation / noiseless), then -- between blocks --
  post-measurement normalization and quantization (with the quadratic
  centroid penalty added to the loss);
* backward: softmax-CE gradient chains through the head, the
  straight-through quantizer, the batch-norm-style normalization
  backward, and one adjoint sweep per block;
* inference: the same classical pipeline over any evaluation backend
  (noise-free / density "noise model" / trajectory "real QC"), using the
  *test batch's own statistics* for normalization (or fixed validation
  statistics, Table 13).  Both noisy backends run compiled: the density
  executor executes the superoperator stream of
  :mod:`repro.compiler.superop` (gate + channel as one cached matrix per
  fused segment) and the trajectory executor the segment-fused sweep of
  :mod:`repro.noise.trajectory`, optionally sharded across a worker pool
  (``TrajectoryEvalExecutor.n_workers`` /
  ``TrainConfig.trajectory_workers`` -- bit-identical to serial).

Per the paper, normalization/quantization are applied between blocks but
*not* after the last block of multi-block models; single-block ("fully
quantum", Table 8) models instead normalize/quantize their final
outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.compiler.passes import CompiledCircuit, transpile
from repro.core.executors import InferenceExecutor, NoiselessExecutor
from repro.core.injection import (
    ANGLE_PERTURBATION,
    GATE_INSERTION,
    InjectionConfig,
    OUTCOME_PERTURBATION,
    perturb_angles,
    perturb_outcomes,
)
from repro.core.losses import accuracy, cross_entropy
from repro.core.normalization import (
    NormCache,
    normalize,
    normalize_backward,
    normalize_with_stats,
)
from repro.core.quantization import Quantizer
from repro.noise.devices import Device
from repro.noise.readout import apply_readout_to_expectations
from repro.qnn.model import QNN, head_matrix
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class QuantumNATConfig:
    """Which pieces of the pipeline are enabled, and their knobs.

    The three method stages of paper Table 1 map to:

    * Baseline:        ``QuantumNATConfig.baseline()``
    * + Post Norm.:    ``normalize=True``
    * + Gate Insert.:  ``+ injection=InjectionConfig('gate_insertion', T)``
    * + Post Quant.:   ``+ quantize=True, n_levels=k``
    """

    normalize: bool = True
    quantize: bool = True
    n_levels: int = 5
    p_min: float = -2.0
    p_max: float = 2.0
    quant_loss_weight: float = 0.1
    injection: InjectionConfig = field(default_factory=InjectionConfig)
    #: Apply norm/quant to the last block's outputs (single-block models).
    transform_final: bool = False
    #: Softmax temperature on the head: expectations live in [-1, 1], so
    #: unscaled logits give a nearly flat softmax and slow training.
    logit_scale: float = 3.0

    @staticmethod
    def baseline() -> "QuantumNATConfig":
        """Noise-unaware training, no pipeline stages (paper's Baseline)."""
        return QuantumNATConfig(
            normalize=False,
            quantize=False,
            injection=InjectionConfig(strategy=None),
        )

    @staticmethod
    def norm_only() -> "QuantumNATConfig":
        return QuantumNATConfig(
            normalize=True,
            quantize=False,
            injection=InjectionConfig(strategy=None),
        )

    @staticmethod
    def norm_and_injection(noise_factor: float = 0.5) -> "QuantumNATConfig":
        return QuantumNATConfig(
            normalize=True,
            quantize=False,
            injection=InjectionConfig(GATE_INSERTION, noise_factor),
        )

    @staticmethod
    def full(noise_factor: float = 0.5, n_levels: int = 5) -> "QuantumNATConfig":
        """The complete QuantumNAT pipeline."""
        return QuantumNATConfig(
            normalize=True,
            quantize=True,
            n_levels=n_levels,
            injection=InjectionConfig(GATE_INSERTION, noise_factor),
        )

    def with_injection(self, injection: InjectionConfig) -> "QuantumNATConfig":
        return replace(self, injection=injection)


@dataclass
class ForwardCache:
    """Everything one training forward pass saves for backward."""

    block_caches: list
    norm_caches: "list[NormCache | None]"
    ste_masks: "list[np.ndarray | None]"
    normalized: "list[np.ndarray | None]"  # pre-quantization activations
    logits: np.ndarray
    quant_loss: float


class QuantumNATModel:
    """A QNN wrapped with the QuantumNAT noise-aware pipeline."""

    def __init__(
        self,
        qnn: QNN,
        device: Device,
        config: "QuantumNATConfig | None" = None,
        optimization_level: int = 2,
        rng: "int | np.random.Generator | None" = None,
    ):
        self.qnn = qnn
        self.device = device
        self.config = config or QuantumNATConfig()
        self.optimization_level = optimization_level
        self.rng = as_rng(rng)
        self.compiled: "list[CompiledCircuit]" = [
            transpile(block, device, optimization_level) for block in qnn.blocks
        ]
        self.head = (
            head_matrix(qnn.arch.n_classes, qnn.arch.n_qubits)
            * self.config.logit_scale
        )
        self.quantizer = Quantizer(
            self.config.n_levels, self.config.p_min, self.config.p_max
        )
        self._train_executor = self._build_train_executor()
        #: Fixed normalization statistics per block boundary (Table 13
        #: valid-stats mode); None means use the batch's own statistics.
        self.fixed_stats: "list[tuple[np.ndarray, np.ndarray]] | None" = None

    # -- executors -------------------------------------------------------

    def _build_train_executor(self):
        injection = self.config.injection
        if injection.strategy != GATE_INSERTION:
            return NoiselessExecutor()
        # Resolve through the engine registry: the model's channel kinds
        # and widest block select the preferred trainable engine.  A
        # Pauli-representable model gets the paper's sampled gate
        # insertion; exact (non-Pauli) relaxation channels cannot be
        # sampled as inserted error gates, so such models fall to the
        # exact-channel density trainer for compact blocks and to the
        # quantum-jump (MCWF) trainer for wide ones.
        from repro.core.engine import resolve_train_engine

        widest = max(c.circuit.n_qubits for c in self.compiled)
        spec = resolve_train_engine(
            self.device.noise_model.channel_kinds, widest
        )
        return spec.train.executor_factory(
            self.device.noise_model, injection, rng=self.rng
        )

    def rng_generators(self) -> "dict[str, np.random.Generator]":
        """Named RNG streams a training checkpoint must capture.

        The model's generator drives noise sampling in every forward;
        the training executor usually *shares* it (factories receive
        ``rng=self.rng`` and :func:`repro.utils.rng.as_rng` passes
        generators through), but an executor constructed with its own
        stream is captured separately -- restoring both is what makes
        checkpoint resume bit-identical
        (:mod:`repro.runtime.checkpoint`).
        """
        generators = {"model": self.rng}
        executor_rng = getattr(self._train_executor, "rng", None)
        if executor_rng is not None:
            generators["train_executor"] = executor_rng
        return generators

    @property
    def n_weights(self) -> int:
        return self.qnn.n_weights

    @property
    def n_blocks(self) -> int:
        return self.qnn.n_blocks

    def _transform_after(self, block: int) -> bool:
        """Normalize/quantize after this block?"""
        is_last = block == self.n_blocks - 1
        return (not is_last) or self.config.transform_final

    # -- training forward / backward ----------------------------------------

    def forward_train(
        self, weights: np.ndarray, inputs: np.ndarray
    ) -> ForwardCache:
        """Noise-injected, differentiable forward pass."""
        config = self.config
        injection = config.injection
        executor = self._train_executor

        if injection.strategy == ANGLE_PERTURBATION:
            weights = perturb_angles(weights, injection, self.rng)
            inputs = perturb_angles(np.asarray(inputs, dtype=float), injection, self.rng)

        block_caches = []
        norm_caches: "list[NormCache | None]" = []
        ste_masks: "list[np.ndarray | None]" = []
        normalized_acts: "list[np.ndarray | None]" = []
        quant_loss = 0.0
        current = np.asarray(inputs, dtype=float)

        for b in range(self.n_blocks):
            w_local = self.qnn.block_weights(weights, b)
            expectations, cache = executor.forward(self.compiled[b], w_local, current)
            block_caches.append(cache)

            if not self._transform_after(b):
                norm_caches.append(None)
                ste_masks.append(None)
                normalized_acts.append(None)
                current = expectations
                continue

            values = expectations
            if config.normalize:
                values, norm_cache = normalize(values)
                norm_caches.append(norm_cache)
            else:
                norm_caches.append(None)
            if injection.strategy == OUTCOME_PERTURBATION:
                values = perturb_outcomes(values, injection, self.rng)
            if config.quantize:
                normalized_acts.append(values)
                quant_loss += self.quantizer.quantization_loss(values)
                values, mask = self.quantizer.forward(values)
                ste_masks.append(mask)
            else:
                normalized_acts.append(None)
                ste_masks.append(None)
            current = values

        logits = current @ self.head.T
        return ForwardCache(
            block_caches, norm_caches, ste_masks, normalized_acts, logits, quant_loss
        )

    def loss_and_gradients(
        self, weights: np.ndarray, inputs: np.ndarray, labels: np.ndarray
    ) -> "tuple[float, float, np.ndarray]":
        """One training step's loss, accuracy and weight gradient.

        The whole minibatch (and, with ``injection.n_realizations > 1``,
        every noise realization) runs as one stacked statevector sweep
        per block; :meth:`loss_and_gradients_reference` is the retained
        per-sample baseline.
        """
        config = self.config
        cache = self.forward_train(weights, inputs)
        ce_loss, grad_logits, _probs = cross_entropy(cache.logits, labels)
        loss = ce_loss + config.quant_loss_weight * cache.quant_loss
        acc = accuracy(cache.logits, labels)

        grad_weights = np.zeros_like(np.asarray(weights, dtype=float))
        # dL/d(last block output after transforms)
        grad_current = grad_logits @ self.head

        for b in reversed(range(self.n_blocks)):
            if self._transform_after(b):
                if config.quantize:
                    grad_current = self.quantizer.backward(
                        cache.ste_masks[b], grad_current
                    )
                    grad_current = grad_current + (
                        config.quant_loss_weight
                        * self.quantizer.quantization_loss_grad(
                            cache.normalized[b]
                        )
                    )
                if config.normalize:
                    grad_current = normalize_backward(
                        cache.norm_caches[b], grad_current
                    )
            w_grad_local, x_grad = self._train_executor.backward(
                cache.block_caches[b], grad_current
            )
            grad_weights[self.qnn.weight_slices[b]] += w_grad_local
            grad_current = x_grad  # dL/d(previous block's outputs)

        return loss, acc, grad_weights

    # -- per-sample reference engine ---------------------------------------

    def _reference_block_forward(
        self, circuit, w_local: np.ndarray, inputs: np.ndarray
    ) -> "tuple[np.ndarray, list]":
        """One block's expectations via per-sample reference sweeps.

        Runs every sample as its own ``(1, 2**n)`` statevector through
        the pre-fast-engine kernels; returns the assembled
        ``(batch, n_qubits)`` expectations and one tape per sample.
        """
        from repro.core.gradients import QuantumTape
        from repro.sim.statevector import (
            bind_circuit_reference,
            run_ops_reference,
            z_signs,
        )

        rows = []
        tapes = []
        for i in range(inputs.shape[0]):
            ops = bind_circuit_reference(circuit, w_local, inputs[i : i + 1])
            state = run_ops_reference(ops, circuit.n_qubits, 1)
            tapes.append(
                QuantumTape(circuit, ops, state, w_local.size, inputs.shape[1])
            )
            rows.append((np.abs(state) ** 2) @ z_signs(circuit.n_qubits).T)
        return np.vstack(rows), tapes

    def loss_and_gradients_reference(
        self, weights: np.ndarray, inputs: np.ndarray, labels: np.ndarray
    ) -> "tuple[float, float, np.ndarray]":
        """Per-sample reference implementation of one training step.

        The numerical baseline for :meth:`loss_and_gradients`: every
        sample (and every noise realization) is bound and swept
        individually through the reference kernels, and backward runs one
        per-sample adjoint sweep per tape -- the nested loops the batched
        engine replaces.  Classical stages (normalization statistics,
        quantization, head, loss) are batch-level math and identical.

        With single-realization gate insertion the error circuits are
        sampled from this model's own rng in the same order as the fast
        path, so two identically seeded models agree to float precision.
        With ``n_realizations > 1`` the fast path draws each error site's
        choices for all realizations in one vectorized call while this
        path loops realizations, so the streams diverge and stochastic
        noise matches only in distribution (deterministic coherent-only
        models still agree exactly).
        """
        from repro.core.gradients import adjoint_backward_reference

        config = self.config
        injection = config.injection
        executor = self._train_executor
        weights = np.asarray(weights, dtype=float)
        inputs = np.asarray(inputs, dtype=float)
        if injection.strategy == ANGLE_PERTURBATION:
            weights = perturb_angles(weights, injection, self.rng)
            inputs = perturb_angles(inputs, injection, self.rng)
        insertion = injection.strategy == GATE_INSERTION
        n_real = injection.n_realizations if insertion else 1

        # -- forward: nested realization x sample loops per block ---------
        block_tapes: "list[list[list]]" = []  # [block][realization][sample]
        block_scales: "list[np.ndarray | None]" = []
        norm_caches: "list[NormCache | None]" = []
        ste_masks: "list[np.ndarray | None]" = []
        normalized_acts: "list[np.ndarray | None]" = []
        quant_loss = 0.0
        current = inputs
        for b in range(self.n_blocks):
            compiled = self.compiled[b]
            w_local = self.qnn.block_weights(weights, b)
            realizations = []
            tapes_per_real = []
            for _ in range(n_real):
                if insertion:
                    circuit, _stats = executor.sampler.sample(
                        compiled.circuit, compiled.physical_qubits, executor.rng
                    )
                else:
                    circuit = compiled.circuit
                expectations, tapes = self._reference_block_forward(
                    circuit, w_local, current
                )
                realizations.append(expectations)
                tapes_per_real.append(tapes)
            block_tapes.append(tapes_per_real)
            expectations = sum(realizations) / n_real
            logical = expectations[:, list(compiled.measure_qubits)]
            scales = None
            if insertion and executor.readout:
                readout = compiled.readout_matrices(executor.noise_model)
                logical, scales = apply_readout_to_expectations(logical, readout)
            block_scales.append(scales)

            if not self._transform_after(b):
                norm_caches.append(None)
                ste_masks.append(None)
                normalized_acts.append(None)
                current = logical
                continue
            values = logical
            if config.normalize:
                values, norm_cache = normalize(values)
                norm_caches.append(norm_cache)
            else:
                norm_caches.append(None)
            if injection.strategy == OUTCOME_PERTURBATION:
                values = perturb_outcomes(values, injection, self.rng)
            if config.quantize:
                normalized_acts.append(values)
                quant_loss += self.quantizer.quantization_loss(values)
                values, mask = self.quantizer.forward(values)
                ste_masks.append(mask)
            else:
                normalized_acts.append(None)
                ste_masks.append(None)
            current = values

        logits = current @ self.head.T
        ce_loss, grad_logits, _probs = cross_entropy(logits, labels)
        loss = ce_loss + config.quant_loss_weight * quant_loss
        acc = accuracy(logits, labels)

        # -- backward: chain transforms, then per-sample adjoint sweeps ----
        grad_weights = np.zeros_like(weights)
        grad_current = grad_logits @ self.head
        for b in reversed(range(self.n_blocks)):
            compiled = self.compiled[b]
            if self._transform_after(b):
                if config.quantize:
                    grad_current = self.quantizer.backward(
                        ste_masks[b], grad_current
                    )
                    grad_current = grad_current + (
                        config.quant_loss_weight
                        * self.quantizer.quantization_loss_grad(normalized_acts[b])
                    )
                if config.normalize:
                    grad_current = normalize_backward(norm_caches[b], grad_current)
            grad_logical = grad_current
            if block_scales[b] is not None:
                grad_logical = grad_logical * block_scales[b][None, :]
            n_compact = compiled.circuit.n_qubits
            batch = grad_logical.shape[0]
            grad_full = np.zeros((batch, n_compact))
            grad_full[:, list(compiled.measure_qubits)] = grad_logical
            w_grad = None
            x_rows = []
            for tapes in block_tapes[b]:
                for i, tape in enumerate(tapes):
                    wg, xg = adjoint_backward_reference(
                        tape, grad_full[i : i + 1] / n_real
                    )
                    w_grad = wg if w_grad is None else w_grad + wg
                    if len(x_rows) <= i:
                        x_rows.append(xg[0])
                    else:
                        x_rows[i] = x_rows[i] + xg[0]
            grad_weights[self.qnn.weight_slices[b]] += w_grad
            x_grad = np.vstack(x_rows)
            grad_current = x_grad

        return loss, acc, grad_weights

    # -- inference ---------------------------------------------------------

    def predict(
        self,
        weights: np.ndarray,
        inputs: np.ndarray,
        executor: "object | None" = None,
    ) -> np.ndarray:
        """Run the inference pipeline; returns logits.

        ``executor`` defaults to noise-free simulation; pass a
        :class:`DensityEvalExecutor` ("noise model", superoperator-
        compiled exact channel) or :class:`TrajectoryEvalExecutor`
        ("real QC", segment-fused and optionally sharded) for noisy
        inference.  Normalization uses the batch's own statistics unless
        :attr:`fixed_stats` is set (validation-statistics mode).

        Executors conforming to the :class:`InferenceExecutor` protocol
        (noise-free simulation) run tape-free through the gate-fusion
        pass: adjacent gate runs collapse into single matrices, cached
        per weight vector across repeated predict/evaluate calls; plain
        :class:`EvalExecutor` backends run their ``forward`` path.
        """
        config = self.config
        executor = executor or NoiselessExecutor()
        tape_free = isinstance(executor, InferenceExecutor)
        current = np.asarray(inputs, dtype=float)
        for b in range(self.n_blocks):
            w_local = self.qnn.block_weights(weights, b)
            if tape_free:
                expectations = executor.forward_inference(
                    self.compiled[b], w_local, current
                )
            else:
                expectations, _cache = executor.forward(
                    self.compiled[b], w_local, current
                )
            if not self._transform_after(b):
                current = expectations
                continue
            values = expectations
            if config.normalize:
                if self.fixed_stats is not None:
                    mean, std = self.fixed_stats[b]
                    values = normalize_with_stats(values, mean, std)
                else:
                    values, _ = normalize(values)
            if config.quantize:
                values = self.quantizer.quantize(values)
            current = values
        return current @ self.head.T

    def evaluate(
        self,
        weights: np.ndarray,
        inputs: np.ndarray,
        labels: np.ndarray,
        executor: "object | None" = None,
    ) -> "tuple[float, float]":
        """(accuracy, cross-entropy loss) of the pipeline on a dataset."""
        logits = self.predict(weights, inputs, executor)
        loss, _grad, _probs = cross_entropy(logits, labels)
        return accuracy(logits, labels), loss

    def measure_block_outcomes(
        self,
        weights: np.ndarray,
        inputs: np.ndarray,
        block: int,
        executor: "object | None" = None,
        apply_transforms_before: bool = True,
    ) -> np.ndarray:
        """Raw measurement outcomes of one block (analysis/figures).

        Runs the pipeline up to ``block`` and returns that block's
        *untransformed* expectations -- what Figures 4 and 6 histogram.
        """
        config = self.config
        executor = executor or NoiselessExecutor()
        current = np.asarray(inputs, dtype=float)
        for b in range(block + 1):
            w_local = self.qnn.block_weights(weights, b)
            expectations, _cache = executor.forward(self.compiled[b], w_local, current)
            if b == block:
                return expectations
            if not self._transform_after(b) or not apply_transforms_before:
                current = expectations
                continue
            values = expectations
            if config.normalize:
                values, _ = normalize(values)
            if config.quantize:
                values = self.quantizer.quantize(values)
            current = values
        raise AssertionError("unreachable")

    def profile_statistics(
        self,
        weights: np.ndarray,
        inputs: np.ndarray,
        executor: "object | None" = None,
    ) -> "list[tuple[np.ndarray, np.ndarray]]":
        """Per-block-boundary normalization statistics on a dataset.

        Run once on the validation set and assign to :attr:`fixed_stats`
        to reproduce the paper's small-test-batch deployment mode
        (Appendix A.3.7, Table 13).
        """
        config = self.config
        executor = executor or NoiselessExecutor()
        current = np.asarray(inputs, dtype=float)
        stats: "list[tuple[np.ndarray, np.ndarray]]" = []
        for b in range(self.n_blocks):
            w_local = self.qnn.block_weights(weights, b)
            expectations, _cache = executor.forward(self.compiled[b], w_local, current)
            if not self._transform_after(b):
                stats.append((np.zeros(expectations.shape[1]), np.ones(expectations.shape[1])))
                current = expectations
                continue
            mean = expectations.mean(axis=0)
            std = expectations.std(axis=0)
            stats.append((mean, std))
            values = expectations
            if config.normalize:
                values = normalize_with_stats(values, mean, std)
            if config.quantize:
                values = self.quantizer.quantize(values)
            current = values
        return stats


def predict(
    model: QuantumNATModel,
    weights: np.ndarray,
    inputs: np.ndarray,
    *,
    engine: "str | None" = None,
    executor: "object | None" = None,
    fallback: bool = True,
    **engine_kwargs,
) -> np.ndarray:
    """Stable top-level inference entry point; returns logits.

    Thin functional wrapper over :meth:`QuantumNATModel.predict` that
    resolves ``engine`` names through the registry, so callers select a
    backend by name instead of constructing executors:

    * ``executor`` -- use this evaluation backend directly;
    * ``engine`` -- build the named engine for the model's device noise
      model (``engine_kwargs`` forward to the factory: ``rng``,
      ``samples``, ``shots``, ...).  With ``fallback=True`` (default)
      resolution degrades along the registry's fallback chain and emits
      :class:`~repro.runtime.errors.DegradedExecution`; otherwise an
      unservable request raises immediately;
    * neither -- noise-free simulation.

    Engines declaring no channel support (``noiseless``) are built
    without a noise model, so they remain addressable by name.
    """
    if engine is not None and executor is not None:
        raise TypeError("pass either 'engine' or 'executor', not both")
    if engine is not None:
        from repro.core.engine import (
            create_engine,
            create_engine_with_fallback,
            engine_spec,
        )

        noise_model = model.device.noise_model
        if not engine_spec(engine).capabilities.channels:
            noise_model = None
        if fallback:
            executor = create_engine_with_fallback(
                engine,
                noise_model,
                widest=max(c.circuit.n_qubits for c in model.compiled),
                **engine_kwargs,
            )
        else:
            executor = create_engine(engine, noise_model, **engine_kwargs)
    return model.predict(weights, inputs, executor)
