"""Simultaneous Perturbation Stochastic Approximation (SPSA).

Table 3 trains directly on quantum hardware with the parameter-shift
rule, which costs two circuit evaluations *per weight* per step.  SPSA
is the standard cheaper alternative for on-QC training: two evaluations
per step *total*, regardless of the weight count, with the classic
Spall gain sequences

    a_k = a / (k + 1 + A)^alpha,   c_k = c / (k + 1)^gamma.

The gradient estimate ``g = (L(w + c d) - L(w - c d)) / (2 c) * d^-1``
uses a random Rademacher direction ``d``; its expectation is the true
gradient, so SPSA converges like stochastic gradient descent while
tolerating the shot noise of real measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.utils.rng import as_rng


@dataclass(frozen=True)
class SPSAConfig:
    """Gain-sequence hyperparameters (Spall's standard parameterization)."""

    a: float = 0.2
    c: float = 0.15
    stability: float = 10.0  # the 'A' offset that tames early steps
    alpha: float = 0.602
    gamma: float = 0.101

    def __post_init__(self) -> None:
        if self.a <= 0 or self.c <= 0:
            raise ValueError("gain constants a and c must be positive")


@dataclass
class SPSAResult:
    """Outcome of an SPSA minimization."""

    weights: np.ndarray
    best_weights: np.ndarray
    best_loss: float
    losses: "list[float]"

    @property
    def n_evaluations(self) -> int:
        """Loss evaluations used (2 per iteration + tracking evals)."""
        return 3 * len(self.losses)


class SPSA:
    """Iterative SPSA minimizer over a loss callable."""

    def __init__(
        self,
        config: "SPSAConfig | None" = None,
        rng: "int | np.random.Generator | None" = None,
    ):
        self.config = config or SPSAConfig()
        self.rng = as_rng(rng)
        self.k = 0

    def step(
        self, weights: np.ndarray, loss_fn: Callable[[np.ndarray], float]
    ) -> np.ndarray:
        """One SPSA update; two loss evaluations."""
        cfg = self.config
        a_k = cfg.a / (self.k + 1 + cfg.stability) ** cfg.alpha
        c_k = cfg.c / (self.k + 1) ** cfg.gamma
        direction = self.rng.choice([-1.0, 1.0], size=weights.shape)
        loss_plus = loss_fn(weights + c_k * direction)
        loss_minus = loss_fn(weights - c_k * direction)
        gradient = (loss_plus - loss_minus) / (2.0 * c_k) * direction
        self.k += 1
        return weights - a_k * gradient


def minimize_spsa(
    loss_fn: Callable[[np.ndarray], float],
    x0: np.ndarray,
    n_iterations: int = 100,
    config: "SPSAConfig | None" = None,
    rng: "int | np.random.Generator | None" = None,
    callback: "Callable[[int, np.ndarray, float], None] | None" = None,
) -> SPSAResult:
    """Minimize ``loss_fn`` from ``x0``; returns best-seen weights.

    ``loss_fn`` may be stochastic (shot noise); the best-loss tracking
    evaluates the loss once more per iteration at the current iterate.
    """
    if n_iterations < 1:
        raise ValueError("need at least one iteration")
    rng = as_rng(rng)
    optimizer = SPSA(config, rng)
    weights = np.asarray(x0, dtype=float).copy()
    best_weights = weights.copy()
    best_loss = float(loss_fn(weights))
    losses = [best_loss]
    for iteration in range(n_iterations):
        weights = optimizer.step(weights, loss_fn)
        current = float(loss_fn(weights))
        losses.append(current)
        if current < best_loss:
            best_loss = current
            best_weights = weights.copy()
        if callback is not None:
            callback(iteration, weights, current)
    return SPSAResult(weights, best_weights, best_loss, losses)
