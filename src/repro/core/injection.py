"""Noise-injection strategies for training (paper Section 3.2).

Three ways to make training noise-aware, compared in Figure 7:

* ``gate_insertion`` (the winner): sample Pauli error gates from the
  device noise model after every compiled gate, plus readout-error
  emulation on the measured expectations.  Implemented in the
  :class:`~repro.core.executors.GateInsertionExecutor`.
* ``outcome_perturbation``: add Gaussian noise N(mu_err, sigma_err^2) to
  the *normalized* measurement outcomes, with (mu, sigma) profiled from
  real error benchmarking on the validation set.
* ``angle_perturbation``: add Gaussian noise to the rotation angles of
  every gate (weights and encoded inputs alike).

This module defines the configuration and the error-benchmarking helper
that fits the Gaussian statistics the perturbation strategies need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_rng

GATE_INSERTION = "gate_insertion"
OUTCOME_PERTURBATION = "outcome_perturbation"
ANGLE_PERTURBATION = "angle_perturbation"
STRATEGIES = (GATE_INSERTION, OUTCOME_PERTURBATION, ANGLE_PERTURBATION)


@dataclass(frozen=True)
class InjectionConfig:
    """How to inject noise during training.

    ``noise_factor`` is the paper's ``T``: it scales Pauli probabilities
    for gate insertion, and the Gaussian sigma for the perturbation
    strategies (so the Figure 7 noise-factor sweep is meaningful for all
    three).

    ``n_realizations`` applies to gate insertion only: the number of
    independent error realizations averaged per training step.  The
    paper uses 1 (one fresh error sample per step); larger values smooth
    the gradient estimate toward the exact noisy channel, and the
    batched engine runs all realizations as a single fused
    ``(n_realizations * batch)`` statevector sweep.
    """

    strategy: "str | None" = GATE_INSERTION
    noise_factor: float = 0.5
    outcome_mu: float = 0.0
    outcome_sigma: float = 0.1
    angle_sigma: float = 0.05
    n_realizations: int = 1

    def __post_init__(self) -> None:
        if self.strategy is not None and self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown injection strategy {self.strategy!r}; "
                f"pick from {STRATEGIES} or None"
            )
        if self.noise_factor < 0:
            raise ValueError("noise factor must be non-negative")
        if self.n_realizations < 1:
            raise ValueError("need at least one noise realization")

    @property
    def enabled(self) -> bool:
        return self.strategy is not None

    def with_statistics(self, mu: float, sigma: float) -> "InjectionConfig":
        """Return a copy carrying benchmarked error statistics."""
        return InjectionConfig(
            self.strategy, self.noise_factor, mu, sigma,
            self.angle_sigma, self.n_realizations,
        )


def benchmark_error_statistics(
    noise_free: np.ndarray, noisy: np.ndarray
) -> "tuple[float, float]":
    """Fit the Gaussian error model from benchmarking samples.

    ``Err = noisy - noise_free`` over validation-set measurement outcomes;
    returns (mean, std) -- the N(mu_Err, sigma_Err^2) the paper samples
    outcome perturbations from.
    """
    err = np.asarray(noisy, dtype=float) - np.asarray(noise_free, dtype=float)
    return float(err.mean()), float(err.std())


def perturb_outcomes(
    outcomes: np.ndarray,
    config: InjectionConfig,
    rng: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Outcome perturbation: add N(mu, (T * sigma)^2) to outcomes."""
    rng = as_rng(rng)
    sigma = config.noise_factor * config.outcome_sigma
    return outcomes + rng.normal(config.outcome_mu, sigma, size=outcomes.shape)


def perturb_angles(
    values: np.ndarray,
    config: InjectionConfig,
    rng: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Angle perturbation: add N(0, (T * sigma)^2) to rotation angles."""
    rng = as_rng(rng)
    sigma = config.noise_factor * config.angle_sigma
    return values + rng.normal(0.0, sigma, size=values.shape)
