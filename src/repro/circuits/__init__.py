"""Circuit intermediate representation: gates, affine parameters, DAG view."""

from repro.circuits.parameters import ParamExpr, ParameterTable, WEIGHT, INPUT
from repro.circuits.circuit import Circuit, Gate
from repro.circuits.dag import CircuitDAG, gates_commute

__all__ = [
    "ParamExpr",
    "ParameterTable",
    "Circuit",
    "Gate",
    "WEIGHT",
    "INPUT",
    "CircuitDAG",
    "gates_commute",
]
