"""Dependency-DAG view of a circuit, plus gate commutation analysis.

The gate list is the canonical circuit representation; this module gives
the *scheduling* view: a directed acyclic graph with one node per gate
and one edge per qubit-wire dependency.  The DAG answers structural
questions the flat list cannot cheaply answer -- front layers (what can
run now), ASAP layering (for the drawer and depth accounting), and which
gates are genuinely ordered vs merely adjacent in the list.

:func:`gates_commute` implements the commutation oracle the optimizer
passes rely on: structural rules for the common basis-gate cases (sound,
proven in the module tests against dense matrices) with a dense-matrix
fallback for constant-parameter gates.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.circuits.circuit import Circuit, Gate
from repro.utils.linalg import embed_operator

#: Gates diagonal in the computational (Z) basis on all their qubits.
_DIAGONAL_1Q = frozenset({"rz", "z", "s", "sdg", "t", "tdg", "u1", "id"})
_DIAGONAL_2Q = frozenset({"cz", "rzz"})

#: Gates diagonal in the X basis on all their qubits.
_XBASIS_1Q = frozenset({"x", "sx", "sxdg", "rx"})
_XBASIS_2Q = frozenset({"rxx"})

#: Gates diagonal in the Y basis on all their qubits.
_YBASIS_1Q = frozenset({"y", "ry"})
_YBASIS_2Q = frozenset({"ryy"})


def _basis_role(gate: Gate, qubit: int) -> "str | None":
    """How ``gate`` acts on ``qubit``: 'z' / 'x' basis-diagonal, or None.

    A gate is basis-diagonal on a qubit when it decomposes as a sum of
    that basis' projectors on the qubit tensored with operators elsewhere
    -- e.g. CX is Z-diagonal on its control and X-diagonal on its target.
    Two gates commute if on *every shared qubit* they are diagonal in the
    same basis (proof: expand both as projector sums; projectors commute
    and the residual factors act on disjoint qubits).
    """
    name = gate.name
    if name in _DIAGONAL_1Q or name in _DIAGONAL_2Q:
        return "z"
    if name in _XBASIS_1Q or name in _XBASIS_2Q:
        return "x"
    if name in _YBASIS_1Q or name in _YBASIS_2Q:
        return "y"
    if name == "cx":
        return "z" if qubit == gate.qubits[0] else "x"
    if name == "cy":
        return "z" if qubit == gate.qubits[0] else "y"
    if name == "rzx":
        return "z" if qubit == gate.qubits[0] else "x"
    if name in ("crz", "cu3", "crx", "cry") and qubit == gate.qubits[0]:
        return "z"
    if name == "crz" and qubit == gate.qubits[1]:
        return "z"
    if name == "crx" and qubit == gate.qubits[1]:
        return "x"
    if name == "cry" and qubit == gate.qubits[1]:
        return "y"
    return None


def _dense_commute(a: Gate, b: Gate, atol: float = 1e-10) -> bool:
    """Exact commutation check on the union of the two gates' qubits."""
    union = sorted(set(a.qubits) | set(b.qubits))
    local = {q: i for i, q in enumerate(union)}
    n = len(union)

    def matrix(gate: Gate) -> np.ndarray:
        values = tuple(float(p.const) for p in gate.params)
        small = gate.definition.matrix(values)
        return embed_operator(small, tuple(local[q] for q in gate.qubits), n)

    ma, mb = matrix(a), matrix(b)
    return bool(np.allclose(ma @ mb, mb @ ma, atol=atol))


def gates_commute(a: Gate, b: Gate) -> bool:
    """True when the two gates are known to commute.

    Sound but incomplete: symbolic-parameter gates without a structural
    rule report ``False`` (the optimizer then simply does not move past
    them).
    """
    shared = set(a.qubits) & set(b.qubits)
    if not shared:
        return True
    if all(
        _basis_role(a, q) is not None and _basis_role(a, q) == _basis_role(b, q)
        for q in shared
    ):
        return True
    # Same-axis rotations on identical qubits commute regardless of angle.
    if a.name == b.name and a.qubits == b.qubits and a.definition.num_params <= 1:
        if a.name in ("rx", "ry", "rz", "rxx", "ryy", "rzz", "rzx", "u1",
                      "crx", "cry", "crz"):
            return True
    all_constant = all(p.is_constant for p in a.params + b.params)
    if all_constant:
        return _dense_commute(a, b)
    return False


class CircuitDAG:
    """Gate-dependency DAG: node per gate, edge per qubit wire.

    Node ids are the gate's index in the source circuit; each node stores
    its :class:`Gate` under the ``"gate"`` attribute, and each edge the
    qubit wire it represents under ``"qubit"`` (parallel wires between the
    same pair of gates are collapsed to one edge carrying a qubit set).
    """

    def __init__(self, n_qubits: int, graph: "nx.DiGraph", order: "list[int]"):
        self.n_qubits = n_qubits
        self.graph = graph
        self._order = order  # original gate indices, for stable output

    @staticmethod
    def from_circuit(circuit: Circuit) -> "CircuitDAG":
        graph = nx.DiGraph()
        last_on: "dict[int, int]" = {}
        for index, gate in enumerate(circuit.gates):
            graph.add_node(index, gate=gate)
            for q in gate.qubits:
                prev = last_on.get(q)
                if prev is not None:
                    if graph.has_edge(prev, index):
                        graph.edges[prev, index]["qubits"].add(q)
                    else:
                        graph.add_edge(prev, index, qubits={q})
                last_on[q] = index
        return CircuitDAG(circuit.n_qubits, graph, list(range(len(circuit.gates))))

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return self.graph.number_of_nodes()

    def gate(self, node: int) -> Gate:
        return self.graph.nodes[node]["gate"]

    def front_layer(self) -> "list[int]":
        """Nodes with no predecessors: gates executable immediately."""
        return [n for n in self.graph.nodes if self.graph.in_degree(n) == 0]

    def layers(self) -> "list[list[int]]":
        """ASAP layering: each gate lands right after its latest input.

        Layer ``k`` holds the gates whose longest dependency chain has
        length ``k``; the number of layers equals the circuit depth.
        """
        level: "dict[int, int]" = {}
        for node in nx.topological_sort(self.graph):
            preds = list(self.graph.predecessors(node))
            level[node] = 1 + max((level[p] for p in preds), default=-1)
        n_layers = 1 + max(level.values(), default=-1)
        out: "list[list[int]]" = [[] for _ in range(n_layers)]
        for node, lvl in level.items():
            out[lvl].append(node)
        for layer in out:
            layer.sort()
        return out

    def depth(self) -> int:
        return len(self.layers())

    def successors_on(self, node: int, qubit: int) -> "int | None":
        """The next gate on ``qubit``'s wire after ``node`` (or None)."""
        for succ in self.graph.successors(node):
            if qubit in self.graph.edges[node, succ]["qubits"]:
                return succ
        return None

    def predecessors_on(self, node: int, qubit: int) -> "int | None":
        for pred in self.graph.predecessors(node):
            if qubit in self.graph.edges[pred, node]["qubits"]:
                return pred
        return None

    def descendants(self, node: int) -> "set[int]":
        return nx.descendants(self.graph, node)

    # -- mutation ------------------------------------------------------------

    def remove_gate(self, node: int) -> None:
        """Remove a gate, reconnecting each qubit wire across the gap."""
        gate = self.gate(node)
        for q in gate.qubits:
            pred = self.predecessors_on(node, q)
            succ = self.successors_on(node, q)
            if pred is not None and succ is not None:
                if self.graph.has_edge(pred, succ):
                    self.graph.edges[pred, succ]["qubits"].add(q)
                else:
                    self.graph.add_edge(pred, succ, qubits={q})
        self.graph.remove_node(node)

    # -- export ---------------------------------------------------------------

    def to_circuit(self) -> Circuit:
        """Rebuild a circuit in a topological order stable w.r.t. input order."""
        order = list(nx.lexicographical_topological_sort(self.graph))
        return Circuit(self.n_qubits, [self.gate(n) for n in order])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitDAG({self.n_qubits} qubits, {len(self)} gates, "
            f"depth {self.depth()})"
        )
