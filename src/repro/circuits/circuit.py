"""Quantum circuit container used throughout the library.

A :class:`Circuit` is an ordered list of :class:`Gate` operations on
``n_qubits`` qubits.  Gate parameters are :class:`~repro.circuits.parameters.ParamExpr`
objects, so a circuit is simultaneously a *template* (symbolic weights and
inputs) and -- once bound with concrete arrays -- an executable program.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.parameters import ParamExpr, ParameterTable
from repro.sim.gates import gate_def
from repro.utils.linalg import embed_operator


@dataclass(frozen=True)
class Gate:
    """A single gate application: name, target qubits and parameters."""

    name: str
    qubits: "tuple[int, ...]"
    params: "tuple[ParamExpr, ...]" = ()

    def __post_init__(self) -> None:
        definition = gate_def(self.name)
        if len(self.qubits) != definition.num_qubits:
            raise ValueError(
                f"{self.name} acts on {definition.num_qubits} qubits, "
                f"got {self.qubits}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubits in {self.qubits}")
        if len(self.params) != definition.num_params:
            raise ValueError(
                f"{self.name} takes {definition.num_params} params, "
                f"got {len(self.params)}"
            )

    @property
    def definition(self):
        """The :class:`GateDef` for this gate."""
        return gate_def(self.name)

    def remapped(self, mapping: "dict[int, int]") -> "Gate":
        """Return a copy acting on ``mapping[q]`` for each qubit ``q``."""
        return Gate(self.name, tuple(mapping[q] for q in self.qubits), self.params)


class Circuit:
    """An ordered sequence of gates on a fixed number of qubits."""

    def __init__(self, n_qubits: int, gates: "list[Gate] | None" = None):
        if n_qubits < 1:
            raise ValueError("circuit needs at least one qubit")
        self.n_qubits = n_qubits
        self.gates: "list[Gate]" = []
        for gate in gates or []:
            self._check_and_store(gate)

    # -- construction ------------------------------------------------------

    def _check_and_store(self, gate: Gate) -> None:
        if any(q < 0 or q >= self.n_qubits for q in gate.qubits):
            raise ValueError(
                f"gate {gate.name} on {gate.qubits} out of range for "
                f"{self.n_qubits} qubits"
            )
        self.gates.append(gate)

    def add(
        self,
        name: str,
        qubits: "int | tuple[int, ...]",
        *params: "ParamExpr | float",
    ) -> "Circuit":
        """Append a gate; accepts plain floats as constant angles."""
        if isinstance(qubits, int):
            qubits = (qubits,)
        exprs = tuple(ParamExpr.coerce(p) for p in params)
        self._check_and_store(Gate(name.lower(), tuple(qubits), exprs))
        return self

    def extend(self, other: "Circuit") -> "Circuit":
        """Append all gates of ``other`` (must have same width)."""
        if other.n_qubits != self.n_qubits:
            raise ValueError("cannot extend with a circuit of different width")
        for gate in other.gates:
            self._check_and_store(gate)
        return self

    def copy(self) -> "Circuit":
        return Circuit(self.n_qubits, list(self.gates))

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self):
        return iter(self.gates)

    @property
    def parameter_table(self) -> ParameterTable:
        """Sizes of the weight / input vectors this circuit references."""
        exprs = [p for gate in self.gates for p in gate.params]
        return ParameterTable.scan(exprs)

    def count_ops(self) -> "dict[str, int]":
        """Histogram of gate names (for overhead accounting)."""
        counts: dict[str, int] = {}
        for gate in self.gates:
            counts[gate.name] = counts.get(gate.name, 0) + 1
        return counts

    def depth(self) -> int:
        """Circuit depth counting each gate as one time step per qubit."""
        frontier = [0] * self.n_qubits
        for gate in self.gates:
            level = max(frontier[q] for q in gate.qubits) + 1
            for q in gate.qubits:
                frontier[q] = level
        return max(frontier, default=0)

    def two_qubit_gates(self) -> "list[Gate]":
        return [g for g in self.gates if len(g.qubits) == 2]

    # -- inversion -----------------------------------------------------------

    _SELF_INVERSE = frozenset(
        {"id", "x", "y", "z", "h", "cx", "cz", "cy", "swap"}
    )
    _DAGGER_NAMES = {
        "s": "sdg",
        "sdg": "s",
        "t": "tdg",
        "tdg": "t",
        "sx": "sxdg",
        "sxdg": "sx",
        "sh": "shdg",
        "shdg": "sh",
    }
    _NEGATE_ANGLE = frozenset(
        {"rx", "ry", "rz", "u1", "crx", "cry", "crz", "rxx", "ryy", "rzz", "rzx"}
    )

    def inverse(self) -> "Circuit":
        """The adjoint circuit: reversed gate order, each gate inverted.

        Used by zero-noise extrapolation's circuit folding, where
        ``U (U^dag U)^k`` preserves the function while scaling noise.
        """
        inverted = Circuit(self.n_qubits)
        for gate in reversed(self.gates):
            name = gate.name
            if name in self._SELF_INVERSE:
                inverted.gates.append(gate)
            elif name in self._DAGGER_NAMES:
                inverted.gates.append(
                    Gate(self._DAGGER_NAMES[name], gate.qubits)
                )
            elif name in self._NEGATE_ANGLE:
                inverted.gates.append(
                    Gate(name, gate.qubits, (gate.params[0].scaled(-1.0),))
                )
            elif name in ("u3", "cu3"):
                theta, phi, lam = gate.params
                inverted.gates.append(
                    Gate(
                        name,
                        gate.qubits,
                        (theta.scaled(-1.0), lam.scaled(-1.0), phi.scaled(-1.0)),
                    )
                )
            elif name == "sqswap":
                for rot in ("rzz", "ryy", "rxx"):
                    inverted.gates.append(
                        Gate(rot, gate.qubits, (ParamExpr.constant(-np.pi / 4),))
                    )
            else:
                raise NotImplementedError(f"no inverse rule for gate {name!r}")
        return inverted

    # -- dense reference ----------------------------------------------------

    def to_matrix(
        self,
        weights: "np.ndarray | None" = None,
        inputs_row: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Dense unitary of the whole circuit (testing / small widths only).

        ``inputs_row`` is a single sample's feature vector; expressions are
        evaluated against it directly.
        """
        dim = 2**self.n_qubits
        unitary = np.eye(dim, dtype=complex)
        row = None if inputs_row is None else np.asarray(inputs_row)[None, :]
        for gate in self.gates:
            values = []
            for expr in gate.params:
                value = expr.evaluate(weights, row)
                values.append(float(np.asarray(value).reshape(-1)[0]))
            matrix = gate.definition.matrix(tuple(values))
            unitary = embed_operator(matrix, gate.qubits, self.n_qubits) @ unitary
        return unitary

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ops = ", ".join(f"{g.name}{list(g.qubits)}" for g in self.gates[:8])
        more = "..." if len(self.gates) > 8 else ""
        return f"Circuit({self.n_qubits} qubits, {len(self.gates)} gates: {ops}{more})"
