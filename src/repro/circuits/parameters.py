"""Affine parameter expressions for differentiable circuits.

A gate angle in a QNN is rarely a free number: it is either a trainable
weight ``w[i]``, an encoded input feature ``x[j]``, or -- after the
compiler lowers the circuit to hardware basis gates -- an *affine
combination* of those, e.g. ``theta + pi`` inside the RZ/SX decomposition
of U3.  :class:`ParamExpr` represents exactly that family::

    expr = const + sum(coeff_k * ref_k)

where each ``ref`` is ``("w", index)`` for a trainable weight or
``("x", index)`` for an input feature.  Keeping angles affine means the
chain rule through transpilation is a single multiply by ``coeff``, so
gradients stay exact no matter how the compiler rewrites the circuit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

WEIGHT = "w"
INPUT = "x"
_VALID_KINDS = (WEIGHT, INPUT)


@dataclass(frozen=True)
class ParamExpr:
    """An affine expression ``const + sum(coeff * ref)`` over parameters.

    ``terms`` is a tuple of ``(kind, index, coeff)`` with kind ``"w"``
    (trainable weight) or ``"x"`` (encoder input).  Most expressions have
    zero terms (a constant angle) or one term (a plain parameter).
    """

    terms: "tuple[tuple[str, int, float], ...]" = ()
    const: float = 0.0

    def __post_init__(self) -> None:
        for kind, index, _coeff in self.terms:
            if kind not in _VALID_KINDS:
                raise ValueError(f"bad parameter kind {kind!r}")
            if index < 0:
                raise ValueError(f"negative parameter index {index}")

    # -- constructors -----------------------------------------------------

    @staticmethod
    def weight(index: int, coeff: float = 1.0, const: float = 0.0) -> "ParamExpr":
        """Expression ``coeff * w[index] + const``."""
        return ParamExpr(((WEIGHT, index, float(coeff)),), float(const))

    @staticmethod
    def input(index: int, coeff: float = 1.0, const: float = 0.0) -> "ParamExpr":
        """Expression ``coeff * x[index] + const``."""
        return ParamExpr(((INPUT, index, float(coeff)),), float(const))

    @staticmethod
    def constant(value: float) -> "ParamExpr":
        """A constant angle with no free parameters."""
        return ParamExpr((), float(value))

    @staticmethod
    def coerce(value: "ParamExpr | float | int") -> "ParamExpr":
        """Wrap a plain number into a constant expression."""
        if isinstance(value, ParamExpr):
            return value
        return ParamExpr.constant(float(value))

    # -- algebra ----------------------------------------------------------

    def shifted(self, offset: float) -> "ParamExpr":
        """Return ``self + offset``."""
        return ParamExpr(self.terms, self.const + float(offset))

    def scaled(self, factor: float) -> "ParamExpr":
        """Return ``factor * self``."""
        factor = float(factor)
        terms = tuple((k, i, c * factor) for k, i, c in self.terms)
        return ParamExpr(terms, self.const * factor)

    def __add__(self, other: "ParamExpr | float") -> "ParamExpr":
        other = ParamExpr.coerce(other)
        merged: dict[tuple[str, int], float] = {}
        for kind, index, coeff in self.terms + other.terms:
            merged[(kind, index)] = merged.get((kind, index), 0.0) + coeff
        terms = tuple(
            (kind, index, coeff)
            for (kind, index), coeff in merged.items()
            if coeff != 0.0
        )
        return ParamExpr(terms, self.const + other.const)

    def __neg__(self) -> "ParamExpr":
        return self.scaled(-1.0)

    # -- queries ----------------------------------------------------------

    @property
    def is_constant(self) -> bool:
        """True when the expression has no free parameters."""
        return not self.terms

    @property
    def depends_on_input(self) -> bool:
        """True when any term references an encoder input ``x[j]``."""
        return any(kind == INPUT for kind, _i, _c in self.terms)

    def weight_indices(self) -> "set[int]":
        return {i for kind, i, _c in self.terms if kind == WEIGHT}

    def input_indices(self) -> "set[int]":
        return {i for kind, i, _c in self.terms if kind == INPUT}

    # -- evaluation -------------------------------------------------------

    def evaluate(
        self,
        weights: "np.ndarray | None" = None,
        inputs: "np.ndarray | None" = None,
    ) -> "float | np.ndarray":
        """Evaluate the expression.

        ``weights`` is a 1-D array; ``inputs`` is ``(batch, n_features)``.
        Returns a scalar when the expression has no input terms, otherwise
        a ``(batch,)`` array.
        """
        value: "float | np.ndarray" = self.const
        for kind, index, coeff in self.terms:
            if kind == WEIGHT:
                if weights is None:
                    raise ValueError("expression needs weights but none given")
                value = value + coeff * float(weights[index])
            else:
                if inputs is None:
                    raise ValueError("expression needs inputs but none given")
                value = value + coeff * np.asarray(inputs)[:, index]
        return value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{c:+g}*{k}[{i}]" for k, i, c in self.terms]
        if self.const or not parts:
            parts.append(f"{self.const:+g}")
        return "".join(parts).lstrip("+")


@dataclass(frozen=True)
class ParameterTable:
    """Bookkeeping for how many weights / inputs a circuit references."""

    num_weights: int = 0
    num_inputs: int = 0

    @staticmethod
    def scan(exprs: "list[ParamExpr]") -> "ParameterTable":
        """Infer table sizes from a list of expressions."""
        max_w = -1
        max_x = -1
        for expr in exprs:
            for kind, index, _coeff in expr.terms:
                if kind == WEIGHT:
                    max_w = max(max_w, index)
                else:
                    max_x = max(max_x, index)
        return ParameterTable(max_w + 1, max_x + 1)

    def merge(self, other: "ParameterTable") -> "ParameterTable":
        return ParameterTable(
            max(self.num_weights, other.num_weights),
            max(self.num_inputs, other.num_inputs),
        )
