"""Parse an OpenQASM 2.0 subset back into a :class:`Circuit`.

Supported constructs:

* ``OPENQASM 2.0;`` header and ``include`` statements (includes are not
  read from disk; ``qelib1.inc`` names are built in),
* any number of ``qreg`` declarations (flattened into one qubit space),
* ``creg`` declarations, ``measure`` and ``barrier`` (validated, then
  ignored -- the library's measurement model lives outside the circuit),
* gate applications with angle expressions over ``pi`` and the usual
  arithmetic (``rz(3*pi/4) q[0];``), applied to explicit qubits or
  broadcast over whole registers (``h q;``),
* user-defined gate macros, with and without parameters, expanded
  recursively at parse time.

Gates in ``qelib1.inc`` that have no native :class:`GateDef` (``u2``,
``u0``, ``cu1``, ``ccx``, ``ch``, ``cswap``) are provided as built-in
macros written in QASM itself and bootstrapped through this same parser.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import Circuit, Gate
from repro.circuits.parameters import ParamExpr
from repro.sim.gates import GATES


class QasmError(ValueError):
    """Raised on malformed OpenQASM input."""


#: qelib1.inc entries that map 1:1 onto native gate definitions.
_NATIVE = frozenset(
    {
        "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg",
        "rx", "ry", "rz", "u1", "u3",
        "cx", "CX", "cy", "cz", "swap", "crx", "cry", "crz", "cu3",
        "rxx", "rzz",
    }
)

#: qelib1.inc gates without a native GateDef, defined as QASM macros.
_BUILTIN_MACROS = """
gate u2(phi, lam) a { u3(pi/2, phi, lam) a; }
gate u0(gamma) a { id a; }
gate u(theta, phi, lam) a { u3(theta, phi, lam) a; }
gate p(lam) a { u1(lam) a; }
gate cu1(lam) a, b { u1(lam/2) a; cx a, b; u1(-lam/2) b; cx a, b; u1(lam/2) b; }
gate cp(lam) a, b { cu1(lam) a, b; }
gate ch a, b { h b; sdg b; cx a, b; h b; t b; cx a, b; t b; h b; s b; x b; s a; }
gate ccx a, b, c {
  h c; cx b, c; tdg c; cx a, c; t c; cx b, c; tdg c; cx a, c;
  t b; t c; h c; cx a, b; t a; tdg b; cx a, b;
}
gate cswap a, b, c { cx c, b; ccx a, b, c; cx c, b; }
"""


# -- tokenizer -----------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*)
  | (?P<string>"[^"]*")
  | (?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<arrow>->)
  | (?P<symbol>[{}()\[\];,+\-*/^])
  | (?P<space>\s+)
""",
    re.VERBOSE,
)


def _tokenize(text: str) -> "list[str]":
    tokens: "list[str]" = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise QasmError(f"unexpected character {text[pos]!r} at offset {pos}")
        pos = match.end()
        kind = match.lastgroup
        if kind in ("comment", "space"):
            continue
        tokens.append(match.group())
    return tokens


# -- angle expression evaluation ---------------------------------------------------


class _ExprParser:
    """Recursive-descent evaluator for angle expressions.

    Grammar: expr := term (('+'|'-') term)*; term := factor (('*'|'/')
    factor)*; factor := ('-'|'+') factor | atom ('^' factor)?; atom :=
    number | 'pi' | name | '(' expr ')'.  ``names`` supplies macro
    parameter bindings.
    """

    def __init__(self, tokens: "list[str]", names: "dict[str, float]"):
        self.tokens = tokens
        self.names = names
        self.pos = 0

    def parse(self) -> float:
        value = self._expr()
        if self.pos != len(self.tokens):
            raise QasmError(
                f"trailing tokens in expression: {self.tokens[self.pos:]}"
            )
        return value

    def _peek(self) -> "str | None":
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise QasmError("unexpected end of expression")
        self.pos += 1
        return token

    def _expr(self) -> float:
        value = self._term()
        while self._peek() in ("+", "-"):
            if self._next() == "+":
                value += self._term()
            else:
                value -= self._term()
        return value

    def _term(self) -> float:
        value = self._factor()
        while self._peek() in ("*", "/"):
            if self._next() == "*":
                value *= self._factor()
            else:
                denom = self._factor()
                if denom == 0:
                    raise QasmError("division by zero in angle expression")
                value /= denom
        return value

    def _factor(self) -> float:
        token = self._peek()
        if token in ("-", "+"):
            self._next()
            sign = -1.0 if token == "-" else 1.0
            return sign * self._factor()
        value = self._atom()
        if self._peek() == "^":
            self._next()
            value = value ** self._factor()
        return value

    def _atom(self) -> float:
        token = self._next()
        if token == "(":
            value = self._expr()
            if self._next() != ")":
                raise QasmError("unbalanced parentheses in expression")
            return value
        if token == "pi":
            return float(np.pi)
        if token in self.names:
            return self.names[token]
        try:
            return float(token)
        except ValueError:
            raise QasmError(f"unknown identifier {token!r} in expression") from None


def _eval_expr(tokens: "list[str]", names: "dict[str, float]") -> float:
    return _ExprParser(tokens, names).parse()


# -- statement-level parsing ------------------------------------------------------


@dataclass
class _Macro:
    """A user-defined gate: parameter names, qubit argument names, body."""

    params: "list[str]"
    qargs: "list[str]"
    body: "list[list[str]]"  # statements, each a token list


class _Program:
    def __init__(self) -> None:
        self.registers: "dict[str, tuple[int, int]]" = {}  # name -> (offset, size)
        self.n_qubits = 0
        self.cregs: "dict[str, int]" = {}
        self.gates: "list[Gate]" = []
        self.macros: "dict[str, _Macro]" = {}


def _split_statements(tokens: "list[str]") -> "list[list[str]]":
    """Split on ';', keeping 'gate ... { ... }' blocks as single units."""
    statements: "list[list[str]]" = []
    current: "list[str]" = []
    depth = 0
    for token in tokens:
        if token == "{":
            depth += 1
            current.append(token)
        elif token == "}":
            depth -= 1
            if depth < 0:
                raise QasmError("unbalanced '}'")
            current.append(token)
            if depth == 0 and current and current[0] == "gate":
                statements.append(current)
                current = []
        elif token == ";" and depth == 0:
            if current:
                statements.append(current)
            current = []
        else:
            current.append(token)
    if depth != 0:
        raise QasmError("unbalanced '{' in gate definition")
    if current:
        raise QasmError(f"missing ';' after: {' '.join(current[:6])}")
    return statements


def _split_on(tokens: "list[str]", sep: str) -> "list[list[str]]":
    """Split a token list on a separator, respecting parentheses."""
    parts: "list[list[str]]" = [[]]
    depth = 0
    for token in tokens:
        if token in ("(", "["):
            depth += 1
        elif token in (")", "]"):
            depth -= 1
        if token == sep and depth == 0:
            parts.append([])
        else:
            parts[-1].append(token)
    return parts


def _parse_gate_def(tokens: "list[str]", program: _Program) -> None:
    # gate NAME [(p0, p1)] q0, q1 { body }
    pos = 1
    name = tokens[pos]
    pos += 1
    params: "list[str]" = []
    if tokens[pos] == "(":
        close = tokens.index(")", pos)
        params = [t for t in tokens[pos + 1 : close] if t != ","]
        pos = close + 1
    brace = tokens.index("{", pos)
    qargs = [t for t in tokens[pos:brace] if t != ","]
    body_tokens = tokens[brace + 1 : -1]
    body = _split_statements([t for t in body_tokens] + [";"])
    body = [s for s in body if s]
    if name in GATES or name in program.macros:
        # Re-definitions of known gates (e.g. qelib1 re-included) are
        # ignored -- the native definition wins.
        if name in _NATIVE:
            return
    program.macros[name] = _Macro(params, qargs, body)


def _qubit_operands(
    tokens: "list[str]", program: _Program
) -> "list[list[int]]":
    """Resolve gate operands to qubit index lists (register broadcast)."""
    operands: "list[list[int]]" = []
    for part in _split_on(tokens, ","):
        if not part:
            raise QasmError("empty gate operand")
        reg = part[0]
        if reg not in program.registers:
            raise QasmError(f"unknown quantum register {reg!r}")
        offset, size = program.registers[reg]
        if len(part) == 1:
            operands.append([offset + i for i in range(size)])
        elif len(part) == 4 and part[1] == "[" and part[3] == "]":
            index = int(part[2])
            if not 0 <= index < size:
                raise QasmError(f"index {index} out of range for {reg}[{size}]")
            operands.append([offset + index])
        else:
            raise QasmError(f"malformed operand: {' '.join(part)}")
    return operands


def _broadcast(operands: "list[list[int]]") -> "list[tuple[int, ...]]":
    """qelib broadcast rule: whole-register operands expand in lockstep."""
    lengths = {len(op) for op in operands}
    lengths.discard(1)
    if not lengths:
        return [tuple(op[0] for op in operands)]
    if len(lengths) != 1:
        raise QasmError(f"mismatched register lengths in broadcast: {operands}")
    n = lengths.pop()
    return [
        tuple(op[0] if len(op) == 1 else op[i] for op in operands)
        for i in range(n)
    ]


def _apply_gate(
    name: str,
    param_values: "list[float]",
    qubits: "tuple[int, ...]",
    program: _Program,
) -> None:
    if name in program.macros:
        macro = program.macros[name]
        if len(param_values) != len(macro.params):
            raise QasmError(
                f"{name} takes {len(macro.params)} params, got {len(param_values)}"
            )
        if len(qubits) != len(macro.qargs):
            raise QasmError(
                f"{name} takes {len(macro.qargs)} qubits, got {len(qubits)}"
            )
        bindings = dict(zip(macro.params, param_values))
        qubit_map = dict(zip(macro.qargs, qubits))
        for statement in macro.body:
            _expand_macro_statement(statement, bindings, qubit_map, program)
        return

    lowered = "cx" if name == "CX" else name
    if lowered not in GATES:
        raise QasmError(f"unknown gate {name!r}")
    params = tuple(ParamExpr.constant(v) for v in param_values)
    program.gates.append(Gate(lowered, qubits, params))


def _expand_macro_statement(
    tokens: "list[str]",
    bindings: "dict[str, float]",
    qubit_map: "dict[str, int]",
    program: _Program,
) -> None:
    name = tokens[0]
    if name == "barrier":
        return
    pos = 1
    param_values: "list[float]" = []
    if pos < len(tokens) and tokens[pos] == "(":
        depth = 0
        for close in range(pos, len(tokens)):
            if tokens[close] == "(":
                depth += 1
            elif tokens[close] == ")":
                depth -= 1
                if depth == 0:
                    break
        else:
            raise QasmError(f"unbalanced '(' in macro body: {' '.join(tokens)}")
        inner = tokens[pos + 1 : close]
        param_values = [
            _eval_expr(part, bindings) for part in _split_on(inner, ",") if part
        ]
        pos = close + 1
    qarg_names = [t for t in tokens[pos:] if t != ","]
    try:
        qubits = tuple(qubit_map[q] for q in qarg_names)
    except KeyError as exc:
        raise QasmError(f"unknown qubit argument {exc} in macro body") from None
    _apply_gate(name, param_values, qubits, program)


def _parse_application(tokens: "list[str]", program: _Program) -> None:
    name = tokens[0]
    pos = 1
    param_values: "list[float]" = []
    if pos < len(tokens) and tokens[pos] == "(":
        depth = 0
        for close in range(pos, len(tokens)):
            if tokens[close] == "(":
                depth += 1
            elif tokens[close] == ")":
                depth -= 1
                if depth == 0:
                    break
        else:
            raise QasmError(f"unbalanced '(' in: {' '.join(tokens)}")
        inner = tokens[pos + 1 : close]
        param_values = [
            _eval_expr(part, {}) for part in _split_on(inner, ",") if part
        ]
        pos = close + 1
    operands = _qubit_operands(tokens[pos:], program)
    for qubits in _broadcast(operands):
        _apply_gate(name, param_values, qubits, program)


def _parse_statement(tokens: "list[str]", program: _Program) -> None:
    head = tokens[0]
    if head == "OPENQASM":
        if tokens[1:] != ["2.0"]:
            raise QasmError(f"unsupported OPENQASM version: {tokens[1:]}")
    elif head == "include":
        return  # qelib1.inc contents are built in
    elif head in ("qreg", "creg"):
        if len(tokens) != 5 or tokens[2] != "[" or tokens[4] != "]":
            raise QasmError(f"malformed register declaration: {' '.join(tokens)}")
        name, size = tokens[1], int(tokens[3])
        if size < 1:
            raise QasmError(f"register {name} must have positive size")
        if head == "qreg":
            if name in program.registers:
                raise QasmError(f"duplicate register {name!r}")
            program.registers[name] = (program.n_qubits, size)
            program.n_qubits += size
        else:
            program.cregs[name] = size
    elif head == "gate":
        _parse_gate_def(tokens, program)
    elif head == "measure":
        parts = _split_on(tokens[1:], "->")
        if len(parts) != 2:
            raise QasmError(f"malformed measure: {' '.join(tokens)}")
        _qubit_operands(parts[0], program)  # validates the qubit side
    elif head == "barrier":
        _qubit_operands(tokens[1:], program)
    elif head in ("if", "reset", "opaque"):
        raise QasmError(f"unsupported OpenQASM statement: {head}")
    else:
        _parse_application(tokens, program)


def from_qasm(text: str) -> Circuit:
    """Parse OpenQASM 2.0 source into a :class:`Circuit`.

    Measurements and barriers are validated but not represented; custom
    gate macros are expanded in place.
    """
    program = _Program()
    for statement in _split_statements(_tokenize(_BUILTIN_MACROS)):
        if statement:
            _parse_gate_def(statement, program)

    statements = _split_statements(_tokenize(text))
    if not statements or statements[0][0] != "OPENQASM":
        raise QasmError("missing 'OPENQASM 2.0;' header")
    for statement in statements:
        _parse_statement(statement, program)
    if program.n_qubits == 0:
        raise QasmError("no qreg declared")
    return Circuit(program.n_qubits, program.gates)
