"""OpenQASM 2.0 interchange: export bound circuits, import programs.

QuantumNAT's deployment story ends with a compiled circuit handed to a
vendor toolchain; OpenQASM 2.0 is the lingua franca for that hand-off.
:func:`to_qasm` serializes any bound :class:`~repro.circuits.Circuit`
into a program that standard tools accept (non-qelib gates are lowered
first), and :func:`from_qasm` parses a useful OpenQASM 2.0 subset --
including user-defined gate macros and pi-expressions -- back into a
circuit.
"""

from repro.qasm.exporter import to_qasm
from repro.qasm.parser import QasmError, from_qasm

__all__ = ["to_qasm", "from_qasm", "QasmError"]
