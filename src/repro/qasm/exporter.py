"""Serialize circuits to OpenQASM 2.0 text.

Gates with a direct ``qelib1.inc`` equivalent are emitted verbatim.
Fixed single-qubit gates outside qelib (``sx`` on old toolchains, ``sh``)
are emitted as an equivalent ``u3``; parameterized non-qelib gates
(``ryy``, ``rzx``, ``sqswap``) are lowered one step with the compiler's
expansion rules and re-tried.  The output therefore always parses against
the standard include file.

Parameter expressions must be *bound*: pass ``weights`` (and
``inputs_row`` for encoder gates) so every angle evaluates to a float.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.compiler.decompositions import euler_zyz, expand_gate

if TYPE_CHECKING:  # pragma: no cover
    from repro.circuits.circuit import Circuit, Gate

#: Gates defined (with identical semantics) in qelib1.inc.
QASM_NATIVE = frozenset(
    {
        "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg",
        "rx", "ry", "rz", "u1", "u3",
        "cx", "cy", "cz", "swap", "crx", "cry", "crz", "cu3",
        "rxx", "rzz",
    }
)


def _format_angle(value: float) -> str:
    """Format an angle, preferring exact reduced pi fractions."""
    import math

    for den in (1, 2, 3, 4, 6, 8):
        for num in range(-8, 9):
            if num == 0 or math.gcd(abs(num), den) != 1:
                continue
            if np.isclose(value, num * np.pi / den, rtol=0, atol=1e-12):
                sign = "-" if num < 0 else ""
                mag = abs(num)
                numerator = "pi" if mag == 1 else f"{mag}*pi"
                if den == 1:
                    return f"{sign}{numerator}"
                return f"{sign}{numerator}/{den}"
    if value == 0:
        return "0"
    return repr(float(value))


def _bound_params(gate: "Gate", weights, inputs_row) -> "tuple[float, ...]":
    row = None if inputs_row is None else np.asarray(inputs_row, dtype=float)[None, :]
    values = []
    for expr in gate.params:
        try:
            value = expr.evaluate(weights, row)
        except ValueError as exc:
            raise ValueError(
                f"cannot export unbound gate {gate.name}: {exc}; "
                "pass weights/inputs_row to to_qasm"
            ) from None
        values.append(float(np.asarray(value).reshape(-1)[0]))
    return tuple(values)


def _emit(gate_name: str, params: "tuple[float, ...]", qubits) -> str:
    args = ", ".join(f"q[{q}]" for q in qubits)
    if params:
        angle_text = ", ".join(_format_angle(v) for v in params)
        return f"{gate_name}({angle_text}) {args};"
    return f"{gate_name} {args};"


def _lower_for_export(gate: "Gate") -> "list[Gate]":
    """Rewrite one non-native gate into gates closer to the QASM set."""
    if len(gate.qubits) == 1 and gate.definition.num_params == 0:
        # Fixed 1q gate: emit the equivalent u3 (global phase dropped).
        from repro.circuits.circuit import Gate as GateCls
        from repro.circuits.parameters import ParamExpr

        theta, phi, lam = euler_zyz(gate.definition.matrix(()))
        return [
            GateCls(
                "u3",
                gate.qubits,
                tuple(ParamExpr.constant(v) for v in (theta, phi, lam)),
            )
        ]
    expanded = expand_gate(gate)
    if expanded is None:  # pragma: no cover - basis gates are all native
        raise ValueError(f"no QASM lowering for gate {gate.name!r}")
    return expanded


def to_qasm(
    circuit: "Circuit",
    weights: "np.ndarray | None" = None,
    inputs_row: "np.ndarray | None" = None,
    creg: bool = True,
) -> str:
    """OpenQASM 2.0 text for a bound circuit.

    Parameters
    ----------
    circuit:
        The circuit to serialize.
    weights, inputs_row:
        Bindings for symbolic angles; optional when the circuit is
        constant.
    creg:
        Also emit a classical register and per-qubit measurements
        (what a deployment payload looks like).
    """
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.n_qubits}];",
    ]
    if creg:
        lines.append(f"creg c[{circuit.n_qubits}];")

    pending = list(circuit.gates)
    while pending:
        gate = pending.pop(0)
        if gate.name in QASM_NATIVE:
            params = _bound_params(gate, weights, inputs_row)
            lines.append(_emit(gate.name, params, gate.qubits))
        else:
            pending = _lower_for_export(gate) + pending

    if creg:
        for q in range(circuit.n_qubits):
            lines.append(f"measure q[{q}] -> c[{q}];")
    return "\n".join(lines) + "\n"
