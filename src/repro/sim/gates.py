"""Quantum gate library with analytic parameter derivatives.

Every gate used by the paper's five design spaces is defined here:

* fixed gates -- ``id, x, y, z, h, sx, sxdg, s, sdg, t, tdg, sh`` (sqrt-H),
  ``cx, cz, cy, swap, sqswap``
* parameterized gates -- ``rx, ry, rz, u1, u3, cu3, crx, cry, crz,
  rzz, rxx, ryy, rzx``

Conventions
-----------
* Little-endian: for a k-qubit gate applied to ``qubits = (q0, q1, ...)``
  the gate-matrix index is ``sum(bit(q_i) << i)``, i.e. ``qubits[0]`` is
  the least-significant bit of the gate's own basis index.  For controlled
  gates the *first* listed qubit is the control.
* Rotation gates follow ``R_P(theta) = exp(-i * theta / 2 * P)``.
* Matrix builders broadcast over parameter arrays: a parameter of shape
  ``(batch,)`` yields matrices of shape ``(batch, d, d)``.  This is what
  lets the statevector engine run a whole training batch (whose encoder
  angles differ per sample) in single vectorized numpy calls.
* ``GateDef.dmatrix(params, which)`` returns the elementwise derivative
  of the gate matrix with respect to parameter ``which`` -- consumed by
  the adjoint differentiation engine (``repro.core.gradients``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

# ---------------------------------------------------------------------------
# Constant matrices
# ---------------------------------------------------------------------------

I2 = np.eye(2, dtype=complex)
PAULI_X = np.array([[0, 1], [1, 0]], dtype=complex)
PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
PAULI_Z = np.array([[1, 0], [0, -1]], dtype=complex)
HADAMARD = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
SX_MATRIX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)
S_MATRIX = np.array([[1, 0], [0, 1j]], dtype=complex)
T_MATRIX = np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=complex)

PAULI_BY_NAME = {"i": I2, "x": PAULI_X, "y": PAULI_Y, "z": PAULI_Z}


def _sqrtm_2x2(matrix: np.ndarray) -> np.ndarray:
    """Principal square root of a 2x2 normal matrix via eigendecomposition."""
    values, vectors = np.linalg.eig(matrix)
    return vectors @ np.diag(np.sqrt(values.astype(complex))) @ np.linalg.inv(vectors)


SH_MATRIX = _sqrtm_2x2(HADAMARD)  # sqrt(H), used by the 'rxyz' design space

# Two-qubit constants (index = bit(q0) + 2 * bit(q1); q0 = control for CX)
CX_MATRIX = np.array(
    [[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]], dtype=complex
)
CZ_MATRIX = np.diag([1, 1, 1, -1]).astype(complex)
CY_MATRIX = np.array(
    [[1, 0, 0, 0], [0, 0, 0, -1j], [0, 0, 1, 0], [0, 1j, 0, 0]], dtype=complex
)
SWAP_MATRIX = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)
_s = 0.5 * (1 + 1j)
SQSWAP_MATRIX = np.array(
    [
        [1, 0, 0, 0],
        [0, _s, _s.conjugate(), 0],
        [0, _s.conjugate(), _s, 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)

# Kronecker products in our index convention: operator on qubit 1 is the
# *left* factor because it owns the more-significant bit.
XX_KRON = np.kron(PAULI_X, PAULI_X)
YY_KRON = np.kron(PAULI_Y, PAULI_Y)
ZZ_KRON = np.kron(PAULI_Z, PAULI_Z)
XZ_KRON = np.kron(PAULI_X, PAULI_Z)  # Z on qubits[0], X on qubits[1]


# ---------------------------------------------------------------------------
# Broadcast-friendly matrix builders
# ---------------------------------------------------------------------------


def _broadcast_fixed(matrix: np.ndarray) -> Callable[[tuple], np.ndarray]:
    def build(params: tuple) -> np.ndarray:
        return matrix

    return build


def _rotation_builder(generator: np.ndarray) -> Callable[[tuple], np.ndarray]:
    """exp(-i theta/2 G) for an involutory generator (G^2 = I)."""
    eye = np.eye(generator.shape[0], dtype=complex)
    neg_i_generator = -1j * generator

    def build(params: tuple) -> np.ndarray:
        theta = params[0]
        if not isinstance(theta, np.ndarray):
            # Scalar fast path: math.cos/sin skip the ufunc machinery.
            half = float(theta) * 0.5
            return math.cos(half) * eye + math.sin(half) * neg_i_generator
        theta = np.asarray(theta, dtype=float)
        cos = np.cos(theta / 2)[..., None, None]
        sin = np.sin(theta / 2)[..., None, None]
        return cos * eye + sin * neg_i_generator

    return build


def _rotation_deriv(generator: np.ndarray) -> Callable[[tuple, int], np.ndarray]:
    eye = np.eye(generator.shape[0], dtype=complex)
    neg_half_i_generator = -0.5j * generator

    def deriv(params: tuple, which: int) -> np.ndarray:
        theta = np.asarray(params[0], dtype=float)
        cos = np.cos(theta / 2)[..., None, None]
        sin = np.sin(theta / 2)[..., None, None]
        return (-0.5 * sin) * eye + cos * neg_half_i_generator

    return deriv


def _u1_matrix(params: tuple) -> np.ndarray:
    lam = np.asarray(params[0], dtype=float)
    shape = lam.shape + (2, 2)
    out = np.zeros(shape, dtype=complex)
    out[..., 0, 0] = 1.0
    out[..., 1, 1] = np.exp(1j * lam)
    return out


def _u1_deriv(params: tuple, which: int) -> np.ndarray:
    lam = np.asarray(params[0], dtype=float)
    out = np.zeros(lam.shape + (2, 2), dtype=complex)
    out[..., 1, 1] = 1j * np.exp(1j * lam)
    return out


def _u3_matrix(params: tuple) -> np.ndarray:
    theta, phi, lam = (np.asarray(p, dtype=float) for p in params)
    theta, phi, lam = np.broadcast_arrays(theta, phi, lam)
    cos, sin = np.cos(theta / 2), np.sin(theta / 2)
    out = np.zeros(theta.shape + (2, 2), dtype=complex)
    out[..., 0, 0] = cos
    out[..., 0, 1] = -np.exp(1j * lam) * sin
    out[..., 1, 0] = np.exp(1j * phi) * sin
    out[..., 1, 1] = np.exp(1j * (phi + lam)) * cos
    return out


def _u3_deriv(params: tuple, which: int) -> np.ndarray:
    theta, phi, lam = (np.asarray(p, dtype=float) for p in params)
    theta, phi, lam = np.broadcast_arrays(theta, phi, lam)
    cos, sin = np.cos(theta / 2), np.sin(theta / 2)
    out = np.zeros(theta.shape + (2, 2), dtype=complex)
    if which == 0:
        out[..., 0, 0] = -0.5 * sin
        out[..., 0, 1] = -0.5 * np.exp(1j * lam) * cos
        out[..., 1, 0] = 0.5 * np.exp(1j * phi) * cos
        out[..., 1, 1] = -0.5 * np.exp(1j * (phi + lam)) * sin
    elif which == 1:
        out[..., 1, 0] = 1j * np.exp(1j * phi) * sin
        out[..., 1, 1] = 1j * np.exp(1j * (phi + lam)) * cos
    elif which == 2:
        out[..., 0, 1] = -1j * np.exp(1j * lam) * sin
        out[..., 1, 1] = 1j * np.exp(1j * (phi + lam)) * cos
    else:
        raise ValueError(f"u3 has 3 parameters, got index {which}")
    return out


def _controlled(block_fn: Callable[[tuple], np.ndarray]) -> Callable[[tuple], np.ndarray]:
    """Lift a 1q matrix builder to its controlled 2q version.

    Control is qubits[0] (gate-index bit 0), so the control=1 subspace is
    indices {1, 3} with the target bit selecting between them.
    """

    def build(params: tuple) -> np.ndarray:
        block = block_fn(params)
        lead = block.shape[:-2]
        out = np.zeros(lead + (4, 4), dtype=complex)
        out[..., 0, 0] = 1.0
        out[..., 2, 2] = 1.0
        out[..., 1, 1] = block[..., 0, 0]
        out[..., 1, 3] = block[..., 0, 1]
        out[..., 3, 1] = block[..., 1, 0]
        out[..., 3, 3] = block[..., 1, 1]
        return out

    return build


def _controlled_deriv(
    deriv_fn: Callable[[tuple, int], np.ndarray]
) -> Callable[[tuple, int], np.ndarray]:
    def deriv(params: tuple, which: int) -> np.ndarray:
        block = deriv_fn(params, which)
        lead = block.shape[:-2]
        out = np.zeros(lead + (4, 4), dtype=complex)
        out[..., 1, 1] = block[..., 0, 0]
        out[..., 1, 3] = block[..., 0, 1]
        out[..., 3, 1] = block[..., 1, 0]
        out[..., 3, 3] = block[..., 1, 1]
        return out

    return deriv


# ---------------------------------------------------------------------------
# Gate registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GateDef:
    """Definition of a gate: arity, parameter count and matrix builders."""

    name: str
    num_qubits: int
    num_params: int
    matrix_fn: Callable[[tuple], np.ndarray] = field(repr=False)
    deriv_fn: "Callable[[tuple, int], np.ndarray] | None" = field(
        default=None, repr=False
    )

    def matrix(self, params: tuple = ()) -> np.ndarray:
        """Gate matrix; broadcasts over array-valued parameters."""
        if len(params) != self.num_params:
            raise ValueError(
                f"{self.name} expects {self.num_params} params, got {len(params)}"
            )
        return self.matrix_fn(tuple(params))

    def dmatrix(self, params: tuple, which: int) -> np.ndarray:
        """Derivative of the gate matrix w.r.t. parameter ``which``."""
        if self.deriv_fn is None:
            raise ValueError(f"{self.name} has no parameters to differentiate")
        if not 0 <= which < self.num_params:
            raise ValueError(f"{self.name}: bad parameter index {which}")
        return self.deriv_fn(tuple(params), which)


def _build_registry() -> "dict[str, GateDef]":
    registry: dict[str, GateDef] = {}

    def fixed(name: str, matrix: np.ndarray, nq: int) -> None:
        registry[name] = GateDef(name, nq, 0, _broadcast_fixed(matrix))

    def rot(name: str, generator: np.ndarray, nq: int) -> None:
        registry[name] = GateDef(
            name, nq, 1, _rotation_builder(generator), _rotation_deriv(generator)
        )

    fixed("id", I2, 1)
    fixed("x", PAULI_X, 1)
    fixed("y", PAULI_Y, 1)
    fixed("z", PAULI_Z, 1)
    fixed("h", HADAMARD, 1)
    fixed("sx", SX_MATRIX, 1)
    fixed("sxdg", SX_MATRIX.conj().T, 1)
    fixed("s", S_MATRIX, 1)
    fixed("sdg", S_MATRIX.conj().T, 1)
    fixed("t", T_MATRIX, 1)
    fixed("tdg", T_MATRIX.conj().T, 1)
    fixed("sh", SH_MATRIX, 1)
    fixed("shdg", SH_MATRIX.conj().T, 1)
    fixed("cx", CX_MATRIX, 2)
    fixed("cz", CZ_MATRIX, 2)
    fixed("cy", CY_MATRIX, 2)
    fixed("swap", SWAP_MATRIX, 2)
    fixed("sqswap", SQSWAP_MATRIX, 2)

    rot("rx", PAULI_X, 1)
    rot("ry", PAULI_Y, 1)
    rot("rz", PAULI_Z, 1)
    rot("rxx", XX_KRON, 2)
    rot("ryy", YY_KRON, 2)
    rot("rzz", ZZ_KRON, 2)
    rot("rzx", XZ_KRON, 2)  # Z on qubits[0], X on qubits[1]

    registry["u1"] = GateDef("u1", 1, 1, _u1_matrix, _u1_deriv)
    registry["u3"] = GateDef("u3", 1, 3, _u3_matrix, _u3_deriv)
    registry["cu3"] = GateDef(
        "cu3", 2, 3, _controlled(_u3_matrix), _controlled_deriv(_u3_deriv)
    )
    for axis in "xyz":
        base = registry[f"r{axis}"]
        registry[f"cr{axis}"] = GateDef(
            f"cr{axis}",
            2,
            1,
            _controlled(base.matrix_fn),
            _controlled_deriv(base.deriv_fn),
        )
    return registry


GATES: "dict[str, GateDef]" = _build_registry()


def gate_def(name: str) -> GateDef:
    """Look up a gate definition by (case-insensitive) name."""
    try:
        return GATES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown gate {name!r}; available: {sorted(GATES)}"
        ) from None


def gate_matrix(name: str, params: tuple = ()) -> np.ndarray:
    """Convenience: matrix of gate ``name`` with ``params``."""
    return gate_def(name).matrix(params)
