"""Unitary accumulation and gate-fidelity measures.

``Circuit.to_matrix`` is the slow, obviously-correct reference (explicit
operator embedding).  :func:`circuit_unitary` here is the fast version --
it pushes the columns of the identity through the batched statevector
kernel, so an n-qubit circuit's full unitary costs one ``2^n``-wide batch
run.  The fidelity helpers quantify how close a compiled/optimized
circuit is to its source, which is what the compiler equivalence tests
and the randomized-benchmarking analysis consume.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.sim.statevector import apply_matrix, bind_circuit

if TYPE_CHECKING:  # pragma: no cover
    from repro.circuits.circuit import Circuit


def circuit_unitary(
    circuit: "Circuit",
    weights: "np.ndarray | None" = None,
    inputs_row: "np.ndarray | None" = None,
) -> np.ndarray:
    """Full ``(2^n, 2^n)`` unitary of a circuit (fast batched evaluation).

    ``inputs_row`` is a single sample's feature vector for circuits whose
    angles encode inputs; weight-only and constant circuits need none.
    """
    n_qubits = circuit.n_qubits
    dim = 2**n_qubits
    row = None if inputs_row is None else np.asarray(inputs_row, dtype=float)[None, :]
    ops = bind_circuit(circuit, weights, row, batch=1)
    # Rows of `state` are the basis states; after applying the circuit,
    # row j holds U |j>, i.e. the j-th column of U.
    state = np.eye(dim, dtype=complex)
    for op in ops:
        matrix = op.matrix[0] if op.batched else op.matrix
        state = apply_matrix(state, matrix, op.qubits, n_qubits)
    return state.T.copy()


def process_fidelity(u: np.ndarray, v: np.ndarray) -> float:
    """Entanglement fidelity between two unitaries: ``|tr(U^dag V)|^2 / d^2``.

    1 when ``U = e^{i phi} V``; insensitive to global phase.
    """
    u = np.asarray(u, dtype=complex)
    v = np.asarray(v, dtype=complex)
    if u.shape != v.shape or u.ndim != 2 or u.shape[0] != u.shape[1]:
        raise ValueError(f"incompatible unitary shapes {u.shape} vs {v.shape}")
    d = u.shape[0]
    overlap = np.trace(u.conj().T @ v)
    return float(np.abs(overlap) ** 2 / d**2)


def average_gate_fidelity(u: np.ndarray, v: np.ndarray) -> float:
    """Average fidelity over Haar-random inputs: ``(d F_pro + 1) / (d + 1)``.

    This is the quantity randomized benchmarking estimates; converting
    its decay parameter back to an error rate uses the same formula.
    """
    d = np.asarray(u).shape[0]
    return float((d * process_fidelity(u, v) + 1.0) / (d + 1.0))


def circuits_equivalent(
    a: "Circuit",
    b: "Circuit",
    weights: "np.ndarray | None" = None,
    inputs_row: "np.ndarray | None" = None,
    atol: float = 1e-9,
) -> bool:
    """True when two circuits implement the same unitary up to global phase.

    The compiler's pass tests call this at several random weight bindings
    to certify a rewrite.
    """
    if a.n_qubits != b.n_qubits:
        return False
    ua = circuit_unitary(a, weights, inputs_row)
    ub = circuit_unitary(b, weights, inputs_row)
    return process_fidelity(ua, ub) > 1.0 - atol
