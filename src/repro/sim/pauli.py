"""Pauli-string algebra and observables.

Pauli strings are the working language of NISQ noise analysis: the
paper's Theorem 3.1 expands states and noise operators in the Pauli
basis, Pauli twirling projects arbitrary channels onto Pauli channels,
and randomized-benchmarking / twirling experiments multiply strings
together.  This module provides a :class:`PauliString` value type with
exact phase-tracked composition, commutation analysis, and batched
expectation values on both statevectors and density matrices.

Conventions: internally ``ops[q]`` is the single-qubit Pauli acting on
qubit ``q`` (little-endian, like the simulators).  Text labels follow
the Qiskit convention -- the *rightmost* character is qubit 0, so
``"XI"`` is X on qubit 1.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from repro.sim.gates import gate_matrix
from repro.sim.statevector import apply_matrix, z_signs
from repro.utils.rng import as_rng

_OPS = ("I", "X", "Y", "Z")

#: Single-qubit products: ``_PRODUCT[a][b] = (phase, c)`` with a.b = phase*c.
_PRODUCT = {
    "I": {"I": (1, "I"), "X": (1, "X"), "Y": (1, "Y"), "Z": (1, "Z")},
    "X": {"I": (1, "X"), "X": (1, "I"), "Y": (1j, "Z"), "Z": (-1j, "Y")},
    "Y": {"I": (1, "Y"), "X": (-1j, "Z"), "Y": (1, "I"), "Z": (1j, "X")},
    "Z": {"I": (1, "Z"), "X": (1j, "Y"), "Y": (-1j, "X"), "Z": (1, "I")},
}


@dataclass(frozen=True)
class PauliString:
    """An n-qubit Pauli operator, e.g. ``X (x) I (x) Z``.

    ``ops[q]`` is the operator on qubit ``q``; one of ``"I" "X" "Y" "Z"``.
    """

    ops: "tuple[str, ...]"

    def __post_init__(self) -> None:
        if not self.ops:
            raise ValueError("Pauli string needs at least one qubit")
        for op in self.ops:
            if op not in _OPS:
                raise ValueError(f"bad Pauli op {op!r}; expected one of {_OPS}")

    # -- constructors -------------------------------------------------------

    @staticmethod
    def from_label(label: str) -> "PauliString":
        """Parse a label whose rightmost character acts on qubit 0."""
        return PauliString(tuple(reversed(label.upper())))

    @staticmethod
    def identity(n_qubits: int) -> "PauliString":
        return PauliString(("I",) * n_qubits)

    @staticmethod
    def single(n_qubits: int, qubit: int, op: str) -> "PauliString":
        """The string with ``op`` on ``qubit`` and identity elsewhere."""
        if not 0 <= qubit < n_qubits:
            raise ValueError(f"qubit {qubit} out of range for {n_qubits}")
        ops = ["I"] * n_qubits
        ops[qubit] = op.upper()
        return PauliString(tuple(ops))

    # -- queries -------------------------------------------------------------

    @property
    def n_qubits(self) -> int:
        return len(self.ops)

    @property
    def label(self) -> str:
        """Qiskit-style label, rightmost character = qubit 0."""
        return "".join(reversed(self.ops))

    @property
    def weight(self) -> int:
        """Number of non-identity tensor factors."""
        return sum(1 for op in self.ops if op != "I")

    @property
    def is_identity(self) -> bool:
        return self.weight == 0

    @property
    def is_diagonal(self) -> bool:
        """True when the string only contains I and Z (diagonal in Z basis)."""
        return all(op in ("I", "Z") for op in self.ops)

    def support(self) -> "tuple[int, ...]":
        """Qubits with a non-identity factor."""
        return tuple(q for q, op in enumerate(self.ops) if op != "I")

    def commutes_with(self, other: "PauliString") -> bool:
        """Two strings commute iff they anticommute on an even # of qubits."""
        if other.n_qubits != self.n_qubits:
            raise ValueError("Pauli strings act on different qubit counts")
        anti = sum(
            1
            for a, b in zip(self.ops, other.ops)
            if a != "I" and b != "I" and a != b
        )
        return anti % 2 == 0

    # -- algebra --------------------------------------------------------------

    def compose(self, other: "PauliString") -> "tuple[complex, PauliString]":
        """Operator product ``self @ other`` as ``(phase, string)``."""
        if other.n_qubits != self.n_qubits:
            raise ValueError("Pauli strings act on different qubit counts")
        phase: complex = 1
        ops = []
        for a, b in zip(self.ops, other.ops):
            p, c = _PRODUCT[a][b]
            phase *= p
            ops.append(c)
        return phase, PauliString(tuple(ops))

    def evolve(self, gate_name: str, qubits: "tuple[int, ...]") -> "tuple[int, PauliString]":
        """Conjugate by a Clifford gate: ``(sign, C P C^dag)``.

        This is Pauli-frame propagation -- how an injected error
        commutes forward through the rest of a Clifford circuit, the
        core move of twirling analysis and error-propagation studies.
        ``sign`` is +/-1 (Clifford conjugation preserves Pauli-ness up
        to sign).  Raises for non-Clifford gates.
        """
        table = _conjugation_table(gate_name.lower())
        ops = list(self.ops)
        local = tuple(ops[q] for q in qubits)
        factor, new_local = table[local]
        for q, op in zip(qubits, new_local):
            ops[q] = op
        return factor, PauliString(tuple(ops))

    def evolve_through(self, circuit) -> "tuple[int, PauliString]":
        """Propagate this Pauli forward through a whole Clifford circuit."""
        sign = 1
        current = self
        for gate in circuit.gates:
            factor, current = current.evolve(gate.name, gate.qubits)
            sign *= factor
        return sign, current

    # -- numerics --------------------------------------------------------------

    def matrix(self) -> np.ndarray:
        """Dense ``(2^n, 2^n)`` matrix (little-endian embedding)."""
        out = np.ones((1, 1), dtype=complex)
        # Little-endian: qubit n-1 is the leftmost (most significant) factor.
        for op in reversed(self.ops):
            out = np.kron(out, _single_matrix(op))
        return out

    def diagonal(self) -> np.ndarray:
        """Diagonal of the matrix -- only valid for diagonal strings."""
        if not self.is_diagonal:
            raise ValueError(f"{self.label} is not diagonal in the Z basis")
        diag = np.ones(2**self.n_qubits)
        signs = z_signs(self.n_qubits)
        for q, op in enumerate(self.ops):
            if op == "Z":
                diag = diag * signs[q]
        return diag

    def apply_to_state(self, state: np.ndarray) -> np.ndarray:
        """``P |psi>`` for a batched ``(batch, 2^n)`` statevector."""
        out = state
        for q in self.support():
            out = apply_matrix(out, _single_matrix(self.ops[q]), (q,), self.n_qubits)
        return out

    def expectation(self, state: np.ndarray) -> np.ndarray:
        """``<psi| P |psi>`` per batch entry (real array, shape (batch,)).

        Diagonal strings use the probability/sign fast path; general
        strings apply the operator then take the inner product.
        """
        if self.is_diagonal:
            probs = np.abs(state) ** 2
            return probs @ self.diagonal()
        applied = self.apply_to_state(state)
        return np.real(np.einsum("bi,bi->b", state.conj(), applied))

    def expectation_density(self, rho: np.ndarray) -> np.ndarray:
        """``tr(P rho)`` per batch entry for ``(batch, dim, dim)`` densities."""
        matrix = self.matrix()
        return np.real(np.einsum("ij,bji->b", matrix, rho))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PauliString({self.label!r})"


def _single_matrix(op: str) -> np.ndarray:
    if op == "I":
        return np.eye(2, dtype=complex)
    return gate_matrix(op.lower())


@functools.lru_cache(maxsize=64)
def _conjugation_table(name: str):
    """Conjugation action of a Clifford gate on its local Pauli group.

    Maps each local op tuple to ``(sign, new ops)`` by direct matrix
    conjugation; raises when any image is not ``+/- Pauli`` (i.e. the
    gate is not Clifford).  Cached per gate name.
    """
    from repro.sim.gates import gate_def

    definition = gate_def(name)
    if definition.num_params:
        raise ValueError(f"{name!r} is not a supported Clifford gate")
    unitary = definition.matrix(())
    k = definition.num_qubits

    combos = [()]
    for _ in range(k):
        combos = [c + (op,) for c in combos for op in _OPS]

    def local_matrix(ops: "tuple[str, ...]") -> np.ndarray:
        out = np.ones((1, 1), dtype=complex)
        for op in reversed(ops):  # ops[0] acts on the gate's first qubit
            out = np.kron(out, _single_matrix(op))
        return out

    table = {}
    for ops in combos:
        image = unitary @ local_matrix(ops) @ unitary.conj().T
        for candidate in combos:
            target = local_matrix(candidate)
            if np.allclose(image, target, atol=1e-9):
                table[ops] = (1, candidate)
                break
            if np.allclose(image, -target, atol=1e-9):
                table[ops] = (-1, candidate)
                break
        else:
            raise ValueError(f"{name!r} is not a supported Clifford gate")
    return table


def random_pauli(
    n_qubits: int,
    rng: "int | np.random.Generator | None" = None,
    allow_identity: bool = True,
) -> PauliString:
    """A uniformly random Pauli string (used by twirling tests)."""
    rng = as_rng(rng)
    while True:
        ops = tuple(_OPS[i] for i in rng.integers(0, 4, size=n_qubits))
        string = PauliString(ops)
        if allow_identity or not string.is_identity:
            return string


def all_pauli_strings(n_qubits: int) -> "list[PauliString]":
    """All ``4^n`` Pauli strings in lexicographic op order (small n only)."""
    if n_qubits > 6:
        raise ValueError("enumerating 4^n strings is impractical beyond 6 qubits")
    strings = [()]
    for _ in range(n_qubits):
        strings = [s + (op,) for s in strings for op in _OPS]
    return [PauliString(s) for s in strings]


class PauliObservable:
    """A real-weighted sum of Pauli strings ``H = sum_k c_k P_k``.

    The effective observables of the adjoint trick (a per-qubit weighted
    sum of single-qubit Zs) are one instance; randomized-benchmarking
    fidelity estimators are another.
    """

    def __init__(self, terms: "list[tuple[float, PauliString]]"):
        if not terms:
            raise ValueError("observable needs at least one term")
        widths = {p.n_qubits for _c, p in terms}
        if len(widths) != 1:
            raise ValueError(f"mixed qubit counts in observable: {widths}")
        self.n_qubits = widths.pop()
        merged: "dict[tuple[str, ...], float]" = {}
        for coeff, string in terms:
            merged[string.ops] = merged.get(string.ops, 0.0) + float(coeff)
        self.terms = [
            (coeff, PauliString(ops))
            for ops, coeff in merged.items()
            if coeff != 0.0
        ]
        if not self.terms:
            self.terms = [(0.0, PauliString.identity(self.n_qubits))]

    @staticmethod
    def z_on(qubit: int, n_qubits: int, coeff: float = 1.0) -> "PauliObservable":
        """The single-qubit observable ``coeff * Z_q``."""
        return PauliObservable([(coeff, PauliString.single(n_qubits, qubit, "Z"))])

    @property
    def is_diagonal(self) -> bool:
        return all(p.is_diagonal for _c, p in self.terms)

    def expectation(self, state: np.ndarray) -> np.ndarray:
        """``<psi| H |psi>`` per batch entry."""
        total = np.zeros(state.shape[0])
        for coeff, string in self.terms:
            total += coeff * string.expectation(state)
        return total

    def expectation_density(self, rho: np.ndarray) -> np.ndarray:
        """``tr(H rho)`` per batch entry."""
        total = np.zeros(rho.shape[0])
        for coeff, string in self.terms:
            total += coeff * string.expectation_density(rho)
        return total

    def matrix(self) -> np.ndarray:
        """Dense Hermitian matrix of the observable."""
        dim = 2**self.n_qubits
        out = np.zeros((dim, dim), dtype=complex)
        for coeff, string in self.terms:
            out += coeff * string.matrix()
        return out

    def __add__(self, other: "PauliObservable") -> "PauliObservable":
        return PauliObservable(self.terms + other.terms)

    def scaled(self, factor: float) -> "PauliObservable":
        return PauliObservable([(c * factor, p) for c, p in self.terms])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = " + ".join(f"{c:+g}*{p.label}" for c, p in self.terms[:4])
        more = " + ..." if len(self.terms) > 4 else ""
        return f"PauliObservable({parts}{more})"
