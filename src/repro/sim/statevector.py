"""Batched statevector simulator with a cached fast gate-apply engine.

States are ``(batch, 2**n)`` complex arrays (little-endian indices).  Gate
application reshapes the state so the target qubits' bit-axes are exposed,
then contracts with the gate matrix -- either a shared ``(d, d)`` matrix
or per-sample ``(batch, d, d)`` matrices (needed when a gate angle encodes
an input feature that differs across the batch).

Running a whole training batch through numpy in one shot is what makes a
pure-Python reproduction of QuantumNAT's training loop practical: a
4-qubit, ~100-gate QNN forward over a 64-sample batch is a handful of
einsum calls.

Fast-engine design
------------------
The per-gate hot path is organized around three caches:

* **Apply-kernel cache** (:func:`_apply_plan`): per ``(n_qubits, qubits)``
  signature, the reshape factorization / permutation needed to expose the
  target bit-axes is computed once and memoized.  1-qubit gates and
  *structured* 2-qubit gates (CX permutation, diagonals) never transpose
  the state at all -- they reshape (a view) so the target axes sit
  between untouched blocks and apply slice kernels in place.  Dense 2q
  matrices and 3+-qubit gates use the cached transpose route (move target
  axes last, one small matmul, move back).
* **Work buffers**: :func:`apply_matrix` accepts ``out=``; callers such as
  :func:`run_ops` and the adjoint backward sweep ping-pong between two
  preallocated ``(batch, 2**n)`` buffers instead of allocating two fresh
  arrays per gate.
* **Bind cache** (:class:`BindPlan`): a circuit is classified once into
  constant / weight-dependent / input-dependent gates.  Constant gates --
  the vast majority after transpilation and error-gate insertion -- get
  their :class:`BoundOp` (matrix included) built exactly once and reused
  across every training step; constant matrices are additionally shared
  process-wide through :func:`constant_gate_matrix`.  Weight-only gates
  are memoized per weight vector (small LRU), so optimizer sub-steps that
  revisit a weight vector skip rebinding.  Only the remaining
  parameterized gates are re-evaluated per call, and per-sample values
  stay broadcast *views*, never materialized copies.

The original straightforward implementations are kept as
``*_reference`` functions; ``tests/test_fast_engine.py`` and the
``benchmarks/perf`` harness assert the fast paths agree with them to
1e-10.
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING

import numpy as np

from repro.sim.gates import CX_MATRIX, gate_def
from repro.utils.rng import as_rng

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    from repro.circuits.circuit import Circuit, Gate


def zero_state(n_qubits: int, batch: int = 1) -> np.ndarray:
    """The |0...0> state replicated ``batch`` times: shape (batch, 2**n)."""
    state = np.zeros((batch, 2**n_qubits), dtype=complex)
    state[:, 0] = 1.0
    return state


# ---------------------------------------------------------------------------
# Apply-kernel cache
# ---------------------------------------------------------------------------


class _ApplyPlan:
    """Precomputed layout for applying a gate on a fixed qubit signature."""

    __slots__ = (
        "k", "left", "right", "blocks", "swap", "perm", "inverse"
    )


#: einsum signatures for the in-place 1-qubit contraction on the
#: ``(batch, left, 2, right)`` view of the state.
_SUB1_SHARED = "xu,baud->baxd"
_SUB1_BATCHED = "bxu,baud->baxd"


@functools.lru_cache(maxsize=4096)
def _apply_plan(n_qubits: int, qubits: "tuple[int, ...]") -> _ApplyPlan:
    """Layout plan for a ``(n_qubits, qubits)`` gate signature (memoized)."""
    plan = _ApplyPlan()
    k = len(qubits)
    plan.k = k
    if k == 1:
        q = qubits[0]
        plan.left = 1 << (n_qubits - 1 - q)
        plan.right = 1 << q
    elif k == 2:
        q0, q1 = qubits
        qa, qb = (q0, q1) if q0 > q1 else (q1, q0)
        plan.blocks = (
            1 << (n_qubits - 1 - qa),  # A: bits above qa
            1 << (qa - qb - 1),        # C: bits between qa and qb
            1 << qb,                   # D: bits below qb
        )
        # The gate matrix index is bit(q0) + 2*bit(q1); when q0 > q1 the
        # gate's *low* bit sits on the more-significant state axis, so the
        # (2,2,2,2) gate view must swap its bit roles.
        plan.swap = q0 > q1
    if k >= 2:
        # Transpose route: move target axes last, contract, move back.
        # For k == 2 this doubles as the *general-matrix* path -- the
        # in-place 6-axis einsum only wins for structured (diagonal / CX)
        # matrices, so dense 2q gates (fused runs, cu3) go through here.
        axes = [1 + (n_qubits - 1 - q) for q in qubits]
        kept = [a for a in range(1, n_qubits + 1) if a not in axes]
        perm = (0, *kept, *(axes[i] for i in reversed(range(k))))
        plan.perm = perm
        plan.inverse = tuple(int(i) for i in np.argsort(perm))
    return plan


def _contract(sub: str, gate: np.ndarray, tensor: np.ndarray, out):
    # optimize=False dispatches straight to C einsum: for these fixed
    # two-operand contractions the path search (re-run internally on
    # *every* call, even when a precomputed path is passed) costs an order
    # of magnitude more than the contraction itself at QNN sizes.
    return np.einsum(sub, gate, tensor, out=out, optimize=False)


#: Above this many state entries the single-pass einsum kernel wins over
#: slice arithmetic (memory-bound regime); below it, minimizing the number
#: of numpy calls dominates.
_SLICE_CUTOFF = 1 << 17


def _apply_1q(tensor, matrix, target):
    """1-qubit apply on a ``(batch, left, 2, right)`` view.

    Writes into ``target`` (same layout) when given, else allocates.
    At QNN sizes per-call overhead dominates, so the kernel is a handful
    of explicit scalar-broadcast ufunc calls on the two bit-slices rather
    than one broadcast ``matmul`` over thousands of 2x2 blocks.  Diagonal
    and anti-diagonal matrices (rz/z/s/t/u1, x/y, sampled Pauli errors)
    reduce to two scaled copies; general matrices fall back to a single
    C-einsum pass once the state is large enough to be memory-bound.
    """
    t0 = tensor[:, :, 0, :]
    t1 = tensor[:, :, 1, :]
    if matrix.ndim == 2:
        m00, m01 = matrix[0]
        m10, m11 = matrix[1]
        structured = (m01 == 0 and m10 == 0) or (m00 == 0 and m11 == 0)
    else:
        m = matrix[:, :, :, None, None]
        m00, m01 = m[:, 0, 0], m[:, 0, 1]
        m10, m11 = m[:, 1, 0], m[:, 1, 1]
        structured = not (
            matrix[:, 0, 1].any() or matrix[:, 1, 0].any()
        )
    if not structured and tensor.size > _SLICE_CUTOFF:
        sub = _SUB1_BATCHED if matrix.ndim == 3 else _SUB1_SHARED
        return _contract(sub, matrix, tensor, target)
    if target is None:
        target = np.empty_like(tensor)
    o0 = target[:, :, 0, :]
    o1 = target[:, :, 1, :]
    if structured:
        if matrix.ndim == 2 and m00 == 0 and m11 == 0:
            # Anti-diagonal (x, y): two swapped scaled copies.
            np.multiply(t1, m01, out=o0)
            np.multiply(t0, m10, out=o1)
        else:
            # Diagonal (rz, z, s, t, u1...): two scaled copies.
            np.multiply(t0, m00, out=o0)
            np.multiply(t1, m11, out=o1)
        return target
    np.multiply(t0, m00, out=o0)
    o0 += m01 * t1
    np.multiply(t0, m10, out=o1)
    o1 += m11 * t1
    return target


def apply_matrix(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: "tuple[int, ...]",
    n_qubits: int,
    out: "np.ndarray | None" = None,
) -> np.ndarray:
    """Apply a k-qubit gate matrix to ``state`` on ``qubits``.

    ``matrix`` is ``(d, d)`` (shared across the batch) or ``(batch, d, d)``
    (per-sample).  When ``out`` (same shape as ``state``, distinct memory)
    is given the result is written there and ``out`` is returned; otherwise
    a new array is returned.  The input is never modified.
    """
    batch = state.shape[0]
    k = len(qubits)
    dim_gate = 2**k
    if matrix.shape[-2:] != (dim_gate, dim_gate):
        raise ValueError(
            f"matrix shape {matrix.shape} does not match {k}-qubit gate"
        )
    if matrix.ndim == 3:
        if matrix.shape[0] != batch:
            raise ValueError(
                f"batched matrix has batch {matrix.shape[0]}, state has {batch}"
            )
    elif matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D or 3-D, got {matrix.ndim}-D")
    if not np.iscomplexobj(state):
        # Real-dtype states (user-built basis vectors) must upcast before
        # the slice kernels write complex products into the output buffer.
        state = state.astype(complex)

    plan = _apply_plan(n_qubits, tuple(qubits))

    if plan.k == 1:
        tensor = state.reshape(batch, plan.left, 2, plan.right)
        target = None if out is None else out.reshape(batch, plan.left, 2, plan.right)
        res = _apply_1q(tensor, matrix, target)
        if out is not None:
            return out
        return res.reshape(batch, -1)

    if plan.k == 2:
        a, c, d = plan.blocks
        tensor = state.reshape(batch, a, 2, c, 2, d)
        target = None if out is None else out.reshape(batch, a, 2, c, 2, d)
        if matrix.ndim == 2:
            if matrix is CX_MATRIX:
                # CX is a permutation: three strided copies, no arithmetic.
                # plan.swap <=> the control (qubits[0]) sits on the hi axis.
                if target is None:
                    target = np.empty_like(tensor)
                if plan.swap:
                    target[:, :, 0] = tensor[:, :, 0]
                    target[:, :, 1, :, 0, :] = tensor[:, :, 1, :, 1, :]
                    target[:, :, 1, :, 1, :] = tensor[:, :, 1, :, 0, :]
                else:
                    target[:, :, :, :, 0, :] = tensor[:, :, :, :, 0, :]
                    target[:, :, 0, :, 1, :] = tensor[:, :, 1, :, 1, :]
                    target[:, :, 1, :, 1, :] = tensor[:, :, 0, :, 1, :]
                if out is not None:
                    return out
                return target.reshape(batch, -1)
            gate = matrix.reshape(2, 2, 2, 2)
            if plan.swap:
                gate = gate.transpose(1, 0, 3, 2)
            flat = matrix.reshape(-1)
            if (
                flat[1] == 0 and flat[2] == 0 and flat[3] == 0
                and flat[4] == 0 and flat[6] == 0 and flat[7] == 0
                and flat[8] == 0 and flat[9] == 0 and flat[11] == 0
                and flat[12] == 0 and flat[13] == 0 and flat[14] == 0
            ):
                # Diagonal 2q gate (cz, rzz...): four scaled block copies.
                if target is None:
                    target = np.empty_like(tensor)
                for x in (0, 1):
                    for y in (0, 1):
                        np.multiply(
                            tensor[:, :, x, :, y, :],
                            gate[x, y, x, y],
                            out=target[:, :, x, :, y, :],
                        )
                if out is not None:
                    return out
                return target.reshape(batch, -1)
        # Dense 2q matrices (cu3, fused gate runs) fall through to the
        # cached transpose route below: the in-place 6-axis einsum kernel
        # loses to transpose + one small matmul once batch exceeds ~16.

    # Generic transpose route (dense 2q and all 3+-qubit gates): cached
    # permutation, transpose copies.  Shared matrices contract as one
    # flat 2-D GEMM over all (batch * row) vectors -- several times
    # faster than both broadcast matmul and einsum (whose per-call path
    # search this route, now the fused-inference hot path, must avoid).
    tensor = state.reshape((batch,) + (2,) * n_qubits)
    tensor = tensor.transpose(plan.perm).reshape(batch, -1, dim_gate)
    if matrix.ndim == 2:
        res = (tensor.reshape(-1, dim_gate) @ matrix.T).reshape(tensor.shape)
    else:
        res = np.matmul(tensor, matrix.transpose(0, 2, 1))
    res = res.reshape((batch,) + (2,) * n_qubits).transpose(plan.inverse)
    if out is not None:
        np.copyto(out.reshape((batch,) + (2,) * n_qubits), res)
        return out
    return res.reshape(batch, 2**n_qubits)


def apply_grouped_1q(
    state: np.ndarray,
    matrix: np.ndarray,
    qubit: int,
    n_qubits: int,
    out: np.ndarray,
    layout: str = "block",
) -> np.ndarray:
    """Apply per-group 1-qubit matrices without materializing ``(rows, 2, 2)``.

    ``state`` is ``(rows, 2**n)`` with ``rows`` a multiple of
    ``g = matrix.shape[0]``; ``matrix`` is ``(g, 2, 2)``.  Two row layouts:

    * ``"block"`` -- row ``r`` uses ``matrix[r // (rows // g)]``: one matrix
      per trajectory shared by the batch rows stacked inside it (sampled
      Pauli errors on a ``(n_traj x batch)`` stack);
    * ``"cycle"`` -- row ``r`` uses ``matrix[r % g]``: per-sample matrices
      repeating across stacked trajectories (batched encoder gates).

    Numerically identical to expanding with ``np.repeat`` / ``np.tile`` and
    calling :func:`apply_matrix` -- same per-element multiply/add sequence
    as the :func:`_apply_1q` slice kernel -- but the ``(rows, 2, 2)``
    matrix stack is never built and the coefficients broadcast as scalars
    per group.  Always writes into ``out`` (same shape, distinct memory).
    """
    rows = state.shape[0]
    g = matrix.shape[0]
    if rows % g:
        raise ValueError(f"rows {rows} not a multiple of group count {g}")
    plan = _apply_plan(n_qubits, (qubit,))
    left, right = plan.left, plan.right
    if layout == "block":
        # (g, inner*left, 2, right): group index leads, coeffs are (g, 1, 1).
        shape = (g, (rows // g) * left, 2, right)
    elif layout == "cycle":
        # (outer, g, left, 2, right): coeffs (g, 1, 1) broadcast over outer.
        shape = (rows // g, g, left, 2, right)
    else:
        raise ValueError(f"unknown layout {layout!r}")
    m00 = matrix[:, 0, 0, None, None]
    m01 = matrix[:, 0, 1, None, None]
    m10 = matrix[:, 1, 0, None, None]
    m11 = matrix[:, 1, 1, None, None]
    view = state.reshape(shape)
    target = out.reshape(shape)
    t0 = view[..., 0, :]
    t1 = view[..., 1, :]
    o0 = target[..., 0, :]
    o1 = target[..., 1, :]
    if not (m01.any() or m10.any()):
        # All-diagonal group (I/Z draws, rz encoders): two scaled copies.
        np.multiply(t0, m00, out=o0)
        np.multiply(t1, m11, out=o1)
    elif not (m00.any() or m11.any()):
        # All-anti-diagonal group (X/Y draws): two swapped scaled copies.
        np.multiply(t1, m01, out=o0)
        np.multiply(t0, m10, out=o1)
    else:
        np.multiply(t0, m00, out=o0)
        o0 += m01 * t1
        np.multiply(t0, m10, out=o1)
        o1 += m11 * t1
    return out


def apply_matrix_reference(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: "tuple[int, ...]",
    n_qubits: int,
) -> np.ndarray:
    """The original (uncached, transpose-based) gate apply.

    Kept as the numerical reference for the fast kernels; used by the
    equivalence tests and the ``benchmarks/perf`` harness baselines.
    """
    batch = state.shape[0]
    k = len(qubits)
    dim_gate = 2**k
    if matrix.shape[-2:] != (dim_gate, dim_gate):
        raise ValueError(
            f"matrix shape {matrix.shape} does not match {k}-qubit gate"
        )

    tensor = state.reshape((batch,) + (2,) * n_qubits)
    # Axis of qubit q in the (batch, b_{n-1}, ..., b_0) layout:
    axes = [1 + (n_qubits - 1 - q) for q in qubits]
    kept = [a for a in range(1, n_qubits + 1) if a not in axes]
    # Last axis must be qubits[0] (the gate matrix's least-significant bit).
    perm = (0, *kept, *(axes[i] for i in reversed(range(k))))
    tensor = tensor.transpose(perm).reshape(batch, -1, dim_gate)

    if matrix.ndim == 2:
        out = np.einsum("ij,brj->bri", matrix, tensor, optimize=True)
    elif matrix.ndim == 3:
        if matrix.shape[0] != batch:
            raise ValueError(
                f"batched matrix has batch {matrix.shape[0]}, state has {batch}"
            )
        out = np.einsum("bij,brj->bri", matrix, tensor, optimize=True)
    else:
        raise ValueError(f"matrix must be 2-D or 3-D, got {matrix.ndim}-D")

    out = out.reshape((batch,) + (2,) * n_qubits)
    inverse = np.argsort(perm)
    return out.transpose(inverse).reshape(batch, 2**n_qubits)


# ---------------------------------------------------------------------------
# Observables and sampling
# ---------------------------------------------------------------------------


@functools.lru_cache(maxsize=32)
def z_signs(n_qubits: int) -> np.ndarray:
    """Sign table: ``signs[q, i] = +1`` if bit q of index i is 0, else -1.

    Rows are the diagonals of the single-qubit Pauli-Z observables, so
    ``probs @ signs.T`` gives all per-qubit <Z> expectations at once.
    """
    indices = np.arange(2**n_qubits)
    signs = np.empty((n_qubits, 2**n_qubits), dtype=float)
    for q in range(n_qubits):
        signs[q] = 1.0 - 2.0 * ((indices >> q) & 1)
    return signs


def z_expectations(state: np.ndarray, n_qubits: int) -> np.ndarray:
    """Per-qubit Pauli-Z expectation values: shape (batch, n_qubits)."""
    probs = np.abs(state) ** 2
    return probs @ z_signs(n_qubits).T


def joint_probabilities(state: np.ndarray) -> np.ndarray:
    """Joint computational-basis probabilities, shape (batch, 2**n)."""
    return np.abs(state) ** 2


def batched_multinomial(
    rng: np.random.Generator, shots: int, probs: np.ndarray
) -> np.ndarray:
    """Multinomial shot counts for a whole batch in one generator call.

    ``probs`` is ``(batch, dim)`` with rows summing to 1;
    ``Generator.multinomial`` broadcasts over the leading axis, replacing
    the previous per-sample Python loops.
    """
    return rng.multinomial(shots, np.ascontiguousarray(probs, dtype=np.float64))


def sample_counts(
    state: np.ndarray,
    shots: int,
    rng: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Sample measurement shot counts per basis state: (batch, 2**n) ints."""
    rng = as_rng(rng)
    probs = joint_probabilities(state)
    probs /= probs.sum(axis=1, keepdims=True)
    return batched_multinomial(rng, shots, probs)


def expectations_from_counts(counts: np.ndarray, n_qubits: int) -> np.ndarray:
    """Per-qubit <Z> estimated from shot counts: (batch, n_qubits)."""
    shots = counts.sum(axis=1, keepdims=True).astype(float)
    return (counts / shots) @ z_signs(n_qubits).T


# ---------------------------------------------------------------------------
# Binding circuits to concrete parameters
# ---------------------------------------------------------------------------


class BoundOp:
    """A gate bound to concrete parameter values, ready to apply.

    Stores everything the adjoint backward pass needs: the matrix, the
    original parameter expressions and the evaluated parameter values
    (scalars, or ``(batch,)`` arrays for input-dependent angles).
    ``grad_params`` lists the differentiable parameters up front and the
    conjugate-transpose matrix is computed lazily exactly once -- constant
    ops are shared across every bind of a circuit, so their adjoint is
    computed once per process, not once per training step.
    """

    __slots__ = ("gate", "qubits", "matrix", "values", "batched",
                 "grad_params", "_adjoint")

    def __init__(self, gate: Gate, matrix: np.ndarray, values: tuple):
        self.gate = gate
        self.qubits = gate.qubits
        self.matrix = matrix
        self.values = values
        self.batched = matrix.ndim == 3
        self.grad_params = tuple(
            (which, expr)
            for which, expr in enumerate(gate.params)
            if not expr.is_constant
        )
        self._adjoint = None

    def adjoint_matrix(self) -> np.ndarray:
        """Conjugate transpose, batched or not (computed once, cached)."""
        if self._adjoint is None:
            if self.batched:
                self._adjoint = self.matrix.conj().transpose(0, 2, 1)
            else:
                adj = self.matrix.conj().T
                if np.array_equal(adj, self.matrix):
                    # Hermitian gate (cx, cz, x, h...): reuse the original
                    # object so identity-based kernel dispatch still fires.
                    adj = self.matrix
                self._adjoint = adj
        return self._adjoint

    def dmatrix(self, which: int) -> np.ndarray:
        """Derivative of the bound matrix w.r.t. bound parameter ``which``."""
        return self.gate.definition.dmatrix(self.values, which)


@functools.lru_cache(maxsize=16384)
def constant_gate_matrix(name: str, values: "tuple[float, ...]") -> np.ndarray:
    """Process-wide cache of constant gate matrices.

    Error-insertion circuits are resampled every training step but are
    built almost entirely from constant gates (Paulis, fixed-angle
    miscalibration rotations, basis-gate constants); sharing their
    matrices makes rebinding a fresh noisy circuit nearly free.
    """
    return gate_def(name).matrix(values)


#: Bound weight-only op lists retained per circuit, keyed on the weight
#: vector's bytes.  Optimizer sub-steps that revisit a weight vector --
#: SPSA's +-c evaluations, parameter-shift's unshifted baseline, repeated
#: inference over a trained model -- then skip rebinding entirely.
_WEIGHT_CACHE_SIZE = 8


def weights_key(weights: "np.ndarray | None") -> bytes:
    """Cache key for a weight vector: its float64 bytes (b"" for None)."""
    if weights is None:
        return b""
    return np.asarray(weights, dtype=float).tobytes()


class SmallLRU:
    """Tiny insertion-ordered LRU for per-weight-vector caches.

    Shared by the :class:`BindPlan` weight cache and the gate-fusion
    static-segment cache (:mod:`repro.compiler.fusion`): dict insertion
    order doubles as recency, hits re-insert, inserts evict the oldest.
    """

    __slots__ = ("maxsize", "_data")

    def __init__(self, maxsize: int):
        self.maxsize = maxsize
        self._data: dict = {}

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key):
        """The cached value (marked most recently used), or None."""
        value = self._data.get(key)
        if value is not None:
            self._data[key] = self._data.pop(key)
        return value

    def put(self, key, value) -> None:
        if len(self._data) >= self.maxsize:
            self._data.pop(next(iter(self._data)))
        self._data[key] = value


class BindPlan:
    """One-time classification of a circuit's gates for fast rebinding.

    Constant gates (no free parameters) are bound exactly once at plan
    construction; each :meth:`bind` call only re-evaluates gates that
    actually depend on weights or inputs.  Weight-only gates (no input
    terms) are additionally memoized per weight vector (a small LRU keyed
    on the weight bytes), so re-binding with unchanged weights is free.
    Input-dependent values keep whatever shape :meth:`ParamExpr.evaluate`
    returns -- ``(batch,)`` views for input terms, plain scalars
    otherwise -- instead of being broadcast into materialized per-sample
    arrays.
    """

    __slots__ = ("gates_ref", "n_gates", "_entries", "n_constant",
                 "n_weight_only", "_weight_cache")

    def __init__(self, circuit: Circuit):
        self.gates_ref = circuit.gates
        self.n_gates = len(circuit.gates)
        entries = []
        n_constant = 0
        n_weight_only = 0
        for gate in circuit.gates:
            if all(expr.is_constant for expr in gate.params):
                values = tuple(expr.const for expr in gate.params)
                matrix = constant_gate_matrix(gate.name, values)
                entries.append(BoundOp(gate, matrix, values))
                n_constant += 1
            else:
                input_dep = any(
                    expr.depends_on_input for expr in gate.params
                )
                entries.append((gate, input_dep))
                if not input_dep:
                    n_weight_only += 1
        self._entries = entries
        self.n_constant = n_constant
        self.n_weight_only = n_weight_only
        # weight bytes -> list of BoundOps for the weight-only entries,
        # in entry order.
        self._weight_cache = SmallLRU(_WEIGHT_CACHE_SIZE)

    def stale(self, circuit: Circuit) -> bool:
        """True when ``circuit``'s gate list no longer matches this plan."""
        return (
            self.gates_ref is not circuit.gates
            or self.n_gates != len(circuit.gates)
        )

    def _weight_only_ops(self, weights: "np.ndarray | None") -> "list[BoundOp]":
        """Bound ops for the weight-only entries (cached per weight vector)."""
        key = weights_key(weights)
        cached = self._weight_cache.get(key)
        if cached is not None:
            return cached
        ops = []
        for entry in self._entries:
            if type(entry) is BoundOp or entry[1]:
                continue
            gate = entry[0]
            values = tuple(expr.evaluate(weights, None) for expr in gate.params)
            ops.append(BoundOp(gate, gate.definition.matrix(values), values))
        self._weight_cache.put(key, ops)
        return ops

    def bind(
        self,
        weights: "np.ndarray | None" = None,
        inputs: "np.ndarray | None" = None,
        batch: "int | None" = None,
    ) -> "list[BoundOp]":
        if inputs is not None:
            inputs = np.asarray(inputs, dtype=float)
            if batch is not None and inputs.shape[0] != batch:
                raise ValueError("batch does not match inputs")
            batch = inputs.shape[0]
        weight_ops = iter(self._weight_only_ops(weights) if self.n_weight_only else ())
        ops: "list[BoundOp]" = []
        for entry in self._entries:
            if type(entry) is BoundOp:
                ops.append(entry)
                continue
            gate, input_dep = entry
            if not input_dep:
                ops.append(next(weight_ops))
                continue
            if inputs is None:
                raise ValueError("input-dependent gate but no inputs given")
            values = tuple(
                expr.evaluate(weights, inputs) for expr in gate.params
            )
            matrix = gate.definition.matrix(values)
            ops.append(BoundOp(gate, matrix, values))
        return ops


def bind_plan_for(circuit: Circuit) -> BindPlan:
    """The circuit's cached :class:`BindPlan`, (re)built when stale."""
    plan = getattr(circuit, "_bind_plan", None)
    if plan is None or plan.stale(circuit):
        plan = BindPlan(circuit)
        circuit._bind_plan = plan
    return plan


def bind_circuit(
    circuit: Circuit,
    weights: "np.ndarray | None" = None,
    inputs: "np.ndarray | None" = None,
    batch: "int | None" = None,
) -> "list[BoundOp]":
    """Evaluate every gate's parameter expressions and build matrices.

    ``inputs`` is ``(batch, n_features)``.  Gates whose angles depend on
    inputs get per-sample ``(batch, d, d)`` matrices; all others get a
    shared matrix.  Constant gates are served from the circuit's cached
    :class:`BindPlan`, so repeated binds (one per training step) only pay
    for the parameterized gates.
    """
    return bind_plan_for(circuit).bind(weights, inputs, batch)


def bind_circuit_reference(
    circuit: Circuit,
    weights: "np.ndarray | None" = None,
    inputs: "np.ndarray | None" = None,
    batch: "int | None" = None,
) -> "list[BoundOp]":
    """The original uncached bind: every matrix rebuilt on every call.

    Numerical reference for :func:`bind_circuit` (equivalence tests and
    perf-harness baselines).
    """
    if inputs is not None:
        inputs = np.asarray(inputs, dtype=float)
        if batch is not None and inputs.shape[0] != batch:
            raise ValueError("batch does not match inputs")
        batch = inputs.shape[0]
    ops: "list[BoundOp]" = []
    for gate in circuit.gates:
        values = tuple(expr.evaluate(weights, inputs) for expr in gate.params)
        per_sample = any(isinstance(v, np.ndarray) and v.ndim for v in values)
        if per_sample:
            if batch is None:
                raise ValueError("input-dependent gate but no inputs given")
            values = tuple(
                np.broadcast_to(np.asarray(v, dtype=float), (batch,))
                for v in values
            )
        matrix = gate.definition.matrix(values)
        ops.append(BoundOp(gate, matrix, values))
    return ops


# ---------------------------------------------------------------------------
# Executing bound circuits
# ---------------------------------------------------------------------------


def run_ops(
    ops: "list[BoundOp]", n_qubits: int, batch: int
) -> np.ndarray:
    """Apply bound ops to |0...0> and return the final state.

    Uses two ping-pong work buffers, so no per-gate allocation happens.
    """
    state = zero_state(n_qubits, batch)
    scratch = np.empty_like(state)
    for op in ops:
        apply_matrix(state, op.matrix, op.qubits, n_qubits, out=scratch)
        state, scratch = scratch, state
    return state


def run_ops_reference(
    ops: "list[BoundOp]", n_qubits: int, batch: int
) -> np.ndarray:
    """Original allocate-per-gate sweep over the reference apply kernel."""
    state = zero_state(n_qubits, batch)
    for op in ops:
        state = apply_matrix_reference(state, op.matrix, op.qubits, n_qubits)
    return state


def run_circuit(
    circuit: Circuit,
    weights: "np.ndarray | None" = None,
    inputs: "np.ndarray | None" = None,
    batch: int = 1,
) -> "tuple[np.ndarray, list[BoundOp]]":
    """Bind and execute a circuit; returns (final state, bound ops).

    The bound-op list is reusable by the adjoint backward pass.
    """
    if inputs is not None:
        batch = np.asarray(inputs).shape[0]
    ops = bind_circuit(circuit, weights, inputs, batch)
    return run_ops(ops, circuit.n_qubits, batch), ops
