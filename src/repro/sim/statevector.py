"""Batched statevector simulator.

States are ``(batch, 2**n)`` complex arrays (little-endian indices).  Gate
application reshapes the state so the target qubits' bit-axes are last,
then contracts with the gate matrix -- either a shared ``(d, d)`` matrix
or per-sample ``(batch, d, d)`` matrices (needed when a gate angle encodes
an input feature that differs across the batch).

Running a whole training batch through numpy in one shot is what makes a
pure-Python reproduction of QuantumNAT's training loop practical: a
4-qubit, ~100-gate QNN forward over a 64-sample batch is a handful of
einsum calls.
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING

import numpy as np

from repro.utils.rng import as_rng

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    from repro.circuits.circuit import Circuit, Gate


def zero_state(n_qubits: int, batch: int = 1) -> np.ndarray:
    """The |0...0> state replicated ``batch`` times: shape (batch, 2**n)."""
    state = np.zeros((batch, 2**n_qubits), dtype=complex)
    state[:, 0] = 1.0
    return state


def apply_matrix(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: "tuple[int, ...]",
    n_qubits: int,
) -> np.ndarray:
    """Apply a k-qubit gate matrix to ``state`` on ``qubits``.

    ``matrix`` is ``(d, d)`` (shared across the batch) or ``(batch, d, d)``
    (per-sample).  Returns a new array; the input is not modified.
    """
    batch = state.shape[0]
    k = len(qubits)
    dim_gate = 2**k
    if matrix.shape[-2:] != (dim_gate, dim_gate):
        raise ValueError(
            f"matrix shape {matrix.shape} does not match {k}-qubit gate"
        )

    tensor = state.reshape((batch,) + (2,) * n_qubits)
    # Axis of qubit q in the (batch, b_{n-1}, ..., b_0) layout:
    axes = [1 + (n_qubits - 1 - q) for q in qubits]
    kept = [a for a in range(1, n_qubits + 1) if a not in axes]
    # Last axis must be qubits[0] (the gate matrix's least-significant bit).
    perm = (0, *kept, *(axes[i] for i in reversed(range(k))))
    tensor = tensor.transpose(perm).reshape(batch, -1, dim_gate)

    if matrix.ndim == 2:
        out = np.einsum("ij,brj->bri", matrix, tensor, optimize=True)
    elif matrix.ndim == 3:
        if matrix.shape[0] != batch:
            raise ValueError(
                f"batched matrix has batch {matrix.shape[0]}, state has {batch}"
            )
        out = np.einsum("bij,brj->bri", matrix, tensor, optimize=True)
    else:
        raise ValueError(f"matrix must be 2-D or 3-D, got {matrix.ndim}-D")

    out = out.reshape((batch,) + (2,) * n_qubits)
    inverse = np.argsort(perm)
    return out.transpose(inverse).reshape(batch, 2**n_qubits)


@functools.lru_cache(maxsize=32)
def z_signs(n_qubits: int) -> np.ndarray:
    """Sign table: ``signs[q, i] = +1`` if bit q of index i is 0, else -1.

    Rows are the diagonals of the single-qubit Pauli-Z observables, so
    ``probs @ signs.T`` gives all per-qubit <Z> expectations at once.
    """
    indices = np.arange(2**n_qubits)
    signs = np.empty((n_qubits, 2**n_qubits), dtype=float)
    for q in range(n_qubits):
        signs[q] = 1.0 - 2.0 * ((indices >> q) & 1)
    return signs


def z_expectations(state: np.ndarray, n_qubits: int) -> np.ndarray:
    """Per-qubit Pauli-Z expectation values: shape (batch, n_qubits)."""
    probs = np.abs(state) ** 2
    return probs @ z_signs(n_qubits).T


def joint_probabilities(state: np.ndarray) -> np.ndarray:
    """Joint computational-basis probabilities, shape (batch, 2**n)."""
    return np.abs(state) ** 2


def sample_counts(
    state: np.ndarray,
    shots: int,
    rng: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Sample measurement shot counts per basis state: (batch, 2**n) ints."""
    rng = as_rng(rng)
    probs = joint_probabilities(state)
    probs = probs / probs.sum(axis=1, keepdims=True)
    counts = np.empty_like(probs, dtype=np.int64)
    for b in range(probs.shape[0]):
        counts[b] = rng.multinomial(shots, probs[b])
    return counts


def expectations_from_counts(counts: np.ndarray, n_qubits: int) -> np.ndarray:
    """Per-qubit <Z> estimated from shot counts: (batch, n_qubits)."""
    shots = counts.sum(axis=1, keepdims=True).astype(float)
    return (counts / shots) @ z_signs(n_qubits).T


class BoundOp:
    """A gate bound to concrete parameter values, ready to apply.

    Stores everything the adjoint backward pass needs: the matrix, the
    original parameter expressions and the evaluated parameter values
    (scalars, or ``(batch,)`` arrays for input-dependent angles).
    """

    __slots__ = ("gate", "qubits", "matrix", "values", "batched")

    def __init__(self, gate: Gate, matrix: np.ndarray, values: tuple):
        self.gate = gate
        self.qubits = gate.qubits
        self.matrix = matrix
        self.values = values
        self.batched = matrix.ndim == 3

    def adjoint_matrix(self) -> np.ndarray:
        """Conjugate transpose, batched or not."""
        if self.batched:
            return self.matrix.conj().transpose(0, 2, 1)
        return self.matrix.conj().T

    def dmatrix(self, which: int) -> np.ndarray:
        """Derivative of the bound matrix w.r.t. bound parameter ``which``."""
        return self.gate.definition.dmatrix(self.values, which)


def bind_circuit(
    circuit: Circuit,
    weights: "np.ndarray | None" = None,
    inputs: "np.ndarray | None" = None,
    batch: "int | None" = None,
) -> "list[BoundOp]":
    """Evaluate every gate's parameter expressions and build matrices.

    ``inputs`` is ``(batch, n_features)``.  Gates whose angles depend on
    inputs get per-sample ``(batch, d, d)`` matrices; all others get a
    shared matrix.
    """
    if inputs is not None:
        inputs = np.asarray(inputs, dtype=float)
        if batch is not None and inputs.shape[0] != batch:
            raise ValueError("batch does not match inputs")
        batch = inputs.shape[0]
    ops: "list[BoundOp]" = []
    for gate in circuit.gates:
        values = tuple(expr.evaluate(weights, inputs) for expr in gate.params)
        per_sample = any(isinstance(v, np.ndarray) and v.ndim for v in values)
        if per_sample:
            if batch is None:
                raise ValueError("input-dependent gate but no inputs given")
            values = tuple(
                np.broadcast_to(np.asarray(v, dtype=float), (batch,))
                for v in values
            )
        matrix = gate.definition.matrix(values)
        ops.append(BoundOp(gate, matrix, values))
    return ops


def run_ops(
    ops: "list[BoundOp]", n_qubits: int, batch: int
) -> np.ndarray:
    """Apply bound ops to |0...0> and return the final state."""
    state = zero_state(n_qubits, batch)
    for op in ops:
        state = apply_matrix(state, op.matrix, op.qubits, n_qubits)
    return state


def run_circuit(
    circuit: Circuit,
    weights: "np.ndarray | None" = None,
    inputs: "np.ndarray | None" = None,
    batch: int = 1,
) -> "tuple[np.ndarray, list[BoundOp]]":
    """Bind and execute a circuit; returns (final state, bound ops).

    The bound-op list is reusable by the adjoint backward pass.
    """
    if inputs is not None:
        batch = np.asarray(inputs).shape[0]
    ops = bind_circuit(circuit, weights, inputs, batch)
    return run_ops(ops, circuit.n_qubits, batch), ops
