"""Stabilizer (Clifford) simulator -- Aaronson-Gottesman CHP tableau.

Randomized benchmarking, Pauli twirling and error-propagation analysis
only ever execute Clifford circuits, which a tableau simulates in
O(n^2) per gate instead of O(2^n).  This makes device-scale RB (and
sanity checks on wide twirled circuits) cheap where the statevector
engine would be hopeless.

The tableau holds ``2n`` generator rows -- destabilizers 0..n-1 and
stabilizers n..2n-1 -- as boolean X/Z matrices plus a sign bit per row
(Aaronson & Gottesman, PRA 70, 052328).  Supported gates: the Clifford
generators H, S (and Sdg), the Paulis, SX, CX, CZ and SWAP.  Measurement
implements the standard deterministic/random split, collapsing the
state in place.

Two tableau classes share one set of gate kernels:

* :class:`StabilizerState` -- a single ``(2n, n)`` tableau, as before.
* :class:`BatchedStabilizerState` -- a ``(trajectories, 2n, n)`` stack
  of independent tableaus.  Gates are vectorized XOR/AND passes over
  the whole trajectory axis, and per-trajectory Pauli noise insertions
  are sign-flip masks (:meth:`BatchedStabilizerState.apply_pauli_choices`),
  so an entire noisy trajectory sweep is one sequence of GIL-releasing
  boolean ufunc passes.

The kernels index columns through an ellipsis (``x[..., q]``), so the
same function body serves both the 2-D and the 3-D layout.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng

#: Gates the tableau supports (all Clifford).
CLIFFORD_GATES = frozenset(
    {"h", "s", "sdg", "x", "y", "z", "sx", "sxdg", "id", "cx", "cz", "swap"}
)


class NonCliffordCircuitError(ValueError):
    """A circuit failed the stabilizer engine's Clifford admission screen."""


# -- shared gate kernels ------------------------------------------------------
#
# Each kernel mutates (x, z, r) in place and broadcasts over any leading
# axes: the single-state tableau passes (2n, n)/(2n,) arrays, the batched
# one (B, 2n, n)/(B, 2n).  Column reads that feed later writes are copied
# first so views never alias their own update.


def _k_h(x, z, r, q: int) -> None:
    xq = x[..., q].copy()
    r ^= xq & z[..., q]
    x[..., q] = z[..., q]
    z[..., q] = xq


def _k_s(x, z, r, q: int) -> None:
    r ^= x[..., q] & z[..., q]
    z[..., q] ^= x[..., q]


def _k_sdg(x, z, r, q: int) -> None:
    # Direct update (was 3x S): X -> -Y, Y -> X, Z -> Z.
    r ^= x[..., q] & ~z[..., q]
    z[..., q] ^= x[..., q]


def _k_sx(x, z, r, q: int) -> None:
    # Direct update (was H S H): Z -> -Y, Y -> Z, X -> X.
    r ^= z[..., q] & ~x[..., q]
    x[..., q] ^= z[..., q]


def _k_sxdg(x, z, r, q: int) -> None:
    # Direct update (was H Sdg H): Z -> Y, Y -> -Z, X -> X.
    r ^= z[..., q] & x[..., q]
    x[..., q] ^= z[..., q]


def _k_x(x, z, r, q: int) -> None:
    # X = H Z H; phase flips where the row has Z support.
    r ^= z[..., q]


def _k_y(x, z, r, q: int) -> None:
    r ^= x[..., q] ^ z[..., q]


def _k_z(x, z, r, q: int) -> None:
    r ^= x[..., q]


def _k_id(x, z, r, q: int) -> None:
    pass


def _k_cx(x, z, r, qubits) -> None:
    control, target = qubits[0], qubits[1]
    r ^= x[..., control] & z[..., target] & (x[..., target] ^ z[..., control] ^ True)
    x[..., target] ^= x[..., control]
    z[..., control] ^= z[..., target]


def _k_cz(x, z, r, qubits) -> None:
    # Direct update (was H CX H): X_a -> X_a Z_b, Z -> Z, with a phase
    # flip exactly when both rows carry X and their Z supports differ.
    a, b = qubits[0], qubits[1]
    r ^= x[..., a] & x[..., b] & (z[..., a] ^ z[..., b])
    z[..., a] ^= x[..., b]
    z[..., b] ^= x[..., a]


def _k_swap(x, z, r, qubits) -> None:
    # Direct update (was 3x CX): relabel the two columns, no phase.
    a, b = qubits[0], qubits[1]
    for m in (x, z):
        col = m[..., a].copy()
        m[..., a] = m[..., b]
        m[..., b] = col


_ONE_QUBIT_KERNELS = {
    "h": _k_h, "s": _k_s, "sdg": _k_sdg, "x": _k_x, "y": _k_y, "z": _k_z,
    "sx": _k_sx, "sxdg": _k_sxdg, "id": _k_id,
}
_TWO_QUBIT_KERNELS = {"cx": _k_cx, "cz": _k_cz, "swap": _k_swap}


def _apply_gate(x, z, r, n: int, name: str, qubits) -> None:
    """Validate and dispatch a named Clifford gate onto a tableau stack."""
    if isinstance(qubits, (int, np.integer)):
        qubits = (int(qubits),)
    name = name.lower()
    for q in qubits:
        if not 0 <= q < n:
            raise ValueError(f"qubit {q} out of range for {n}")
    kernel = _ONE_QUBIT_KERNELS.get(name)
    if kernel is not None:
        kernel(x, z, r, qubits[0])
        return
    kernel = _TWO_QUBIT_KERNELS.get(name)
    if kernel is None:
        raise ValueError(
            f"{name!r} is not a supported Clifford gate "
            f"(have {sorted(CLIFFORD_GATES)})"
        )
    kernel(x, z, r, qubits)


# -- row arithmetic ------------------------------------------------------------


def _pauli_phase(x1, z1, x2, z2) -> np.ndarray:
    """Phase exponent of multiplying single-qubit Paulis (broadcasting).

    The Aaronson-Gottesman ``g`` function, written as a ``where`` chain
    so the generator row (``x1``/``z1``) broadcasts against a whole
    scratch stack (``x2``/``z2``) of any leading shape.
    """
    x2i = x2.astype(np.int8)
    z2i = z2.astype(np.int8)
    return np.where(
        x1,
        np.where(z1, z2i - x2i, z2i * (2 * x2i - 1)),
        np.where(z1, x2i * (1 - 2 * z2i), np.int8(0)),
    )


def _batch_z_expectations(x, z, r) -> np.ndarray:
    """Per-trajectory ``<Z_q>`` for a stacked tableau.

    ``x``/``z`` are ``(B, 2n, n)`` boolean, ``r`` is ``(B, 2n)``; the
    result is ``(B, n)`` float with entries in {-1, 0, +1}.  One pass of
    the CHP rowsum recursion runs all ``B * n`` (trajectory, qubit)
    scratch rows at once: iteration ``i`` multiplies stabilizer row
    ``n+i`` into every scratch row whose destabilizer ``i`` has X
    support on that qubit, which is exactly the per-qubit loop of the
    single-state ``expectation_z`` -- vectorized over both axes.
    """
    batch, _, n = x.shape
    random_q = x[:, n:, :].any(axis=1)  # (B, n): any stabilizer X support
    coeff = x[:, :n, :]  # (B, i, q): destabilizer-i X support on qubit q
    xh = np.zeros((batch, n, n), dtype=bool)  # scratch row per (B, qubit)
    zh = np.zeros((batch, n, n), dtype=bool)
    phase = np.zeros((batch, n), dtype=np.int64)
    stab_r = r[:, n:].astype(np.int64)
    for i in range(n):
        sel = coeff[:, i, :]  # (B, n)
        if not sel.any():
            continue
        xi = x[:, n + i, None, :]
        zi = z[:, n + i, None, :]
        g = _pauli_phase(xi, zi, xh, zh).sum(axis=2, dtype=np.int64)
        phase += sel * (2 * stab_r[:, i, None] + g)
        xh ^= sel[:, :, None] & xi
        zh ^= sel[:, :, None] & zi
    phase &= 3
    deterministic = ~random_q
    odd = (phase & 1).astype(bool)
    if np.any(odd & deterministic):  # pragma: no cover - tableau invariant
        raise RuntimeError("tableau phase invariant violated")
    out = np.where(phase == 2, -1.0, 1.0)
    out[random_q] = 0.0
    return out


class StabilizerState:
    """An n-qubit stabilizer state, initialized to |0...0>.

    ``rng`` seeds the generator used by random-outcome measurements when
    :meth:`measure` is not handed one explicitly; it is held for the
    lifetime of the state (like the statevector executors hold theirs),
    so repeated measurements draw from one reproducible stream.
    """

    def __init__(self, n_qubits: int, rng: "int | np.random.Generator | None" = None):
        if n_qubits < 1:
            raise ValueError("need at least one qubit")
        self.n = n_qubits
        rows = 2 * n_qubits
        self.x = np.zeros((rows, n_qubits), dtype=bool)
        self.z = np.zeros((rows, n_qubits), dtype=bool)
        self.r = np.zeros(rows, dtype=bool)
        # Destabilizer i = X_i, stabilizer n+i = Z_i.
        idx = np.arange(n_qubits)
        self.x[idx, idx] = True
        self.z[n_qubits + idx, idx] = True
        self._rng = as_rng(rng)

    def copy(self) -> "StabilizerState":
        out = StabilizerState(self.n)
        out.x = self.x.copy()
        out.z = self.z.copy()
        out.r = self.r.copy()
        out._rng = self._rng  # copies share the measurement stream
        return out

    # -- gates -----------------------------------------------------------------

    def apply(self, name: str, qubits: "tuple[int, ...] | int") -> "StabilizerState":
        """Apply a named Clifford gate; returns self for chaining."""
        _apply_gate(self.x, self.z, self.r, self.n, name, qubits)
        return self

    # -- row arithmetic -----------------------------------------------------------

    def _rowsum_into(
        self, xh, zh, rh: bool, i: int, check: bool = True
    ) -> "tuple[np.ndarray, np.ndarray, bool]":
        """Multiply generator row i into the scratch row (xh, zh, rh)."""
        phase = 2 * int(rh) + 2 * int(self.r[i]) + int(
            _pauli_phase(self.x[i], self.z[i], xh, zh).sum()
        )
        phase %= 4
        if check and phase not in (0, 2):  # pragma: no cover - tableau invariant
            raise RuntimeError("tableau phase invariant violated")
        return xh ^ self.x[i], zh ^ self.z[i], phase == 2

    def _rowsum(self, h: int, i: int) -> None:
        # A destabilizer row can anticommute with the pivot it absorbs
        # (odd phase); its sign bit is never read, so -- as in canonical
        # CHP -- only stabilizer rows enforce the even-phase invariant.
        self.x[h], self.z[h], self.r[h] = self._rowsum_into(
            self.x[h].copy(), self.z[h].copy(), bool(self.r[h]), i,
            check=h >= self.n,
        )

    # -- measurement ----------------------------------------------------------------

    def expectation_z(self, qubit: int) -> float:
        """<Z_q>: +/-1 when deterministic, 0.0 when the outcome is random."""
        n = self.n
        if self.x[n:, qubit].any():
            return 0.0
        xh = np.zeros(n, dtype=bool)
        zh = np.zeros(n, dtype=bool)
        rh = False
        for i in range(n):
            if self.x[i, qubit]:
                xh, zh, rh = self._rowsum_into(xh, zh, rh, i + n)
        return -1.0 if rh else 1.0

    def z_expectations(self) -> np.ndarray:
        """All per-qubit <Z> values (exact: +/-1 or 0), in one pass."""
        return _batch_z_expectations(self.x[None], self.z[None], self.r[None])[0]

    def measure(
        self, qubit: int, rng: "int | np.random.Generator | None" = None
    ) -> int:
        """Measure Z on one qubit, collapsing the state; returns 0 or 1.

        Random outcomes draw from ``rng`` when given, else from the
        generator held since construction -- never from a fresh
        nondeterministic generator per call.
        """
        n = self.n
        stab_rows = np.nonzero(self.x[n:, qubit])[0]
        if stab_rows.size:
            generator = self._rng if rng is None else as_rng(rng)
            p = int(stab_rows[0]) + n
            for i in range(2 * n):
                if i != p and self.x[i, qubit]:
                    self._rowsum(i, p)
            self.x[p - n] = self.x[p].copy()
            self.z[p - n] = self.z[p].copy()
            self.r[p - n] = self.r[p]
            self.x[p] = False
            self.z[p] = False
            self.z[p, qubit] = True
            outcome = int(generator.integers(0, 2))
            self.r[p] = bool(outcome)
            return outcome
        expectation = self.expectation_z(qubit)
        return 0 if expectation > 0 else 1

    def run_circuit(self, circuit) -> "StabilizerState":
        """Apply every gate of a (Clifford-only) :class:`Circuit`."""
        for gate in circuit.gates:
            if gate.name not in CLIFFORD_GATES:
                raise ValueError(
                    f"gate {gate.name!r} is not Clifford; "
                    "use the statevector simulator"
                )
            self.apply(gate.name, gate.qubits)
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StabilizerState({self.n} qubits)"


class BatchedStabilizerState:
    """A stack of ``n_trajectories`` independent n-qubit stabilizer states.

    The X/Z tableau is ``(trajectories, 2n, n)`` boolean with a
    ``(trajectories, 2n)`` sign stack, and every gate is one vectorized
    boolean ufunc pass across the whole trajectory axis -- a noisy
    trajectory sweep costs O(B * gates * n) bit operations total, with
    no Python-level per-trajectory loop.  Per-trajectory Pauli noise is
    injected through :meth:`apply_pauli_choices` sign-flip masks.
    """

    def __init__(
        self,
        n_qubits: int,
        n_trajectories: int,
        rng: "int | np.random.Generator | None" = None,
    ):
        if n_qubits < 1:
            raise ValueError("need at least one qubit")
        if n_trajectories < 1:
            raise ValueError("need at least one trajectory")
        self.n = n_qubits
        self.batch = n_trajectories
        rows = 2 * n_qubits
        self.x = np.zeros((n_trajectories, rows, n_qubits), dtype=bool)
        self.z = np.zeros((n_trajectories, rows, n_qubits), dtype=bool)
        self.r = np.zeros((n_trajectories, rows), dtype=bool)
        idx = np.arange(n_qubits)
        self.x[:, idx, idx] = True
        self.z[:, n_qubits + idx, idx] = True
        self._rng = as_rng(rng)

    def copy(self) -> "BatchedStabilizerState":
        out = BatchedStabilizerState(self.n, self.batch)
        out.x = self.x.copy()
        out.z = self.z.copy()
        out.r = self.r.copy()
        out._rng = self._rng
        return out

    # -- gates -----------------------------------------------------------------

    def apply(
        self, name: str, qubits: "tuple[int, ...] | int"
    ) -> "BatchedStabilizerState":
        """Apply one Clifford gate to every trajectory; returns self."""
        _apply_gate(self.x, self.z, self.r, self.n, name, qubits)
        return self

    def apply_pauli_choices(self, qubit: int, choices) -> "BatchedStabilizerState":
        """Apply a per-trajectory Pauli drawn per trajectory.

        ``choices`` is ``(trajectories,)`` integer with entries in
        {0: I, 1: X, 2: Y, 3: Z} -- the encoding the noise sampler's
        cumulative tables produce.  Y = iXZ anticommutes with whatever
        X and Z each anticommute with, so the update is two sign-flip
        masks: rows with Z support flip under an X component (choices
        1 and 2), rows with X support flip under a Z component (3 and
        2).  No tableau bits move -- Pauli noise is pure phase.
        """
        if not 0 <= qubit < self.n:
            raise ValueError(f"qubit {qubit} out of range for {self.n}")
        choices = np.asarray(choices)
        if choices.shape != (self.batch,):
            raise ValueError(
                f"choices must have shape ({self.batch},), got {choices.shape}"
            )
        has_x_component = (choices == 1) | (choices == 2)
        has_z_component = (choices == 3) | (choices == 2)
        self.r ^= self.z[:, :, qubit] & has_x_component[:, None]
        self.r ^= self.x[:, :, qubit] & has_z_component[:, None]
        return self

    # -- measurement ----------------------------------------------------------------

    def z_expectations(self) -> np.ndarray:
        """``(trajectories, n)`` per-trajectory <Z> values (+/-1 or 0)."""
        return _batch_z_expectations(self.x, self.z, self.r)

    def measure(
        self, qubit: int, rng: "int | np.random.Generator | None" = None
    ) -> np.ndarray:
        """Measure Z on one qubit in every trajectory, collapsing in place.

        Returns a ``(trajectories,)`` int array of outcomes.  Random
        trajectories collapse through the batched CHP pivot/rowsum
        update; deterministic ones read their (exact) expectation.
        """
        if not 0 <= qubit < self.n:
            raise ValueError(f"qubit {qubit} out of range for {self.n}")
        generator = self._rng if rng is None else as_rng(rng)
        n = self.n
        outcomes = np.zeros(self.batch, dtype=np.int64)
        has = self.x[:, n:, qubit]  # (B, n)
        is_random = has.any(axis=1)
        idx = np.nonzero(is_random)[0]
        if idx.size:
            xs = self.x[idx]
            zs = self.z[idx]
            rs = self.r[idx]
            p = n + has[idx].argmax(axis=1)  # first stabilizer with X support
            ar = np.arange(idx.size)
            xp = xs[ar, p]  # (k, n) pivot-row copies (fancy indexing)
            zp = zs[ar, p]
            rp = rs[ar, p]
            mask = xs[:, :, qubit].copy()  # rows to rowsum the pivot into
            mask[ar, p] = False
            # Every rowsum reads only the (untouched) pivot row and
            # writes a distinct row, so all of them run at once.
            g = _pauli_phase(xp[:, None, :], zp[:, None, :], xs, zs).sum(
                axis=2, dtype=np.int64
            )
            phase = (2 * rs.astype(np.int64) + 2 * rp[:, None].astype(np.int64) + g) & 3
            odd = (phase & 1).astype(bool)
            # Destabilizer rows may anticommute with the pivot (their
            # sign bits are never read); only stabilizer rows enforce
            # the even-phase invariant, as in canonical CHP.
            if np.any(odd[:, n:] & mask[:, n:]):  # pragma: no cover - invariant
                raise RuntimeError("tableau phase invariant violated")
            rs = np.where(mask, phase == 2, rs)
            xs ^= mask[:, :, None] & xp[:, None, :]
            zs ^= mask[:, :, None] & zp[:, None, :]
            # Pivot moves to its destabilizer slot; the freed stabilizer
            # row becomes +/-Z_qubit with a coin-flip sign.
            xs[ar, p - n] = xp
            zs[ar, p - n] = zp
            rs[ar, p - n] = rp
            xs[ar, p] = False
            zs[ar, p] = False
            zs[ar, p, qubit] = True
            bits = generator.integers(0, 2, size=idx.size)
            rs[ar, p] = bits.astype(bool)
            self.x[idx] = xs
            self.z[idx] = zs
            self.r[idx] = rs
            outcomes[idx] = bits
        det = np.nonzero(~is_random)[0]
        if det.size:
            exps = _batch_z_expectations(self.x[det], self.z[det], self.r[det])
            outcomes[det] = (exps[:, qubit] < 0).astype(np.int64)
        return outcomes

    def run_circuit(self, circuit) -> "BatchedStabilizerState":
        """Apply every gate of a (Clifford-only) :class:`Circuit`."""
        for gate in circuit.gates:
            if gate.name not in CLIFFORD_GATES:
                raise ValueError(
                    f"gate {gate.name!r} is not Clifford; "
                    "use the statevector simulator"
                )
            self.apply(gate.name, gate.qubits)
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchedStabilizerState({self.n} qubits x {self.batch} trajectories)"


# -- Clifford admission screen ---------------------------------------------------


def clifford_ops(circuit, rz_tolerance: float = 1e-9) -> "list[tuple]":
    """Screen a circuit into per-gate tableau ops, or reject it.

    Returns one entry per gate of ``circuit``: a (possibly empty) tuple
    of ``(name, qubits)`` tableau operations.  Constant ``rz`` angles
    within ``rz_tolerance`` of a multiple of pi/2 round onto the
    tableau (k * pi/2 -> {id, S, Z, Sdg}); anything else -- unknown
    gates, parameterized angles, genuinely non-Clifford rotations --
    raises :class:`NonCliffordCircuitError`.
    """
    ops: "list[tuple]" = []
    for gate in circuit.gates:
        name = gate.name
        if name == "rz":
            expr = gate.params[0]
            if not getattr(expr, "is_constant", False):
                raise NonCliffordCircuitError(
                    f"rz on qubit {gate.qubits[0]} has a parameterized angle; "
                    "the stabilizer engine only runs constant-angle circuits"
                )
            turns = float(expr.const) / (np.pi / 2.0)
            k = round(turns)
            if abs(turns - k) > rz_tolerance:
                raise NonCliffordCircuitError(
                    f"rz angle {float(expr.const)!r} is not a multiple of pi/2 "
                    f"(tolerance {rz_tolerance}); not Clifford"
                )
            step = ((), ("s",), ("z",), ("sdg",))[int(k) % 4]
            ops.append(tuple((g, gate.qubits) for g in step))
        elif name in CLIFFORD_GATES:
            ops.append(() if name == "id" else ((name, gate.qubits),))
        else:
            raise NonCliffordCircuitError(
                f"gate {name!r} is not Clifford and has no pi/2 rounding; "
                "the stabilizer engine cannot run this circuit"
            )
    return ops
