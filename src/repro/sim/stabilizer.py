"""Stabilizer (Clifford) simulator -- Aaronson-Gottesman CHP tableau.

Randomized benchmarking, Pauli twirling and error-propagation analysis
only ever execute Clifford circuits, which a tableau simulates in
O(n^2) per gate instead of O(2^n).  This makes device-scale RB (and
sanity checks on wide twirled circuits) cheap where the statevector
engine would be hopeless.

The tableau holds ``2n`` generator rows -- destabilizers 0..n-1 and
stabilizers n..2n-1 -- as boolean X/Z matrices plus a sign bit per row
(Aaronson & Gottesman, PRA 70, 052328).  Supported gates: the Clifford
generators H, S (and Sdg), the Paulis, SX, CX, CZ and SWAP.  Measurement
implements the standard deterministic/random split, collapsing the
state in place.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng

#: Gates the tableau supports (all Clifford).
CLIFFORD_GATES = frozenset(
    {"h", "s", "sdg", "x", "y", "z", "sx", "sxdg", "id", "cx", "cz", "swap"}
)


class StabilizerState:
    """An n-qubit stabilizer state, initialized to |0...0>."""

    def __init__(self, n_qubits: int):
        if n_qubits < 1:
            raise ValueError("need at least one qubit")
        self.n = n_qubits
        rows = 2 * n_qubits
        self.x = np.zeros((rows, n_qubits), dtype=bool)
        self.z = np.zeros((rows, n_qubits), dtype=bool)
        self.r = np.zeros(rows, dtype=bool)
        # Destabilizer i = X_i, stabilizer n+i = Z_i.
        for i in range(n_qubits):
            self.x[i, i] = True
            self.z[n_qubits + i, i] = True

    def copy(self) -> "StabilizerState":
        out = StabilizerState(self.n)
        out.x = self.x.copy()
        out.z = self.z.copy()
        out.r = self.r.copy()
        return out

    # -- gates -----------------------------------------------------------------

    def apply(self, name: str, qubits: "tuple[int, ...] | int") -> "StabilizerState":
        """Apply a named Clifford gate; returns self for chaining."""
        if isinstance(qubits, int):
            qubits = (qubits,)
        name = name.lower()
        for q in qubits:
            if not 0 <= q < self.n:
                raise ValueError(f"qubit {q} out of range for {self.n}")
        if name == "h":
            self._h(qubits[0])
        elif name == "s":
            self._s(qubits[0])
        elif name == "sdg":
            self._s(qubits[0])
            self._s(qubits[0])
            self._s(qubits[0])
        elif name == "x":
            # X = H Z H; phase flips where the row has Z support.
            self.r ^= self.z[:, qubits[0]]
        elif name == "z":
            self.r ^= self.x[:, qubits[0]]
        elif name == "y":
            self.r ^= self.x[:, qubits[0]] ^ self.z[:, qubits[0]]
        elif name == "sx":
            # SX = H S H up to global phase (irrelevant for stabilizers).
            self._h(qubits[0])
            self._s(qubits[0])
            self._h(qubits[0])
        elif name == "sxdg":
            self._h(qubits[0])
            self.apply("sdg", qubits[0])
            self._h(qubits[0])
        elif name == "id":
            pass
        elif name == "cx":
            self._cx(qubits[0], qubits[1])
        elif name == "cz":
            self._h(qubits[1])
            self._cx(qubits[0], qubits[1])
            self._h(qubits[1])
        elif name == "swap":
            self._cx(qubits[0], qubits[1])
            self._cx(qubits[1], qubits[0])
            self._cx(qubits[0], qubits[1])
        else:
            raise ValueError(
                f"{name!r} is not a supported Clifford gate "
                f"(have {sorted(CLIFFORD_GATES)})"
            )
        return self

    def _h(self, q: int) -> None:
        self.r ^= self.x[:, q] & self.z[:, q]
        self.x[:, q], self.z[:, q] = self.z[:, q].copy(), self.x[:, q].copy()

    def _s(self, q: int) -> None:
        self.r ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def _cx(self, control: int, target: int) -> None:
        self.r ^= (
            self.x[:, control]
            & self.z[:, target]
            & (self.x[:, target] ^ self.z[:, control] ^ True)
        )
        self.x[:, target] ^= self.x[:, control]
        self.z[:, control] ^= self.z[:, target]

    # -- row arithmetic -----------------------------------------------------------

    def _g(self, x1, z1, x2, z2) -> np.ndarray:
        """Phase exponent of multiplying single-qubit Paulis (vectorized)."""
        x1i, z1i = x1.astype(np.int8), z1.astype(np.int8)
        x2i, z2i = x2.astype(np.int8), z2.astype(np.int8)
        out = np.zeros_like(x1i)
        # (x1, z1) = (1, 1): z2 - x2
        yy = (x1i == 1) & (z1i == 1)
        out[yy] = (z2i - x2i)[yy]
        # (1, 0): z2 (2 x2 - 1)
        xx = (x1i == 1) & (z1i == 0)
        out[xx] = (z2i * (2 * x2i - 1))[xx]
        # (0, 1): x2 (1 - 2 z2)
        zz = (x1i == 0) & (z1i == 1)
        out[zz] = (x2i * (1 - 2 * z2i))[zz]
        return out

    def _rowsum_into(
        self, xh, zh, rh: bool, i: int
    ) -> "tuple[np.ndarray, np.ndarray, bool]":
        """Multiply generator row i into the scratch row (xh, zh, rh)."""
        phase = 2 * int(rh) + 2 * int(self.r[i]) + int(
            self._g(self.x[i], self.z[i], xh, zh).sum()
        )
        phase %= 4
        if phase not in (0, 2):  # pragma: no cover - tableau invariant
            raise RuntimeError("tableau phase invariant violated")
        return xh ^ self.x[i], zh ^ self.z[i], phase == 2

    def _rowsum(self, h: int, i: int) -> None:
        self.x[h], self.z[h], self.r[h] = self._rowsum_into(
            self.x[h].copy(), self.z[h].copy(), bool(self.r[h]), i
        )

    # -- measurement ----------------------------------------------------------------

    def expectation_z(self, qubit: int) -> float:
        """<Z_q>: +/-1 when deterministic, 0.0 when the outcome is random."""
        n = self.n
        if self.x[n:, qubit].any():
            return 0.0
        xh = np.zeros(n, dtype=bool)
        zh = np.zeros(n, dtype=bool)
        rh = False
        for i in range(n):
            if self.x[i, qubit]:
                xh, zh, rh = self._rowsum_into(xh, zh, rh, i + n)
        return -1.0 if rh else 1.0

    def z_expectations(self) -> np.ndarray:
        """All per-qubit <Z> values (exact: +/-1 or 0)."""
        return np.array([self.expectation_z(q) for q in range(self.n)])

    def measure(
        self, qubit: int, rng: "int | np.random.Generator | None" = None
    ) -> int:
        """Measure Z on one qubit, collapsing the state; returns 0 or 1."""
        n = self.n
        stab_rows = np.nonzero(self.x[n:, qubit])[0]
        if stab_rows.size:
            p = int(stab_rows[0]) + n
            for i in range(2 * n):
                if i != p and self.x[i, qubit]:
                    self._rowsum(i, p)
            self.x[p - n] = self.x[p].copy()
            self.z[p - n] = self.z[p].copy()
            self.r[p - n] = self.r[p]
            self.x[p] = False
            self.z[p] = False
            self.z[p, qubit] = True
            outcome = int(as_rng(rng).integers(0, 2))
            self.r[p] = bool(outcome)
            return outcome
        expectation = self.expectation_z(qubit)
        return 0 if expectation > 0 else 1

    def run_circuit(self, circuit) -> "StabilizerState":
        """Apply every gate of a (Clifford-only) :class:`Circuit`."""
        for gate in circuit.gates:
            if gate.name not in CLIFFORD_GATES:
                raise ValueError(
                    f"gate {gate.name!r} is not Clifford; "
                    "use the statevector simulator"
                )
            self.apply(gate.name, gate.qubits)
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StabilizerState({self.n} qubits)"
