"""Kraus-operator channels for the density-matrix simulator.

The paper (Definition A.2) models any noise process as a CPTP map
``rho -> sum_k O_k rho O_k^dagger``.  This module provides the standard
channels the noise models are built from, plus the completeness check
used by the property tests.
"""

from __future__ import annotations

import numpy as np

from repro.sim.gates import I2, PAULI_X, PAULI_Y, PAULI_Z


def is_cptp(kraus_ops: "list[np.ndarray]", atol: float = 1e-9) -> bool:
    """Check the Kraus completeness relation sum(O^dag O) = I."""
    dim = kraus_ops[0].shape[0]
    total = sum(op.conj().T @ op for op in kraus_ops)
    return bool(np.allclose(total, np.eye(dim), atol=atol))


def pauli_channel(px: float, py: float, pz: float) -> "list[np.ndarray]":
    """Kraus operators of a single-qubit Pauli channel.

    With probability ``px/py/pz`` the corresponding Pauli is applied; with
    probability ``1 - px - py - pz`` nothing happens.  This is the channel
    QuantumNAT's error-gate insertion samples from (Section 3.2).
    """
    p_total = px + py + pz
    if min(px, py, pz) < 0 or p_total > 1 + 1e-12:
        raise ValueError(f"invalid Pauli probabilities ({px}, {py}, {pz})")
    p_id = max(0.0, 1.0 - p_total)
    ops = [np.sqrt(p_id) * I2]
    for prob, pauli in ((px, PAULI_X), (py, PAULI_Y), (pz, PAULI_Z)):
        if prob > 0:
            ops.append(np.sqrt(prob) * pauli)
    return ops


def depolarizing_channel(p: float) -> "list[np.ndarray]":
    """Single-qubit depolarizing channel with parameter ``p``.

    ``rho -> (1 - p) rho + p/3 (X rho X + Y rho Y + Z rho Z)``.
    """
    return pauli_channel(p / 3, p / 3, p / 3)


def amplitude_damping_channel(gamma: float) -> "list[np.ndarray]":
    """T1 relaxation: |1> decays to |0> with probability ``gamma``."""
    if not 0 <= gamma <= 1:
        raise ValueError(f"gamma must be in [0, 1], got {gamma}")
    k0 = np.array([[1, 0], [0, np.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, np.sqrt(gamma)], [0, 0]], dtype=complex)
    return [k0, k1]


def phase_damping_channel(lam: float) -> "list[np.ndarray]":
    """Pure dephasing (T2) with probability ``lam``."""
    if not 0 <= lam <= 1:
        raise ValueError(f"lambda must be in [0, 1], got {lam}")
    k0 = np.array([[1, 0], [0, np.sqrt(1 - lam)]], dtype=complex)
    k1 = np.array([[0, 0], [0, np.sqrt(lam)]], dtype=complex)
    return [k0, k1]


def apply_channel_to_density(
    rho: np.ndarray, kraus_ops: "list[np.ndarray]"
) -> np.ndarray:
    """Reference dense application ``sum_k O rho O^dag`` (same dim as rho)."""
    out = np.zeros_like(rho)
    for op in kraus_ops:
        out += op @ rho @ op.conj().T
    return out
