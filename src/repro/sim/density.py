"""Batched density-matrix simulator with Kraus channels.

Used as the *exact* noisy-inference backend ("evaluation with noise
model", paper Table 11): gates apply as ``rho -> U rho U^dag`` and each
noise channel as ``rho -> sum_k O_k rho O_k^dag``.  Densities are stored
as ``(batch, dim, dim)`` arrays; practical up to ~8 qubits, which covers
all 4-qubit benchmarks.  Wider (10-qubit) models fall back to the
Pauli-trajectory estimator in :mod:`repro.noise.trajectory`.
"""

from __future__ import annotations

import numpy as np

from repro.sim.statevector import z_signs


def zero_density(n_qubits: int, batch: int = 1) -> np.ndarray:
    """|0...0><0...0| replicated over the batch: (batch, dim, dim)."""
    dim = 2**n_qubits
    rho = np.zeros((batch, dim, dim), dtype=complex)
    rho[:, 0, 0] = 1.0
    return rho


def density_from_state(state: np.ndarray) -> np.ndarray:
    """Outer product |psi><psi| per batch entry."""
    return np.einsum("bi,bj->bij", state, state.conj())


def _move_qubits_last(
    rho: np.ndarray, qubits: "tuple[int, ...]", n_qubits: int, side: str
) -> "tuple[np.ndarray, tuple[int, ...], tuple]":
    """Reshape rho so the given qubits' bits (row or column) are last."""
    batch = rho.shape[0]
    k = len(qubits)
    # Layout: (batch, row bits n-1..0, col bits n-1..0)
    tensor = rho.reshape((batch,) + (2,) * (2 * n_qubits))
    offset = 1 if side == "row" else 1 + n_qubits
    axes = [offset + (n_qubits - 1 - q) for q in qubits]
    kept = [a for a in range(1, 1 + 2 * n_qubits) if a not in axes]
    perm = (0, *kept, *(axes[i] for i in reversed(range(k))))
    reshaped = tensor.transpose(perm).reshape(batch, -1, 2**k)
    return reshaped, perm, tensor.shape


def _restore(out: np.ndarray, perm: tuple, shape: tuple) -> np.ndarray:
    batch = shape[0]
    dim = int(np.sqrt(np.prod(shape[1:])))
    out = out.reshape([shape[p] for p in perm])
    return out.transpose(np.argsort(perm)).reshape(batch, dim, dim)


def apply_unitary_to_density(
    rho: np.ndarray,
    matrix: np.ndarray,
    qubits: "tuple[int, ...]",
    n_qubits: int,
) -> np.ndarray:
    """rho -> U rho U^dag on the given qubits (U shared or per-sample)."""
    # Left multiply on row indices.
    reshaped, perm, shape = _move_qubits_last(rho, qubits, n_qubits, "row")
    if matrix.ndim == 2:
        out = np.einsum("ij,brj->bri", matrix, reshaped, optimize=True)
    else:
        out = np.einsum("bij,brj->bri", matrix, reshaped, optimize=True)
    rho = _restore(out, perm, shape)
    # Right multiply U^dag on column indices: (U rho)_col contraction with conj.
    reshaped, perm, shape = _move_qubits_last(rho, qubits, n_qubits, "col")
    if matrix.ndim == 2:
        out = np.einsum("ij,brj->bri", matrix.conj(), reshaped, optimize=True)
    else:
        out = np.einsum("bij,brj->bri", matrix.conj(), reshaped, optimize=True)
    return _restore(out, perm, shape)


def apply_kraus_to_density(
    rho: np.ndarray,
    kraus_ops: "list[np.ndarray]",
    qubits: "tuple[int, ...]",
    n_qubits: int,
) -> np.ndarray:
    """rho -> sum_k O_k rho O_k^dag on the given qubits."""
    total = np.zeros_like(rho)
    for op in kraus_ops:
        total += apply_unitary_to_density(rho, op, qubits, n_qubits)
    return total


def density_probabilities(rho: np.ndarray) -> np.ndarray:
    """Diagonal of rho: joint basis probabilities (batch, dim)."""
    return np.real(np.einsum("bii->bi", rho))


def density_z_expectations(rho: np.ndarray, n_qubits: int) -> np.ndarray:
    """Per-qubit <Z> = tr(Z_q rho): shape (batch, n_qubits)."""
    return density_probabilities(rho) @ z_signs(n_qubits).T


def purity(rho: np.ndarray) -> np.ndarray:
    """tr(rho^2) per batch entry -- 1 for pure states, < 1 when noisy."""
    return np.real(np.einsum("bij,bji->b", rho, rho))
