"""Batched density-matrix simulator with Kraus channels.

Used as the *exact* noisy-inference backend ("evaluation with noise
model", paper Table 11): gates apply as ``rho -> U rho U^dag`` and each
noise channel as ``rho -> sum_k O_k rho O_k^dag``.  Densities are stored
as ``(batch, dim, dim)`` arrays; practical up to ~8 qubits, which covers
all 4-qubit benchmarks.  Wider (10-qubit) models fall back to the
Pauli-trajectory estimator in :mod:`repro.noise.trajectory`.

Superoperator kernels
---------------------
The fast density engine works in *superoperator* form: a k-qubit channel
is one ``(4**k, 4**k)`` matrix acting on the vectorized density.  The
convention here pairs row and column indices C-order style -- a density
``rho[r, c]`` flattens to index ``r * 2**k + c``, so the superoperator of
a unitary is ``kron(U, U.conj())`` and of a Kraus set
``sum_k kron(O_k, O_k.conj())`` (one stacked einsum, see
:func:`kraus_superop`).  :func:`apply_superop_to_density` then applies a
whole channel in a *single* transpose + GEMM pass over the density --
where the per-Kraus route pays two passes per operator (eight for the
4-Kraus Pauli channel) -- with a structured fast path for diagonal
superoperators (dephasing-type channels, rz/cz sites) that skips the
GEMM entirely.  The kernels are channel-agnostic: the compiled engine
feeds them Pauli channels, exact thermal-relaxation (amplitude/phase
damping) Kraus sets, coherent rotations and terminal readout-confusion
(POVM) superops alike, and the adjoint-on-superops training backend
reuses them with transposed matrices for its backward sweep.  The per-operator route is retained as
``apply_kraus_to_density`` / ``apply_unitary_to_density`` and doubles as
the numerical reference for the compiled engine
(:mod:`repro.compiler.superop`).
"""

from __future__ import annotations

import functools

import numpy as np

from repro.sim.statevector import z_signs


def zero_density(n_qubits: int, batch: int = 1) -> np.ndarray:
    """|0...0><0...0| replicated over the batch: (batch, dim, dim)."""
    dim = 2**n_qubits
    rho = np.zeros((batch, dim, dim), dtype=complex)
    rho[:, 0, 0] = 1.0
    return rho


def density_from_state(state: np.ndarray) -> np.ndarray:
    """Outer product |psi><psi| per batch entry."""
    return np.einsum("bi,bj->bij", state, state.conj())


def _move_qubits_last(
    rho: np.ndarray, qubits: "tuple[int, ...]", n_qubits: int, side: str
) -> "tuple[np.ndarray, tuple[int, ...], tuple]":
    """Reshape rho so the given qubits' bits (row or column) are last."""
    batch = rho.shape[0]
    k = len(qubits)
    # Layout: (batch, row bits n-1..0, col bits n-1..0)
    tensor = rho.reshape((batch,) + (2,) * (2 * n_qubits))
    offset = 1 if side == "row" else 1 + n_qubits
    axes = [offset + (n_qubits - 1 - q) for q in qubits]
    kept = [a for a in range(1, 1 + 2 * n_qubits) if a not in axes]
    perm = (0, *kept, *(axes[i] for i in reversed(range(k))))
    reshaped = tensor.transpose(perm).reshape(batch, -1, 2**k)
    return reshaped, perm, tensor.shape


def _restore(out: np.ndarray, perm: tuple, shape: tuple) -> np.ndarray:
    batch = shape[0]
    dim = int(np.sqrt(np.prod(shape[1:])))
    out = out.reshape([shape[p] for p in perm])
    return out.transpose(np.argsort(perm)).reshape(batch, dim, dim)


def apply_unitary_to_density(
    rho: np.ndarray,
    matrix: np.ndarray,
    qubits: "tuple[int, ...]",
    n_qubits: int,
) -> np.ndarray:
    """rho -> U rho U^dag on the given qubits (U shared or per-sample)."""
    # Left multiply on row indices.
    reshaped, perm, shape = _move_qubits_last(rho, qubits, n_qubits, "row")
    if matrix.ndim == 2:
        out = np.einsum("ij,brj->bri", matrix, reshaped, optimize=True)
    else:
        out = np.einsum("bij,brj->bri", matrix, reshaped, optimize=True)
    rho = _restore(out, perm, shape)
    # Right multiply U^dag on column indices: (U rho)_col contraction with conj.
    reshaped, perm, shape = _move_qubits_last(rho, qubits, n_qubits, "col")
    if matrix.ndim == 2:
        out = np.einsum("ij,brj->bri", matrix.conj(), reshaped, optimize=True)
    else:
        out = np.einsum("bij,brj->bri", matrix.conj(), reshaped, optimize=True)
    return _restore(out, perm, shape)


def apply_kraus_to_density(
    rho: np.ndarray,
    kraus_ops: "list[np.ndarray]",
    qubits: "tuple[int, ...]",
    n_qubits: int,
) -> np.ndarray:
    """rho -> sum_k O_k rho O_k^dag on the given qubits."""
    total = np.zeros_like(rho)
    for op in kraus_ops:
        total += apply_unitary_to_density(rho, op, qubits, n_qubits)
    return total


def unitary_superop(matrix: np.ndarray) -> np.ndarray:
    """Superoperator of ``rho -> U rho U^dag``: ``kron(U, U.conj())``.

    Accepts a shared ``(d, d)`` matrix or per-sample ``(batch, d, d)``
    matrices (returning ``(batch, d*d, d*d)``).
    """
    if matrix.ndim == 2:
        return np.kron(matrix, matrix.conj())
    batch, d = matrix.shape[0], matrix.shape[-1]
    full = np.einsum("bij,buv->biujv", matrix, matrix.conj())
    return np.ascontiguousarray(full.reshape(batch, d * d, d * d))


def kraus_superop(kraus_ops: "list[np.ndarray] | np.ndarray") -> np.ndarray:
    """Superoperator of ``rho -> sum_k O_k rho O_k^dag``.

    One stacked einsum over the ``(n_kraus, d, d)`` operator stack --
    this is how the compiled density engine turns the 4-Kraus Pauli
    channel into a single matrix instead of four U.rho.U^dag round trips.
    """
    stack = np.asarray(kraus_ops, dtype=complex)
    d = stack.shape[-1]
    full = np.einsum("kij,kuv->iujv", stack, stack.conj())
    return np.ascontiguousarray(full.reshape(d * d, d * d))


def superop_is_diagonal(superop: np.ndarray) -> bool:
    """True when a shared superoperator is diagonal (structured path)."""
    if superop.ndim != 2:
        return False
    off = superop[~np.eye(superop.shape[0], dtype=bool)]
    return not np.any(off)


@functools.lru_cache(maxsize=1024)
def _superop_plan(n_qubits: int, qubits: "tuple[int, ...]"):
    """Cached transpose layout exposing a qubit set's row AND col bits.

    The returned permutation moves the target qubits' row bits then
    column bits to the end (each group ordered so ``qubits[0]`` is the
    least significant), which makes the flattened trailing axis exactly
    the superoperator index ``r * 2**k + c``.
    """
    k = len(qubits)
    # Layout: (batch, row bits n-1..0, col bits n-1..0).
    row_axes = [1 + (n_qubits - 1 - q) for q in qubits]
    col_axes = [1 + n_qubits + (n_qubits - 1 - q) for q in qubits]
    targets = (
        [row_axes[i] for i in reversed(range(k))]
        + [col_axes[i] for i in reversed(range(k))]
    )
    kept = [a for a in range(1, 1 + 2 * n_qubits) if a not in targets]
    perm = (0, *kept, *targets)
    inverse = tuple(int(i) for i in np.argsort(perm))
    return perm, inverse


def apply_superop_to_density(
    rho: np.ndarray,
    superop: np.ndarray,
    qubits: "tuple[int, ...]",
    n_qubits: int,
    diagonal: "bool | None" = None,
) -> np.ndarray:
    """Apply a compiled channel to the density in one fused pass.

    ``superop`` is ``(4**k, 4**k)`` (shared) or ``(batch, 4**k, 4**k)``
    (per-sample) in the :func:`unitary_superop` index convention.  One
    cached transpose exposes the target qubits' row and column bits
    together, one GEMM contracts the whole channel, one transpose
    restores the layout.  ``diagonal`` short-circuits the structure
    check for callers that precomputed it (the compiled superop plan).
    """
    batch = rho.shape[0]
    k = len(qubits)
    dim_super = 4**k
    if superop.shape[-2:] != (dim_super, dim_super):
        raise ValueError(
            f"superop shape {superop.shape} does not match {k}-qubit channel"
        )
    perm, inverse = _superop_plan(n_qubits, tuple(qubits))
    tensor = rho.reshape((batch,) + (2,) * (2 * n_qubits))
    tensor = tensor.transpose(perm).reshape(batch, -1, dim_super)
    if superop.ndim == 2:
        if diagonal is None:
            diagonal = superop_is_diagonal(superop)
        if diagonal:
            # Diagonal channel (dephasing-type, rz/cz sites): elementwise
            # scaling of the exposed axis, no GEMM.
            out = tensor * np.diagonal(superop)[None, None, :]
        else:
            # Shared superop: one flat GEMM over all (batch * rest) rows.
            out = (tensor.reshape(-1, dim_super) @ superop.T).reshape(tensor.shape)
    else:
        out = np.matmul(tensor, superop.transpose(0, 2, 1))
    out = out.reshape((batch,) + (2,) * (2 * n_qubits)).transpose(inverse)
    dim = 2**n_qubits
    return out.reshape(batch, dim, dim)


def density_probabilities(rho: np.ndarray) -> np.ndarray:
    """Diagonal of rho: joint basis probabilities (batch, dim)."""
    return np.real(np.einsum("bii->bi", rho))


def density_z_expectations(rho: np.ndarray, n_qubits: int) -> np.ndarray:
    """Per-qubit <Z> = tr(Z_q rho): shape (batch, n_qubits)."""
    return density_probabilities(rho) @ z_signs(n_qubits).T


def purity(rho: np.ndarray) -> np.ndarray:
    """tr(rho^2) per batch entry -- 1 for pure states, < 1 when noisy."""
    return np.real(np.einsum("bij,bji->b", rho, rho))
