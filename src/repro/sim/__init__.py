"""Quantum simulation substrates: gates, statevector and density-matrix engines."""

from repro.sim.gates import GATES, GateDef, gate_def, gate_matrix
from repro.sim.statevector import (
    zero_state,
    apply_matrix,
    z_expectations,
    z_signs,
    joint_probabilities,
    sample_counts,
    expectations_from_counts,
    bind_circuit,
    run_circuit,
    run_ops,
    BoundOp,
)
from repro.sim.density import (
    zero_density,
    density_from_state,
    apply_unitary_to_density,
    apply_kraus_to_density,
    density_probabilities,
    density_z_expectations,
    purity,
)
from repro.sim import kraus
from repro.sim.channels import (
    QuantumChannel,
    average_channel_fidelity,
    channel_fidelity,
)
from repro.sim.pauli import (
    PauliObservable,
    PauliString,
    all_pauli_strings,
    random_pauli,
)
from repro.sim.stabilizer import CLIFFORD_GATES, StabilizerState
from repro.sim.unitary import (
    average_gate_fidelity,
    circuit_unitary,
    circuits_equivalent,
    process_fidelity,
)

__all__ = [
    "GATES",
    "GateDef",
    "gate_def",
    "gate_matrix",
    "zero_state",
    "apply_matrix",
    "z_expectations",
    "z_signs",
    "joint_probabilities",
    "sample_counts",
    "expectations_from_counts",
    "bind_circuit",
    "run_circuit",
    "run_ops",
    "BoundOp",
    "zero_density",
    "density_from_state",
    "apply_unitary_to_density",
    "apply_kraus_to_density",
    "density_probabilities",
    "density_z_expectations",
    "purity",
    "kraus",
    "QuantumChannel",
    "channel_fidelity",
    "average_channel_fidelity",
    "PauliString",
    "PauliObservable",
    "random_pauli",
    "all_pauli_strings",
    "circuit_unitary",
    "circuits_equivalent",
    "process_fidelity",
    "average_gate_fidelity",
    "StabilizerState",
    "CLIFFORD_GATES",
]
