"""Quantum channel toolbox: Choi matrices, transfer matrices, fidelities.

:mod:`repro.sim.kraus` provides the raw Kraus operator lists the density
simulator consumes.  This module adds the channel-level representations
needed by noise *analysis*: Choi matrices (for CPTP checks and process
fidelity), Pauli transfer matrices (where twirling literally diagonalizes
the channel), thermal relaxation built from device T1/T2 times, and
channel composition/mixing.  The characterization experiments
(:mod:`repro.characterization`) and the twirling pipeline are the main
consumers.
"""

from __future__ import annotations

import numpy as np

from repro.sim.gates import I2, PAULI_X, PAULI_Y, PAULI_Z
from repro.sim.kraus import (
    amplitude_damping_channel,
    apply_channel_to_density,
    depolarizing_channel,
    is_cptp,
    pauli_channel,
    phase_damping_channel,
)

_PAULIS_1Q = (I2, PAULI_X, PAULI_Y, PAULI_Z)


class QuantumChannel:
    """A CPTP map stored as a list of Kraus operators.

    Thin value type over ``list[np.ndarray]`` adding composition,
    mixtures and the derived representations (Choi, PTM).  All operators
    must share one square dimension ``2^k``.
    """

    def __init__(self, kraus_ops: "list[np.ndarray]", check: bool = True):
        if not kraus_ops:
            raise ValueError("channel needs at least one Kraus operator")
        ops = [np.asarray(op, dtype=complex) for op in kraus_ops]
        dim = ops[0].shape[0]
        for op in ops:
            if op.shape != (dim, dim):
                raise ValueError(f"inconsistent Kraus shapes: {op.shape} vs {dim}")
        if dim & (dim - 1):
            raise ValueError(f"Kraus dimension {dim} is not a power of two")
        if check and not is_cptp(ops):
            raise ValueError("Kraus operators do not satisfy sum(O^dag O) = I")
        self.kraus_ops = ops
        self.dim = dim

    # -- constructors -------------------------------------------------------

    @staticmethod
    def identity(n_qubits: int = 1) -> "QuantumChannel":
        return QuantumChannel([np.eye(2**n_qubits, dtype=complex)], check=False)

    @staticmethod
    def from_unitary(matrix: np.ndarray) -> "QuantumChannel":
        """The coherent channel ``rho -> U rho U^dag``."""
        return QuantumChannel([np.asarray(matrix, dtype=complex)])

    @staticmethod
    def pauli(px: float, py: float, pz: float) -> "QuantumChannel":
        return QuantumChannel(pauli_channel(px, py, pz), check=False)

    @staticmethod
    def depolarizing(p: float, n_qubits: int = 1) -> "QuantumChannel":
        """Uniform depolarizing channel on ``n_qubits`` qubits.

        ``rho -> (1 - p) rho + p/(4^n - 1) sum_{P != I} P rho P``; for one
        qubit this matches :func:`repro.sim.kraus.depolarizing_channel`.
        """
        if n_qubits == 1:
            return QuantumChannel(depolarizing_channel(p), check=False)
        if not 0 <= p <= 1:
            raise ValueError(f"depolarizing parameter out of range: {p}")
        paulis = _pauli_basis(n_qubits)
        n_errors = len(paulis) - 1
        ops = [np.sqrt(1.0 - p) * paulis[0]]
        ops += [np.sqrt(p / n_errors) * matrix for matrix in paulis[1:]]
        return QuantumChannel(ops, check=False)

    @staticmethod
    def amplitude_damping(gamma: float) -> "QuantumChannel":
        return QuantumChannel(amplitude_damping_channel(gamma), check=False)

    @staticmethod
    def phase_damping(lam: float) -> "QuantumChannel":
        return QuantumChannel(phase_damping_channel(lam), check=False)

    @staticmethod
    def thermal_relaxation(
        t1: float, t2: float, duration: float
    ) -> "QuantumChannel":
        """Combined T1/T2 relaxation over a gate of length ``duration``.

        Composes amplitude damping ``gamma = 1 - exp(-t/T1)`` with the
        pure dephasing left over after accounting for the T1 contribution
        to T2 (requires the physical constraint ``T2 <= 2 T1``).  This is
        how a device's published T1/T2 microseconds and gate durations
        become a concrete channel.
        """
        if t1 <= 0 or t2 <= 0 or duration < 0:
            raise ValueError("T1, T2 must be positive and duration non-negative")
        if t2 > 2 * t1 + 1e-12:
            raise ValueError(f"unphysical relaxation times: T2={t2} > 2*T1={2 * t1}")
        gamma = 1.0 - np.exp(-duration / t1)
        # 1/T_phi = 1/T2 - 1/(2 T1); lambda is the dephasing probability.
        rate_phi = max(0.0, 1.0 / t2 - 0.5 / t1)
        lam = 1.0 - np.exp(-2.0 * duration * rate_phi)
        damping = QuantumChannel.amplitude_damping(float(gamma))
        dephasing = QuantumChannel.phase_damping(float(lam))
        return dephasing.compose(damping)

    # -- algebra ----------------------------------------------------------------

    def compose(self, first: "QuantumChannel") -> "QuantumChannel":
        """The channel "``first`` then ``self``" (operator-style order)."""
        if first.dim != self.dim:
            raise ValueError("cannot compose channels of different dimension")
        ops = [a @ b for a in self.kraus_ops for b in first.kraus_ops]
        return QuantumChannel(_prune(ops), check=False)

    def mix(self, other: "QuantumChannel", p_other: float) -> "QuantumChannel":
        """Probabilistic mixture ``(1 - p) self + p other``."""
        if not 0 <= p_other <= 1:
            raise ValueError(f"mixture probability out of range: {p_other}")
        ops = [np.sqrt(1 - p_other) * op for op in self.kraus_ops]
        ops += [np.sqrt(p_other) * op for op in other.kraus_ops]
        return QuantumChannel(_prune(ops), check=False)

    def apply(self, rho: np.ndarray) -> np.ndarray:
        """Dense application to a single density matrix."""
        return apply_channel_to_density(rho, self.kraus_ops)

    # -- representations -----------------------------------------------------

    def choi(self) -> np.ndarray:
        """Choi matrix ``sum_k vec(O_k) vec(O_k)^dag`` (column stacking).

        Positive semidefinite iff the map is completely positive; its
        partial trace is the identity iff trace preserving.
        """
        d = self.dim
        choi = np.zeros((d * d, d * d), dtype=complex)
        for op in self.kraus_ops:
            vec = op.reshape(-1, order="F")
            choi += np.outer(vec, vec.conj())
        return choi

    def pauli_transfer_matrix(self) -> np.ndarray:
        """PTM ``R[i, j] = tr(P_i E(P_j)) / d`` over the Pauli basis.

        Real for any CPTP map.  A Pauli channel's PTM is diagonal --
        twirling literally zeroes the off-diagonal entries, which the
        twirling tests assert.
        """
        paulis = _pauli_basis(_n_qubits(self.dim))
        d = self.dim
        ptm = np.empty((len(paulis), len(paulis)))
        for j, pj in enumerate(paulis):
            image = self.apply(pj.astype(complex))
            for i, pi in enumerate(paulis):
                ptm[i, j] = np.real(np.trace(pi @ image)) / d
        return ptm

    def is_cptp(self, atol: float = 1e-9) -> bool:
        return is_cptp(self.kraus_ops, atol=atol)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QuantumChannel(dim={self.dim}, {len(self.kraus_ops)} Kraus ops)"


def _n_qubits(dim: int) -> int:
    n = int(round(np.log2(dim)))
    if 2**n != dim:
        raise ValueError(f"dimension {dim} is not a power of two")
    return n


def _pauli_basis(n_qubits: int) -> "list[np.ndarray]":
    """All n-qubit Pauli matrices, identity first, lexicographic order."""
    basis = [np.eye(1, dtype=complex)]
    for _ in range(n_qubits):
        basis = [np.kron(p, q) for p in basis for q in _PAULIS_1Q]
    return basis


def _prune(ops: "list[np.ndarray]", atol: float = 1e-14) -> "list[np.ndarray]":
    """Drop numerically-zero Kraus operators produced by composition."""
    kept = [op for op in ops if np.max(np.abs(op)) > atol]
    return kept or ops[:1]


def channel_fidelity(a: QuantumChannel, b: QuantumChannel) -> float:
    """Process fidelity between two channels via normalized Choi overlap.

    Reduces to :func:`repro.sim.unitary.process_fidelity` when both
    channels are unitary.  Uses the general mixed-state fidelity
    ``F(rho, sigma) = (tr sqrt(sqrt(rho) sigma sqrt(rho)))^2`` on the
    normalized Choi states.
    """
    if a.dim != b.dim:
        raise ValueError("channels have different dimensions")
    rho = a.choi() / a.dim
    sigma = b.choi() / b.dim
    return float(_state_fidelity(rho, sigma))


def average_channel_fidelity(a: QuantumChannel, b: QuantumChannel) -> float:
    """Average fidelity ``(d F_pro + 1) / (d + 1)`` between two channels."""
    d = a.dim
    return float((d * channel_fidelity(a, b) + 1.0) / (d + 1.0))


def _state_fidelity(rho: np.ndarray, sigma: np.ndarray) -> float:
    # Hermitian square root via eigen-decomposition (scipy-free).
    vals, vecs = np.linalg.eigh(rho)
    vals = np.clip(vals, 0.0, None)
    sqrt_rho = (vecs * np.sqrt(vals)) @ vecs.conj().T
    inner = sqrt_rho @ sigma @ sqrt_rho
    inner_vals = np.linalg.eigvalsh(inner)
    inner_vals = np.clip(inner_vals, 0.0, None)
    return float(np.sum(np.sqrt(inner_vals)) ** 2)
