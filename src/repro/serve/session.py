"""The serving front door: :class:`InferenceServer` and :class:`Session`.

An :class:`InferenceServer` owns one :class:`BatchCoalescer` plus the
executors it dispatches onto.  Callers open a :class:`Session` per
(model, weights, engine) triple; sessions sharing that triple share a
*coalescing key*, so concurrent ``await session.predict(x)`` calls from
unrelated users stack into one sweep per window.  Compiled-plan LRUs
live on the executors/model, which live for the server's lifetime --
warm plans survive across requests by construction.

Determinism: a flush is executed as one ordinary
:meth:`QuantumNATModel.predict` call over the submission-ordered stack,
so it is bit-equivalent to the serial call a single user would have
made with the same executor RNG state.  With
``ServeConfig.record_flushes`` the server keeps a flush log (inputs,
outputs, pre-flush RNG state, the executor that ran the sweep) and
:meth:`InferenceServer.verify_flush_log` replays every entry through
that same executor, asserting bitwise equality end-to-end -- including
flushes a supervised retry recovered and flushes an open breaker
rerouted to a fallback engine.

Resilience (PR 8), layered front to back:

* **Backpressure** -- ``max_pending_rows_per_key`` / ``max_pending_rows``
  caps with a deterministic shed policy (``shed``); refused or evicted
  requests fail with a typed :class:`Overloaded` (see
  :mod:`repro.serve.coalescer`).
* **Circuit breakers** -- with ``ServeConfig.breaker`` set, each
  endpoint gets its own :class:`~repro.serve.breaker.CircuitBreaker`.
  Consecutive typed engine faults (``RetryExhausted``, ``WorkerCrash``,
  any :class:`RuntimeFault`) trip it open; open flushes are either
  refused with :class:`CircuitOpen` or rerouted through the registry's
  engine fallback chain under a :class:`DegradedExecution` warning;
  half-open probes readmit one flush at a time.
* **Graceful drain** -- :meth:`InferenceServer.drain` stops admitting,
  flushes every parked request, cancels window timers and fails any
  straggler with :class:`ServerClosed`; :meth:`InferenceServer.close`
  is the abrupt variant (parked requests fail instead of executing).
  Either way no future is left unresolved and no timer stays armed.
* **Health** -- :meth:`InferenceServer.health` snapshots server state,
  queue depths and per-endpoint breaker status
  (:mod:`repro.serve.health`).

Deadlines come in two layers, both reusing PR-6 machinery where it
applies: per-request ``deadline_s`` is an ``asyncio.wait_for`` on the
parked future (missing it cancels the request *before* its rows
execute, surfacing :class:`DeadlineExceeded`), and -- when
``ServeConfig.supervised`` is set -- each flush sweep runs under a
:class:`~repro.runtime.supervisor.ChunkSupervisor` ``call`` with
RNG-snapshot retry determinism and the supervisor's own per-attempt
deadline/checksum policy.  Supervised endpoints label their supervisor
with a stable chaos label (``serve:<engine>:<weights-digest>``), so a
seed-driven :class:`~repro.runtime.faults.FaultPlan` injects the same
faults at the same flush indices on any host.

Sessions on a model with batch-statistics normalization must pin
``model.fixed_stats`` (validation-statistics mode, paper Table 13):
otherwise normalization would depend on which requests happened to
coalesce, breaking both determinism and user isolation.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import (
    create_engine,
    engine_fallback_chain,
    engine_spec,
)
from repro.runtime.errors import DegradedExecution
from repro.runtime.faults import active_fault_plan, apply_fault
from repro.runtime.supervisor import ChunkSupervisor, SupervisorConfig
from repro.serve.admission import AdmissionError, AdmissionPolicy
from repro.serve.breaker import BreakerConfig, CircuitBreaker
from repro.serve.coalescer import SHED_POLICIES, BatchCoalescer
from repro.serve.errors import CircuitOpen, Overloaded, ServerClosed
from repro.serve.health import HealthSnapshot, health_snapshot
from repro.serve.metrics import ServeMetrics


class DeadlineExceeded(asyncio.TimeoutError):
    """A request's deadline elapsed before its window flushed."""


@dataclass(frozen=True)
class ServeConfig:
    """Knobs for one server: coalescing window, admission, supervision,
    backpressure and breaker policy."""

    #: seconds the oldest parked request waits before a window flush.
    window_s: float = 0.002
    #: rows per coalesced sweep before an overflow flush.
    max_batch: int = 64
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    #: run every flush sweep under a ChunkSupervisor ``call``.
    supervised: bool = False
    supervisor_config: "SupervisorConfig | None" = None
    #: keep a replayable flush log for bit-equivalence verification.
    record_flushes: bool = False
    #: parked-row cap per coalescing key (``None`` = unbounded).
    max_pending_rows_per_key: "int | None" = None
    #: parked-row cap across every key (``None`` = unbounded).
    max_pending_rows: "int | None" = None
    #: load-shedding policy when a cap is hit: ``"reject"`` the arrival,
    #: or evict the ``"oldest"``/``"newest"`` parked request.
    shed: str = "reject"
    #: per-endpoint circuit-breaker policy (``None`` = no breakers).
    breaker: "BreakerConfig | None" = None

    def __post_init__(self) -> None:
        if self.shed not in SHED_POLICIES:
            raise ValueError(
                f"shed must be one of {SHED_POLICIES}, got {self.shed!r}"
            )


@dataclass
class _Endpoint:
    """Everything one coalescing key needs to execute a flush."""

    model: object
    weights: np.ndarray
    executor: object
    supervisor: "ChunkSupervisor | None"
    #: registry name of the engine admission actually built.
    engine: str = "noiseless"
    #: kwargs the executor was built with (reused for fallbacks).
    engine_kwargs: "dict" = field(default_factory=dict)
    #: the device noise model, before capability gating.
    noise_model: object = None
    widest: int = 0
    #: stable label for chaos keying and breaker snapshots; unlike the
    #: coalescing key it contains no ``id()``, so it is identical across
    #: runs of the same (engine, weights).
    chaos_label: str = ""
    breaker: "CircuitBreaker | None" = None
    #: lazily built executor an open ``on_open="fallback"`` breaker
    #: reroutes flushes to.
    fallback_executor: object = None
    flush_index: int = 0


@dataclass
class _FlushRecord:
    key: object
    inputs: np.ndarray
    outputs: np.ndarray
    rng_state: "dict | None"
    #: the executor that ran this sweep (primary or breaker fallback);
    #: replay must use the same one to be bit-identical.
    executor: object = None


class InferenceServer:
    """Coalescing dispatch onto registry engines, one key per triple."""

    def __init__(self, config: "ServeConfig | None" = None) -> None:
        self.config = config or ServeConfig()
        self.metrics = ServeMetrics()
        self.coalescer = BatchCoalescer(
            self._execute,
            window_s=self.config.window_s,
            max_batch=self.config.max_batch,
            max_pending_rows_per_key=self.config.max_pending_rows_per_key,
            max_pending_rows=self.config.max_pending_rows,
            shed=self.config.shed,
        )
        self._endpoints: "dict[object, _Endpoint]" = {}
        self.flush_log: "list[_FlushRecord]" = []
        #: lifecycle: ``"serving"`` -> ``"draining"`` -> ``"closed"``.
        self._state = "serving"

    @property
    def state(self) -> str:
        return self._state

    # -- session management ------------------------------------------------

    def session(
        self,
        model,
        weights: np.ndarray,
        *,
        engine: str = "noiseless",
        **engine_kwargs,
    ) -> "Session":
        """Open a session; same (model, weights, engine) triples coalesce.

        ``engine_kwargs`` (``rng``, ``samples``, ``shots``, ...) forward
        to the engine factory and only apply when this call creates the
        key -- a second session on an existing key shares the first
        session's executor (that is what makes coalescing across users
        possible at all).
        """
        if self._state != "serving":
            raise ServerClosed(
                f"cannot open a session on a {self._state} server",
                state=self._state,
            )
        weights = np.asarray(weights, dtype=float)
        digest = hashlib.sha1(
            np.ascontiguousarray(weights).tobytes()
        ).hexdigest()
        key = (id(model), digest, engine)
        if key in self._endpoints:
            return Session(self, key)
        if model.config.normalize and model.fixed_stats is None:
            raise ValueError(
                "serving a model with batch-statistics normalization would "
                "make results depend on request coalescing; pin "
                "model.fixed_stats (profile_statistics on the validation "
                "set, paper Table 13) before opening a session"
            )
        widest = max(c.circuit.n_qubits for c in model.compiled)
        device_noise = model.device.noise_model
        noise_model = device_noise
        if not engine_spec(engine).capabilities.channels:
            noise_model = None
        try:
            executor = self.config.admission.admit(
                engine, noise_model, widest=widest, **engine_kwargs
            )
        except AdmissionError:
            self.metrics.rejected += 1
            raise
        chaos_label = f"serve:{engine}:{digest[:12]}"
        supervisor = None
        if self.config.supervised:
            supervisor = ChunkSupervisor(
                self.config.supervisor_config or SupervisorConfig(),
                label=chaos_label,
            )
        breaker = None
        if self.config.breaker is not None:
            breaker = CircuitBreaker(self.config.breaker)
        self._endpoints[key] = _Endpoint(
            model,
            weights,
            executor,
            supervisor,
            engine=engine,
            engine_kwargs=dict(engine_kwargs),
            noise_model=device_noise,
            widest=widest,
            chaos_label=chaos_label,
            breaker=breaker,
        )
        return Session(self, key)

    def endpoint_executor(self, key):
        """The executor actually serving ``key`` (fallbacks included)."""
        return self._endpoints[key].executor

    def endpoint_breaker(self, key) -> "CircuitBreaker | None":
        """The circuit breaker guarding ``key`` (``None`` = no breaker)."""
        return self._endpoints[key].breaker

    # -- flush execution ---------------------------------------------------

    def _execute(self, key, inputs: np.ndarray) -> np.ndarray:
        ep = self._endpoints[key]
        breaker = ep.breaker
        if breaker is not None and breaker.before_flush() == "open":
            if breaker.config.on_open == "fallback":
                fallback = self._fallback_executor(ep)
                if fallback is not None:
                    return self._run_flush(
                        ep, key, inputs, fallback, feed_breaker=False
                    )
            self.metrics.breaker_rejections += 1
            raise breaker.reject(ep.chaos_label)
        return self._run_flush(ep, key, inputs, ep.executor, feed_breaker=True)

    def _run_flush(
        self, ep: _Endpoint, key, inputs, executor, *, feed_breaker: bool
    ) -> np.ndarray:
        """One sweep on ``executor``; breaker/metrics/log bookkeeping.

        ``feed_breaker`` is False on breaker-fallback sweeps: a fallback
        engine's outcome says nothing about the *primary* engine's
        health, so it must not close (or re-trip) the breaker.
        """
        index = ep.flush_index
        ep.flush_index += 1
        rng = getattr(executor, "rng", None)
        state = None
        if self.config.record_flushes and rng is not None:
            state = rng.bit_generator.state
        try:
            if feed_breaker and ep.supervisor is not None:
                outputs = ep.supervisor.call(
                    ep.model.predict,
                    ep.weights,
                    inputs,
                    executor,
                    rng=rng,
                    index=index,
                )
            else:
                if feed_breaker and ep.supervisor is None:
                    plan = active_fault_plan()
                    if plan is not None:
                        apply_fault(plan.fault_for(ep.chaos_label, index, 0))
                outputs = ep.model.predict(ep.weights, inputs, executor)
        except Exception as exc:
            self.metrics.flush_failures += 1
            if feed_breaker and ep.breaker is not None:
                ep.breaker.record_failure(exc)
            raise
        if feed_breaker and ep.breaker is not None:
            ep.breaker.record_success()
        if not feed_breaker:
            self.metrics.breaker_fallback_flushes += 1
        self.metrics.record_flush(inputs.shape[0])
        if self.config.record_flushes:
            self.flush_log.append(
                _FlushRecord(key, inputs.copy(), outputs.copy(), state, executor)
            )
        return outputs

    def _fallback_executor(self, ep: _Endpoint):
        """Lazily build the engine an open breaker reroutes flushes to.

        Walks the registry's fallback chain past the primary, taking the
        first candidate whose capabilities cover the endpoint (channel
        kinds, width).  Emits :class:`DegradedExecution` once, when the
        fallback is first built.  Returns ``None`` when the chain offers
        nothing -- the caller degrades to rejection.
        """
        if ep.fallback_executor is not None:
            return ep.fallback_executor
        for candidate in engine_fallback_chain(ep.engine)[1:]:
            caps = engine_spec(candidate).capabilities
            noise_model = ep.noise_model if caps.channels else None
            required = (
                noise_model.channel_kinds
                if noise_model is not None
                else frozenset()
            )
            if required and not required <= caps.channels:
                continue
            if caps.max_qubits is not None and ep.widest > caps.max_qubits:
                continue
            try:
                executor = create_engine(
                    candidate, noise_model, **ep.engine_kwargs
                )
            except (TypeError, ValueError, MemoryError):
                continue
            warnings.warn(
                DegradedExecution(
                    f"breaker open on {ep.chaos_label}; rerouting flushes "
                    f"to engine {candidate!r}",
                    fallback_path=(ep.engine, candidate),
                ),
                stacklevel=2,
            )
            ep.fallback_executor = executor
            return executor
        return None

    def verify_flush_log(self) -> int:
        """Replay every recorded flush; assert bitwise-equal outputs.

        Each entry re-runs the *same* ``model.predict`` over the same
        stacked inputs on the executor that served it (primary or
        breaker fallback) with that executor's RNG restored to its
        pre-flush state -- the per-request serial call a lone user would
        have made -- and the replay must reproduce the served logits bit
        for bit.  Flushes a supervised retry recovered replay
        identically too: the supervisor restores the RNG snapshot before
        every attempt, so the recorded pre-flush state is the state the
        *successful* attempt ran from.  Returns the number of flushes
        verified; each executor's live RNG state is preserved around the
        replays.
        """
        verified = 0
        for rec in self.flush_log:
            ep = self._endpoints[rec.key]
            executor = rec.executor if rec.executor is not None else ep.executor
            rng = getattr(executor, "rng", None)
            live_state = None
            if rng is not None and rec.rng_state is not None:
                live_state = rng.bit_generator.state
                rng.bit_generator.state = rec.rng_state
            try:
                replay = ep.model.predict(ep.weights, rec.inputs, executor)
            finally:
                if live_state is not None:
                    rng.bit_generator.state = live_state
            if not np.array_equal(replay, rec.outputs):
                raise AssertionError(
                    "coalesced flush is not bit-equivalent to the serial "
                    f"predict over the same stack (key={rec.key!r}, "
                    f"rows={rec.inputs.shape[0]})"
                )
            verified += 1
        return verified

    # -- lifecycle ---------------------------------------------------------

    def health(self) -> HealthSnapshot:
        """Readiness/health: state, queue depths, per-endpoint breakers."""
        return health_snapshot(self)

    def drain(self) -> None:
        """Graceful shutdown: flush parked work, then stop admitting.

        Every parked request executes one final sweep per key; window
        timers are cancelled; any straggler a flush left unresolved
        (defensive) fails with a typed :class:`ServerClosed`.  Endpoints
        are kept so post-drain :meth:`verify_flush_log` and
        :meth:`health` still work.  Idempotent.
        """
        if self._state == "serving":
            self._state = "draining"
        self.coalescer.drain(
            ServerClosed(
                "server drained while this request was parked",
                state="draining",
            )
        )
        self._state = "closed"

    def close(self) -> None:
        """Abrupt shutdown: parked requests fail with :class:`ServerClosed`.

        Unlike :meth:`drain`, parked rows never execute; their futures
        fail immediately, window timers are cancelled (nothing stays
        armed on the loop) and endpoints are dropped.  Idempotent.
        """
        self._state = "closed"
        self.coalescer.close(
            ServerClosed(
                "server closed while this request was parked",
                state="closed",
            )
        )
        self._endpoints.clear()


class Session:
    """One caller's handle: ``await session.predict(x)``."""

    def __init__(self, server: InferenceServer, key) -> None:
        self.server = server
        self.key = key

    @property
    def executor(self):
        return self.server.endpoint_executor(self.key)

    async def predict(
        self,
        x: np.ndarray,
        *,
        deadline_s: "float | None" = None,
    ) -> np.ndarray:
        """Logits for ``x`` (1-D: one sample in/out; 2-D: a batch).

        The call parks in the coalescing window and resolves when its
        sweep executes.  ``deadline_s`` bounds the wait end to end;
        missing it cancels the parked request (its rows never execute)
        and raises :class:`DeadlineExceeded`.  Typed refusals surface
        directly: :class:`Overloaded` (backpressure), :class:`CircuitOpen`
        (endpoint breaker open, ``on_open="reject"``),
        :class:`ServerClosed` (draining/closed server).
        """
        t0 = time.perf_counter()
        if self.server.state != "serving":
            raise ServerClosed(
                f"predict on a {self.server.state} server",
                state=self.server.state,
            )
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        rows = x[None, :] if single else x
        limit = self.server.config.admission.max_rows_per_request
        if limit is not None and rows.shape[0] > limit:
            self.server.metrics.rejected += 1
            raise AdmissionError(
                f"request of {rows.shape[0]} rows exceeds the front door's "
                f"max_rows_per_request={limit} policy"
            )
        try:
            future = self.server.coalescer.submit(self.key, rows)
        except Overloaded:
            self.server.metrics.shed += 1
            raise
        try:
            if deadline_s is not None:
                outputs = await asyncio.wait_for(future, deadline_s)
            else:
                outputs = await future
        except Overloaded:
            # evicted while parked (shed="oldest"/"newest")
            self.server.metrics.shed += 1
            raise
        except asyncio.TimeoutError:
            self.server.metrics.deadline_misses += 1
            raise DeadlineExceeded(
                f"request missed its {deadline_s}s deadline while parked"
            ) from None
        self.server.metrics.record_latency(time.perf_counter() - t0)
        return outputs[0] if single else outputs
