"""The serving front door: :class:`InferenceServer` and :class:`Session`.

An :class:`InferenceServer` owns one :class:`BatchCoalescer` plus the
executors it dispatches onto.  Callers open a :class:`Session` per
(model, weights, engine) triple; sessions sharing that triple share a
*coalescing key*, so concurrent ``await session.predict(x)`` calls from
unrelated users stack into one sweep per window.  Compiled-plan LRUs
live on the executors/model, which live for the server's lifetime --
warm plans survive across requests by construction.

Determinism: a flush is executed as one ordinary
:meth:`QuantumNATModel.predict` call over the submission-ordered stack,
so it is bit-equivalent to the serial call a single user would have
made with the same executor RNG state.  With
``ServeConfig.record_flushes`` the server keeps a flush log (inputs,
outputs, pre-flush RNG state) and :meth:`InferenceServer.verify_flush_log`
replays every entry through the same executor, asserting bitwise
equality end-to-end.

Deadlines come in two layers, both reusing PR-6 machinery where it
applies: per-request ``deadline_s`` is an ``asyncio.wait_for`` on the
parked future (missing it cancels the request *before* its rows
execute, surfacing :class:`DeadlineExceeded`), and -- when
``ServeConfig.supervised`` is set -- each flush sweep runs under a
:class:`~repro.runtime.supervisor.ChunkSupervisor` ``call`` with
RNG-snapshot retry determinism and the supervisor's own per-attempt
deadline/checksum policy.

Sessions on a model with batch-statistics normalization must pin
``model.fixed_stats`` (validation-statistics mode, paper Table 13):
otherwise normalization would depend on which requests happened to
coalesce, breaking both determinism and user isolation.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import engine_spec
from repro.runtime.supervisor import ChunkSupervisor, SupervisorConfig
from repro.serve.admission import AdmissionError, AdmissionPolicy
from repro.serve.coalescer import BatchCoalescer
from repro.serve.metrics import ServeMetrics


class DeadlineExceeded(asyncio.TimeoutError):
    """A request's deadline elapsed before its window flushed."""


@dataclass(frozen=True)
class ServeConfig:
    """Knobs for one server: coalescing window, admission, supervision."""

    #: seconds the oldest parked request waits before a window flush.
    window_s: float = 0.002
    #: rows per coalesced sweep before an overflow flush.
    max_batch: int = 64
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    #: run every flush sweep under a ChunkSupervisor ``call``.
    supervised: bool = False
    supervisor_config: "SupervisorConfig | None" = None
    #: keep a replayable flush log for bit-equivalence verification.
    record_flushes: bool = False


@dataclass
class _Endpoint:
    """Everything one coalescing key needs to execute a flush."""

    model: object
    weights: np.ndarray
    executor: object
    supervisor: "ChunkSupervisor | None"
    flush_index: int = 0


@dataclass
class _FlushRecord:
    key: object
    inputs: np.ndarray
    outputs: np.ndarray
    rng_state: "dict | None"


class InferenceServer:
    """Coalescing dispatch onto registry engines, one key per triple."""

    def __init__(self, config: "ServeConfig | None" = None) -> None:
        self.config = config or ServeConfig()
        self.metrics = ServeMetrics()
        self.coalescer = BatchCoalescer(
            self._execute,
            window_s=self.config.window_s,
            max_batch=self.config.max_batch,
        )
        self._endpoints: "dict[object, _Endpoint]" = {}
        self.flush_log: "list[_FlushRecord]" = []

    # -- session management ------------------------------------------------

    def session(
        self,
        model,
        weights: np.ndarray,
        *,
        engine: str = "noiseless",
        **engine_kwargs,
    ) -> "Session":
        """Open a session; same (model, weights, engine) triples coalesce.

        ``engine_kwargs`` (``rng``, ``samples``, ``shots``, ...) forward
        to the engine factory and only apply when this call creates the
        key -- a second session on an existing key shares the first
        session's executor (that is what makes coalescing across users
        possible at all).
        """
        weights = np.asarray(weights, dtype=float)
        key = (
            id(model),
            hashlib.sha1(np.ascontiguousarray(weights).tobytes()).hexdigest(),
            engine,
        )
        if key in self._endpoints:
            return Session(self, key)
        if model.config.normalize and model.fixed_stats is None:
            raise ValueError(
                "serving a model with batch-statistics normalization would "
                "make results depend on request coalescing; pin "
                "model.fixed_stats (profile_statistics on the validation "
                "set, paper Table 13) before opening a session"
            )
        widest = max(c.circuit.n_qubits for c in model.compiled)
        noise_model = model.device.noise_model
        if not engine_spec(engine).capabilities.channels:
            noise_model = None
        try:
            executor = self.config.admission.admit(
                engine, noise_model, widest=widest, **engine_kwargs
            )
        except AdmissionError:
            self.metrics.rejected += 1
            raise
        supervisor = None
        if self.config.supervised:
            supervisor = ChunkSupervisor(
                self.config.supervisor_config or SupervisorConfig()
            )
        self._endpoints[key] = _Endpoint(model, weights, executor, supervisor)
        return Session(self, key)

    def endpoint_executor(self, key):
        """The executor actually serving ``key`` (fallbacks included)."""
        return self._endpoints[key].executor

    # -- flush execution ---------------------------------------------------

    def _execute(self, key, inputs: np.ndarray) -> np.ndarray:
        ep = self._endpoints[key]
        rng = getattr(ep.executor, "rng", None)
        state = None
        if self.config.record_flushes and rng is not None:
            state = rng.bit_generator.state
        if ep.supervisor is not None:
            outputs = ep.supervisor.call(
                ep.model.predict,
                ep.weights,
                inputs,
                ep.executor,
                rng=rng,
                index=ep.flush_index,
            )
        else:
            outputs = ep.model.predict(ep.weights, inputs, ep.executor)
        ep.flush_index += 1
        self.metrics.record_flush(inputs.shape[0])
        if self.config.record_flushes:
            self.flush_log.append(
                _FlushRecord(key, inputs.copy(), outputs.copy(), state)
            )
        return outputs

    def verify_flush_log(self) -> int:
        """Replay every recorded flush; assert bitwise-equal outputs.

        Each entry re-runs the *same* ``model.predict`` over the same
        stacked inputs with the executor's RNG restored to its pre-flush
        state -- the per-request serial call a lone user would have made
        -- and the replay must reproduce the served logits bit for bit.
        Returns the number of flushes verified; the executor's live RNG
        state is preserved around the replays.
        """
        verified = 0
        for rec in self.flush_log:
            ep = self._endpoints[rec.key]
            rng = getattr(ep.executor, "rng", None)
            live_state = None
            if rng is not None and rec.rng_state is not None:
                live_state = rng.bit_generator.state
                rng.bit_generator.state = rec.rng_state
            try:
                replay = ep.model.predict(ep.weights, rec.inputs, ep.executor)
            finally:
                if live_state is not None:
                    rng.bit_generator.state = live_state
            if not np.array_equal(replay, rec.outputs):
                raise AssertionError(
                    "coalesced flush is not bit-equivalent to the serial "
                    f"predict over the same stack (key={rec.key!r}, "
                    f"rows={rec.inputs.shape[0]})"
                )
            verified += 1
        return verified

    def close(self) -> None:
        """Flush pending requests and drop endpoints."""
        self.coalescer.close()
        self._endpoints.clear()


class Session:
    """One caller's handle: ``await session.predict(x)``."""

    def __init__(self, server: InferenceServer, key) -> None:
        self.server = server
        self.key = key

    @property
    def executor(self):
        return self.server.endpoint_executor(self.key)

    async def predict(
        self,
        x: np.ndarray,
        *,
        deadline_s: "float | None" = None,
    ) -> np.ndarray:
        """Logits for ``x`` (1-D: one sample in/out; 2-D: a batch).

        The call parks in the coalescing window and resolves when its
        sweep executes.  ``deadline_s`` bounds the wait end to end;
        missing it cancels the parked request (its rows never execute)
        and raises :class:`DeadlineExceeded`.
        """
        t0 = time.perf_counter()
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        rows = x[None, :] if single else x
        limit = self.server.config.admission.max_rows_per_request
        if limit is not None and rows.shape[0] > limit:
            self.server.metrics.rejected += 1
            raise AdmissionError(
                f"request of {rows.shape[0]} rows exceeds the front door's "
                f"max_rows_per_request={limit} policy"
            )
        future = self.server.coalescer.submit(self.key, rows)
        try:
            if deadline_s is not None:
                outputs = await asyncio.wait_for(future, deadline_s)
            else:
                outputs = await future
        except asyncio.TimeoutError:
            self.server.metrics.deadline_misses += 1
            raise DeadlineExceeded(
                f"request missed its {deadline_s}s deadline while parked"
            ) from None
        self.server.metrics.record_latency(time.perf_counter() - t0)
        return outputs[0] if single else outputs
