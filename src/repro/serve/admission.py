"""Admission control: capability-checked executor construction.

A serving front door cannot assume every request is servable by the
engine the operator configured -- the exact density backend caps out at
8 qubits, the Pauli-unraveled trajectory backend cannot represent exact
relaxation channels.  Admission control decides, *per session*, what
happens to a request the named engine cannot serve:

* ``on_unservable="fallback"`` (default) -- route along the registry's
  fallback chain via :func:`repro.core.engine.create_engine_with_fallback`;
  the session still opens, a :class:`DegradedExecution` warning records
  the path actually taken;
* ``on_unservable="reject"`` -- refuse the session with
  :class:`AdmissionError` (a typed :class:`EngineUnavailable`), carrying
  the live capability matrix so the caller can pick a servable engine.

``max_rows_per_request`` bounds single-request width independently of
engine capabilities (a front-door payload-size limit).  ``describe()``
renders the policy as a plain dict; the server's health snapshot
(:mod:`repro.serve.health`) embeds it so a readiness probe shows the
live admission posture alongside breaker and queue state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import (
    capability_matrix,
    create_engine,
    create_engine_with_fallback,
    engine_spec,
)
from repro.runtime.errors import EngineUnavailable


class AdmissionError(EngineUnavailable):
    """The serving layer refused a session or request."""


@dataclass(frozen=True)
class AdmissionPolicy:
    """What the front door does with requests the engine cannot serve."""

    on_unservable: str = "fallback"
    #: refuse sessions whose widest block exceeds this many qubits,
    #: before any engine capability is even consulted (``None`` = no cap).
    max_qubits: "int | None" = None
    #: refuse single predict() calls with more rows than this.
    max_rows_per_request: "int | None" = None

    def __post_init__(self) -> None:
        if self.on_unservable not in ("fallback", "reject"):
            raise ValueError(
                "on_unservable must be 'fallback' or 'reject', got "
                f"{self.on_unservable!r}"
            )

    def describe(self) -> "dict[str, object]":
        """The policy as a plain dict (health snapshots, logs)."""
        return {
            "on_unservable": self.on_unservable,
            "max_qubits": self.max_qubits,
            "max_rows_per_request": self.max_rows_per_request,
        }

    def admit(self, engine: str, noise_model, *, widest: int, **kwargs):
        """Build the session's executor or raise :class:`AdmissionError`."""
        if self.max_qubits is not None and widest > self.max_qubits:
            raise AdmissionError(
                f"request width {widest} qubits exceeds the front door's "
                f"max_qubits={self.max_qubits} policy"
            )
        if self.on_unservable == "fallback":
            try:
                return create_engine_with_fallback(
                    engine, noise_model, widest=widest, **kwargs
                )
            except EngineUnavailable as exc:
                raise AdmissionError(str(exc)) from exc
        # reject: the named engine serves the request itself or not at all.
        caps = engine_spec(engine).capabilities
        required = (
            noise_model.channel_kinds
            if noise_model is not None
            else frozenset()
        )
        reasons = []
        if required and not required <= caps.channels:
            missing = sorted(required - caps.channels)
            reasons.append(f"cannot represent channel kinds {missing}")
        if caps.max_qubits is not None and widest > caps.max_qubits:
            reasons.append(
                f"width cap {caps.max_qubits} < {widest} qubits"
            )
        if reasons:
            raise AdmissionError(
                f"engine {engine!r} rejected by admission policy "
                "(on_unservable='reject'):\n  "
                + "\n  ".join(reasons)
                + "\n"
                + capability_matrix()
            )
        return create_engine(engine, noise_model, **kwargs)
