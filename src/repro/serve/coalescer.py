"""Cross-request batch coalescing for the asyncio serving layer.

Concurrent ``await session.predict(x)`` calls rarely arrive
pre-stacked, but every engine in this repo is fastest on stacked
sweeps.  The :class:`BatchCoalescer` closes that gap: requests landing
on the same *coalescing key* (same model, weights and engine -- decided
by the caller) are parked in a per-key pending queue and executed as
one stacked sweep when either

* the oldest parked request has waited ``window_s`` seconds (a
  ``loop.call_later`` timer armed when the queue goes non-empty), or
* the queued rows reach ``max_batch`` (overflow flush, no waiting).

A flush concatenates the queued rows *in submission order*, slices one
``execute(key, stacked_rows)`` result back onto the per-request
futures, and packs at request granularity: requests are chunked so no
sweep exceeds ``max_batch`` rows, and only a single request larger than
``max_batch`` on its own is split across sweeps.  Cancelled requests
(deadline hit while parked) are dropped before stacking, so their rows
never execute.

Bounded backpressure: pending rows are capped per key
(``max_pending_rows_per_key``) and server-wide (``max_pending_rows``).
An arrival that would exceed a cap triggers the *load-shedding policy*
(``shed``):

* ``"reject"`` -- refuse the arriving request with a typed
  :class:`~repro.serve.errors.Overloaded` carrying a queue-depth
  snapshot (classic tail-drop);
* ``"oldest"`` -- evict the oldest parked request (head-drop: the
  arrival that has waited longest is the one most likely already
  abandoned) and admit the newcomer;
* ``"newest"`` -- evict the most recently parked request and admit the
  newcomer.

Every request carries a global arrival sequence number and eviction
picks strictly by it (scoped to the violated cap's queue), so shedding
is a **pure function of arrival order** -- the same submission sequence
sheds the same requests on any host, replayable in tests and the chaos
benchmark.  A request wider than a cap on its own is always refused
(no amount of eviction could admit it).

Determinism contract: because rows are stacked in submission order and
``execute`` runs synchronously on the event-loop thread, a flush is
bit-equivalent to one serial ``predict`` call over the identically
ordered stack with the same executor RNG state -- the property
``InferenceServer.verify_flush_log`` replays end-to-end.

Shutdown: :meth:`drain` flushes every parked request then closes;
:meth:`close` cancels the armed window timers and *fails* parked
requests with the provided exception (the server passes
:class:`~repro.serve.errors.ServerClosed`) instead of leaving their
futures unresolved.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.serve.errors import Overloaded, ServerClosed

#: The valid load-shedding policies, in documentation order.
SHED_POLICIES = ("reject", "oldest", "newest")


@dataclass(eq=False)
class _PendingRequest:
    rows: np.ndarray
    future: asyncio.Future
    #: global arrival sequence number; shedding picks strictly by it.
    seq: int = 0


@dataclass
class _KeyQueue:
    pending: "list[_PendingRequest]" = field(default_factory=list)
    n_rows: int = 0
    timer: "asyncio.TimerHandle | None" = None


class BatchCoalescer:
    """Window/size-bounded request coalescing on top of an event loop.

    ``execute(key, stacked_rows)`` is a synchronous callable returning
    one output row per input row; it runs on the event-loop thread, so
    pure-numpy sweeps need no thread handoff (the GIL is released
    inside the C kernels anyway).
    """

    def __init__(
        self,
        execute,
        *,
        window_s: float = 0.002,
        max_batch: int = 64,
        max_pending_rows_per_key: "int | None" = None,
        max_pending_rows: "int | None" = None,
        shed: str = "reject",
    ) -> None:
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if shed not in SHED_POLICIES:
            raise ValueError(
                f"shed must be one of {SHED_POLICIES}, got {shed!r}"
            )
        for name, cap in (
            ("max_pending_rows_per_key", max_pending_rows_per_key),
            ("max_pending_rows", max_pending_rows),
        ):
            if cap is not None and cap < 1:
                raise ValueError(f"{name} must be >= 1 or None, got {cap}")
        self.execute = execute
        self.window_s = window_s
        self.max_batch = max_batch
        self.max_pending_rows_per_key = max_pending_rows_per_key
        self.max_pending_rows = max_pending_rows
        self.shed = shed
        self._queues: "dict[object, _KeyQueue]" = {}
        self._pending_rows = 0
        self._seq = 0
        self._closed = False
        #: requests shed by backpressure (rejected or evicted).
        self.shed_count = 0

    # -- submission --------------------------------------------------------

    def submit(self, key, rows: np.ndarray) -> "asyncio.Future[np.ndarray]":
        """Park ``rows`` (2-D) under ``key``; resolves with their outputs.

        Raises :class:`ServerClosed` after :meth:`close`/:meth:`drain`,
        and :class:`Overloaded` when backpressure refuses the request
        (``shed="reject"``, or a request wider than a cap on its own).
        Under ``shed="oldest"``/``"newest"`` the *evicted* requests'
        futures fail with :class:`Overloaded` instead.
        """
        if self._closed:
            raise ServerClosed(
                "coalescer is closed; no new requests are admitted",
                state="closed",
            )
        loop = asyncio.get_running_loop()
        rows = np.asarray(rows, dtype=float)
        if rows.ndim != 2:
            raise ValueError(f"rows must be 2-D, got shape {rows.shape}")
        self._admit(key, rows.shape[0])
        future: "asyncio.Future[np.ndarray]" = loop.create_future()
        queue = self._queues.setdefault(key, _KeyQueue())
        queue.pending.append(_PendingRequest(rows, future, self._seq))
        self._seq += 1
        queue.n_rows += rows.shape[0]
        self._pending_rows += rows.shape[0]
        if queue.n_rows >= self.max_batch:
            self._flush(key)
        elif queue.timer is None:
            queue.timer = loop.call_later(self.window_s, self._flush, key)
        return future

    @property
    def pending_rows(self) -> int:
        return self._pending_rows

    def pending_rows_for(self, key) -> int:
        """Parked rows under one coalescing key (health snapshots)."""
        queue = self._queues.get(key)
        return 0 if queue is None else queue.n_rows

    # -- backpressure ------------------------------------------------------

    def _overloaded(self, key, n: int, shed: str, what: str) -> Overloaded:
        queue = self._queues.get(key)
        return Overloaded(
            f"{what} ({n} rows; key has "
            f"{0 if queue is None else queue.n_rows} pending rows of "
            f"{self.max_pending_rows_per_key}, server has "
            f"{self._pending_rows} of {self.max_pending_rows}; "
            f"shed policy {shed!r})",
            key=key,
            shed=shed,
            n_rows=n,
            pending_rows_key=0 if queue is None else queue.n_rows,
            pending_rows_total=self._pending_rows,
            max_pending_rows_per_key=self.max_pending_rows_per_key,
            max_pending_rows=self.max_pending_rows,
        )

    def _admit(self, key, n: int) -> None:
        """Enforce the pending-row caps for an ``n``-row arrival.

        Either returns (capacity exists, possibly after deterministic
        eviction) or raises :class:`Overloaded` for the arrival itself.
        """
        cap_key = self.max_pending_rows_per_key
        cap_total = self.max_pending_rows
        if cap_key is None and cap_total is None:
            return
        # A request wider than a cap can never be admitted: no eviction
        # sequence frees enough room, so every policy refuses it.
        if (cap_key is not None and n > cap_key) or (
            cap_total is not None and n > cap_total
        ):
            self.shed_count += 1
            raise self._overloaded(
                key, n, self.shed, "request wider than a pending-row cap"
            )
        while True:
            key_rows = self.pending_rows_for(key)
            key_over = cap_key is not None and key_rows + n > cap_key
            total_over = (
                cap_total is not None and self._pending_rows + n > cap_total
            )
            if not key_over and not total_over:
                return
            if self.shed == "reject":
                self.shed_count += 1
                raise self._overloaded(
                    key, n, "reject", "server overloaded; request rejected"
                )
            # Evict from the violated scope: the arrival's own queue for
            # a per-key violation, any queue for a server-wide one.
            scope = key if key_over else None
            victim_key, victim = self._pick_victim(scope)
            if victim is None:  # pragma: no cover - caps checked above
                self.shed_count += 1
                raise self._overloaded(
                    key, n, self.shed, "server overloaded; nothing to evict"
                )
            self._evict(victim_key, victim)

    def _pick_victim(self, scope) -> "tuple[object, _PendingRequest | None]":
        """The parked request the shed policy sacrifices.

        ``scope=None`` searches every queue (server-wide cap); a key
        scopes the search to that queue.  ``"oldest"`` picks the lowest
        arrival sequence number, ``"newest"`` the highest -- both are
        pure functions of arrival order, independent of dict ordering.
        """
        keys = [scope] if scope is not None else list(self._queues)
        best_key, best = None, None
        for k in keys:
            queue = self._queues.get(k)
            if queue is None or not queue.pending:
                continue
            candidate = (
                queue.pending[0] if self.shed == "oldest"
                else queue.pending[-1]
            )
            if best is None or (
                candidate.seq < best.seq
                if self.shed == "oldest"
                else candidate.seq > best.seq
            ):
                best_key, best = k, candidate
        return best_key, best

    def _evict(self, key, victim: _PendingRequest) -> None:
        queue = self._queues[key]
        queue.pending.remove(victim)
        queue.n_rows -= victim.rows.shape[0]
        self._pending_rows -= victim.rows.shape[0]
        if not queue.pending and queue.timer is not None:
            queue.timer.cancel()
            queue.timer = None
        if not victim.future.done():
            self.shed_count += 1
            victim.future.set_exception(
                self._overloaded(
                    key,
                    victim.rows.shape[0],
                    self.shed,
                    "shed while parked to admit newer traffic",
                )
            )

    # -- flushing ----------------------------------------------------------

    def _flush(self, key) -> None:
        queue = self._queues.get(key)
        if queue is None:
            return
        if queue.timer is not None:
            queue.timer.cancel()
            queue.timer = None
        pending = [p for p in queue.pending if not p.future.cancelled()]
        self._pending_rows -= queue.n_rows
        queue.pending.clear()
        queue.n_rows = 0
        for chunk in self._pack(pending):
            self._run_chunk(key, chunk)

    def _pack(
        self, pending: "list[_PendingRequest]"
    ) -> "list[list[_PendingRequest]]":
        """Chunk requests so no sweep exceeds ``max_batch`` rows.

        Request granularity: a request only splits across sweeps when it
        alone exceeds ``max_batch`` (then it splits by rows).
        """
        chunks: "list[list[_PendingRequest]]" = []
        current: "list[_PendingRequest]" = []
        current_rows = 0
        for req in pending:
            n = req.rows.shape[0]
            if n > self.max_batch and not current:
                chunks.append([req])
                continue
            if current_rows + n > self.max_batch and current:
                chunks.append(current)
                current, current_rows = [], 0
            if n > self.max_batch:
                chunks.append([req])
                continue
            current.append(req)
            current_rows += n
        if current:
            chunks.append(current)
        return chunks

    def _run_chunk(self, key, chunk: "list[_PendingRequest]") -> None:
        if len(chunk) == 1 and chunk[0].rows.shape[0] > self.max_batch:
            self._run_oversized(key, chunk[0])
            return
        stacked = np.concatenate([req.rows for req in chunk], axis=0)
        try:
            outputs = self.execute(key, stacked)
        except Exception as exc:
            for req in chunk:
                if not req.future.done():
                    req.future.set_exception(exc)
            return
        offset = 0
        for req in chunk:
            n = req.rows.shape[0]
            if not req.future.done():
                req.future.set_result(outputs[offset : offset + n])
            offset += n

    def _run_oversized(self, key, req: _PendingRequest) -> None:
        """One request wider than ``max_batch``: sweep it in row slabs."""
        parts: "list[np.ndarray]" = []
        try:
            for start in range(0, req.rows.shape[0], self.max_batch):
                parts.append(
                    self.execute(key, req.rows[start : start + self.max_batch])
                )
        except Exception as exc:
            if not req.future.done():
                req.future.set_exception(exc)
            return
        if not req.future.done():
            req.future.set_result(np.concatenate(parts, axis=0))

    def flush_all(self) -> None:
        """Flush every key now (drain / test determinism)."""
        for key in list(self._queues):
            self._flush(key)

    # -- shutdown ----------------------------------------------------------

    def drain(self, exc: "Exception | None" = None) -> None:
        """Graceful shutdown: flush parked work, then :meth:`close`.

        Every parked request executes (one last sweep per key) before
        the coalescer stops admitting; ``exc`` fails any straggler a
        flush somehow left unresolved (defensive -- flushes resolve
        every non-cancelled future).
        """
        self.flush_all()
        self.close(exc)

    def close(self, exc: "Exception | None" = None) -> None:
        """Abrupt shutdown: cancel armed window timers and fail parked
        requests.

        Parked futures get ``exc`` (the server passes a typed
        :class:`ServerClosed`) or are cancelled when ``exc`` is None --
        either way nothing is left unresolved and no ``call_later``
        timer stays armed on the loop.  Idempotent.
        """
        self._closed = True
        for queue in self._queues.values():
            if queue.timer is not None:
                queue.timer.cancel()
                queue.timer = None
            for req in queue.pending:
                if req.future.done():
                    continue
                if exc is not None:
                    req.future.set_exception(exc)
                else:
                    req.future.cancel()
        self._queues.clear()
        self._pending_rows = 0
