"""Cross-request batch coalescing for the asyncio serving layer.

Concurrent ``await session.predict(x)`` calls rarely arrive
pre-stacked, but every engine in this repo is fastest on stacked
sweeps.  The :class:`BatchCoalescer` closes that gap: requests landing
on the same *coalescing key* (same model, weights and engine -- decided
by the caller) are parked in a per-key pending queue and executed as
one stacked sweep when either

* the oldest parked request has waited ``window_s`` seconds (a
  ``loop.call_later`` timer armed when the queue goes non-empty), or
* the queued rows reach ``max_batch`` (overflow flush, no waiting).

A flush concatenates the queued rows *in submission order*, slices one
``execute(key, stacked_rows)`` result back onto the per-request
futures, and packs at request granularity: requests are chunked so no
sweep exceeds ``max_batch`` rows, and only a single request larger than
``max_batch`` on its own is split across sweeps.  Cancelled requests
(deadline hit while parked) are dropped before stacking, so their rows
never execute.

Determinism contract: because rows are stacked in submission order and
``execute`` runs synchronously on the event-loop thread, a flush is
bit-equivalent to one serial ``predict`` call over the identically
ordered stack with the same executor RNG state -- the property
``InferenceServer.verify_flush_log`` replays end-to-end.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np


@dataclass
class _PendingRequest:
    rows: np.ndarray
    future: asyncio.Future


@dataclass
class _KeyQueue:
    pending: "list[_PendingRequest]" = field(default_factory=list)
    n_rows: int = 0
    timer: "asyncio.TimerHandle | None" = None


class BatchCoalescer:
    """Window/size-bounded request coalescing on top of an event loop.

    ``execute(key, stacked_rows)`` is a synchronous callable returning
    one output row per input row; it runs on the event-loop thread, so
    pure-numpy sweeps need no thread handoff (the GIL is released
    inside the C kernels anyway).
    """

    def __init__(
        self,
        execute,
        *,
        window_s: float = 0.002,
        max_batch: int = 64,
    ) -> None:
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.execute = execute
        self.window_s = window_s
        self.max_batch = max_batch
        self._queues: "dict[object, _KeyQueue]" = {}

    # -- submission --------------------------------------------------------

    def submit(self, key, rows: np.ndarray) -> "asyncio.Future[np.ndarray]":
        """Park ``rows`` (2-D) under ``key``; resolves with their outputs."""
        loop = asyncio.get_running_loop()
        rows = np.asarray(rows, dtype=float)
        if rows.ndim != 2:
            raise ValueError(f"rows must be 2-D, got shape {rows.shape}")
        future: "asyncio.Future[np.ndarray]" = loop.create_future()
        queue = self._queues.setdefault(key, _KeyQueue())
        queue.pending.append(_PendingRequest(rows, future))
        queue.n_rows += rows.shape[0]
        if queue.n_rows >= self.max_batch:
            self._flush(key)
        elif queue.timer is None:
            queue.timer = loop.call_later(self.window_s, self._flush, key)
        return future

    @property
    def pending_rows(self) -> int:
        return sum(q.n_rows for q in self._queues.values())

    # -- flushing ----------------------------------------------------------

    def _flush(self, key) -> None:
        queue = self._queues.get(key)
        if queue is None:
            return
        if queue.timer is not None:
            queue.timer.cancel()
            queue.timer = None
        pending = [p for p in queue.pending if not p.future.cancelled()]
        queue.pending.clear()
        queue.n_rows = 0
        for chunk in self._pack(pending):
            self._run_chunk(key, chunk)

    def _pack(
        self, pending: "list[_PendingRequest]"
    ) -> "list[list[_PendingRequest]]":
        """Chunk requests so no sweep exceeds ``max_batch`` rows.

        Request granularity: a request only splits across sweeps when it
        alone exceeds ``max_batch`` (then it splits by rows).
        """
        chunks: "list[list[_PendingRequest]]" = []
        current: "list[_PendingRequest]" = []
        current_rows = 0
        for req in pending:
            n = req.rows.shape[0]
            if n > self.max_batch and not current:
                chunks.append([req])
                continue
            if current_rows + n > self.max_batch and current:
                chunks.append(current)
                current, current_rows = [], 0
            if n > self.max_batch:
                chunks.append([req])
                continue
            current.append(req)
            current_rows += n
        if current:
            chunks.append(current)
        return chunks

    def _run_chunk(self, key, chunk: "list[_PendingRequest]") -> None:
        if len(chunk) == 1 and chunk[0].rows.shape[0] > self.max_batch:
            self._run_oversized(key, chunk[0])
            return
        stacked = np.concatenate([req.rows for req in chunk], axis=0)
        try:
            outputs = self.execute(key, stacked)
        except Exception as exc:
            for req in chunk:
                if not req.future.done():
                    req.future.set_exception(exc)
            return
        offset = 0
        for req in chunk:
            n = req.rows.shape[0]
            if not req.future.done():
                req.future.set_result(outputs[offset : offset + n])
            offset += n

    def _run_oversized(self, key, req: _PendingRequest) -> None:
        """One request wider than ``max_batch``: sweep it in row slabs."""
        parts: "list[np.ndarray]" = []
        try:
            for start in range(0, req.rows.shape[0], self.max_batch):
                parts.append(
                    self.execute(key, req.rows[start : start + self.max_batch])
                )
        except Exception as exc:
            if not req.future.done():
                req.future.set_exception(exc)
            return
        if not req.future.done():
            req.future.set_result(np.concatenate(parts, axis=0))

    def flush_all(self) -> None:
        """Flush every key now (shutdown / test determinism)."""
        for key in list(self._queues):
            self._flush(key)

    def close(self) -> None:
        """Flush pending work and cancel any armed timers."""
        self.flush_all()
        for queue in self._queues.values():
            if queue.timer is not None:
                queue.timer.cancel()
                queue.timer = None
        self._queues.clear()
