"""Batch-coalescing async serving layer over the engine registry.

Production traffic arrives one request at a time; every engine in this
repo is fastest on stacked sweeps.  This package is the front door that
reconciles the two::

    from repro.serve import InferenceServer, ServeConfig

    server = InferenceServer(ServeConfig(window_s=0.002, max_batch=64))
    session = server.session(model, weights, engine="density", rng=0)
    logits = await session.predict(x)          # coalesced across users

Concurrent ``predict`` calls landing on the same (model, weights,
engine) triple within the window execute as *one* stacked sweep on the
existing compiled-plan caches, bit-equivalent to the serial call each
user would have made (``InferenceServer.verify_flush_log`` replays the
proof).  Admission control routes or rejects unservable requests via
the registry's capability declarations, and deadlines/supervision reuse
the fault-tolerant runtime.

The front door is also hardened (PR 8): bounded backpressure with a
deterministic load-shedding policy (typed :class:`Overloaded`),
per-endpoint circuit breakers over the runtime failure taxonomy
(:class:`CircuitBreaker`, typed :class:`CircuitOpen`, optional reroute
through the engine fallback chain), graceful drain with typed
:class:`ServerClosed` for stragglers, and readiness/health snapshots
(:class:`HealthSnapshot`).  Every refusal subclasses
:class:`~repro.runtime.errors.RuntimeFault`, so one ``except`` covers
front-door refusals and execution faults alike.
"""

from repro.serve.admission import AdmissionError, AdmissionPolicy
from repro.serve.breaker import BreakerConfig, CircuitBreaker, TickClock
from repro.serve.coalescer import SHED_POLICIES, BatchCoalescer
from repro.serve.errors import CircuitOpen, Overloaded, ServerClosed
from repro.serve.health import EndpointHealth, HealthSnapshot, health_snapshot
from repro.serve.metrics import LatencyReservoir, ServeMetrics
from repro.serve.session import (
    DeadlineExceeded,
    InferenceServer,
    ServeConfig,
    Session,
)

__all__ = [
    "SHED_POLICIES",
    "AdmissionError",
    "AdmissionPolicy",
    "BatchCoalescer",
    "BreakerConfig",
    "CircuitBreaker",
    "CircuitOpen",
    "DeadlineExceeded",
    "EndpointHealth",
    "HealthSnapshot",
    "InferenceServer",
    "LatencyReservoir",
    "Overloaded",
    "ServeConfig",
    "ServeMetrics",
    "ServerClosed",
    "Session",
    "TickClock",
    "health_snapshot",
]
