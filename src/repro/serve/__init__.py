"""Batch-coalescing async serving layer over the engine registry.

Production traffic arrives one request at a time; every engine in this
repo is fastest on stacked sweeps.  This package is the front door that
reconciles the two::

    from repro.serve import InferenceServer, ServeConfig

    server = InferenceServer(ServeConfig(window_s=0.002, max_batch=64))
    session = server.session(model, weights, engine="density", rng=0)
    logits = await session.predict(x)          # coalesced across users

Concurrent ``predict`` calls landing on the same (model, weights,
engine) triple within the window execute as *one* stacked sweep on the
existing compiled-plan caches, bit-equivalent to the serial call each
user would have made (``InferenceServer.verify_flush_log`` replays the
proof).  Admission control routes or rejects unservable requests via
the registry's capability declarations, and deadlines/supervision reuse
the fault-tolerant runtime.
"""

from repro.serve.admission import AdmissionError, AdmissionPolicy
from repro.serve.coalescer import BatchCoalescer
from repro.serve.metrics import ServeMetrics
from repro.serve.session import (
    DeadlineExceeded,
    InferenceServer,
    ServeConfig,
    Session,
)

__all__ = [
    "AdmissionError",
    "AdmissionPolicy",
    "BatchCoalescer",
    "DeadlineExceeded",
    "InferenceServer",
    "ServeConfig",
    "ServeMetrics",
    "Session",
]
