"""Serving-side metrics: request latency and coalescing efficiency.

The serving layer's whole value proposition is a ratio -- requests
arriving one at a time, sweeps executing many at a time -- so the
metrics object tracks both sides: per-request wall-clock latency
(recorded by the session when its awaited future resolves) and
per-flush batch sizes (recorded by the server when a coalesced sweep
executes).  ``snapshot()`` reduces them to the numbers the load-test
harness publishes into ``BENCH_engine.json``: p50/p99 latency,
requests/sec and mean coalesced batch size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ServeMetrics:
    """Mutable counters for one :class:`~repro.serve.InferenceServer`."""

    #: wall-clock seconds from submit to result, one entry per request.
    latencies_s: "list[float]" = field(default_factory=list)
    #: rows executed per coalesced flush, one entry per sweep.
    flush_sizes: "list[int]" = field(default_factory=list)
    #: requests rejected by admission control.
    rejected: int = 0
    #: requests that missed their deadline.
    deadline_misses: int = 0

    @property
    def requests(self) -> int:
        return len(self.latencies_s)

    @property
    def flushes(self) -> int:
        return len(self.flush_sizes)

    def record_latency(self, seconds: float) -> None:
        self.latencies_s.append(seconds)

    def record_flush(self, n_rows: int) -> None:
        self.flush_sizes.append(n_rows)

    def snapshot(self, elapsed_s: "float | None" = None) -> "dict[str, float]":
        """Summary statistics; ``elapsed_s`` enables the throughput rate."""
        out: "dict[str, float]" = {
            "requests": float(self.requests),
            "flushes": float(self.flushes),
            "rejected": float(self.rejected),
            "deadline_misses": float(self.deadline_misses),
        }
        if self.latencies_s:
            lat = np.asarray(self.latencies_s)
            out["p50_ms"] = float(np.percentile(lat, 50) * 1e3)
            out["p99_ms"] = float(np.percentile(lat, 99) * 1e3)
            out["mean_ms"] = float(lat.mean() * 1e3)
        if self.flush_sizes:
            out["mean_batch"] = float(np.mean(self.flush_sizes))
            out["max_batch"] = float(np.max(self.flush_sizes))
        if elapsed_s and self.requests:
            out["requests_per_s"] = self.requests / elapsed_s
        return out

    def reset(self) -> None:
        self.latencies_s.clear()
        self.flush_sizes.clear()
        self.rejected = 0
        self.deadline_misses = 0
