"""Serving-side metrics: request latency and coalescing efficiency.

The serving layer's whole value proposition is a ratio -- requests
arriving one at a time, sweeps executing many at a time -- so the
metrics object tracks both sides: per-request wall-clock latency
(recorded by the session when its awaited future resolves) and
per-flush batch sizes (recorded by the server when a coalesced sweep
executes).  ``snapshot()`` reduces them to the numbers the load-test
harness publishes into ``BENCH_engine.json``: p50/p99 latency,
requests/sec and mean coalesced batch size.

Storage is **bounded**: a long-lived server must not grow a Python
list by one float per request forever.  Latencies and flush sizes go
through a :class:`LatencyReservoir` -- a deterministic, seed-free
stride-doubling reservoir.  It keeps every sample until ``capacity``,
then decimates to every 2nd, 4th, 8th, ... arrival, so memory is
``O(capacity)`` while the kept samples remain an evenly spaced (hence
quantile-faithful) subsample of the stream.  Unlike the classic
random-replacement reservoir there is no RNG: the kept set is a pure
function of arrival order, so two identical runs snapshot identical
percentiles.  Exact aggregates (count, sum/mean, max) are tracked as
running counters and never lose precision.

Resilience counters added with the PR-8 front-door hardening:
``shed`` (requests refused or evicted by backpressure),
``breaker_rejections`` (flushes refused by an open circuit breaker),
``breaker_fallback_flushes`` (flushes rerouted through the engine
fallback chain by an open breaker) and ``flush_failures`` (flush
sweeps that raised, after any supervision/retry).
"""

from __future__ import annotations

import numpy as np


class LatencyReservoir:
    """Bounded, deterministic, seed-free sample store.

    Keeps arrivals whose index satisfies ``index % stride == 0``.  The
    stride starts at 1 (keep everything); whenever the kept set reaches
    ``capacity`` it is decimated to every second sample and the stride
    doubles.  The kept set is therefore always an evenly spaced
    subsample of the full stream -- order statistics (p50/p99) computed
    from it converge to the stream's, with no randomness anywhere.
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.capacity = int(capacity)
        self._samples: "list[float]" = []
        self._stride = 1
        self._count = 0

    def record(self, value: float) -> None:
        if self._count % self._stride == 0:
            self._samples.append(float(value))
            if len(self._samples) >= self.capacity:
                self._samples = self._samples[::2]
                self._stride *= 2
        self._count += 1

    @property
    def samples(self) -> "list[float]":
        """The kept (evenly spaced) samples, in arrival order."""
        return list(self._samples)

    @property
    def count(self) -> int:
        """Total values ever recorded (not just kept)."""
        return self._count

    @property
    def stride(self) -> int:
        """Current keep-every-Nth stride (1 until first decimation)."""
        return self._stride

    def __len__(self) -> int:
        return len(self._samples)

    def clear(self) -> None:
        self._samples.clear()
        self._stride = 1
        self._count = 0


class ServeMetrics:
    """Mutable counters for one :class:`~repro.serve.InferenceServer`.

    Exact counts/sums/maxima are running scalars; the per-sample
    streams behind ``latencies_s`` / ``flush_sizes`` are bounded
    reservoirs (see :class:`LatencyReservoir`), so a server can run
    indefinitely without metrics growth.
    """

    def __init__(self, reservoir_capacity: int = 2048) -> None:
        self._latencies = LatencyReservoir(reservoir_capacity)
        self._flush_rows = LatencyReservoir(reservoir_capacity)
        self._latency_sum = 0.0
        self._flush_rows_sum = 0
        self._flush_rows_max = 0
        #: requests rejected by admission control.
        self.rejected = 0
        #: requests that missed their deadline.
        self.deadline_misses = 0
        #: requests shed by backpressure (rejected or evicted).
        self.shed = 0
        #: flushes refused by an open circuit breaker.
        self.breaker_rejections = 0
        #: flushes rerouted through the engine fallback chain by an
        #: open breaker.
        self.breaker_fallback_flushes = 0
        #: flush sweeps that raised (after supervision/retry, if any).
        self.flush_failures = 0

    # -- bounded sample views ----------------------------------------------

    @property
    def latencies_s(self) -> "list[float]":
        """Kept latency samples, seconds (evenly spaced subsample)."""
        return self._latencies.samples

    @property
    def flush_sizes(self) -> "list[int]":
        """Kept rows-per-flush samples (evenly spaced subsample)."""
        return [int(v) for v in self._flush_rows.samples]

    @property
    def requests(self) -> int:
        return self._latencies.count

    @property
    def flushes(self) -> int:
        return self._flush_rows.count

    # -- recording ---------------------------------------------------------

    def record_latency(self, seconds: float) -> None:
        self._latencies.record(seconds)
        self._latency_sum += seconds

    def record_flush(self, n_rows: int) -> None:
        self._flush_rows.record(n_rows)
        self._flush_rows_sum += n_rows
        self._flush_rows_max = max(self._flush_rows_max, n_rows)

    def snapshot(self, elapsed_s: "float | None" = None) -> "dict[str, float]":
        """Summary statistics; ``elapsed_s`` enables the throughput rate.

        Counts, means and maxima are exact (running scalars); p50/p99
        come from the bounded reservoir, hence are exact until the
        first decimation and quantile-faithful after it.
        """
        out: "dict[str, float]" = {
            "requests": float(self.requests),
            "flushes": float(self.flushes),
            "rejected": float(self.rejected),
            "deadline_misses": float(self.deadline_misses),
            "shed": float(self.shed),
            "breaker_rejections": float(self.breaker_rejections),
            "breaker_fallback_flushes": float(self.breaker_fallback_flushes),
            "flush_failures": float(self.flush_failures),
        }
        lat = self._latencies.samples
        if lat:
            arr = np.asarray(lat)
            out["p50_ms"] = float(np.percentile(arr, 50) * 1e3)
            out["p99_ms"] = float(np.percentile(arr, 99) * 1e3)
            out["mean_ms"] = float(self._latency_sum / self.requests * 1e3)
        if self.flushes:
            out["mean_batch"] = float(self._flush_rows_sum / self.flushes)
            out["max_batch"] = float(self._flush_rows_max)
        if elapsed_s and self.requests:
            out["requests_per_s"] = self.requests / elapsed_s
        return out

    def reset(self) -> None:
        self._latencies.clear()
        self._flush_rows.clear()
        self._latency_sum = 0.0
        self._flush_rows_sum = 0
        self._flush_rows_max = 0
        self.rejected = 0
        self.deadline_misses = 0
        self.shed = 0
        self.breaker_rejections = 0
        self.breaker_fallback_flushes = 0
        self.flush_failures = 0
