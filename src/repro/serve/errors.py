"""Typed serving-layer failures: the front door's refusal vocabulary.

The execution layer's failure taxonomy (:mod:`repro.runtime.errors`)
types what goes wrong *inside* a sweep; this module types what the
serving layer itself does to a request before or instead of executing
it.  All three subclass :class:`~repro.runtime.errors.RuntimeFault`, so
a caller catching the runtime taxonomy's base class sees serving-layer
refusals too, and each carries enough structured state to act on:

* :class:`Overloaded` -- bounded backpressure shed this request (or
  refused it at the door).  Carries a queue-depth snapshot taken at the
  shed decision, so the caller can see exactly how full the server was
  and which cap was hit.  Shedding is a pure function of arrival order
  (see :class:`~repro.serve.coalescer.BatchCoalescer`), so the same
  arrival sequence always sheds the same requests.
* :class:`CircuitOpen` -- the request's endpoint breaker is open: the
  endpoint's engine kept failing and the breaker stopped routing flushes
  to it.  Carries the breaker's state snapshot (consecutive failures,
  the terminal failure, cooldown) so callers can back off intelligently.
* :class:`ServerClosed` -- the server is draining or closed; no new work
  is admitted, and parked requests failed by an abrupt ``close()`` carry
  this instead of hanging forever (``Session.predict`` on a closed
  server was previously undefined).
"""

from __future__ import annotations

from repro.runtime.errors import RuntimeFault

__all__ = ["CircuitOpen", "Overloaded", "ServerClosed"]


class Overloaded(RuntimeFault):
    """Backpressure shed this request (or refused it on arrival).

    ``shed`` is the policy that made the decision (``"reject"``,
    ``"oldest"``, ``"newest"``); the remaining fields snapshot the queue
    depths *at the moment of the decision*: ``n_rows`` is the shed
    request's own width, ``pending_rows_key``/``pending_rows_total`` the
    parked rows under the request's key and server-wide, and the two
    ``max_*`` fields the configured caps (``None`` = unbounded).
    """

    def __init__(
        self,
        message: str,
        *,
        key=None,
        shed: str = "reject",
        n_rows: int = 0,
        pending_rows_key: int = 0,
        pending_rows_total: int = 0,
        max_pending_rows_per_key: "int | None" = None,
        max_pending_rows: "int | None" = None,
    ):
        super().__init__(message)
        self.key = key
        self.shed = shed
        self.n_rows = int(n_rows)
        self.pending_rows_key = int(pending_rows_key)
        self.pending_rows_total = int(pending_rows_total)
        self.max_pending_rows_per_key = max_pending_rows_per_key
        self.max_pending_rows = max_pending_rows

    def snapshot(self) -> "dict[str, object]":
        """The queue-depth snapshot as a plain dict (logging/metrics)."""
        return {
            "shed": self.shed,
            "n_rows": self.n_rows,
            "pending_rows_key": self.pending_rows_key,
            "pending_rows_total": self.pending_rows_total,
            "max_pending_rows_per_key": self.max_pending_rows_per_key,
            "max_pending_rows": self.max_pending_rows,
        }


class CircuitOpen(RuntimeFault):
    """The endpoint's circuit breaker is open; the flush was not routed.

    ``endpoint`` is the endpoint's stable label, ``consecutive_failures``
    and ``last_failure`` describe what tripped it, and ``cooldown_s`` is
    the configured open-state dwell before the next half-open probe.
    """

    def __init__(
        self,
        message: str,
        *,
        endpoint: str = "",
        consecutive_failures: int = 0,
        last_failure: "str | None" = None,
        cooldown_s: float = 0.0,
    ):
        super().__init__(message)
        self.endpoint = endpoint
        self.consecutive_failures = int(consecutive_failures)
        self.last_failure = last_failure
        self.cooldown_s = float(cooldown_s)


class ServerClosed(RuntimeFault):
    """The server is draining or closed; the request was not admitted.

    ``state`` is the server state at refusal time (``"draining"`` or
    ``"closed"``).
    """

    def __init__(self, message: str, *, state: str = "closed"):
        super().__init__(message)
        self.state = state
