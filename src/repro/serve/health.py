"""Readiness and health snapshots for the serving layer.

Operating a front door needs one cheap, side-effect-free question
answered constantly: *should this server receive traffic, and if not,
why not?*  :func:`health_snapshot` folds the server's lifecycle state,
the coalescer's live queue depths, the resilience counters and every
endpoint's circuit-breaker status into one frozen
:class:`HealthSnapshot`:

* ``status="ready"``     -- serving, all breakers closed, no endpoint
  degraded: route traffic here.
* ``status="degraded"``  -- still serving, but at least one endpoint's
  breaker is open/half-open or rerouting through a fallback engine:
  traffic is accepted but some of it will be refused or served by a
  lesser backend.
* ``status="draining"``  -- :meth:`~repro.serve.InferenceServer.drain`
  in progress: stop sending new traffic, parked work is completing.
* ``status="closed"``    -- drained or closed: nothing is admitted.

Everything is a plain value snapshot (no live references), so health
payloads are safe to serialize into logs or a readiness probe; and
because every input is deterministic under the chaos harness, the same
seeded run produces the same health trajectory on any host.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["EndpointHealth", "HealthSnapshot", "health_snapshot"]


@dataclass(frozen=True)
class EndpointHealth:
    """One endpoint's health: breaker state and flush history."""

    #: stable label (``serve:<engine>:<weights-digest>``).
    endpoint: str
    #: registry engine name the endpoint was opened with.
    engine: str
    #: parked rows currently queued under this endpoint's key.
    pending_rows: int
    #: flushes executed so far (primary and fallback).
    flushes: int
    #: ``"closed"`` / ``"open"`` / ``"half_open"``, or ``"none"`` when
    #: the server runs without breakers.
    breaker_state: str
    consecutive_failures: int
    #: lifetime open transitions of this endpoint's breaker.
    trips: int
    #: the failure that last advanced the breaker, if any.
    last_failure: "str | None"
    #: True when an open breaker has rerouted flushes to a fallback
    #: engine (the endpoint serves, on a lesser backend).
    degraded: bool

    @property
    def healthy(self) -> bool:
        return self.breaker_state in ("closed", "none") and not self.degraded


@dataclass(frozen=True)
class HealthSnapshot:
    """Whole-server readiness: lifecycle, queues, endpoints, counters."""

    #: ``"ready"`` / ``"degraded"`` / ``"draining"`` / ``"closed"``.
    status: str
    #: raw lifecycle state (``"serving"``/``"draining"``/``"closed"``).
    state: str
    #: parked rows across every coalescing key.
    pending_rows: int
    #: configured caps (``None`` = unbounded) and shed policy.
    max_pending_rows_per_key: "int | None"
    max_pending_rows: "int | None"
    shed_policy: str
    #: resilience counters (cumulative).
    shed: int
    breaker_rejections: int
    breaker_fallback_flushes: int
    flush_failures: int
    deadline_misses: int
    rejected: int
    #: the admission policy, rendered by ``AdmissionPolicy.describe()``.
    admission: "dict[str, object]"
    #: per-endpoint health, in endpoint-creation order.
    endpoints: "tuple[EndpointHealth, ...]"

    @property
    def ready(self) -> bool:
        """Route new traffic here?  (Degraded still accepts traffic.)"""
        return self.status in ("ready", "degraded")

    def to_dict(self) -> "dict[str, object]":
        """Plain-value payload for logs / readiness probes."""
        return asdict(self)


def health_snapshot(server) -> HealthSnapshot:
    """Snapshot an :class:`~repro.serve.InferenceServer`'s health now."""
    endpoints = []
    for key, ep in server._endpoints.items():
        br = ep.breaker
        endpoints.append(
            EndpointHealth(
                endpoint=ep.chaos_label,
                engine=ep.engine,
                pending_rows=server.coalescer.pending_rows_for(key),
                flushes=ep.flush_index,
                breaker_state="none" if br is None else br.state,
                consecutive_failures=0 if br is None else br.consecutive_failures,
                trips=0 if br is None else br.trips,
                last_failure=None if br is None else br.last_failure,
                degraded=ep.fallback_executor is not None,
            )
        )
    state = server.state
    if state == "closed":
        status = "closed"
    elif state == "draining":
        status = "draining"
    elif any(not ep.healthy for ep in endpoints):
        status = "degraded"
    else:
        status = "ready"
    metrics = server.metrics
    return HealthSnapshot(
        status=status,
        state=state,
        pending_rows=server.coalescer.pending_rows,
        max_pending_rows_per_key=server.coalescer.max_pending_rows_per_key,
        max_pending_rows=server.coalescer.max_pending_rows,
        shed_policy=server.coalescer.shed,
        shed=metrics.shed,
        breaker_rejections=metrics.breaker_rejections,
        breaker_fallback_flushes=metrics.breaker_fallback_flushes,
        flush_failures=metrics.flush_failures,
        deadline_misses=metrics.deadline_misses,
        rejected=metrics.rejected,
        admission=server.config.admission.describe(),
        endpoints=tuple(endpoints),
    )
