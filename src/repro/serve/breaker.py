"""Per-endpoint circuit breakers for the serving layer.

An endpoint whose engine keeps failing (supervised flushes exhausting
their retry budget, workers crashing, the engine raising outright) must
stop receiving traffic: every flush routed to it burns a whole window of
coalesced requests, and PR-6's retry machinery only helps with
*transient* faults.  :class:`CircuitBreaker` is the classic three-state
machine, driven by the PR-6 failure taxonomy:

* **closed** -- flushes flow normally.  Each failure whose type matches
  ``BreakerConfig.trip_on`` (default: any
  :class:`~repro.runtime.errors.RuntimeFault`, which covers
  ``RetryExhausted``, ``WorkerCrash`` and every other typed engine
  fault) increments a consecutive-failure counter; reaching
  ``failure_threshold`` trips the breaker open.  Any success resets the
  counter.
* **open** -- flushes are not routed to the endpoint's engine.  What
  happens instead is policy (``on_open``): ``"reject"`` fails the
  flush's requests with a typed :class:`~repro.serve.errors.CircuitOpen`
  carrying the breaker snapshot; ``"fallback"`` reroutes the flush
  through the registry's engine fallback chain
  (:func:`~repro.core.engine.create_engine_with_fallback`) under a
  :class:`~repro.runtime.errors.DegradedExecution` warning.
* **half-open** -- after ``cooldown_s`` on the breaker's clock, the next
  flush is readmitted to the primary engine as a *probe* -- exactly one
  at a time.  A successful probe closes the breaker; a failed one
  re-opens it with a fresh cooldown.

Determinism: the breaker never consults wall-clock time directly -- it
calls ``BreakerConfig.clock``, which defaults to ``time.monotonic`` but
can be any monotone callable.  :class:`TickClock` advances one tick per
call, making cooldowns count *breaker decisions* instead of seconds:
``cooldown_s=3`` with a :class:`TickClock` means "probe after 3 rejected
flushes", a pure function of the flush sequence, replayable in tests and
the ``serve_chaos_goodput`` benchmark on any machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.runtime.errors import RuntimeFault
from repro.serve.errors import CircuitOpen

__all__ = ["BreakerConfig", "CircuitBreaker", "CircuitOpen", "TickClock"]


class TickClock:
    """A deterministic clock: each call advances exactly one tick.

    With this as ``BreakerConfig.clock``, cooldowns are measured in
    breaker decisions rather than seconds -- the open->half-open
    transition becomes a pure function of the flush sequence, so chaos
    tests and the goodput benchmark replay identically on any host.
    """

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/recovery policy for one endpoint's circuit breaker."""

    #: consecutive counted failures that trip the breaker open.
    failure_threshold: int = 3
    #: clock units the breaker stays open before a half-open probe.
    cooldown_s: float = 1.0
    #: what an open breaker does with a flush: fail it with
    #: :class:`CircuitOpen` (``"reject"``) or reroute it through the
    #: engine fallback chain (``"fallback"``).
    on_open: str = "reject"
    #: exception types counted toward tripping; anything else is
    #: reported but leaves the state machine untouched.
    trip_on: "tuple[type, ...]" = (RuntimeFault,)
    #: time source; swap in :class:`TickClock` for deterministic tests.
    clock: object = field(default=time.monotonic)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_s < 0:
            raise ValueError(
                f"cooldown_s must be >= 0, got {self.cooldown_s}"
            )
        if self.on_open not in ("reject", "fallback"):
            raise ValueError(
                "on_open must be 'reject' or 'fallback', got "
                f"{self.on_open!r}"
            )


class CircuitBreaker:
    """The three-state (closed / open / half-open) breaker machine.

    One instance guards one endpoint.  The serving layer calls
    :meth:`before_flush` ahead of every flush and feeds the outcome back
    through :meth:`record_success` / :meth:`record_failure`; flush
    execution is synchronous on the event-loop thread, so a half-open
    probe always resolves before the next flush asks -- "one flush at a
    time" holds by construction.
    """

    def __init__(self, config: "BreakerConfig | None" = None) -> None:
        self.config = config or BreakerConfig()
        self.state = "closed"
        self.consecutive_failures = 0
        self.last_failure: "str | None" = None
        self.opened_at: "float | None" = None
        #: lifetime counters (health/metrics).
        self.trips = 0
        self.probes = 0
        self.successes = 0
        self.failures = 0

    # -- routing decision ---------------------------------------------------

    def before_flush(self) -> str:
        """Route the next flush: ``"closed"``, ``"probe"`` or ``"open"``.

        ``"closed"`` and ``"probe"`` both mean "run on the primary
        engine" (a probe is the half-open readmission); ``"open"`` means
        the caller must apply ``config.on_open`` instead.
        """
        if self.state == "closed":
            return "closed"
        if self.state == "open":
            elapsed = self.config.clock() - self.opened_at
            if elapsed >= self.config.cooldown_s:
                self.state = "half_open"
                self.probes += 1
                return "probe"
            return "open"
        # half_open: the prior probe's outcome was never recorded (the
        # flush was skipped); re-admit one probe rather than wedging.
        self.probes += 1
        return "probe"

    def reject(self, endpoint: str = "") -> CircuitOpen:
        """The typed refusal an open breaker fails a flush with."""
        return CircuitOpen(
            f"endpoint {endpoint or '<unnamed>'} breaker is open after "
            f"{self.consecutive_failures} consecutive engine faults "
            f"(last: {self.last_failure}); next probe in "
            f"{self.config.cooldown_s:g} clock units",
            endpoint=endpoint,
            consecutive_failures=self.consecutive_failures,
            last_failure=self.last_failure,
            cooldown_s=self.config.cooldown_s,
        )

    # -- outcome feedback ---------------------------------------------------

    def record_success(self) -> None:
        """A primary-engine flush (or probe) completed: close."""
        self.successes += 1
        self.consecutive_failures = 0
        self.state = "closed"
        self.opened_at = None

    def record_failure(self, exc: BaseException) -> None:
        """A primary-engine flush (or probe) failed.

        Only exceptions matching ``config.trip_on`` advance the state
        machine; others are tallied but change nothing (a caller's bad
        input is not an endpoint health signal).
        """
        self.failures += 1
        if not isinstance(exc, self.config.trip_on):
            return
        self.consecutive_failures += 1
        self.last_failure = f"{type(exc).__name__}: {exc}"
        tripping = (
            self.state == "half_open"
            or self.consecutive_failures >= self.config.failure_threshold
        )
        if tripping:
            if self.state != "open":
                self.trips += 1
            self.state = "open"
            self.opened_at = self.config.clock()
