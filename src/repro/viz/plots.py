"""Text-mode plots: histograms, heatmaps, scatter panels.

Used by the examples and benchmark result files to show measurement
outcome distributions (paper Figure 4), accuracy contours over the
(noise factor, quantization level) grid (Figure 8 left) and the
extracted-feature scatter (Figure 8 right) without any plotting stack.
"""

from __future__ import annotations

import numpy as np

_DENSITY = " .:-=+*#%@"


def text_histogram(
    values,
    bins: int = 20,
    width: int = 50,
    title: "str | None" = None,
) -> str:
    """Horizontal bar histogram of a 1-D sample."""
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        raise ValueError("cannot histogram an empty sample")
    if bins < 1 or width < 1:
        raise ValueError("bins and width must be positive")
    counts, edges = np.histogram(values, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = [title] if title else []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"[{lo:+.3f}, {hi:+.3f}) {bar} {count}")
    return "\n".join(lines)


def text_heatmap(
    matrix,
    row_labels: "list[str] | None" = None,
    col_labels: "list[str] | None" = None,
    title: "str | None" = None,
    chars: str = _DENSITY,
) -> str:
    """Density-character heatmap of a 2-D array (higher = denser char).

    Cells render as doubled characters so the aspect ratio is roughly
    square in a terminal.  A legend maps the extremes.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"heatmap needs a 2-D array, got shape {matrix.shape}")
    lo, hi = float(np.nanmin(matrix)), float(np.nanmax(matrix))
    span = hi - lo if hi > lo else 1.0
    n_rows, n_cols = matrix.shape
    row_labels = row_labels or [""] * n_rows
    col_labels = col_labels or [""] * n_cols
    label_width = max((len(r) for r in row_labels), default=0)

    lines = [title] if title else []
    for r in range(n_rows):
        cells = []
        for c in range(n_cols):
            value = matrix[r, c]
            if np.isnan(value):
                cells.append("??")
                continue
            level = int((value - lo) / span * (len(chars) - 1) + 0.5)
            cells.append(chars[level] * 2)
        lines.append(f"{row_labels[r]:>{label_width}} |" + "".join(cells) + "|")
    if any(col_labels):
        header = " " * (label_width + 2)
        for label in col_labels:
            header += f"{label:<2.2}"
        lines.append(header)
    lines.append(f"legend: '{chars[0]}'={lo:.3g} .. '{chars[-1]}'={hi:.3g}")
    return "\n".join(lines)


def text_scatter(
    points,
    labels,
    width: int = 48,
    height: int = 20,
    markers: str = "ox+sd*",
    title: "str | None" = None,
) -> str:
    """2-D class scatter plot: one marker character per class.

    ``points`` is ``(n, 2)``; ``labels`` are small non-negative class
    ids.  Collisions show the marker of the last point drawn.
    """
    points = np.asarray(points, dtype=float)
    labels = np.asarray(labels, dtype=int)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"points must be (n, 2), got {points.shape}")
    if labels.shape[0] != points.shape[0]:
        raise ValueError("labels and points disagree on sample count")
    if labels.size and labels.max() >= len(markers):
        raise ValueError(
            f"{labels.max() + 1} classes but only {len(markers)} markers"
        )

    x, y = points[:, 0], points[:, 1]
    x_lo, x_hi = float(x.min()), float(x.max())
    y_lo, y_hi = float(y.min()), float(y.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (px, py), label in zip(points, labels):
        col = int((px - x_lo) / x_span * (width - 1))
        row = int((y_hi - py) / y_span * (height - 1))
        grid[row][col] = markers[label]

    lines = [title] if title else []
    lines.append("+" + "-" * width + "+")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(
        f"x: [{x_lo:.3g}, {x_hi:.3g}]  y: [{y_lo:.3g}, {y_hi:.3g}]  "
        + "  ".join(
            f"class {c}='{markers[c]}'" for c in sorted(set(labels.tolist()))
        )
    )
    return "\n".join(lines)
