"""Terminal-friendly visualization: circuit drawings and text plots.

Everything renders to plain strings so results embed in logs, docstrings
and the benchmark result files without a plotting stack.  The examples
use :func:`draw_circuit` to show compiled QNN blocks, and the Figure 8
benchmark renders its accuracy contour with :func:`text_heatmap`.
"""

from repro.viz.drawer import draw_circuit
from repro.viz.plots import text_heatmap, text_histogram, text_scatter

__all__ = ["draw_circuit", "text_histogram", "text_heatmap", "text_scatter"]
