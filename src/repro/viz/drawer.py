"""ASCII circuit drawer.

Gates are packed into time columns with the DAG's ASAP layering, so the
drawing width reflects circuit depth, not gate count.  Output uses plain
ASCII (wires ``-``, controls ``*``, verticals ``|``) for maximum terminal
compatibility::

    q0: --H--*---------
             |
    q1: -----X--RZ(pi)-
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.circuits.dag import CircuitDAG
from repro.circuits.parameters import ParamExpr

if TYPE_CHECKING:  # pragma: no cover
    from repro.circuits.circuit import Circuit, Gate


def _angle_text(value: float) -> str:
    for num in (1, -1, 2, -2):
        for den in (1, 2, 3, 4):
            if np.isclose(value, num * np.pi / den, atol=1e-12):
                head = "pi" if abs(num) == 1 else f"{abs(num)}pi"
                sign = "-" if num < 0 else ""
                return f"{sign}{head}" + (f"/{den}" if den > 1 else "")
    return f"{value:.3g}"


def _param_label(expr: ParamExpr) -> str:
    """Compact label for an angle expression: ``0.5``, ``w3``, ``x2+pi``."""
    if expr.is_constant:
        return _angle_text(expr.const)
    parts = []
    for kind, index, coeff in expr.terms:
        ref = f"{kind}{index}"
        if np.isclose(coeff, 1.0):
            parts.append(ref)
        elif np.isclose(coeff, -1.0):
            parts.append(f"-{ref}")
        else:
            parts.append(f"{coeff:.2g}{ref}")
    text = "+".join(parts).replace("+-", "-")
    if not np.isclose(expr.const, 0.0):
        const = _angle_text(expr.const)
        text += const if const.startswith("-") else f"+{const}"
    return text


def _gate_labels(gate: "Gate") -> "dict[int, str]":
    """Per-qubit cell text for one gate."""
    params = ""
    if gate.params:
        params = "(" + ",".join(_param_label(p) for p in gate.params) + ")"
    if len(gate.qubits) == 1:
        return {gate.qubits[0]: gate.name.upper() + params}
    if gate.name == "cx":
        return {gate.qubits[0]: "*", gate.qubits[1]: "X"}
    if gate.name == "cz":
        return {gate.qubits[0]: "*", gate.qubits[1]: "*"}
    if gate.name in ("cy", "crx", "cry", "crz", "cu3"):
        target = gate.name[1:].upper() + params
        return {gate.qubits[0]: "*", gate.qubits[1]: target}
    # Symmetric two-qubit gates: label both ends.
    label = gate.name.upper() + params
    return {q: label for q in gate.qubits}


def draw_circuit(circuit: "Circuit", max_width: int = 120) -> str:
    """Render a circuit as multi-line ASCII art.

    ``max_width`` wraps the drawing into stacked panels when the circuit
    is deeper than one terminal row can show.
    """
    n = circuit.n_qubits
    if len(circuit.gates) == 0:
        return "\n".join(f"q{q}: " + "-" * 3 for q in range(n))

    dag = CircuitDAG.from_circuit(circuit)
    layers = dag.layers()

    # Build one column of cells per layer.
    columns: "list[dict[int, str]]" = []
    spans: "list[list[tuple[int, int]]]" = []  # vertical connectors per column
    for layer in layers:
        cells: "dict[int, str]" = {}
        connectors: "list[tuple[int, int]]" = []
        for node in layer:
            gate = dag.gate(node)
            cells.update(_gate_labels(gate))
            if len(gate.qubits) > 1:
                lo, hi = min(gate.qubits), max(gate.qubits)
                connectors.append((lo, hi))
        columns.append(cells)
        spans.append(connectors)

    widths = [max((len(t) for t in col.values()), default=1) + 2 for col in columns]

    # Wrap columns into panels of at most max_width characters.
    prefix = max(len(f"q{q}: ") for q in range(n))
    panels: "list[list[int]]" = [[]]
    used = prefix
    for index, width in enumerate(widths):
        if panels[-1] and used + width > max_width:
            panels.append([])
            used = prefix
        panels[-1].append(index)
        used += width

    blocks: "list[str]" = []
    for panel in panels:
        lines: "list[str]" = []
        for q in range(n):
            wire = f"q{q}: ".ljust(prefix)
            gap = " " * prefix
            for index in panel:
                cell = columns[index].get(q)
                width = widths[index]
                if cell is None:
                    wire += "-" * width
                else:
                    pad = width - len(cell)
                    wire += "-" * (pad // 2) + cell + "-" * (pad - pad // 2)
                # Connector row below this qubit row.
                has_bar = any(lo <= q < hi for lo, hi in spans[index])
                mid = width // 2
                gap += " " * mid + ("|" if has_bar else " ") + " " * (
                    width - mid - 1
                )
            lines.append(wire)
            if q < n - 1:
                lines.append(gap.rstrip())
        blocks.append("\n".join(line.rstrip() for line in lines).rstrip())
    return "\n\n".join(blocks)
