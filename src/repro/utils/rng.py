"""Random-number-generator plumbing.

Every stochastic component in the library (noise sampling, data generation,
shot noise, training shuffles) accepts either an integer seed, an existing
:class:`numpy.random.Generator`, or ``None``.  :func:`as_rng` canonicalizes
those into a ``Generator`` so results are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def as_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` gives a fresh nondeterministic generator, an ``int`` gives a
    seeded one, and an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Used when one seed must drive several independent stochastic processes
    (for example per-device calibration drift) without cross-correlation.
    """
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
