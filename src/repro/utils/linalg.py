"""Small linear-algebra helpers used across the simulator and compiler."""

from __future__ import annotations

import functools

import numpy as np


def is_unitary(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    """Return ``True`` if ``matrix`` is unitary within ``atol``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix.conj().T @ matrix, identity, atol=atol))


def is_hermitian(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    """Return ``True`` if ``matrix`` equals its conjugate transpose."""
    matrix = np.asarray(matrix)
    return bool(np.allclose(matrix, matrix.conj().T, atol=atol))


def kron_all(matrices: "list[np.ndarray]") -> np.ndarray:
    """Kronecker product of a list of matrices, left to right."""
    return functools.reduce(np.kron, matrices)


def global_phase_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Distance between two matrices ignoring a global phase.

    Returns ``0`` when ``a = e^{i phi} b`` for some real ``phi``.  Uses the
    largest-magnitude entry of ``b`` to estimate the phase, which is robust
    for unitaries (every unitary has an entry of magnitude >= 1/dim).
    """
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    flat_b = b.ravel()
    anchor = int(np.argmax(np.abs(flat_b)))
    if abs(flat_b[anchor]) < 1e-12:
        return float(np.max(np.abs(a - b)))
    phase = a.ravel()[anchor] / flat_b[anchor]
    magnitude = abs(phase)
    if magnitude < 1e-12:
        return float(np.max(np.abs(a - b)))
    phase = phase / magnitude
    return float(np.max(np.abs(a - phase * b)))


def embed_operator(op: np.ndarray, qubits: "tuple[int, ...]", n_qubits: int) -> np.ndarray:
    """Embed a k-qubit operator acting on ``qubits`` into an n-qubit space.

    Little-endian convention: qubit 0 is the least-significant bit of the
    state index.  ``qubits`` orders the operator's own qubit axes, so
    ``embed_operator(CX, (0, 1), 2)`` applies control on qubit 0.

    This is the slow, obviously-correct reference used by tests to validate
    the fast reshape/einsum kernels in the simulators.
    """
    op = np.asarray(op, dtype=complex)
    k = len(qubits)
    if op.shape != (2**k, 2**k):
        raise ValueError(f"operator shape {op.shape} does not match {k} qubits")
    if len(set(qubits)) != k:
        raise ValueError(f"duplicate qubits in {qubits}")
    if any(q < 0 or q >= n_qubits for q in qubits):
        raise ValueError(f"qubit index out of range in {qubits} for n={n_qubits}")

    dim = 2**n_qubits
    full = np.zeros((dim, dim), dtype=complex)
    others = [q for q in range(n_qubits) if q not in qubits]
    for col in range(dim):
        op_col = sum(((col >> q) & 1) << i for i, q in enumerate(qubits))
        rest = [(col >> q) & 1 for q in others]
        for op_row in range(2**k):
            amp = op[op_row, op_col]
            if amp == 0:
                continue
            row = 0
            for i, q in enumerate(qubits):
                row |= ((op_row >> i) & 1) << q
            for bit, q in zip(rest, others):
                row |= bit << q
            full[row, col] += amp
    return full
