"""Shared utilities: RNG handling and small linear-algebra helpers."""

from repro.utils.rng import as_rng, spawn_rng
from repro.utils.linalg import (
    is_unitary,
    is_hermitian,
    kron_all,
    global_phase_distance,
    embed_operator,
)

__all__ = [
    "as_rng",
    "spawn_rng",
    "is_unitary",
    "is_hermitian",
    "kron_all",
    "global_phase_distance",
    "embed_operator",
]
