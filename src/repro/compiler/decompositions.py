"""Gate lowering to the IBMQ hardware basis {rz, sx, x, cx, id}.

The paper compiles every QNN "to the basis gate set of the quantum
hardware (e.g., X, CNOT, RZ, CNOT, and ID) before performing gate
insertion and training" (Section 3.2).  This module implements that
lowering.  All rules rewrite gate angles as *affine* expressions of the
original parameters (via :class:`ParamExpr`), so the lowered circuit is
exactly differentiable with respect to the original weights and inputs.

Every rule is verified up to global phase in ``tests/test_compiler.py``.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit, Gate
from repro.circuits.parameters import ParamExpr
from repro.sim.gates import gate_def

PI = np.pi

BASIS_GATES = frozenset({"rz", "sx", "x", "cx", "id"})

#: Maximum recursion depth when expanding nested rules (swap -> cx etc.).
_MAX_LOWER_DEPTH = 8


def euler_zyz(matrix: np.ndarray) -> "tuple[float, float, float]":
    """ZYZ Euler angles (theta, phi, lam) with U ~ e^{i a} u3(theta, phi, lam).

    Used to lower *fixed* single-qubit gates (h, s, t, sh, ...) whose
    matrices are known numerically.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2, 2):
        raise ValueError("euler_zyz expects a 2x2 matrix")
    # Remove determinant phase to land in SU(2).
    det = np.linalg.det(matrix)
    su2 = matrix / np.sqrt(det)
    theta = 2.0 * np.arctan2(abs(su2[1, 0]), abs(su2[0, 0]))
    if abs(su2[1, 0]) < 1e-12 or abs(su2[1, 1]) < 1e-12:
        # Diagonal or anti-diagonal: one angle suffices.
        if abs(su2[1, 0]) < 1e-12:
            phi_plus_lam = 2.0 * np.angle(su2[1, 1])
            return (float(theta), float(phi_plus_lam), 0.0)
        phi_minus_lam = 2.0 * np.angle(su2[1, 0])
        return (float(theta), float(phi_minus_lam), 0.0)
    phi = np.angle(su2[1, 1]) + np.angle(su2[1, 0])
    lam = np.angle(su2[1, 1]) - np.angle(su2[1, 0])
    return (float(theta), float(phi), float(lam))


def _g(name: str, qubits: "tuple[int, ...]", *params: ParamExpr) -> Gate:
    return Gate(name, qubits, tuple(params))


def _const(value: float) -> ParamExpr:
    return ParamExpr.constant(value)


def _lower_u3(
    qubit: int, theta: ParamExpr, phi: ParamExpr, lam: ParamExpr
) -> "list[Gate]":
    """u3(t, p, l) = rz(p + pi) . sx . rz(t + pi) . sx . rz(l), first-to-last."""
    q = (qubit,)
    return [
        _g("rz", q, lam),
        _g("sx", q),
        _g("rz", q, theta.shifted(PI)),
        _g("sx", q),
        _g("rz", q, phi.shifted(PI)),
    ]


def _lower_cu3(
    control: int, target: int, theta: ParamExpr, phi: ParamExpr, lam: ParamExpr
) -> "list[Gate]":
    """Standard CU3 decomposition into two CX and single-qubit rotations."""
    half_sum = (lam + phi).scaled(0.5)
    half_diff = (lam + (-phi)).scaled(0.5)
    c, t = (control,), (target,)
    ct = (control, target)
    return [
        _g("rz", c, half_sum),
        _g("rz", t, half_diff),
        _g("cx", ct),
        *_lower_u3(target, theta.scaled(-0.5), _const(0.0), half_sum.scaled(-1.0)),
        _g("cx", ct),
        *_lower_u3(target, theta.scaled(0.5), phi, _const(0.0)),
    ]


def expand_gate(gate: Gate) -> "list[Gate] | None":
    """One-step expansion of ``gate`` toward the basis; ``None`` if basis."""
    name = gate.name
    if name in BASIS_GATES:
        return None
    q = gate.qubits
    p = gate.params

    # --- fixed single-qubit gates -----------------------------------------
    if name in ("s", "sdg", "t", "tdg", "z", "u1"):
        angle = {
            "s": _const(PI / 2),
            "sdg": _const(-PI / 2),
            "t": _const(PI / 4),
            "tdg": _const(-PI / 4),
            "z": _const(PI),
        }.get(name)
        if name == "u1":
            angle = p[0]
        return [_g("rz", q, angle)]
    if name == "y":
        # Y = i * X . RZ(pi): equal up to global phase.
        return [_g("rz", q, _const(PI)), _g("x", q)]
    if name in ("h", "sh", "shdg", "sxdg"):
        theta, phi, lam = euler_zyz(gate_def(name).matrix(()))
        return _lower_u3(q[0], _const(theta), _const(phi), _const(lam))

    # --- parameterized single-qubit gates ----------------------------------
    if name == "rx":
        return _lower_u3(q[0], p[0], _const(-PI / 2), _const(PI / 2))
    if name == "ry":
        return _lower_u3(q[0], p[0], _const(0.0), _const(0.0))
    if name == "u3":
        return _lower_u3(q[0], p[0], p[1], p[2])

    # --- two-qubit gates ----------------------------------------------------
    if name == "cz":
        return [_g("h", (q[1],)), _g("cx", q), _g("h", (q[1],))]
    if name == "cy":
        return [_g("sdg", (q[1],)), _g("cx", q), _g("s", (q[1],))]
    if name == "crz":
        return [
            _g("rz", (q[1],), p[0].scaled(0.5)),
            _g("cx", q),
            _g("rz", (q[1],), p[0].scaled(-0.5)),
            _g("cx", q),
        ]
    if name == "cu3":
        return _lower_cu3(q[0], q[1], p[0], p[1], p[2])
    if name == "crx":
        return _lower_cu3(q[0], q[1], p[0], _const(-PI / 2), _const(PI / 2))
    if name == "cry":
        return _lower_cu3(q[0], q[1], p[0], _const(0.0), _const(0.0))
    if name == "rzz":
        return [_g("cx", q), _g("rz", (q[1],), p[0]), _g("cx", q)]
    if name == "rxx":
        return [
            _g("h", (q[0],)),
            _g("h", (q[1],)),
            _g("rzz", q, p[0]),
            _g("h", (q[0],)),
            _g("h", (q[1],)),
        ]
    if name == "ryy":
        return [
            _g("rx", (q[0],), _const(PI / 2)),
            _g("rx", (q[1],), _const(PI / 2)),
            _g("rzz", q, p[0]),
            _g("rx", (q[0],), _const(-PI / 2)),
            _g("rx", (q[1],), _const(-PI / 2)),
        ]
    if name == "rzx":  # Z on qubits[0], X on qubits[1]
        return [_g("h", (q[1],)), _g("rzz", q, p[0]), _g("h", (q[1],))]
    if name == "swap":
        return [_g("cx", q), _g("cx", (q[1], q[0])), _g("cx", q)]
    if name == "sqswap":
        quarter = _const(PI / 4)
        return [_g("rxx", q, quarter), _g("ryy", q, quarter), _g("rzz", q, quarter)]

    raise NotImplementedError(f"no lowering rule for gate {name!r}")


def lower_to_basis(circuit: Circuit) -> Circuit:
    """Fully lower a circuit to the hardware basis {rz, sx, x, cx, id}."""
    gates = list(circuit.gates)
    for _ in range(_MAX_LOWER_DEPTH):
        expanded: "list[Gate]" = []
        changed = False
        for gate in gates:
            replacement = expand_gate(gate)
            if replacement is None:
                expanded.append(gate)
            else:
                expanded.extend(replacement)
                changed = True
        gates = expanded
        if not changed:
            return Circuit(circuit.n_qubits, gates)
    raise RuntimeError("gate lowering did not converge")
