"""Quantum circuit compiler: lowering, layout, routing, cleanup, transpile."""

from repro.compiler.decompositions import (
    BASIS_GATES,
    euler_zyz,
    expand_gate,
    lower_to_basis,
)
from repro.compiler.coupling import (
    CouplingMap,
    line_coupling,
    t_coupling,
    bowtie_coupling,
    ladder_coupling,
)
from repro.compiler.layout import (
    trivial_layout,
    noise_adaptive_layout,
    apply_layout,
)
from repro.compiler.routing import route, routing_overhead
from repro.compiler.cleanup import cleanup
from repro.compiler.fusion import (
    FusedOp,
    FusionPlan,
    fuse_bound_ops,
    fusion_plan_for,
)
from repro.compiler.optimize import (
    cancel_inverse_pairs,
    merge_rotations,
    optimize_circuit,
    resynthesize_1q_runs,
)
from repro.compiler.passes import CompiledCircuit, transpile

__all__ = [
    "BASIS_GATES",
    "euler_zyz",
    "expand_gate",
    "lower_to_basis",
    "CouplingMap",
    "line_coupling",
    "t_coupling",
    "bowtie_coupling",
    "ladder_coupling",
    "trivial_layout",
    "noise_adaptive_layout",
    "apply_layout",
    "route",
    "routing_overhead",
    "cleanup",
    "FusedOp",
    "FusionPlan",
    "fuse_bound_ops",
    "fusion_plan_for",
    "cancel_inverse_pairs",
    "merge_rotations",
    "optimize_circuit",
    "resynthesize_1q_runs",
    "CompiledCircuit",
    "transpile",
]
