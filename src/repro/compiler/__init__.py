"""Quantum circuit compiler: lowering, layout, routing, cleanup, transpile.

Beyond the transpile pipeline, the package hosts two execution-oriented
compilation passes:

* **gate fusion** (:mod:`repro.compiler.fusion`): merges adjacent bound
  gate runs into single matrices for tape-free statevector inference,
  with per-weight-vector caching of the static segments;
* **superoperator compilation** (:mod:`repro.compiler.superop`): for the
  exact noisy density backend, precompiles each bound gate *together
  with* its Pauli error channel, its exact T1/T2 thermal-relaxation
  channel (general amplitude/phase-damping Kraus sets, when the noise
  model carries them) and its coherent miscalibration into one cached
  ``(4**k, 4**k)`` superoperator per site, then fuses adjacent sites on
  overlapping supports into segment operators -- channel composition is
  plain matrix multiplication in superoperator form, so noise fuses as
  freely as unitaries.  Readout confusion compiles into the same stream
  as a terminal measurement (POVM) superop.  ``run_noisy_density``
  executes the compiled stream in one transpose + GEMM pass per
  operator (:func:`repro.sim.density.apply_superop_to_density`), ~10x+
  over the retained per-Kraus reference; the same per-site
  superoperators drive the exact-channel training backend's
  adjoint-on-superops sweep (:mod:`repro.core.density_training`).  The
  cross-backend harness (``tests/test_cross_backend.py``) holds every
  engine to the per-Kraus reference across randomized channel mixes.
"""

from repro.compiler.decompositions import (
    BASIS_GATES,
    euler_zyz,
    expand_gate,
    lower_to_basis,
)
from repro.compiler.coupling import (
    CouplingMap,
    line_coupling,
    t_coupling,
    bowtie_coupling,
    ladder_coupling,
)
from repro.compiler.layout import (
    trivial_layout,
    noise_adaptive_layout,
    apply_layout,
)
from repro.compiler.routing import route, routing_overhead
from repro.compiler.cleanup import cleanup
from repro.compiler.fusion import (
    FusedOp,
    FusionPlan,
    constant_op,
    fuse_bound_ops,
    fusion_plan_for,
)
from repro.compiler.superop import (
    SuperOp,
    SuperopPlan,
    embed_superop,
    fuse_superops,
    superop_plan_for,
)
from repro.compiler.optimize import (
    cancel_inverse_pairs,
    merge_rotations,
    optimize_circuit,
    resynthesize_1q_runs,
)
from repro.compiler.passes import CompiledCircuit, transpile

__all__ = [
    "BASIS_GATES",
    "euler_zyz",
    "expand_gate",
    "lower_to_basis",
    "CouplingMap",
    "line_coupling",
    "t_coupling",
    "bowtie_coupling",
    "ladder_coupling",
    "trivial_layout",
    "noise_adaptive_layout",
    "apply_layout",
    "route",
    "routing_overhead",
    "cleanup",
    "FusedOp",
    "FusionPlan",
    "constant_op",
    "fuse_bound_ops",
    "fusion_plan_for",
    "SuperOp",
    "SuperopPlan",
    "embed_superop",
    "fuse_superops",
    "superop_plan_for",
    "cancel_inverse_pairs",
    "merge_rotations",
    "optimize_circuit",
    "resynthesize_1q_runs",
    "CompiledCircuit",
    "transpile",
]
