"""Device coupling maps (which qubit pairs support two-qubit gates)."""

from __future__ import annotations

import networkx as nx


class CouplingMap:
    """Undirected qubit-connectivity graph of a device."""

    def __init__(self, n_qubits: int, edges: "list[tuple[int, int]]"):
        self.n_qubits = n_qubits
        self.graph = nx.Graph()
        self.graph.add_nodes_from(range(n_qubits))
        for a, b in edges:
            if a == b or not (0 <= a < n_qubits and 0 <= b < n_qubits):
                raise ValueError(f"bad coupling edge ({a}, {b})")
            self.graph.add_edge(a, b)

    @property
    def edges(self) -> "list[tuple[int, int]]":
        return sorted(tuple(sorted(e)) for e in self.graph.edges)

    def are_adjacent(self, a: int, b: int) -> bool:
        return self.graph.has_edge(a, b)

    def shortest_path(self, a: int, b: int) -> "list[int]":
        """Qubit sequence from a to b along coupling edges (inclusive)."""
        return nx.shortest_path(self.graph, a, b)

    def distance(self, a: int, b: int) -> int:
        return nx.shortest_path_length(self.graph, a, b)

    def neighbors(self, q: int) -> "list[int]":
        return sorted(self.graph.neighbors(q))

    def is_connected_subset(self, qubits: "list[int]") -> bool:
        """True if the induced subgraph on ``qubits`` is connected."""
        sub = self.graph.subgraph(qubits)
        return len(qubits) > 0 and nx.is_connected(sub)

    def connected_subsets(self, size: int) -> "list[tuple[int, ...]]":
        """All connected qubit subsets of the given size (small devices).

        Enumerated by BFS growth; intended for the <= 5-qubit devices where
        the noise-adaptive layout pass can afford exhaustive search.
        """
        found: "set[tuple[int, ...]]" = set()
        frontier: "set[frozenset[int]]" = {frozenset([q]) for q in self.graph.nodes}
        for _ in range(size - 1):
            next_frontier: "set[frozenset[int]]" = set()
            for subset in frontier:
                for q in subset:
                    for nb in self.graph.neighbors(q):
                        if nb not in subset:
                            next_frontier.add(subset | {nb})
            frontier = next_frontier
        for subset in frontier:
            if len(subset) == size:
                found.add(tuple(sorted(subset)))
        return sorted(found)


def line_coupling(n_qubits: int) -> CouplingMap:
    """Linear chain 0-1-2-...-(n-1), like IBMQ Santiago/Athens/Bogota."""
    return CouplingMap(n_qubits, [(i, i + 1) for i in range(n_qubits - 1)])


def t_coupling() -> CouplingMap:
    """5-qubit T shape, like IBMQ Lima/Belem/Quito."""
    return CouplingMap(5, [(0, 1), (1, 2), (1, 3), (3, 4)])


def bowtie_coupling() -> CouplingMap:
    """5-qubit bowtie, like IBMQ Yorktown."""
    return CouplingMap(5, [(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)])


def ladder_coupling(n_qubits: int) -> CouplingMap:
    """Two-row ladder, like the 15-qubit IBMQ Melbourne."""
    if n_qubits % 2:
        raise ValueError("ladder coupling needs an even qubit count")
    half = n_qubits // 2
    edges = [(i, i + 1) for i in range(half - 1)]
    edges += [(half + i, half + i + 1) for i in range(half - 1)]
    edges += [(i, half + i) for i in range(half)]
    return CouplingMap(n_qubits, edges)
