"""Inference-only gate fusion: merge adjacent gate runs into one matrix.

A transpiled QNN block is dominated by long single-qubit basis-gate runs
(``rz sx rz sx rz`` from every U3) punctuated by CXs.  For *inference*
sweeps -- no gradient tape, no per-gate error insertion sites -- adjacent
gates whose combined qubit support fits in ``max_qubits`` can be merged
into a single matrix before the statevector sweep, cutting the number of
gate applications by 3-5x.  The merged matrices are exact matrix
products, so fused and unfused sweeps agree to machine precision.

Fusion must NOT be used for:

* differentiable forwards -- the adjoint backward pass needs the
  per-gate tape (and per-parameter derivative matrices);
* noisy sweeps *across error-insertion points* -- error gates are
  sampled per original gate site, so a fused run may never swallow a
  stochastic insertion point.  Runs that stop exactly at each site are
  fine: the trajectory engine's segment plan
  (:class:`repro.noise.trajectory._SegmentPlan`) partitions the gate
  stream at Pauli sites and feeds each constant segment -- including
  the deterministic coherent-miscalibration rotations, wrapped via
  :func:`constant_op` -- through :func:`fuse_bound_ops`.

:class:`FusionPlan` adds a per-circuit cache layer for repeated
inference over the same weights (evaluation loops, SPSA/parameter-shift
objective calls): gate runs that depend only on weights and constants
are fused once per weight vector (small LRU keyed on the weight bytes),
while input-dependent encoder gates -- whose matrices change with every
batch -- pass through unfused.
"""

from __future__ import annotations

import numpy as np

from repro.sim.statevector import SmallLRU, bind_plan_for, weights_key

_EYE2 = np.eye(2, dtype=complex)


class FusedOp:
    """A merged gate run, ready for ``apply_matrix``/``run_ops``.

    Quacks like :class:`~repro.sim.statevector.BoundOp` for execution
    (``matrix``, ``qubits``, ``batched``) but is inference-only: it has
    no parameter bookkeeping and no adjoint support.
    """

    __slots__ = ("qubits", "matrix", "batched", "n_merged")

    def __init__(self, qubits, matrix, n_merged):
        self.qubits = qubits
        self.matrix = matrix
        self.batched = matrix.ndim == 3
        self.n_merged = n_merged


def constant_op(qubits: "tuple[int, ...]", matrix: np.ndarray) -> FusedOp:
    """Wrap a constant matrix as a fusable op with no gate bookkeeping.

    Lets callers splice fixed unitaries that are not circuit gates --
    e.g. the noise model's deterministic coherent-miscalibration
    rotations -- into a run handed to :func:`fuse_bound_ops`.
    """
    return FusedOp(tuple(qubits), matrix, 1)


def _embed(matrix: np.ndarray, qubits, support) -> np.ndarray:
    """Expand a gate matrix onto ``support`` (ascending qubit tuple).

    Follows the engine's index convention: ``qubits[0]`` is the least
    significant bit of the gate matrix index.  Handles shared ``(d, d)``
    and per-sample ``(batch, d, d)`` matrices.
    """
    if tuple(qubits) == tuple(support):
        return matrix
    batched = matrix.ndim == 3
    if len(qubits) == 2:
        # Same pair, reversed order: swap the bit roles of both indices.
        if batched:
            m = matrix.reshape(-1, 2, 2, 2, 2).transpose(0, 2, 1, 4, 3)
            return np.ascontiguousarray(m.reshape(-1, 4, 4))
        return matrix.reshape(2, 2, 2, 2).transpose(1, 0, 3, 2).reshape(4, 4)
    (q,) = qubits
    if batched:
        if q == support[0]:  # gate on the low bit of the pair
            full = np.einsum("kl,bij->bkilj", _EYE2, matrix)
        else:  # gate on the high bit
            full = np.einsum("bij,kl->bikjl", matrix, _EYE2)
        return np.ascontiguousarray(full.reshape(-1, 4, 4))
    if q == support[0]:
        return np.kron(_EYE2, matrix)
    return np.kron(matrix, _EYE2)


def _materialize(run: list, support: "tuple[int, ...]"):
    """Collapse a gate run into one op on its combined support."""
    if len(run) == 1:
        # Preserve the original op: structured kernels (CX permutation,
        # diagonal slicing) key on the untouched matrix object.
        return run[0]
    matrix = _embed(run[0].matrix, run[0].qubits, support)
    for op in run[1:]:
        # The later gate acts after, i.e. multiplies from the left.
        matrix = _embed(op.matrix, op.qubits, support) @ matrix
    return FusedOp(support, matrix, len(run))


def fuse_bound_ops(ops: list, max_qubits: int = 2) -> list:
    """Greedy left-to-right fusion of adjacent gate runs.

    Consecutive ops whose combined qubit support has at most
    ``max_qubits`` qubits are merged into a single :class:`FusedOp`
    (single-op runs keep their original :class:`BoundOp`).  The output
    list applies the exact same unitary as ``ops``.

    ``max_qubits`` is capped at 2: :func:`_embed` only knows how to
    expand onto 1- and 2-qubit supports (and wider fused matrices lose
    to the engine's structured kernels anyway).
    """
    if not 1 <= max_qubits <= 2:
        raise ValueError("max_qubits must be 1 or 2")
    fused: list = []
    run: list = []
    support: "set[int]" = set()
    for op in ops:
        qubits = set(op.qubits)
        if run and len(support | qubits) <= max_qubits:
            run.append(op)
            support |= qubits
            continue
        if run:
            fused.append(_materialize(run, tuple(sorted(support))))
        if len(qubits) > max_qubits:
            fused.append(op)  # too wide to ever merge; pass through
            run, support = [], set()
        else:
            run, support = [op], qubits
    if run:
        fused.append(_materialize(run, tuple(sorted(support))))
    return fused


#: Fused static segments retained per circuit, keyed on the weight bytes.
_FUSION_CACHE_SIZE = 4


def static_dynamic_layout(circuit) -> "list[tuple]":
    """Partition a circuit into fusable spans and per-call singletons.

    Returns ``("static", start, end)`` spans (constant or weight-only
    gates -- cacheable per weight vector) and ``("dynamic", i, i + 1)``
    singletons (input-dependent encoder gates -- re-bound per call), in
    circuit order.  Shared by :class:`FusionPlan` and the superoperator
    plan (:class:`repro.compiler.superop.SuperopPlan`) so the two passes
    can never disagree on what is cacheable.
    """
    layout: "list[tuple]" = []
    start = None
    for i, gate in enumerate(circuit.gates):
        input_dep = any(expr.depends_on_input for expr in gate.params)
        if input_dep:
            if start is not None:
                layout.append(("static", start, i))
                start = None
            layout.append(("dynamic", i, i + 1))
        elif start is None:
            start = i
    if start is not None:
        layout.append(("static", start, len(circuit.gates)))
    return layout


class FusionPlan:
    """Per-circuit fusion with caching of the weight-static structure.

    The circuit's gates are partitioned once into *static* spans
    (constant or weight-only parameters) and *dynamic* gates
    (input-dependent encoder rotations).  :meth:`fused_ops` fuses each
    static span and caches the result per weight vector; dynamic gates
    are re-bound per call and emitted unfused, so the per-call work is
    one bind (itself mostly cache hits) plus the encoder gates.
    """

    __slots__ = ("bind_plan", "_layout", "_cache")

    def __init__(self, circuit):
        self.bind_plan = bind_plan_for(circuit)
        self._layout = static_dynamic_layout(circuit)
        # weight bytes -> fused ops per static span, in layout order.
        self._cache = SmallLRU(_FUSION_CACHE_SIZE)

    def _static_segments(self, ops: list, weights) -> "list[list]":
        key = weights_key(weights)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        segments = [
            fuse_bound_ops(ops[start:end])
            for kind, start, end in self._layout
            if kind == "static"
        ]
        self._cache.put(key, segments)
        return segments

    def fused_ops(
        self,
        weights: "np.ndarray | None" = None,
        inputs: "np.ndarray | None" = None,
        batch: "int | None" = None,
    ) -> list:
        """Bind and fuse the circuit for one inference call."""
        ops = self.bind_plan.bind(weights, inputs, batch)
        segments = iter(self._static_segments(ops, weights))
        out: list = []
        for kind, start, end in self._layout:
            if kind == "static":
                out.extend(next(segments))
            else:
                out.extend(ops[start:end])
        return out


def fusion_plan_for(circuit) -> FusionPlan:
    """The circuit's cached :class:`FusionPlan`, (re)built when stale."""
    plan = getattr(circuit, "_fusion_plan", None)
    if plan is None or plan.bind_plan.stale(circuit):
        plan = FusionPlan(circuit)
        circuit._fusion_plan = plan
    return plan
