"""SWAP routing: make every two-qubit gate act on coupled qubit pairs.

Uses a simple swap-and-return strategy: when a CX targets non-adjacent
physical qubits, the control is swapped along the shortest coupling path
to a neighbor of the target, the CX executes, and the swaps are undone so
the layout stays static.  Correctness-first (the circuits in this paper
are small); the inserted ``swap`` gates are lowered to 3 CX afterwards.
"""

from __future__ import annotations

from repro.circuits.circuit import Circuit, Gate
from repro.compiler.coupling import CouplingMap


def route(circuit: Circuit, coupling: CouplingMap) -> Circuit:
    """Insert SWAP chains so all 2q gates act on coupled pairs."""
    routed = Circuit(circuit.n_qubits)
    for gate in circuit.gates:
        if len(gate.qubits) != 2:
            routed.gates.append(gate)
            continue
        a, b = gate.qubits
        if coupling.are_adjacent(a, b):
            routed.gates.append(gate)
            continue
        path = coupling.shortest_path(a, b)
        # Swap `a` down the path until adjacent to `b`.
        swaps = [(path[i], path[i + 1]) for i in range(len(path) - 2)]
        for s in swaps:
            routed.gates.append(Gate("swap", s))
        moved = Gate(gate.name, (path[-2], b), gate.params)
        routed.gates.append(moved)
        for s in reversed(swaps):
            routed.gates.append(Gate("swap", s))
    return routed


def routing_overhead(original: Circuit, routed: Circuit) -> float:
    """Fractional gate-count increase introduced by routing."""
    if len(original) == 0:
        return 0.0
    return (len(routed) - len(original)) / len(original)
