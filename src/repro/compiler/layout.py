"""Qubit layout passes: map logical circuit qubits onto physical qubits.

Two strategies, mirroring Qiskit optimization levels:

* :func:`trivial_layout` (levels 0-2): logical qubit i -> physical qubit i.
* :func:`noise_adaptive_layout` (level 3): choose the connected physical
  subset minimizing total gate + readout error, which is the
  "noise-adaptive qubit mapping" the paper enables for Table 7.
"""

from __future__ import annotations

import itertools

from repro.circuits.circuit import Circuit
from repro.compiler.coupling import CouplingMap
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.noise.model import NoiseModel


def trivial_layout(n_logical: int, n_physical: int) -> "dict[int, int]":
    """Identity mapping: logical i -> physical i."""
    if n_logical > n_physical:
        raise ValueError(
            f"circuit needs {n_logical} qubits but device has {n_physical}"
        )
    return {i: i for i in range(n_logical)}


def _layout_cost(
    subset: "tuple[int, ...]",
    coupling: CouplingMap,
    noise_model: NoiseModel,
) -> float:
    """Badness of running on a physical subset: node + internal edge errors."""
    cost = sum(noise_model.qubit_quality_cost(q) for q in subset)
    members = set(subset)
    for a, b in itertools.combinations(subset, 2):
        if coupling.are_adjacent(a, b) and a in members and b in members:
            cost += noise_model.edge_cost(a, b)
    return cost


def noise_adaptive_layout(
    n_logical: int,
    coupling: CouplingMap,
    noise_model: NoiseModel,
) -> "dict[int, int]":
    """Pick the least-noisy connected physical subset and order it.

    For small devices (<= 6 qubits) all connected subsets are enumerated;
    for larger chips a greedy expansion from the best seed qubit is used.
    Within the chosen subset, logical qubits are assigned along a path-ish
    ordering (sorted by quality) so ring entanglers route cheaply.
    """
    if n_logical > coupling.n_qubits:
        raise ValueError(
            f"circuit needs {n_logical} qubits but device has {coupling.n_qubits}"
        )
    if coupling.n_qubits <= 6:
        candidates = coupling.connected_subsets(n_logical)
        best = min(candidates, key=lambda s: _layout_cost(s, coupling, noise_model))
    else:
        best = _greedy_subset(n_logical, coupling, noise_model)
    ordered = sorted(best)
    return {logical: physical for logical, physical in enumerate(ordered)}


def _greedy_subset(
    n_logical: int, coupling: CouplingMap, noise_model: NoiseModel
) -> "tuple[int, ...]":
    seed = min(range(coupling.n_qubits), key=noise_model.qubit_quality_cost)
    subset = {seed}
    while len(subset) < n_logical:
        frontier = {
            nb for q in subset for nb in coupling.neighbors(q) if nb not in subset
        }
        if not frontier:
            raise ValueError("device coupling graph too fragmented for layout")
        best_next = min(
            frontier,
            key=lambda nb: noise_model.qubit_quality_cost(nb)
            + min(
                noise_model.edge_cost(nb, q)
                for q in subset
                if coupling.are_adjacent(nb, q)
            ),
        )
        subset.add(best_next)
    return tuple(sorted(subset))


def apply_layout(circuit: Circuit, layout: "dict[int, int]", n_physical: int) -> Circuit:
    """Relabel circuit qubits through the layout onto the physical register."""
    mapped = Circuit(n_physical)
    for gate in circuit.gates:
        mapped.gates.append(gate.remapped(layout))
    return mapped
