"""Peephole cleanup on basis-gate circuits (optimization levels >= 1).

Rewrites applied to fixpoint:

* merge consecutive ``rz`` on the same qubit (affine expressions add),
* drop ``rz`` whose angle is a constant multiple of 2*pi,
* cancel adjacent self-inverse pairs: ``x x`` and identical ``cx cx``,
* fuse ``sx sx -> x`` (equal up to global phase).

"Adjacent" means consecutive with no intervening gate touching any of the
same qubits, tracked with a per-qubit frontier.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit, Gate
from repro.circuits.parameters import ParamExpr

_TWO_PI = 2.0 * np.pi


def _is_zero_rotation(expr: ParamExpr) -> bool:
    if not expr.is_constant:
        return False
    return bool(np.isclose(expr.const % _TWO_PI, 0.0, atol=1e-12)) or bool(
        np.isclose(expr.const % _TWO_PI, _TWO_PI, atol=1e-12)
    )


def _cleanup_once(gates: "list[Gate]", n_qubits: int) -> "tuple[list[Gate], bool]":
    out: "list[Gate | None]" = []
    # For each qubit, index in `out` of the last gate touching it (or None).
    last_on_qubit: "list[int | None]" = [None] * n_qubits
    changed = False

    def previous_gate(gate: Gate) -> "tuple[int, Gate] | None":
        """The immediately preceding live gate if it covers the same qubits."""
        indices = {last_on_qubit[q] for q in gate.qubits}
        if len(indices) != 1 or None in indices:
            return None
        idx = indices.pop()
        prev = out[idx]
        if prev is None or set(prev.qubits) != set(gate.qubits):
            return None
        return idx, prev

    for gate in gates:
        if gate.name == "rz" and _is_zero_rotation(gate.params[0]):
            changed = True
            continue
        prev_entry = previous_gate(gate)
        if prev_entry is not None:
            idx, prev = prev_entry
            if gate.name == "rz" and prev.name == "rz":
                merged = prev.params[0] + gate.params[0]
                out[idx] = None
                changed = True
                if not _is_zero_rotation(merged):
                    out.append(Gate("rz", gate.qubits, (merged,)))
                    last_on_qubit[gate.qubits[0]] = len(out) - 1
                else:
                    last_on_qubit[gate.qubits[0]] = None
                continue
            if gate.name == "x" and prev.name == "x":
                out[idx] = None
                last_on_qubit[gate.qubits[0]] = None
                changed = True
                continue
            if gate.name == "sx" and prev.name == "sx":
                out[idx] = None
                out.append(Gate("x", gate.qubits))
                last_on_qubit[gate.qubits[0]] = len(out) - 1
                changed = True
                continue
            if (
                gate.name == "cx"
                and prev.name == "cx"
                and gate.qubits == prev.qubits
            ):
                out[idx] = None
                for q in gate.qubits:
                    last_on_qubit[q] = None
                changed = True
                continue
        out.append(gate)
        for q in gate.qubits:
            last_on_qubit[q] = len(out) - 1

    return [g for g in out if g is not None], changed


def cleanup(circuit: Circuit, max_rounds: int = 16) -> Circuit:
    """Apply peephole rewrites to fixpoint."""
    gates = list(circuit.gates)
    for _ in range(max_rounds):
        gates, changed = _cleanup_once(gates, circuit.n_qubits)
        if not changed:
            break
    return Circuit(circuit.n_qubits, gates)
