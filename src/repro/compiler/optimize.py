"""Commutation-aware circuit optimization passes.

The peephole :mod:`repro.compiler.cleanup` only sees *adjacent* gate
pairs.  These passes use the commutation oracle from
:mod:`repro.circuits.dag` to cancel and merge gates separated by
commuting spectators -- e.g. the two CX of an ``rzz`` lowering merge with
neighbouring CX even when an ``rz`` sits on the control wire between
them.  All rewrites preserve the circuit's unitary up to global phase and
keep gate angles affine in the original parameters, so optimized circuits
stay exactly differentiable.

Passes
------
* :func:`cancel_inverse_pairs` -- drop ``G ... G^-1`` with commuting gates
  between.
* :func:`merge_rotations` -- fuse same-axis rotations across commuting
  spectators, dropping merged rotations that are constant multiples of
  2*pi.
* :func:`resynthesize_1q_runs` -- collapse runs of >= 3 constant
  single-qubit gates into a minimal ``rz``/``sx`` Euler sequence.
* :func:`optimize_circuit` -- all of the above, to fixpoint.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit, Gate
from repro.circuits.dag import gates_commute
from repro.circuits.parameters import ParamExpr
from repro.compiler.decompositions import euler_zyz

_TWO_PI = 2.0 * np.pi

#: Self-inverse gates (cancel when the pair acts on identical qubits).
_SELF_INVERSE = frozenset({"x", "y", "z", "h", "cx", "cz", "cy", "swap", "id"})

#: name -> inverse-name pairs.
_DAGGERS = {
    "s": "sdg", "sdg": "s",
    "t": "tdg", "tdg": "t",
    "sx": "sxdg", "sxdg": "sx",
    "sh": "shdg", "shdg": "sh",
}

#: Single-axis rotations that fuse by adding angles.
_MERGEABLE_ROTATIONS = frozenset(
    {"rx", "ry", "rz", "u1", "rxx", "ryy", "rzz", "rzx", "crx", "cry", "crz"}
)

#: Rotations where a 2*pi multiple is identity up to global phase.
_PERIODIC_2PI = frozenset({"rx", "ry", "rz", "rxx", "ryy", "rzz", "rzx"})


def _is_inverse_pair(a: Gate, b: Gate) -> bool:
    if a.qubits != b.qubits:
        return False
    if a.name in _SELF_INVERSE and a.name == b.name:
        return True
    return _DAGGERS.get(a.name) == b.name


def _is_removable_rotation(name: str, expr: ParamExpr) -> bool:
    """Constant rotation that is the identity (up to global phase)."""
    if not expr.is_constant:
        return False
    period = _TWO_PI if name in _PERIODIC_2PI or name == "u1" else 2 * _TWO_PI
    remainder = expr.const % period
    return bool(
        np.isclose(remainder, 0.0, atol=1e-12)
        or np.isclose(remainder, period, atol=1e-12)
    )


def _walk_and_rewrite(circuit: Circuit, match) -> "tuple[list[Gate], bool]":
    """Shared scan: for each gate, walk forward past commuting gates.

    ``match(a, b)`` returns a replacement gate list for the *pair* (which
    may be empty, meaning cancel both) or ``None`` when the pair does not
    interact.  The walk on gate ``a`` stops at the first overlapping,
    non-commuting gate.
    """
    gates: "list[Gate | None]" = list(circuit.gates)
    changed = False
    for i, a in enumerate(gates):
        if a is None:
            continue
        for j in range(i + 1, len(gates)):
            b = gates[j]
            if b is None:
                continue
            if not set(a.qubits) & set(b.qubits):
                continue
            replacement = match(a, b)
            if replacement is not None:
                gates[i] = None
                gates[j] = None
                # Insert replacement where b stood (it is already past
                # every gate a commuted with).
                for offset, gate in enumerate(replacement):
                    gates.insert(j + 1 + offset, gate)
                changed = True
                break
            if gates_commute(a, b):
                continue
            break
    return [g for g in gates if g is not None], changed


def cancel_inverse_pairs(circuit: Circuit) -> Circuit:
    """Cancel ``G ... G^-1`` pairs separated by commuting gates only."""

    def match(a: Gate, b: Gate) -> "list[Gate] | None":
        if _is_inverse_pair(a, b):
            return []
        return None

    gates, _ = _walk_and_rewrite(circuit, match)
    return Circuit(circuit.n_qubits, gates)


def merge_rotations(circuit: Circuit) -> Circuit:
    """Fuse same-axis rotation pairs across commuting spectators.

    Merged angles are affine sums, so symbolic weight/input angles fuse
    exactly; a merged rotation whose angle is a constant multiple of the
    gate's period is dropped entirely.
    """

    def match(a: Gate, b: Gate) -> "list[Gate] | None":
        if (
            a.name in _MERGEABLE_ROTATIONS
            and a.name == b.name
            and a.qubits == b.qubits
        ):
            merged = a.params[0] + b.params[0]
            if _is_removable_rotation(a.name, merged):
                return []
            return [Gate(a.name, a.qubits, (merged,))]
        return None

    gates = list(circuit.gates)
    # Also drop standalone identity rotations before pairing.
    gates = [
        g
        for g in gates
        if not (
            g.name in _MERGEABLE_ROTATIONS
            and _is_removable_rotation(g.name, g.params[0])
        )
    ]
    out, _ = _walk_and_rewrite(Circuit(circuit.n_qubits, gates), match)
    return Circuit(circuit.n_qubits, out)


def resynthesize_1q_runs(circuit: Circuit, min_run: int = 3) -> Circuit:
    """Collapse constant single-qubit runs into minimal Euler sequences.

    A run is a maximal stretch of consecutive constant-parameter 1q gates
    on one qubit (no other gate touching that qubit between them).  Runs
    of at least ``min_run`` gates are replaced by their ZYZ synthesis:
    a single ``rz`` when the product is diagonal, otherwise the 5-gate
    ``rz sx rz sx rz`` sequence.  Symbolic-parameter gates break runs, so
    differentiability is untouched.
    """
    gates = list(circuit.gates)
    runs: "list[list[int]]" = []
    open_run: "dict[int, list[int]]" = {}
    for index, gate in enumerate(gates):
        if (
            len(gate.qubits) == 1
            and all(p.is_constant for p in gate.params)
            and gate.name != "id"
        ):
            open_run.setdefault(gate.qubits[0], []).append(index)
            continue
        for q in gate.qubits:
            run = open_run.pop(q, None)
            if run and len(run) >= min_run:
                runs.append(run)
    for run in open_run.values():
        if len(run) >= min_run:
            runs.append(run)

    if not runs:
        return circuit

    replacements: "dict[int, list[Gate]]" = {}
    dropped: "set[int]" = set()
    for run in runs:
        qubit = gates[run[0]].qubits[0]
        product = np.eye(2, dtype=complex)
        for index in run:
            gate = gates[index]
            values = tuple(float(p.const) for p in gate.params)
            product = gate.definition.matrix(values) @ product
        synthesis = _synthesize_1q(product, qubit)
        if len(synthesis) >= len(run):
            continue  # only rewrite when strictly shorter
        replacements[run[-1]] = synthesis
        dropped.update(run[:-1])

    out: "list[Gate]" = []
    for index, gate in enumerate(gates):
        if index in dropped:
            continue
        if index in replacements:
            out.extend(replacements[index])
        else:
            out.append(gate)
    return Circuit(circuit.n_qubits, out)


def _synthesize_1q(matrix: np.ndarray, qubit: int) -> "list[Gate]":
    """Minimal basis-gate sequence for a constant 2x2 unitary."""
    if np.allclose(np.abs(matrix), np.eye(2), atol=1e-12):
        # Diagonal: a single rz (or nothing for identity-up-to-phase).
        angle = float(np.angle(matrix[1, 1]) - np.angle(matrix[0, 0]))
        if np.isclose(angle % _TWO_PI, 0.0, atol=1e-12) or np.isclose(
            angle % _TWO_PI, _TWO_PI, atol=1e-12
        ):
            return []
        return [Gate("rz", (qubit,), (ParamExpr.constant(angle),))]
    theta, phi, lam = euler_zyz(matrix)
    q = (qubit,)
    return [
        Gate("rz", q, (ParamExpr.constant(lam),)),
        Gate("sx", q),
        Gate("rz", q, (ParamExpr.constant(theta + np.pi),)),
        Gate("sx", q),
        Gate("rz", q, (ParamExpr.constant(phi + np.pi),)),
    ]


def optimize_circuit(circuit: Circuit, max_rounds: int = 8) -> Circuit:
    """Run all passes to fixpoint (bounded by ``max_rounds``)."""
    current = circuit
    for _ in range(max_rounds):
        before = len(current)
        current = cancel_inverse_pairs(current)
        current = merge_rotations(current)
        current = resynthesize_1q_runs(current)
        if len(current) >= before:
            break
    return current
