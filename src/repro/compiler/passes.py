"""The transpile pipeline: lower -> layout -> route -> lower -> cleanup.

Mirrors Qiskit's ``transpile(optimization_level=...)`` levels used in the
paper (level 2 for the main experiments, level 3 -- noise-adaptive layout
-- for Table 7):

* level 0: lowering + trivial layout + routing, no cleanup
* level 1: + peephole cleanup
* level 2: + cleanup to fixpoint (default in this library, as in paper)
* level 3: noise-adaptive layout instead of trivial, + cleanup

The result is a :class:`CompiledCircuit`: a basis-gate circuit *compacted*
onto its used qubits (unused physical qubits are simulated away), plus
the mapping back to physical ids (for noise lookup) and to logical qubits
(for measurement).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import Circuit
from repro.compiler.cleanup import cleanup
from repro.compiler.decompositions import BASIS_GATES, lower_to_basis
from repro.compiler.optimize import optimize_circuit
from repro.compiler.layout import (
    apply_layout,
    noise_adaptive_layout,
    trivial_layout,
)
from repro.compiler.routing import route
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.noise.devices import Device


@dataclass(frozen=True)
class CompiledCircuit:
    """A circuit compiled for a device.

    Attributes
    ----------
    circuit:
        Basis-gate circuit on a *compact* register (one qubit per used
        physical qubit, relabeled 0..k-1).
    physical_qubits:
        ``physical_qubits[i]`` is the physical id of compact qubit ``i``.
    layout:
        Logical -> physical mapping chosen by the layout pass.
    measure_qubits:
        ``measure_qubits[q]`` is the *compact* index holding logical qubit
        ``q`` -- measurement results must be gathered in this order.
    device_name:
        Name of the device this was compiled for.
    """

    circuit: Circuit
    physical_qubits: "tuple[int, ...]"
    layout: "dict[int, int]"
    measure_qubits: "tuple[int, ...]"
    device_name: str

    @property
    def n_logical(self) -> int:
        return len(self.layout)

    @property
    def bind_plan(self):
        """The circuit's bind cache (constant gates bound exactly once).

        Delegates to :func:`~repro.sim.statevector.bind_plan_for`, which
        memoizes the plan on the circuit itself with a staleness check --
        so every bind path over this circuit shares one invalidation
        policy.  Executors re-evaluate only weight/input-dependent gates
        per training step.
        """
        from repro.sim.statevector import bind_plan_for

        return bind_plan_for(self.circuit)

    def readout_matrices(self, noise_model) -> np.ndarray:
        """Readout confusion matrices in *logical* qubit order."""
        return np.stack(
            [
                noise_model.readout_for(self.layout[q])
                for q in range(self.n_logical)
            ]
        )


def _compact(
    circuit: Circuit, layout: "dict[int, int]"
) -> "tuple[Circuit, tuple[int, ...], tuple[int, ...]]":
    """Drop untouched physical qubits and relabel to 0..k-1."""
    used = sorted({q for g in circuit.gates for q in g.qubits} | set(layout.values()))
    to_compact = {phys: i for i, phys in enumerate(used)}
    compact = Circuit(len(used))
    for gate in circuit.gates:
        compact.gates.append(gate.remapped(to_compact))
    measure = tuple(to_compact[layout[q]] for q in sorted(layout))
    return compact, tuple(used), measure


def transpile(
    circuit: Circuit,
    device: Device,
    optimization_level: int = 2,
) -> CompiledCircuit:
    """Compile a logical circuit for a device.

    The paper sets Qiskit's optimization level to 2 for all main
    experiments and to 3 (noise-adaptive) for Table 7.
    """
    if not 0 <= optimization_level <= 3:
        raise ValueError(f"optimization level must be 0..3, got {optimization_level}")

    lowered = lower_to_basis(circuit)
    if optimization_level >= 3:
        layout = noise_adaptive_layout(
            circuit.n_qubits, device.coupling, device.noise_model
        )
    else:
        layout = trivial_layout(circuit.n_qubits, device.n_qubits)
    placed = apply_layout(lowered, layout, device.n_qubits)
    routed = route(placed, device.coupling)
    # Routing may introduce `swap` gates; lower those to CX triples.
    final = lower_to_basis(routed)
    if optimization_level >= 1:
        final = cleanup(final)
    if optimization_level >= 2:
        # Commutation-aware cancellation/merging on top of the peephole
        # pass; a final cleanup re-normalizes any freshly adjacent pairs.
        final = optimize_circuit(final)
        final = cleanup(final)

    unknown = {g.name for g in final.gates} - BASIS_GATES
    if unknown:
        raise RuntimeError(f"non-basis gates survived transpilation: {unknown}")

    compact, physical, measure = _compact(final, layout)
    return CompiledCircuit(compact, physical, layout, measure, device.name)
