"""Superoperator compilation: bound gates + noise channels as one matrix.

The exact noisy density backend ("evaluation with noise model", paper
Table 11) historically walked every gate through a per-Kraus Python
loop: one ``U rho U^dag`` for the gate, then -- per operand qubit -- four
more round trips for the Pauli channel and another for the coherent
miscalibration rotation, each paying two transpose+contract passes over
the density.  This pass precompiles all of that away:

* **Per-site superoperators**: every bound gate is combined with its
  Pauli channel(s), its exact thermal-relaxation (amplitude + phase
  damping) channel(s) when the model carries T1/T2
  (:meth:`repro.noise.model.NoiseModel.relaxation_kraus_for`), and its
  coherent miscalibration into a single ``(4**k, 4**k)`` superoperator
  on the gate's support (k <= 2), in the
  :func:`~repro.sim.density.unitary_superop` index convention.  Channel
  factors depend only on the noise model, so they are built once per
  plan; gate factors follow the bind-plan classification (constant /
  weight-only / input-dependent).
* **Readout as a terminal measurement superop**: each qubit's confusion
  matrix compiles into the POVM-style channel of
  :func:`repro.noise.readout.readout_povm_kraus`, fused pairwise and
  appended to the stream, so the full realistic noise model -- gates,
  Pauli + relaxation channels, coherent errors *and* readout -- runs as
  one compiled operator stream.
* **Segment fusion**: runs of per-site superoperators whose combined
  support stays within two qubits are merged into fused segment
  operators, mirroring :mod:`repro.compiler.fusion` -- a ~200-gate
  transpiled QNN block collapses to a few dozen matrices.
* **Caching**: fused static segments (constant or weight-only gates) are
  retained per weight vector in a small LRU; only input-dependent
  encoder sites are rebuilt per call, as batched superoperators.

The compiled stream applies through
:func:`repro.sim.density.apply_superop_to_density` (one transpose + one
GEMM per fused operator); ``run_noisy_density_reference`` retains the
per-Kraus loop and the equivalence suite (plus the cross-backend
harness in ``tests/test_cross_backend.py``) holds the two to < 1e-10.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.compiler.passes import CompiledCircuit
    from repro.noise.model import NoiseModel
from repro.sim.density import kraus_superop, superop_is_diagonal, unitary_superop
from repro.sim.kraus import pauli_channel
from repro.sim.statevector import SmallLRU, bind_plan_for, weights_key

_EYE2 = np.eye(2, dtype=complex)

#: Fused static superop segments retained per plan, keyed on weight bytes.
_SUPEROP_CACHE_SIZE = 4

#: Compiled plans retained per circuit (distinct noise model / factor pairs).
_PLAN_CACHE_SIZE = 8


def cached_noise_plan(circuit, attr: str, noise_model, noise_factor, build):
    """Per-circuit cache of noise-model-keyed execution plans.

    The shared memoization policy of the compiled noisy backends
    (:func:`superop_plan_for` here, the trajectory segment plan in
    :mod:`repro.noise.trajectory`): rows live in the ``attr`` list on
    the circuit, match by noise-model identity plus factor, invalidate
    through the plan's ``bind_plan.stale`` check when the circuit's gate
    list changes, and trim FIFO at :data:`_PLAN_CACHE_SIZE`.
    """
    rows = getattr(circuit, attr, None)
    if rows is None:
        rows = []
        setattr(circuit, attr, rows)
    stale = [row for row in rows if row[2].bind_plan.stale(circuit)]
    for row in stale:
        rows.remove(row)
    for model_ref, factor, plan in rows:
        if model_ref is noise_model and factor == noise_factor:
            return plan
    plan = build()
    rows.append((noise_model, noise_factor, plan))
    if len(rows) > _PLAN_CACHE_SIZE:
        del rows[0]
    return plan


class SuperOp:
    """A compiled channel ready for ``apply_superop_to_density``.

    ``matrix`` is ``(4**k, 4**k)`` shared or ``(batch, 4**k, 4**k)``
    per-sample; ``diagonal`` is precomputed so the density kernel's
    structured fast path never re-scans the matrix per call.
    """

    __slots__ = ("qubits", "matrix", "batched", "diagonal", "n_merged")

    def __init__(self, qubits, matrix, n_merged: int = 1):
        self.qubits = tuple(qubits)
        self.matrix = matrix
        self.batched = matrix.ndim == 3
        self.diagonal = superop_is_diagonal(matrix)
        self.n_merged = n_merged


def embed_superop(superop: np.ndarray, qubits, support) -> np.ndarray:
    """Expand a superoperator from ``qubits`` onto ``support``.

    Both are qubit tuples in the engine convention (first entry is the
    least significant bit of the operator index).  Handles the same-pair
    reversal and 1q-into-2q cases -- exactly the supports segment fusion
    can produce -- for shared and per-sample (batched) matrices.
    """
    if tuple(qubits) == tuple(support):
        return superop
    batched = superop.ndim == 3
    if len(qubits) == 2:
        # Same pair, reversed order: swap the bit roles of the row and
        # column indices on both sides of the superoperator.
        if batched:
            t = superop.reshape((-1,) + (2,) * 8)
            t = t.transpose(0, 2, 1, 4, 3, 6, 5, 8, 7)
            return np.ascontiguousarray(t.reshape(-1, 16, 16))
        t = superop.reshape((2,) * 8)
        return np.ascontiguousarray(
            t.transpose(1, 0, 3, 2, 5, 4, 7, 6).reshape(16, 16)
        )
    (q,) = qubits
    # The (16, 16) tensor axes are [r1, r0, c1, c0] on each side; a 1q
    # superoperator touches (r0, c0) on the low bit or (r1, c1) on the
    # high bit, with deltas on the untouched pair.
    if batched:
        t = superop.reshape((-1,) + (2,) * 4)
        if q == support[0]:
            full = np.einsum("ae,cg,zbdfh->zabcdefgh", _EYE2, _EYE2, t)
        else:
            full = np.einsum("bf,dh,zaceg->zabcdefgh", _EYE2, _EYE2, t)
        return np.ascontiguousarray(full.reshape(-1, 16, 16))
    t = superop.reshape((2,) * 4)
    if q == support[0]:
        full = np.einsum("ae,cg,bdfh->abcdefgh", _EYE2, _EYE2, t)
    else:
        full = np.einsum("bf,dh,aceg->abcdefgh", _EYE2, _EYE2, t)
    return np.ascontiguousarray(full.reshape(16, 16))


def _materialize(run: "list[SuperOp]", support: "tuple[int, ...]") -> SuperOp:
    """Collapse a superoperator run into one channel on its support."""
    if len(run) == 1:
        return run[0]
    matrix = embed_superop(run[0].matrix, run[0].qubits, support)
    for op in run[1:]:
        # The later channel acts after, i.e. multiplies from the left.
        matrix = np.matmul(embed_superop(op.matrix, op.qubits, support), matrix)
    return SuperOp(support, matrix, sum(op.n_merged for op in run))


def fuse_superops(ops: "list[SuperOp]", max_qubits: int = 2) -> "list[SuperOp]":
    """Greedy left-to-right fusion of adjacent superoperator runs.

    The superoperator analogue of
    :func:`repro.compiler.fusion.fuse_bound_ops`: consecutive channels
    whose combined support stays within ``max_qubits`` merge into one
    matrix.  Channel composition is plain matrix multiplication in
    superoperator form, so noise channels fuse as freely as unitaries --
    no Kraus-product explosion.
    """
    if not 1 <= max_qubits <= 2:
        raise ValueError("max_qubits must be 1 or 2")
    fused: "list[SuperOp]" = []
    run: "list[SuperOp]" = []
    support: "set[int]" = set()
    for op in ops:
        qubits = set(op.qubits)
        if run and len(support | qubits) <= max_qubits:
            run.append(op)
            support |= qubits
            continue
        if run:
            fused.append(_materialize(run, tuple(sorted(support))))
        run, support = [op], qubits
    if run:
        fused.append(_materialize(run, tuple(sorted(support))))
    return fused


def _site_channel(gate, phys: "tuple[int, ...]", noise_model) -> "np.ndarray | None":
    """The constant noise superoperator following one gate site, or None.

    Composes -- in the reference backend's application order -- the Pauli
    channel on each operand qubit, the exact thermal-relaxation channel
    on each operand (when the model carries T1/T2), then the coherent
    miscalibration rotation on each driven operand, all embedded onto
    the gate's own support.  Depends only on the (scaled) noise model,
    never on bound parameters, so it is computed once per plan.
    """
    from repro.noise.model import VIRTUAL_GATES
    from repro.noise.trajectory import _coherent_unitary

    channel: "np.ndarray | None" = None
    for local_q, (_phys_q, error) in zip(
        gate.qubits, noise_model.gate_errors(gate.name, phys)
    ):
        if error.total <= 0:
            continue
        one = kraus_superop(pauli_channel(error.px, error.py, error.pz))
        one = embed_superop(one, (local_q,), gate.qubits)
        channel = one if channel is None else np.matmul(one, channel)
    if gate.name not in VIRTUAL_GATES:
        for local_q, phys_q in zip(gate.qubits, phys):
            kraus = noise_model.relaxation_kraus_for(phys_q, len(gate.qubits))
            if kraus is None:
                continue
            one = embed_superop(kraus_superop(kraus), (local_q,), gate.qubits)
            channel = one if channel is None else np.matmul(one, channel)
    if gate.name not in ("rz", "id"):
        for local_q, phys_q in zip(gate.qubits, phys):
            coherent = noise_model.coherent_for(phys_q)
            if coherent is None:
                continue
            one = unitary_superop(_coherent_unitary(*coherent))
            one = embed_superop(one, (local_q,), gate.qubits)
            channel = one if channel is None else np.matmul(one, channel)
    return channel


def _readout_superops(compiled: "CompiledCircuit", noise_model) -> "list[SuperOp]":
    """Per-qubit readout confusion as a fused terminal superop stage.

    Each qubit's confusion matrix becomes the measure-and-reprepare POVM
    channel (:func:`repro.noise.readout.readout_povm_kraus`); identity
    matrices compile to nothing and adjacent qubits fuse pairwise.  The
    stage is terminal, so erasing coherences is harmless and the
    diagonal action matches the probability-space reference exactly.
    """
    from repro.noise.readout import readout_povm_kraus

    ops: "list[SuperOp]" = []
    for local_q in range(compiled.circuit.n_qubits):
        matrix = noise_model.readout_for(compiled.physical_qubits[local_q])
        if np.allclose(matrix, _EYE2.real, atol=0.0):
            continue
        ops.append(SuperOp((local_q,), kraus_superop(readout_povm_kraus(matrix))))
    return fuse_superops(ops)


class SuperopPlan:
    """Compiled per-site superoperators for one (circuit, noise model).

    Construction precomputes every gate site's noise channel, the
    static/dynamic layout and the terminal readout stage;
    :meth:`superops` binds the circuit (through the shared bind cache),
    attaches the channels, and fuses static spans -- cached per weight
    vector -- while input-dependent encoder sites pass through as
    per-sample batched superoperators.
    """

    __slots__ = (
        "bind_plan", "_channels", "_layout", "_cache", "_site_cache",
        "_readout", "_train_layout", "_train_static_sites",
        "_train_segments", "_train_site_cache",
    )

    def __init__(
        self,
        compiled: "CompiledCircuit",
        noise_model: "NoiseModel",
        noise_factor: float = 1.0,
    ):
        circuit = compiled.circuit
        self.bind_plan = bind_plan_for(circuit)
        scaled = (
            noise_model.scaled(noise_factor)
            if noise_factor != 1.0
            else noise_model
        )
        self._channels = [
            _site_channel(
                gate,
                tuple(compiled.physical_qubits[q] for q in gate.qubits),
                scaled,
            )
            for gate in circuit.gates
        ]
        from repro.compiler.fusion import static_dynamic_layout

        self._layout = static_dynamic_layout(circuit)
        self._cache = SmallLRU(_SUPEROP_CACHE_SIZE)
        self._site_cache = SmallLRU(_SUPEROP_CACHE_SIZE)
        # Readout is unscaled by the noise factor (paper convention), so
        # the stage is built from the original model.
        self._readout = _readout_superops(compiled, noise_model)
        # Training-path layout: runs of *constant-parameter* sites (no
        # gradient flows through them, their superops never change)
        # interleaved with the differentiable sites the adjoint sweep
        # stores pre-densities for.  Constant runs fuse into segment
        # operators exactly once per plan -- see :meth:`training_stream`.
        train_layout: "list[tuple]" = []
        run: "list[int]" = []
        static_sites: "set[int]" = set()
        for i, gate in enumerate(circuit.gates):
            if any(not expr.is_constant for expr in gate.params):
                if run:
                    train_layout.append(("const", run))
                    run = []
                train_layout.append(("site", i))
                if not any(expr.depends_on_input for expr in gate.params):
                    static_sites.add(i)
            else:
                run.append(i)
        if run:
            train_layout.append(("const", run))
        self._train_layout = train_layout
        self._train_static_sites = static_sites
        self._train_segments: "list[list[SuperOp]] | None" = None
        self._train_site_cache = SmallLRU(_SUPEROP_CACHE_SIZE)

    def channel(self, index: int) -> "np.ndarray | None":
        """Gate site ``index``'s constant noise superoperator (or None).

        Exposed for the density training backend, whose adjoint sweep
        needs the channel factor separated from the (differentiable)
        gate factor.
        """
        return self._channels[index]

    def site_superop(self, op, index: int) -> SuperOp:
        """One bound gate's superoperator with its noise channel attached."""
        matrix = unitary_superop(op.matrix)
        channel = self._channels[index]
        if channel is not None:
            matrix = np.matmul(channel, matrix)
        return SuperOp(op.qubits, matrix)

    def _cached_static_superops(
        self, ops: list, weights, cache: SmallLRU, indices
    ) -> "dict[int, SuperOp]":
        """Weight-keyed cache of per-site superops for ``indices``.

        The shared caching policy of :meth:`site_superops` and
        :meth:`training_stream`: static sites' superops depend only on
        the weight vector, so each consumer keeps one small LRU over
        its own site-index set and rebuilds only on a fresh vector.
        """
        key = weights_key(weights)
        static = cache.get(key)
        if static is None:
            static = {i: self.site_superop(ops[i], i) for i in indices}
            cache.put(key, static)
        return static

    def site_superops(
        self,
        weights: "np.ndarray | None" = None,
        inputs: "np.ndarray | None" = None,
        batch: "int | None" = None,
    ) -> "list[tuple]":
        """The *unfused* per-site stream: ``[(bound op, SuperOp), ...]``.

        The training backend needs one superoperator per gate site (its
        adjoint sweep stores pre-site densities and differentiates the
        gate factor), so segment fusion does not apply -- but the static
        sites' superops depend only on the weight vector and are cached
        per weights here, mirroring :meth:`_static_segments`; only
        input-dependent encoder sites rebuild per call.
        """
        ops = self.bind_plan.bind(weights, inputs, batch)
        static = self._cached_static_superops(
            ops, weights, self._site_cache,
            (
                i
                for kind, start, end in self._layout
                if kind == "static"
                for i in range(start, end)
            ),
        )
        out: "list[tuple]" = []
        for kind, start, end in self._layout:
            if kind == "static":
                out.extend((ops[i], static[i]) for i in range(start, end))
            else:
                out.append((ops[start], self.site_superop(ops[start], start)))
        return out

    def training_stream(
        self,
        weights: "np.ndarray | None" = None,
        inputs: "np.ndarray | None" = None,
        batch: "int | None" = None,
    ) -> "list[tuple]":
        """The adjoint-training stream with constant runs pre-fused.

        Yields ``("segment", SuperOp)`` for fused runs of
        constant-parameter sites (no gradient flows through them, so the
        backward sweep only transposes the merged matrix) and
        ``("site", bound op, SuperOp, index)`` for differentiable sites
        (which keep their per-site superop so the sweep can store
        pre-site densities and separate the channel factor).  Constant
        segments depend on neither weights nor inputs and are fused
        exactly once per plan -- every minibatch, epoch and weight
        vector reuses them; weight-only differentiable sites are cached
        per weight vector, and only input-dependent encoder sites
        rebuild per call.
        """
        ops = self.bind_plan.bind(weights, inputs, batch)
        if self._train_segments is None:
            self._train_segments = [
                fuse_superops(
                    [self.site_superop(ops[i], i) for i in indices]
                )
                for kind, indices in self._train_layout
                if kind == "const"
            ]
        static = self._cached_static_superops(
            ops, weights, self._train_site_cache, self._train_static_sites
        )
        segments = iter(self._train_segments)
        out: "list[tuple]" = []
        for kind, payload in self._train_layout:
            if kind == "const":
                out.extend(("segment", op) for op in next(segments))
            else:
                superop = static.get(payload)
                if superop is None:
                    superop = self.site_superop(ops[payload], payload)
                out.append(("site", ops[payload], superop, payload))
        return out

    def _static_segments(self, ops: list, weights) -> "list[list[SuperOp]]":
        key = weights_key(weights)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        segments = [
            fuse_superops(
                [self.site_superop(ops[i], i) for i in range(start, end)]
            )
            for kind, start, end in self._layout
            if kind == "static"
        ]
        self._cache.put(key, segments)
        return segments

    def superops(
        self,
        weights: "np.ndarray | None" = None,
        inputs: "np.ndarray | None" = None,
        batch: "int | None" = None,
        include_readout: bool = False,
    ) -> "list[SuperOp]":
        """The compiled channel stream for one noisy-inference call.

        ``include_readout`` appends the terminal readout-confusion
        superops, making the stream the *complete* noise model -- the
        caller must then skip the probability-space readout application.
        """
        ops = self.bind_plan.bind(weights, inputs, batch)
        segments = iter(self._static_segments(ops, weights))
        out: "list[SuperOp]" = []
        for kind, start, _end in self._layout:
            if kind == "static":
                out.extend(next(segments))
            else:
                out.append(self.site_superop(ops[start], start))
        if include_readout:
            out.extend(self._readout)
        return out


def superop_plan_for(
    compiled: "CompiledCircuit",
    noise_model: "NoiseModel",
    noise_factor: float = 1.0,
) -> SuperopPlan:
    """The cached :class:`SuperopPlan` for a compiled circuit + model.

    Plans are memoized on the circuit (one row per distinct
    ``(noise model, factor)`` pair, matched by identity, bounded FIFO)
    and rebuilt when the circuit's gate list goes stale -- the same
    invalidation policy as the bind and fusion plans.
    """
    return cached_noise_plan(
        compiled.circuit, "_superop_plans", noise_model, noise_factor,
        lambda: SuperopPlan(compiled, noise_model, noise_factor),
    )
