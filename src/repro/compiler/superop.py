"""Superoperator compilation: bound gates + noise channels as one matrix.

The exact noisy density backend ("evaluation with noise model", paper
Table 11) historically walked every gate through a per-Kraus Python
loop: one ``U rho U^dag`` for the gate, then -- per operand qubit -- four
more round trips for the Pauli channel and another for the coherent
miscalibration rotation, each paying two transpose+contract passes over
the density.  This pass precompiles all of that away:

* **Per-site superoperators**: every bound gate is combined with its
  Pauli channel(s) and coherent miscalibration into a single
  ``(4**k, 4**k)`` superoperator on the gate's support (k <= 2), in the
  :func:`~repro.sim.density.unitary_superop` index convention.  Channel
  factors depend only on the noise model, so they are built once per
  plan; gate factors follow the bind-plan classification (constant /
  weight-only / input-dependent).
* **Segment fusion**: runs of per-site superoperators whose combined
  support stays within two qubits are merged into fused segment
  operators, mirroring :mod:`repro.compiler.fusion` -- a ~200-gate
  transpiled QNN block collapses to a few dozen matrices.
* **Caching**: fused static segments (constant or weight-only gates) are
  retained per weight vector in a small LRU; only input-dependent
  encoder sites are rebuilt per call, as batched superoperators.

The compiled stream applies through
:func:`repro.sim.density.apply_superop_to_density` (one transpose + one
GEMM per fused operator); ``run_noisy_density_reference`` retains the
per-Kraus loop and the equivalence suite holds the two to < 1e-10.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.compiler.passes import CompiledCircuit
    from repro.noise.model import NoiseModel
from repro.sim.density import kraus_superop, superop_is_diagonal, unitary_superop
from repro.sim.kraus import pauli_channel
from repro.sim.statevector import SmallLRU, bind_plan_for, weights_key

_EYE2 = np.eye(2, dtype=complex)

#: Fused static superop segments retained per plan, keyed on weight bytes.
_SUPEROP_CACHE_SIZE = 4

#: Compiled plans retained per circuit (distinct noise model / factor pairs).
_PLAN_CACHE_SIZE = 8


def cached_noise_plan(circuit, attr: str, noise_model, noise_factor, build):
    """Per-circuit cache of noise-model-keyed execution plans.

    The shared memoization policy of the compiled noisy backends
    (:func:`superop_plan_for` here, the trajectory segment plan in
    :mod:`repro.noise.trajectory`): rows live in the ``attr`` list on
    the circuit, match by noise-model identity plus factor, invalidate
    through the plan's ``bind_plan.stale`` check when the circuit's gate
    list changes, and trim FIFO at :data:`_PLAN_CACHE_SIZE`.
    """
    rows = getattr(circuit, attr, None)
    if rows is None:
        rows = []
        setattr(circuit, attr, rows)
    stale = [row for row in rows if row[2].bind_plan.stale(circuit)]
    for row in stale:
        rows.remove(row)
    for model_ref, factor, plan in rows:
        if model_ref is noise_model and factor == noise_factor:
            return plan
    plan = build()
    rows.append((noise_model, noise_factor, plan))
    if len(rows) > _PLAN_CACHE_SIZE:
        del rows[0]
    return plan


class SuperOp:
    """A compiled channel ready for ``apply_superop_to_density``.

    ``matrix`` is ``(4**k, 4**k)`` shared or ``(batch, 4**k, 4**k)``
    per-sample; ``diagonal`` is precomputed so the density kernel's
    structured fast path never re-scans the matrix per call.
    """

    __slots__ = ("qubits", "matrix", "batched", "diagonal", "n_merged")

    def __init__(self, qubits, matrix, n_merged: int = 1):
        self.qubits = tuple(qubits)
        self.matrix = matrix
        self.batched = matrix.ndim == 3
        self.diagonal = superop_is_diagonal(matrix)
        self.n_merged = n_merged


def embed_superop(superop: np.ndarray, qubits, support) -> np.ndarray:
    """Expand a superoperator from ``qubits`` onto ``support``.

    Both are qubit tuples in the engine convention (first entry is the
    least significant bit of the operator index).  Handles the same-pair
    reversal and 1q-into-2q cases -- exactly the supports segment fusion
    can produce -- for shared and per-sample (batched) matrices.
    """
    if tuple(qubits) == tuple(support):
        return superop
    batched = superop.ndim == 3
    if len(qubits) == 2:
        # Same pair, reversed order: swap the bit roles of the row and
        # column indices on both sides of the superoperator.
        if batched:
            t = superop.reshape((-1,) + (2,) * 8)
            t = t.transpose(0, 2, 1, 4, 3, 6, 5, 8, 7)
            return np.ascontiguousarray(t.reshape(-1, 16, 16))
        t = superop.reshape((2,) * 8)
        return np.ascontiguousarray(
            t.transpose(1, 0, 3, 2, 5, 4, 7, 6).reshape(16, 16)
        )
    (q,) = qubits
    # The (16, 16) tensor axes are [r1, r0, c1, c0] on each side; a 1q
    # superoperator touches (r0, c0) on the low bit or (r1, c1) on the
    # high bit, with deltas on the untouched pair.
    if batched:
        t = superop.reshape((-1,) + (2,) * 4)
        if q == support[0]:
            full = np.einsum("ae,cg,zbdfh->zabcdefgh", _EYE2, _EYE2, t)
        else:
            full = np.einsum("bf,dh,zaceg->zabcdefgh", _EYE2, _EYE2, t)
        return np.ascontiguousarray(full.reshape(-1, 16, 16))
    t = superop.reshape((2,) * 4)
    if q == support[0]:
        full = np.einsum("ae,cg,bdfh->abcdefgh", _EYE2, _EYE2, t)
    else:
        full = np.einsum("bf,dh,aceg->abcdefgh", _EYE2, _EYE2, t)
    return np.ascontiguousarray(full.reshape(16, 16))


def _materialize(run: "list[SuperOp]", support: "tuple[int, ...]") -> SuperOp:
    """Collapse a superoperator run into one channel on its support."""
    if len(run) == 1:
        return run[0]
    matrix = embed_superop(run[0].matrix, run[0].qubits, support)
    for op in run[1:]:
        # The later channel acts after, i.e. multiplies from the left.
        matrix = np.matmul(embed_superop(op.matrix, op.qubits, support), matrix)
    return SuperOp(support, matrix, sum(op.n_merged for op in run))


def fuse_superops(ops: "list[SuperOp]", max_qubits: int = 2) -> "list[SuperOp]":
    """Greedy left-to-right fusion of adjacent superoperator runs.

    The superoperator analogue of
    :func:`repro.compiler.fusion.fuse_bound_ops`: consecutive channels
    whose combined support stays within ``max_qubits`` merge into one
    matrix.  Channel composition is plain matrix multiplication in
    superoperator form, so noise channels fuse as freely as unitaries --
    no Kraus-product explosion.
    """
    if not 1 <= max_qubits <= 2:
        raise ValueError("max_qubits must be 1 or 2")
    fused: "list[SuperOp]" = []
    run: "list[SuperOp]" = []
    support: "set[int]" = set()
    for op in ops:
        qubits = set(op.qubits)
        if run and len(support | qubits) <= max_qubits:
            run.append(op)
            support |= qubits
            continue
        if run:
            fused.append(_materialize(run, tuple(sorted(support))))
        run, support = [op], qubits
    if run:
        fused.append(_materialize(run, tuple(sorted(support))))
    return fused


def _site_channel(gate, phys: "tuple[int, ...]", noise_model) -> "np.ndarray | None":
    """The constant noise superoperator following one gate site, or None.

    Composes -- in the reference backend's application order -- the Pauli
    channel on each operand qubit, then the coherent miscalibration
    rotation on each driven operand, all embedded onto the gate's own
    support.  Depends only on the (scaled) noise model, never on bound
    parameters, so it is computed once per plan.
    """
    from repro.noise.trajectory import _coherent_unitary

    channel: "np.ndarray | None" = None
    for local_q, (_phys_q, error) in zip(
        gate.qubits, noise_model.gate_errors(gate.name, phys)
    ):
        if error.total <= 0:
            continue
        one = kraus_superop(pauli_channel(error.px, error.py, error.pz))
        one = embed_superop(one, (local_q,), gate.qubits)
        channel = one if channel is None else np.matmul(one, channel)
    if gate.name not in ("rz", "id"):
        for local_q, phys_q in zip(gate.qubits, phys):
            coherent = noise_model.coherent_for(phys_q)
            if coherent is None:
                continue
            one = unitary_superop(_coherent_unitary(*coherent))
            one = embed_superop(one, (local_q,), gate.qubits)
            channel = one if channel is None else np.matmul(one, channel)
    return channel


class SuperopPlan:
    """Compiled per-site superoperators for one (circuit, noise model).

    Construction precomputes every gate site's noise channel and the
    static/dynamic layout; :meth:`superops` binds the circuit (through
    the shared bind cache), attaches the channels, and fuses static
    spans -- cached per weight vector -- while input-dependent encoder
    sites pass through as per-sample batched superoperators.
    """

    __slots__ = ("bind_plan", "_channels", "_layout", "_cache")

    def __init__(
        self,
        compiled: "CompiledCircuit",
        noise_model: "NoiseModel",
        noise_factor: float = 1.0,
    ):
        circuit = compiled.circuit
        self.bind_plan = bind_plan_for(circuit)
        scaled = (
            noise_model.scaled(noise_factor)
            if noise_factor != 1.0
            else noise_model
        )
        self._channels = [
            _site_channel(
                gate,
                tuple(compiled.physical_qubits[q] for q in gate.qubits),
                scaled,
            )
            for gate in circuit.gates
        ]
        from repro.compiler.fusion import static_dynamic_layout

        self._layout = static_dynamic_layout(circuit)
        self._cache = SmallLRU(_SUPEROP_CACHE_SIZE)

    def _site(self, op, index: int) -> SuperOp:
        """One bound gate's superoperator with its noise channel attached."""
        matrix = unitary_superop(op.matrix)
        channel = self._channels[index]
        if channel is not None:
            matrix = np.matmul(channel, matrix)
        return SuperOp(op.qubits, matrix)

    def _static_segments(self, ops: list, weights) -> "list[list[SuperOp]]":
        key = weights_key(weights)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        segments = [
            fuse_superops([self._site(ops[i], i) for i in range(start, end)])
            for kind, start, end in self._layout
            if kind == "static"
        ]
        self._cache.put(key, segments)
        return segments

    def superops(
        self,
        weights: "np.ndarray | None" = None,
        inputs: "np.ndarray | None" = None,
        batch: "int | None" = None,
    ) -> "list[SuperOp]":
        """The compiled channel stream for one noisy-inference call."""
        ops = self.bind_plan.bind(weights, inputs, batch)
        segments = iter(self._static_segments(ops, weights))
        out: "list[SuperOp]" = []
        for kind, start, _end in self._layout:
            if kind == "static":
                out.extend(next(segments))
            else:
                out.append(self._site(ops[start], start))
        return out


def superop_plan_for(
    compiled: "CompiledCircuit",
    noise_model: "NoiseModel",
    noise_factor: float = 1.0,
) -> SuperopPlan:
    """The cached :class:`SuperopPlan` for a compiled circuit + model.

    Plans are memoized on the circuit (one row per distinct
    ``(noise model, factor)`` pair, matched by identity, bounded FIFO)
    and rebuilt when the circuit's gate list goes stale -- the same
    invalidation policy as the bind and fusion plans.
    """
    return cached_noise_plan(
        compiled.circuit, "_superop_plans", noise_model, noise_factor,
        lambda: SuperopPlan(compiled, noise_model, noise_factor),
    )
