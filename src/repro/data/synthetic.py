"""Synthetic stand-ins for MNIST, Fashion-MNIST, CIFAR and Vowel.

No datasets ship in the offline environment, so each corpus is replaced
by a generator that produces class-structured samples at the *native*
resolution (28x28 digits, 28x28 garment silhouettes, 32x32 RGB scenes,
formant-style vowel features).  The paper's preprocessing pipeline then
runs unchanged, so the QNN sees inputs of exactly the same shape and
the noise-robustness phenomena under study are preserved.  Substitution
is documented in DESIGN.md section 3.

Generators:

* digits      -- 5x7 bitmap glyphs of 0-9, pasted with random shift /
                 upscale / intensity / pixel noise into 28x28,
* garments    -- programmatic silhouette masks (t-shirt, trouser,
                 pullover, dress, ..., shirt) with the same augmentations,
* scenes      -- 32x32 RGB "frog" (green textured blob on foliage) vs
                 "ship" (grey hull on sea under bright sky),
* vowel formants -- 4 vowel classes as clusters in a 3-formant latent
                 space lifted through a fixed random linear map to 20
                 correlated dims (PCA back to 10 happens in the task
                 pipeline, as in the paper).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng

# -- digit glyphs (5 columns x 7 rows, row-major strings) ---------------------

_DIGIT_GLYPHS = {
    0: ["01110", "10001", "10011", "10101", "11001", "10001", "01110"],
    1: ["00100", "01100", "00100", "00100", "00100", "00100", "01110"],
    2: ["01110", "10001", "00001", "00110", "01000", "10000", "11111"],
    3: ["11110", "00001", "00001", "01110", "00001", "00001", "11110"],
    4: ["00010", "00110", "01010", "10010", "11111", "00010", "00010"],
    5: ["11111", "10000", "11110", "00001", "00001", "10001", "01110"],
    6: ["00110", "01000", "10000", "11110", "10001", "10001", "01110"],
    7: ["11111", "00001", "00010", "00100", "01000", "01000", "01000"],
    8: ["01110", "10001", "10001", "01110", "10001", "10001", "01110"],
    9: ["01110", "10001", "10001", "01111", "00001", "00010", "01100"],
}


def _glyph_array(digit: int) -> np.ndarray:
    rows = _DIGIT_GLYPHS[digit]
    return np.array([[int(c) for c in row] for row in rows], dtype=float)


def _paste_with_jitter(
    canvas_size: int,
    glyph: np.ndarray,
    rng: np.random.Generator,
    upscale_choices: "tuple[int, ...]" = (3, 4),
) -> np.ndarray:
    """Upscale a glyph and paste it at a jittered position."""
    scale = int(rng.choice(upscale_choices))
    big = np.kron(glyph, np.ones((scale, scale)))
    canvas = np.zeros((canvas_size, canvas_size))

    def jittered(limit: int) -> int:
        lo = max(0, limit // 2 - 2)
        hi = min(limit, limit // 2 + 2)
        return int(rng.integers(lo, hi + 1))

    top = jittered(canvas_size - big.shape[0])
    left = jittered(canvas_size - big.shape[1])
    canvas[top : top + big.shape[0], left : left + big.shape[1]] = big
    return canvas


def _augment(
    canvas: np.ndarray, rng: np.random.Generator, noise: float = 0.08
) -> np.ndarray:
    intensity = rng.uniform(0.75, 1.0)
    noisy = canvas * intensity + rng.normal(0.0, noise, canvas.shape)
    return np.clip(noisy, 0.0, 1.0)


def synthetic_digits(
    n_samples: int,
    classes: "tuple[int, ...]",
    rng: "int | np.random.Generator | None" = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """(images 28x28 in [0,1], labels indexed into ``classes``)."""
    rng = as_rng(rng)
    images = np.empty((n_samples, 28, 28))
    labels = rng.integers(0, len(classes), size=n_samples)
    for i, label in enumerate(labels):
        glyph = _glyph_array(classes[label])
        images[i] = _augment(_paste_with_jitter(28, glyph, rng), rng)
    return images, labels


# -- garment silhouettes -------------------------------------------------------


def _garment_mask(kind: int, rng: np.random.Generator) -> np.ndarray:
    """Silhouette masks on a 28x28 canvas for the 10 Fashion classes."""
    mask = np.zeros((28, 28))
    jitter = lambda lo, hi: int(rng.integers(lo, hi + 1))  # noqa: E731

    if kind == 0:  # t-shirt/top: torso + short sleeves
        mask[8:24, 9:19] = 1
        mask[8:13, 4:24] = 1
    elif kind == 1:  # trouser: two legs from a waistband
        mask[5:9, 9:19] = 1
        mask[9:25, 9:13] = 1
        mask[9:25, 15:19] = 1
    elif kind == 2:  # pullover: torso + long sleeves
        mask[7:24, 9:19] = 1
        mask[7:22, 4:9] = 1
        mask[7:22, 19:24] = 1
    elif kind == 3:  # dress: fitted top flaring to a wide hem
        for row in range(6, 25):
            half = 2 + (row - 6) * 5 // 18
            mask[row, 14 - half : 14 + half] = 1
    elif kind == 4:  # coat: long torso, wide lapels
        mask[6:26, 8:20] = 1
        mask[6:20, 5:8] = 1
        mask[6:20, 20:23] = 1
        mask[6:12, 12:16] = 0
    elif kind == 5:  # sandal: flat sole + straps
        mask[20:24, 5:23] = 1
        mask[14:20, 7:9] = 1
        mask[14:20, 14:16] = 1
        mask[14:20, 20:22] = 1
    elif kind == 6:  # shirt: torso + sleeves + collar notch
        mask[7:24, 9:19] = 1
        mask[7:18, 5:9] = 1
        mask[7:18, 19:23] = 1
        mask[7:10, 13:15] = 0
    elif kind == 7:  # sneaker: low profile with a toe rise
        mask[18:24, 4:24] = 1
        mask[15:18, 14:24] = 1
    elif kind == 8:  # bag: body + handle
        mask[12:24, 6:22] = 1
        mask[8:12, 11:17] = 1
        mask[9:11, 12:16] = 0
    elif kind == 9:  # ankle boot: shaft + foot
        mask[8:24, 14:21] = 1
        mask[18:24, 6:21] = 1
    else:
        raise ValueError(f"unknown garment class {kind}")

    shift_r, shift_c = jitter(-2, 2), jitter(-2, 2)
    return np.roll(np.roll(mask, shift_r, axis=0), shift_c, axis=1)


def synthetic_garments(
    n_samples: int,
    classes: "tuple[int, ...]",
    rng: "int | np.random.Generator | None" = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """Fashion-MNIST-like silhouettes: (images 28x28, labels)."""
    rng = as_rng(rng)
    images = np.empty((n_samples, 28, 28))
    labels = rng.integers(0, len(classes), size=n_samples)
    for i, label in enumerate(labels):
        mask = _garment_mask(classes[label], rng)
        textured = mask * rng.uniform(0.6, 1.0, mask.shape)
        images[i] = _augment(textured, rng, noise=0.06)
    return images, labels


# -- CIFAR-like scenes ---------------------------------------------------------


def _frog_scene(rng: np.random.Generator) -> np.ndarray:
    """Green textured blob (frog) on mottled foliage."""
    img = np.empty((32, 32, 3))
    img[..., 0] = rng.uniform(0.1, 0.3, (32, 32))
    img[..., 1] = rng.uniform(0.3, 0.5, (32, 32))
    img[..., 2] = rng.uniform(0.05, 0.2, (32, 32))
    cy, cx = rng.integers(14, 20), rng.integers(12, 20)
    yy, xx = np.mgrid[0:32, 0:32]
    ry, rx = rng.uniform(5, 8), rng.uniform(6, 10)
    blob = ((yy - cy) / ry) ** 2 + ((xx - cx) / rx) ** 2 < 1
    img[blob, 0] = 0.35 + 0.1 * rng.random()
    img[blob, 1] = 0.65 + 0.15 * rng.random()
    img[blob, 2] = 0.2
    return img


def _ship_scene(rng: np.random.Generator) -> np.ndarray:
    """Grey hull on dark sea below a bright sky."""
    img = np.empty((32, 32, 3))
    horizon = int(rng.integers(16, 21))
    img[:horizon] = rng.uniform(0.65, 0.85)  # bright sky
    img[horizon:, :, 0] = rng.uniform(0.05, 0.15, (32 - horizon, 32))
    img[horizon:, :, 1] = rng.uniform(0.15, 0.3, (32 - horizon, 32))
    img[horizon:, :, 2] = rng.uniform(0.35, 0.55, (32 - horizon, 32))
    hull_left = int(rng.integers(4, 10))
    hull_right = int(rng.integers(22, 28))
    hull_top = horizon - int(rng.integers(2, 5))
    img[hull_top:horizon, hull_left:hull_right] = rng.uniform(0.4, 0.55)
    mast_x = (hull_left + hull_right) // 2
    img[hull_top - 6 : hull_top, mast_x : mast_x + 2] = 0.3
    return img


def synthetic_scenes(
    n_samples: int,
    rng: "int | np.random.Generator | None" = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """CIFAR-like frog (0) vs ship (1) RGB scenes: (n, 32, 32, 3)."""
    rng = as_rng(rng)
    images = np.empty((n_samples, 32, 32, 3))
    labels = rng.integers(0, 2, size=n_samples)
    for i, label in enumerate(labels):
        scene = _frog_scene(rng) if label == 0 else _ship_scene(rng)
        images[i] = np.clip(scene + rng.normal(0, 0.04, scene.shape), 0, 1)
    return images, labels


# -- vowel formants -------------------------------------------------------------

#: (F1, F2, F3) formant prototypes (kHz-ish) for hid, hId, had, hOd.
_VOWEL_FORMANTS = {
    0: (0.28, 2.25, 2.9),  # hid
    1: (0.4, 1.99, 2.55),  # hId
    2: (0.66, 1.72, 2.41),  # had
    3: (0.45, 1.03, 2.4),  # hOd
}


def synthetic_vowels(
    n_samples: int = 990,
    n_raw_features: int = 20,
    rng: "int | np.random.Generator | None" = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """Vowel-4 style features: (n, n_raw_features), labels in 0..3.

    Three latent formants per class, speaker variability, lifted through
    a fixed random linear map into correlated raw features (the paper's
    pipeline then performs PCA to 10 dimensions).
    """
    rng = as_rng(rng)
    lift_rng = np.random.default_rng(7241)  # fixed: same map for all splits
    lift = lift_rng.normal(0.0, 1.0, (3, n_raw_features))
    labels = rng.integers(0, 4, size=n_samples)
    latents = np.empty((n_samples, 3))
    for i, label in enumerate(labels):
        base = np.array(_VOWEL_FORMANTS[int(label)])
        speaker = rng.normal(1.0, 0.08)  # vocal-tract length scaling
        latents[i] = base * speaker + rng.normal(0.0, 0.035, 3)
    features = latents @ lift + rng.normal(0.0, 0.15, (n_samples, n_raw_features))
    return features, labels
