"""The paper's 8 classification tasks, end to end.

Task names match Section 4.1:

* ``mnist-2``   -- digits 3 vs 6, 4x4 input, 4 qubits
* ``mnist-4``   -- digits 0-3, 4x4 input, 4 qubits
* ``mnist-10``  -- digits 0-9, 6x6 input, 10 qubits
* ``fashion-2`` -- dress vs shirt, 4x4 input, 4 qubits
* ``fashion-4`` -- t-shirt/trouser/pullover/dress, 4x4, 4 qubits
* ``fashion-10``-- all 10 garments, 6x6, 10 qubits
* ``cifar-2``   -- frog vs ship, grayscale 4x4, 4 qubits
* ``vowel-4``   -- hid/hId/had/hOd, PCA-10 features, 4 qubits

Each loader generates synthetic data (see ``repro.data.synthetic``),
applies the paper's preprocessing (center-crop, average-pool, grayscale,
PCA) and scales features into rotation-angle range with statistics fit
on the training split only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.preprocessing import (
    AngleScaler,
    PCA,
    average_pool,
    center_crop,
    flatten_images,
    to_grayscale,
)
from repro.data.synthetic import (
    synthetic_digits,
    synthetic_garments,
    synthetic_scenes,
    synthetic_vowels,
)
from repro.utils.rng import as_rng, spawn_rng

TASK_NAMES = (
    "mnist-2",
    "mnist-4",
    "mnist-10",
    "fashion-2",
    "fashion-4",
    "fashion-10",
    "cifar-2",
    "vowel-4",
)


@dataclass(frozen=True)
class TaskData:
    """A fully prepared classification task."""

    name: str
    train_x: np.ndarray
    train_y: np.ndarray
    valid_x: np.ndarray
    valid_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    n_classes: int
    n_features: int
    n_qubits: int

    def splits(self) -> "tuple[tuple[np.ndarray, np.ndarray], ...]":
        return (
            (self.train_x, self.train_y),
            (self.valid_x, self.valid_y),
            (self.test_x, self.test_y),
        )


_TASK_SPECS: "dict[str, dict]" = {
    "mnist-2": {"kind": "digits", "classes": (3, 6), "pool": 4},
    "mnist-4": {"kind": "digits", "classes": (0, 1, 2, 3), "pool": 4},
    "mnist-10": {"kind": "digits", "classes": tuple(range(10)), "pool": 6},
    "fashion-2": {"kind": "garments", "classes": (3, 6), "pool": 4},
    "fashion-4": {"kind": "garments", "classes": (0, 1, 2, 3), "pool": 4},
    "fashion-10": {"kind": "garments", "classes": tuple(range(10)), "pool": 6},
    "cifar-2": {"kind": "scenes", "classes": (0, 1), "pool": 4},
    "vowel-4": {"kind": "vowels", "classes": (0, 1, 2, 3), "pool": None},
}


def _generate_images(
    kind: str, classes: "tuple[int, ...]", n: int, rng: np.random.Generator
) -> "tuple[np.ndarray, np.ndarray]":
    if kind == "digits":
        return synthetic_digits(n, classes, rng)
    if kind == "garments":
        return synthetic_garments(n, classes, rng)
    if kind == "scenes":
        return synthetic_scenes(n, rng)
    raise ValueError(f"unknown corpus kind {kind!r}")


def _image_features(kind: str, images: np.ndarray, pool: int) -> np.ndarray:
    if kind == "scenes":
        gray = to_grayscale(images)
        cropped = center_crop(gray, 28)
    else:
        cropped = center_crop(images, 24)
    pooled = average_pool(cropped, pool)
    return flatten_images(pooled)


def load_task(
    name: str,
    n_train: int = 240,
    n_valid: int = 60,
    n_test: int = 100,
    seed: int = 0,
) -> TaskData:
    """Build a task with the paper's preprocessing.

    Default split sizes are scaled down from the paper (which uses the
    full corpora plus 300 test images) so benchmarks run in seconds;
    the loaders accept any sizes.
    """
    if name not in _TASK_SPECS:
        raise KeyError(f"unknown task {name!r}; available: {TASK_NAMES}")
    spec = _TASK_SPECS[name]
    rng = as_rng(seed)
    train_rng, valid_rng, test_rng = spawn_rng(rng, 3)
    classes = spec["classes"]
    n_classes = len(classes)
    n_qubits = 10 if n_classes == 10 else 4

    if spec["kind"] == "vowels":
        # Paper: 990 samples split 6:1:3, PCA to 10 dimensions.
        total = n_train + n_valid + n_test
        features, labels = synthetic_vowels(total, rng=train_rng)
        pca = PCA(10).fit(features[:n_train])
        reduced = pca.transform(features)
        scaler = AngleScaler().fit(reduced[:n_train])
        angles = scaler.transform(reduced)
        return TaskData(
            name,
            angles[:n_train],
            labels[:n_train],
            angles[n_train : n_train + n_valid],
            labels[n_train : n_train + n_valid],
            angles[n_train + n_valid :],
            labels[n_train + n_valid :],
            n_classes,
            10,
            n_qubits,
        )

    kind, pool = spec["kind"], spec["pool"]
    train_images, train_y = _generate_images(kind, classes, n_train, train_rng)
    valid_images, valid_y = _generate_images(kind, classes, n_valid, valid_rng)
    test_images, test_y = _generate_images(kind, classes, n_test, test_rng)

    train_f = _image_features(kind, train_images, pool)
    valid_f = _image_features(kind, valid_images, pool)
    test_f = _image_features(kind, test_images, pool)

    scaler = AngleScaler().fit(train_f)
    return TaskData(
        name,
        scaler.transform(train_f),
        train_y,
        scaler.transform(valid_f),
        valid_y,
        scaler.transform(test_f),
        test_y,
        n_classes,
        train_f.shape[1],
        n_qubits,
    )


def load_scalar_pair_task(
    n_train: int = 200,
    n_valid: int = 50,
    n_test: int = 100,
    seed: int = 0,
    margin: float = 0.6,
) -> TaskData:
    """Table 3's minimal task: 2 scalar features, 2 classes, 2 qubits.

    Two Gaussian clusters in the plane (the paper cites [11]'s two-number
    input features).
    """
    rng = as_rng(seed)
    total = n_train + n_valid + n_test
    labels = rng.integers(0, 2, size=total)
    centers = np.array([[-margin, -margin], [margin, margin]])
    features = centers[labels] + rng.normal(0.0, 0.45, (total, 2))
    scaler = AngleScaler().fit(features[:n_train])
    angles = scaler.transform(features)
    return TaskData(
        "scalar-2",
        angles[:n_train],
        labels[:n_train],
        angles[n_train : n_train + n_valid],
        labels[n_train : n_train + n_valid],
        angles[n_train + n_valid :],
        labels[n_train + n_valid :],
        2,
        2,
        2,
    )
