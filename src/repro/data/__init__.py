"""Datasets: synthetic corpora + the paper's preprocessing + task loaders."""

from repro.data.preprocessing import (
    center_crop,
    average_pool,
    to_grayscale,
    flatten_images,
    PCA,
    AngleScaler,
)
from repro.data.synthetic import (
    synthetic_digits,
    synthetic_garments,
    synthetic_scenes,
    synthetic_vowels,
)
from repro.data.tasks import TaskData, TASK_NAMES, load_task, load_scalar_pair_task

__all__ = [
    "center_crop",
    "average_pool",
    "to_grayscale",
    "flatten_images",
    "PCA",
    "AngleScaler",
    "synthetic_digits",
    "synthetic_garments",
    "synthetic_scenes",
    "synthetic_vowels",
    "TaskData",
    "TASK_NAMES",
    "load_task",
    "load_scalar_pair_task",
]
