"""Dataset preprocessing exactly as the paper specifies (Section 4.1).

"MNIST and Fashion images are center-cropped to 24x24; and then
down-sampled to 4x4 for 2- and 4-class, and 6x6 for 10-class; CIFAR
images are converted to grayscale, center-cropped to 28x28, and
down-sampled to 4x4.  All down-samplings are performed with average
pooling.  For vowel-4, we perform feature PCA and take 10 most
significant dimensions."
"""

from __future__ import annotations

import numpy as np


def center_crop(images: np.ndarray, size: int) -> np.ndarray:
    """Crop (n, H, W) images to the central (size, size) window."""
    images = np.asarray(images)
    _, height, width = images.shape
    if size > height or size > width:
        raise ValueError(f"crop {size} larger than image {height}x{width}")
    top = (height - size) // 2
    left = (width - size) // 2
    return images[:, top : top + size, left : left + size]


def average_pool(images: np.ndarray, out_size: int) -> np.ndarray:
    """Downsample (n, H, W) images to (n, out, out) by average pooling.

    Requires H and W divisible by ``out_size`` (as in the paper's
    24 -> 4, 24 -> 6 and 28 -> 4 pipelines).
    """
    images = np.asarray(images, dtype=float)
    n, height, width = images.shape
    if height % out_size or width % out_size:
        raise ValueError(f"cannot pool {height}x{width} to {out_size}x{out_size}")
    kh, kw = height // out_size, width // out_size
    reshaped = images.reshape(n, out_size, kh, out_size, kw)
    return reshaped.mean(axis=(2, 4))


def to_grayscale(images: np.ndarray) -> np.ndarray:
    """Convert (n, H, W, 3) RGB to (n, H, W) luminance."""
    images = np.asarray(images, dtype=float)
    if images.ndim != 4 or images.shape[-1] != 3:
        raise ValueError(f"expected (n, H, W, 3), got {images.shape}")
    weights = np.array([0.299, 0.587, 0.114])
    return images @ weights


class PCA:
    """Minimal principal component analysis (fit on train, apply anywhere)."""

    def __init__(self, n_components: int):
        if n_components < 1:
            raise ValueError("need at least one component")
        self.n_components = n_components
        self.mean_: "np.ndarray | None" = None
        self.components_: "np.ndarray | None" = None
        self.explained_variance_: "np.ndarray | None" = None

    def fit(self, features: np.ndarray) -> "PCA":
        features = np.asarray(features, dtype=float)
        if features.shape[1] < self.n_components:
            raise ValueError(
                f"{self.n_components} components from {features.shape[1]} dims"
            )
        self.mean_ = features.mean(axis=0)
        centered = features - self.mean_
        _u, s, vt = np.linalg.svd(centered, full_matrices=False)
        self.components_ = vt[: self.n_components]
        self.explained_variance_ = (s[: self.n_components] ** 2) / max(
            1, features.shape[0] - 1
        )
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.components_ is None:
            raise RuntimeError("PCA.transform called before fit")
        centered = np.asarray(features, dtype=float) - self.mean_
        return centered @ self.components_.T

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)


class AngleScaler:
    """Standardize features into rotation-angle range.

    Fit on the training split; maps each feature to zero mean / unit
    variance then multiplies by ``scale`` (default pi/2 keeps encoded
    angles mostly within one rotation period).
    """

    def __init__(self, scale: float = np.pi / 2):
        self.scale = scale
        self.mean_: "np.ndarray | None" = None
        self.std_: "np.ndarray | None" = None

    def fit(self, features: np.ndarray) -> "AngleScaler":
        features = np.asarray(features, dtype=float)
        self.mean_ = features.mean(axis=0)
        self.std_ = features.std(axis=0) + 1e-8
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("AngleScaler.transform called before fit")
        standardized = (np.asarray(features, dtype=float) - self.mean_) / self.std_
        return np.clip(standardized, -3.0, 3.0) * self.scale

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)


def flatten_images(images: np.ndarray) -> np.ndarray:
    """(n, H, W) -> (n, H*W) feature matrix."""
    images = np.asarray(images)
    return images.reshape(images.shape[0], -1)
