"""Single-qubit randomized benchmarking (RB).

RB is the standard protocol behind the per-gate error rates quoted in
Figure 1 of the paper: random Clifford sequences of growing length `m`
are appended with the sequence inverse and measured; the survival
probability of |0> decays as ``A * alpha^m + B``, and the error per
Clifford is ``(1 - alpha) / 2`` (single qubit).  Because twirling over
the Clifford group averages any gate noise into a depolarizing channel,
the decay is exponential regardless of the microscopic noise -- which is
why the estimate is robust to state-preparation and measurement errors
(they only move ``A`` and ``B``).

The 24-element single-qubit Clifford group is generated from {H, S} by
breadth-first search; each element is stored as a gate-name sequence so
the compiled experiment exercises the same rz/sx basis pipeline the QNN
does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
from scipy.optimize import curve_fit

from repro.circuits.circuit import Circuit
from repro.compiler.decompositions import lower_to_basis
from repro.compiler.passes import CompiledCircuit
from repro.noise.density_backend import run_noisy_density
from repro.sim.gates import gate_def, gate_matrix
from repro.utils.linalg import global_phase_distance
from repro.utils.rng import as_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.noise.devices import Device
    from repro.noise.model import NoiseModel


def _generate_clifford_group() -> "tuple[list[tuple[str, ...]], list[np.ndarray]]":
    """BFS over {H, S} words: the 24 single-qubit Cliffords (mod phase)."""
    sequences: "list[tuple[str, ...]]" = [()]
    matrices: "list[np.ndarray]" = [np.eye(2, dtype=complex)]
    frontier = [((), np.eye(2, dtype=complex))]
    generators = {"h": gate_matrix("h"), "s": gate_matrix("s")}
    while frontier and len(sequences) < 24:
        new_frontier = []
        for seq, matrix in frontier:
            for name, gen in generators.items():
                candidate = gen @ matrix
                if any(
                    global_phase_distance(candidate, known) < 1e-9
                    for known in matrices
                ):
                    continue
                extended = seq + (name,)
                sequences.append(extended)
                matrices.append(candidate)
                new_frontier.append((extended, candidate))
        frontier = new_frontier
    if len(sequences) != 24:  # pragma: no cover - mathematical invariant
        raise RuntimeError(f"Clifford generation found {len(sequences)} elements")
    return sequences, matrices


#: Gate-name words (applied first-to-last) for each of the 24 Cliffords.
CLIFFORD_SEQUENCES, _CLIFFORD_MATRICES = _generate_clifford_group()


def clifford_matrix(index: int) -> np.ndarray:
    """The 2x2 unitary of Clifford ``index`` (0..23)."""
    return _CLIFFORD_MATRICES[index].copy()


def clifford_circuit(indices: "list[int]", invert: bool = True) -> Circuit:
    """A 1-qubit circuit applying the given Cliffords, plus the inverse.

    With ``invert=True`` the final recovery Clifford makes the whole
    circuit the identity (the RB protocol), so any survival probability
    below 1 is attributable to noise.
    """
    circuit = Circuit(1)
    total = np.eye(2, dtype=complex)
    for index in indices:
        for name in CLIFFORD_SEQUENCES[index]:
            circuit.add(name, 0)
        total = _CLIFFORD_MATRICES[index] @ total
    if invert:
        inverse = _find_inverse(total)
        for name in CLIFFORD_SEQUENCES[inverse]:
            circuit.add(name, 0)
    return circuit


def _find_inverse(unitary: np.ndarray) -> int:
    for index, matrix in enumerate(_CLIFFORD_MATRICES):
        if global_phase_distance(matrix @ unitary, np.eye(2)) < 1e-9:
            return index
    raise RuntimeError("no inverting Clifford found")  # pragma: no cover


def rb_sequence(
    length: int, rng: "int | np.random.Generator | None" = None
) -> "list[int]":
    """Uniformly random Clifford indices for one RB sequence."""
    rng = as_rng(rng)
    return [int(i) for i in rng.integers(0, 24, size=length)]


def interleaved_circuit(indices: "list[int]", gate_name: str) -> Circuit:
    """An interleaved-RB circuit: ``gate`` after every random Clifford.

    The recovery Clifford inverts the *combined* product, so the whole
    circuit is the identity when the interleaved gate is noise-free; any
    extra decay relative to reference RB is the gate's own error.  The
    interleaved gate must itself be Clifford.
    """
    matrix = gate_def(gate_name).matrix(())
    if _clifford_index_of(matrix) is None:
        raise ValueError(
            f"{gate_name!r} is not a single-qubit Clifford; "
            "interleaved RB only benchmarks Clifford gates"
        )
    circuit = Circuit(1)
    total = np.eye(2, dtype=complex)
    for index in indices:
        for name in CLIFFORD_SEQUENCES[index]:
            circuit.add(name, 0)
        circuit.add(gate_name, 0)
        total = matrix @ _CLIFFORD_MATRICES[index] @ total
    inverse = _find_inverse(total)
    for name in CLIFFORD_SEQUENCES[inverse]:
        circuit.add(name, 0)
    return circuit


def _clifford_index_of(matrix: np.ndarray) -> "int | None":
    for index, candidate in enumerate(_CLIFFORD_MATRICES):
        if global_phase_distance(candidate, matrix) < 1e-9:
            return index
    return None


def _compile_on_qubit(circuit: Circuit, qubit: int, device: "Device") -> CompiledCircuit:
    """Lower a 1-qubit circuit and pin it to a physical qubit.

    Bypasses layout/routing (single qubit needs neither) and skips the
    cleanup passes: RB sequences must reach the device unoptimized, or
    the compiler would cancel the whole identity circuit away.
    """
    lowered = lower_to_basis(circuit)
    return CompiledCircuit(
        circuit=lowered,
        physical_qubits=(qubit,),
        layout={0: qubit},
        measure_qubits=(0,),
        device_name=device.name,
    )


@dataclass(frozen=True)
class RBResult:
    """Fitted RB decay for one qubit."""

    qubit: int
    lengths: "tuple[int, ...]"
    survival: "tuple[float, ...]"
    alpha: float
    amplitude: float
    baseline: float

    @property
    def error_per_clifford(self) -> float:
        """Average error per Clifford: ``(1 - alpha) (d - 1) / d``."""
        return (1.0 - self.alpha) / 2.0

    @property
    def error_per_gate(self) -> float:
        """EPC divided by the mean physical gates per Clifford (~1.875
        in the {H, S} presentation used here)."""
        mean_word = float(
            np.mean([max(len(seq), 1) for seq in CLIFFORD_SEQUENCES])
        )
        return self.error_per_clifford / mean_word


def fit_rb_decay(
    lengths: "list[int]", survival: "list[float]"
) -> "tuple[float, float, float]":
    """Fit ``p(m) = A alpha^m + B``; returns ``(alpha, A, B)``.

    Falls back to a log-linear fit around ``B = 0.5`` when the nonlinear
    fit fails (short length grids, very low noise).
    """
    lengths_arr = np.asarray(lengths, dtype=float)
    survival_arr = np.asarray(survival, dtype=float)
    if lengths_arr.size != survival_arr.size or lengths_arr.size < 3:
        raise ValueError("need at least 3 (length, survival) points to fit")

    def model(m, alpha, amplitude, baseline):
        return amplitude * np.power(alpha, m) + baseline

    try:
        import warnings

        from scipy.optimize import OptimizeWarning

        with warnings.catch_warnings():
            # Near-noiseless grids make the covariance singular; the
            # point estimate is still what we want.
            warnings.simplefilter("ignore", OptimizeWarning)
            popt, _ = curve_fit(
                model,
                lengths_arr,
                survival_arr,
                p0=(0.99, 0.5, 0.5),
                bounds=([0.0, 0.0, 0.0], [1.0, 1.0, 1.0]),
                maxfev=5000,
            )
        return float(popt[0]), float(popt[1]), float(popt[2])
    except RuntimeError:
        shifted = np.clip(survival_arr - 0.5, 1e-9, None)
        slope, intercept = np.polyfit(lengths_arr, np.log(shifted), 1)
        return float(np.exp(slope)), float(np.exp(intercept)), 0.5


@dataclass(frozen=True)
class InterleavedRBResult:
    """Reference + interleaved decays and the derived per-gate error."""

    gate_name: str
    reference: RBResult
    interleaved: RBResult

    @property
    def gate_error(self) -> float:
        """Magesan-style estimate ``(1 - alpha_int / alpha_ref) / 2``."""
        if self.reference.alpha <= 0:
            return 0.5
        ratio = self.interleaved.alpha / self.reference.alpha
        return max(0.0, (1.0 - ratio) / 2.0)


def run_interleaved_rb(
    device: "Device",
    gate_name: str = "sx",
    qubit: int = 0,
    lengths: "tuple[int, ...]" = (1, 8, 24, 64),
    n_sequences: int = 6,
    shots: "int | None" = None,
    use_hardware: bool = False,
    rng: "int | np.random.Generator | None" = None,
) -> InterleavedRBResult:
    """Interleaved RB: isolate one gate's error from the Clifford average.

    Runs a reference RB and an interleaved RB (the target gate inserted
    after every random Clifford) and combines the two decay constants.
    This is the protocol vendors use to report *per-gate* (rather than
    per-Clifford) error rates like the SX numbers in paper Figure 1.
    """
    rng = as_rng(rng)
    if not 0 <= qubit < device.n_qubits:
        raise ValueError(f"qubit {qubit} out of range for {device.name}")
    noise_model: NoiseModel = (
        device.hardware_model if use_hardware else device.noise_model
    )
    empty_weights = np.zeros(0)
    empty_inputs = np.zeros((1, 0))

    def survival_of(builder) -> "list[float]":
        out = []
        for length in lengths:
            values = []
            for _ in range(n_sequences):
                circuit = builder(rb_sequence(length, rng))
                compiled = _compile_on_qubit(circuit, qubit, device)
                expectation = run_noisy_density(
                    compiled, noise_model, empty_weights, empty_inputs,
                    shots=shots, rng=rng,
                )[0, 0]
                values.append((1.0 + expectation) / 2.0)
            out.append(float(np.mean(values)))
        return out

    results = []
    for builder in (clifford_circuit, lambda idx: interleaved_circuit(idx, gate_name)):
        survival = survival_of(builder)
        alpha, amplitude, baseline = fit_rb_decay(list(lengths), survival)
        results.append(
            RBResult(
                qubit=qubit,
                lengths=tuple(lengths),
                survival=tuple(survival),
                alpha=alpha,
                amplitude=amplitude,
                baseline=baseline,
            )
        )
    return InterleavedRBResult(gate_name, results[0], results[1])


def run_rb_stabilizer(
    device: "Device",
    qubit: int = 0,
    lengths: "tuple[int, ...]" = (1, 8, 32, 96),
    n_sequences: int = 16,
    use_hardware: bool = False,
    rng: "int | np.random.Generator | None" = None,
    n_trajectories: int = 256,
) -> RBResult:
    """RB pinned to the batched stabilizer tableau engine.

    Pauli error gates are themselves Clifford, so noisy RB trajectories
    stay inside the tableau formalism; cost is polynomial in qubit
    count, so this path benchmarks the 15-qubit Melbourne as cheaply as
    a 5-qubit device.  A thin wrapper over :func:`run_rb_experiment`
    with ``engine="stabilizer"``: each sequence now runs
    ``n_trajectories`` batched tableau trajectories in one vectorized
    sweep instead of the former single-trajectory Python loop, so far
    fewer ``n_sequences`` are needed for the same estimator variance.
    """
    return run_rb_experiment(
        device, qubit=qubit, lengths=lengths, n_sequences=n_sequences,
        use_hardware=use_hardware, rng=rng,
        engine="stabilizer", n_trajectories=n_trajectories,
    )


def run_rb_experiment(
    device: "Device",
    qubit: int = 0,
    lengths: "tuple[int, ...]" = (1, 4, 8, 16, 32),
    n_sequences: int = 8,
    shots: "int | None" = None,
    use_hardware: bool = False,
    rng: "int | np.random.Generator | None" = None,
    engine: str = "auto",
    n_trajectories: int = 256,
) -> RBResult:
    """Full RB run against a simulated device.

    ``use_hardware=True`` benchmarks the drifted "real hardware" twin
    (what a user measures); ``False`` benchmarks the published model
    (what the vendor claims).  Comparing the two quantifies calibration
    staleness.

    The backend resolves through the engine registry: RB circuits are
    Clifford by construction, so ``engine="auto"`` asks for
    Clifford-aware resolution and runs on the polynomial-time
    stabilizer tableau whenever the noise model is Pauli+readout
    (published device models at any width), falling back to the exact
    density channel when the model carries channels the tableau cannot
    represent (coherent drift in hardware twins, relaxation).
    ``engine`` pins a registry engine by name instead;
    ``n_trajectories`` sets the tableau trajectory batch per sequence
    (exact engines ignore it).
    """
    from repro.core.engine import engine_spec, resolve_eval_engine

    rng = as_rng(rng)
    if not 0 <= qubit < device.n_qubits:
        raise ValueError(f"qubit {qubit} out of range for {device.name}")
    noise_model: NoiseModel = (
        device.hardware_model if use_hardware else device.noise_model
    )
    spec = (
        resolve_eval_engine(noise_model.channel_kinds, 1, clifford=True)
        if engine == "auto"
        else engine_spec(engine)
    )
    executor = spec.factory(
        noise_model, rng=rng, samples=n_trajectories, shots=shots
    )
    empty_weights = np.zeros(0)
    empty_inputs = np.zeros((1, 0))
    survival: "list[float]" = []
    for length in lengths:
        values = []
        for _ in range(n_sequences):
            circuit = clifford_circuit(rb_sequence(length, rng))
            compiled = _compile_on_qubit(circuit, qubit, device)
            expectation = executor.forward(
                compiled, empty_weights, empty_inputs
            )[0][0, 0]
            values.append((1.0 + expectation) / 2.0)  # P(|0>)
        survival.append(float(np.mean(values)))
    alpha, amplitude, baseline = fit_rb_decay(list(lengths), survival)
    return RBResult(
        qubit=qubit,
        lengths=tuple(lengths),
        survival=tuple(survival),
        alpha=alpha,
        amplitude=amplitude,
        baseline=baseline,
    )
