"""Readout calibration and whole-device characterization reports.

Readout confusion matrices are estimated the way vendors do it: prepare
|0> and |1> on each qubit, measure many shots, and tabulate the flip
rates.  (Preparing |1> needs an X gate, so its gate error leaks into the
estimate -- also true on real hardware.)

:func:`characterize_device` combines readout calibration and randomized
benchmarking over every qubit into a :class:`DriftReport` comparing the
device's *published* noise model with its drifted *hardware* twin --
the measured counterpart of the model-vs-real-QC gap in paper Table 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.characterization.rb import RBResult, run_rb_experiment, _compile_on_qubit
from repro.circuits.circuit import Circuit
from repro.noise.density_backend import run_noisy_density
from repro.noise.model import readout_matrix
from repro.utils.rng import as_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.noise.devices import Device


@dataclass(frozen=True)
class ReadoutCalibration:
    """Estimated confusion matrix for one qubit."""

    qubit: int
    matrix: np.ndarray  # (2, 2), rows = prepared state, cols = measured
    shots: int

    @property
    def p01(self) -> float:
        """P(measure 1 | prepared 0)."""
        return float(self.matrix[0, 1])

    @property
    def p10(self) -> float:
        """P(measure 0 | prepared 1)."""
        return float(self.matrix[1, 0])

    @property
    def assignment_error(self) -> float:
        """Mean misassignment probability (IBMQ's 'readout error')."""
        return 0.5 * (self.p01 + self.p10)


def _measure_p0(
    device: "Device",
    qubit: int,
    prepare_one: bool,
    shots: "int | None",
    use_hardware: bool,
    rng: np.random.Generator,
) -> float:
    circuit = Circuit(1)
    if prepare_one:
        circuit.add("x", 0)
    else:
        circuit.add("id", 0)
    compiled = _compile_on_qubit(circuit, qubit, device)
    model = device.hardware_model if use_hardware else device.noise_model
    expectation = run_noisy_density(
        compiled, model, np.zeros(0), np.zeros((1, 0)), shots=shots, rng=rng
    )[0, 0]
    return (1.0 + expectation) / 2.0


def calibrate_readout(
    device: "Device",
    qubit: int,
    shots: int = 8192,
    use_hardware: bool = True,
    rng: "int | np.random.Generator | None" = None,
) -> ReadoutCalibration:
    """Prepare-and-measure estimation of one qubit's confusion matrix."""
    if not 0 <= qubit < device.n_qubits:
        raise ValueError(f"qubit {qubit} out of range for {device.name}")
    rng = as_rng(rng)
    p0_given_0 = _measure_p0(device, qubit, False, shots, use_hardware, rng)
    p0_given_1 = _measure_p0(device, qubit, True, shots, use_hardware, rng)
    matrix = readout_matrix(p01=1.0 - p0_given_0, p10=p0_given_1)
    return ReadoutCalibration(qubit=qubit, matrix=matrix, shots=shots)


@dataclass(frozen=True)
class DriftReport:
    """Published-model vs measured-hardware summary for one device.

    ``rb_published`` / ``rb_hardware`` hold per-qubit RB results under
    the two noise models; ``readout_published`` / ``readout_hardware``
    the per-qubit calibrations.  ``gate_error_drift`` summarizes how far
    the hardware has wandered from its datasheet.
    """

    device_name: str
    rb_published: "tuple[RBResult, ...]"
    rb_hardware: "tuple[RBResult, ...]"
    readout_published: "tuple[ReadoutCalibration, ...]"
    readout_hardware: "tuple[ReadoutCalibration, ...]"

    @property
    def gate_error_drift(self) -> float:
        """Mean ratio of hardware to published error-per-Clifford."""
        ratios = []
        for pub, hw in zip(self.rb_published, self.rb_hardware):
            if pub.error_per_clifford > 1e-9:
                ratios.append(hw.error_per_clifford / pub.error_per_clifford)
        return float(np.mean(ratios)) if ratios else 1.0

    @property
    def readout_error_drift(self) -> float:
        """Mean ratio of hardware to published assignment error."""
        ratios = []
        for pub, hw in zip(self.readout_published, self.readout_hardware):
            if pub.assignment_error > 1e-9:
                ratios.append(hw.assignment_error / pub.assignment_error)
        return float(np.mean(ratios)) if ratios else 1.0

    def summary(self) -> str:
        lines = [f"characterization report: ibmq-{self.device_name}"]
        lines.append(
            f"{'qubit':>5} {'EPC pub':>10} {'EPC hw':>10} "
            f"{'RO pub':>8} {'RO hw':>8}"
        )
        for pub, hw, ro_pub, ro_hw in zip(
            self.rb_published,
            self.rb_hardware,
            self.readout_published,
            self.readout_hardware,
        ):
            lines.append(
                f"{pub.qubit:>5} {pub.error_per_clifford:>10.2e} "
                f"{hw.error_per_clifford:>10.2e} "
                f"{ro_pub.assignment_error:>8.4f} {ro_hw.assignment_error:>8.4f}"
            )
        lines.append(
            f"drift: gate x{self.gate_error_drift:.2f}, "
            f"readout x{self.readout_error_drift:.2f}"
        )
        return "\n".join(lines)


def characterize_device(
    device: "Device",
    qubits: "tuple[int, ...] | None" = None,
    lengths: "tuple[int, ...]" = (1, 8, 24, 64, 128),
    n_sequences: int = 6,
    shots: "int | None" = None,
    rng: "int | np.random.Generator | None" = None,
) -> DriftReport:
    """RB + readout calibration over a device, published vs hardware."""
    rng = as_rng(rng)
    if qubits is None:
        qubits = tuple(range(device.n_qubits))
    rb_pub, rb_hw, ro_pub, ro_hw = [], [], [], []
    for qubit in qubits:
        rb_pub.append(
            run_rb_experiment(
                device, qubit, lengths, n_sequences, shots,
                use_hardware=False, rng=rng,
            )
        )
        rb_hw.append(
            run_rb_experiment(
                device, qubit, lengths, n_sequences, shots,
                use_hardware=True, rng=rng,
            )
        )
        ro_pub.append(
            calibrate_readout(device, qubit, use_hardware=False, rng=rng)
        )
        ro_hw.append(
            calibrate_readout(device, qubit, use_hardware=True, rng=rng)
        )
    return DriftReport(
        device_name=device.name,
        rb_published=tuple(rb_pub),
        rb_hardware=tuple(rb_hw),
        readout_published=tuple(ro_pub),
        readout_hardware=tuple(ro_hw),
    )
