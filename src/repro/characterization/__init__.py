"""Device characterization experiments run against the simulated devices.

The paper's noise models come from vendor calibration data; appendix
A.3.1 shows the accuracy cost of that data going stale.  This package
implements the experiments a vendor (or a cautious user) runs to
*produce* such data -- single-qubit randomized benchmarking for gate
error rates and prepare-and-measure readout calibration -- so the
library can measure the published-model-vs-hardware drift that Table 11
studies, rather than just assume it.
"""

from repro.characterization.rb import (
    CLIFFORD_SEQUENCES,
    InterleavedRBResult,
    RBResult,
    clifford_circuit,
    fit_rb_decay,
    interleaved_circuit,
    rb_sequence,
    run_interleaved_rb,
    run_rb_experiment,
    run_rb_stabilizer,
)
from repro.characterization.readout import (
    ReadoutCalibration,
    calibrate_readout,
    characterize_device,
    DriftReport,
)

__all__ = [
    "CLIFFORD_SEQUENCES",
    "RBResult",
    "clifford_circuit",
    "fit_rb_decay",
    "rb_sequence",
    "run_rb_experiment",
    "run_rb_stabilizer",
    "InterleavedRBResult",
    "interleaved_circuit",
    "run_interleaved_rb",
    "ReadoutCalibration",
    "calibrate_readout",
    "characterize_device",
    "DriftReport",
]
