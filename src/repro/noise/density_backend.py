"""Exact noisy inference via the density-matrix simulator.

This is the "evaluation with noise model" backend of paper Table 11:
every compiled gate applies as a unitary followed by the noise model's
Pauli channel, its exact thermal-relaxation (amplitude/phase-damping)
channel when the model carries T1/T2, and the coherent miscalibration
on its operand qubits; readout confusion mixes the final joint
probabilities.  Exact (no sampling), but cost grows as 4**n_qubits, so
it is reserved for the <= ~8-qubit compact circuits.

Two engines share the measurement tail:

* the default ``"superop"`` engine runs the stream compiled by
  :mod:`repro.compiler.superop` -- each gate site's unitary, Pauli and
  relaxation channel(s) and coherent miscalibration collapse into one
  cached superoperator, adjacent sites fuse into segment operators,
  readout confusion rides along as a terminal measurement superop, and
  every fused operator applies in a single transpose + GEMM pass
  (:func:`repro.sim.density.apply_superop_to_density`);
* :func:`run_noisy_density_reference` retains the original per-Kraus
  loop (two passes per Kraus operator, eight per Pauli channel site,
  readout mixed in probability space) as the numerical baseline -- the
  equivalence suite and the perf harness hold the two to < 1e-10.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.compiler.passes import CompiledCircuit
from repro.noise.model import NoiseModel
from repro.noise.readout import apply_readout_to_joint_probabilities
# Shared cached miscalibration rotation: one lru_cache entry per (ey, ez)
# pair process-wide, instead of rebuilding RZ @ RY per gate per call.
from repro.noise.trajectory import _coherent_unitary
from repro.sim.density import (
    apply_kraus_to_density,
    apply_superop_to_density,
    apply_unitary_to_density,
    density_probabilities,
    zero_density,
)
from repro.sim.kraus import pauli_channel
from repro.sim.statevector import batched_multinomial, z_signs
from repro.utils.rng import as_rng

#: Above this compact width, refuse and let the caller use trajectories.
MAX_DENSITY_QUBITS = 8


def _measured_expectations(
    probs: np.ndarray,
    compiled: "CompiledCircuit",
    noise_model: NoiseModel,
    shots: "int | None",
    rng: "int | np.random.Generator | None",
    apply_readout: bool = True,
) -> np.ndarray:
    """Readout confusion + (optional) shot sampling, in logical order.

    Shared tail of both density engines.  ``apply_readout=False`` skips
    the probability-space confusion for callers whose operator stream
    already compiled readout in as a terminal superop (the superop
    engine).  The shots path threads the caller's RNG through
    :func:`~repro.utils.rng.as_rng` -- matching the trajectory backend
    -- so seeded callers get reproducible counts.
    """
    n = compiled.circuit.n_qubits
    if apply_readout:
        readout = np.stack(
            [noise_model.readout_for(p) for p in compiled.physical_qubits]
        )
        probs = apply_readout_to_joint_probabilities(probs, readout)
    if shots is None:
        expectations = probs @ z_signs(n).T
    else:
        rng = as_rng(rng)
        probs = np.clip(probs, 0.0, None)
        probs = probs / probs.sum(axis=1, keepdims=True)
        counts = batched_multinomial(rng, shots, probs)
        expectations = (counts / shots) @ z_signs(n).T
    return expectations[:, list(compiled.measure_qubits)]


def _check_width(compiled: "CompiledCircuit") -> int:
    n = compiled.circuit.n_qubits
    if n > MAX_DENSITY_QUBITS:
        raise ValueError(
            f"{n}-qubit density simulation too large; use trajectories"
        )
    return n


def run_noisy_density(
    compiled: "CompiledCircuit",
    noise_model: NoiseModel,
    weights: "np.ndarray | None" = None,
    inputs: "np.ndarray | None" = None,
    batch: int = 1,
    noise_factor: float = 1.0,
    shots: "int | None" = None,
    rng: "int | np.random.Generator | None" = None,
    engine: str = "superop",
) -> np.ndarray:
    """Exact noisy per-qubit <Z> in logical order (optionally shot-sampled).

    ``engine="superop"`` (default) executes the compiled superoperator
    stream; ``engine="reference"`` dispatches to the retained per-Kraus
    baseline :func:`run_noisy_density_reference`.
    """
    if engine == "reference":
        return run_noisy_density_reference(
            compiled, noise_model, weights, inputs, batch,
            noise_factor, shots, rng,
        )
    if engine != "superop":
        raise ValueError(
            f"engine must be 'superop' or 'reference', got {engine!r}"
        )
    from repro.compiler.superop import superop_plan_for

    n = _check_width(compiled)
    if inputs is not None:
        batch = np.asarray(inputs).shape[0]
    plan = superop_plan_for(compiled, noise_model, noise_factor)
    rho = zero_density(n, batch)
    for op in plan.superops(weights, inputs, batch, include_readout=True):
        rho = apply_superop_to_density(
            rho, op.matrix, op.qubits, n, diagonal=op.diagonal
        )
    probs = density_probabilities(rho)
    # Readout already ran as the stream's terminal measurement superop.
    return _measured_expectations(
        probs, compiled, noise_model, shots, rng, apply_readout=False
    )


def run_noisy_density_reference(
    compiled: "CompiledCircuit",
    noise_model: NoiseModel,
    weights: "np.ndarray | None" = None,
    inputs: "np.ndarray | None" = None,
    batch: int = 1,
    noise_factor: float = 1.0,
    shots: "int | None" = None,
    rng: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """The original per-Kraus density sweep (numerical baseline).

    Applies every gate as ``U rho U^dag``, then each operand qubit's
    Pauli channel Kraus-by-Kraus, the exact thermal-relaxation channel
    (models carrying T1/T2) and the coherent miscalibration as a
    separate unitary -- the pre-compiled-engine implementation, retained
    for the equivalence suite and perf-harness baselines.
    """
    from repro.noise.model import VIRTUAL_GATES

    n = _check_width(compiled)
    scaled = noise_model.scaled(noise_factor) if noise_factor != 1.0 else noise_model
    if inputs is not None:
        batch = np.asarray(inputs).shape[0]
    ops = compiled.bind_plan.bind(weights, inputs, batch)
    rho = zero_density(n, batch)
    for op in ops:
        rho = apply_unitary_to_density(rho, op.matrix, op.qubits, n)
        phys = tuple(compiled.physical_qubits[q] for q in op.qubits)
        for local_q, (_phys_q, error) in zip(
            op.qubits, scaled.gate_errors(op.gate.name, phys)
        ):
            if error.total <= 0:
                continue
            kraus = pauli_channel(error.px, error.py, error.pz)
            rho = apply_kraus_to_density(rho, kraus, (local_q,), n)
        if op.gate.name not in VIRTUAL_GATES:
            for local_q, phys_q in zip(op.qubits, phys):
                kraus = scaled.relaxation_kraus_for(phys_q, len(op.qubits))
                if kraus is not None:
                    rho = apply_kraus_to_density(rho, kraus, (local_q,), n)
        if op.gate.name not in ("rz", "id"):
            for local_q, phys_q in zip(op.qubits, phys):
                coherent = scaled.coherent_for(phys_q)
                if coherent is not None:
                    rho = apply_unitary_to_density(
                        rho, _coherent_unitary(*coherent), (local_q,), n
                    )
    probs = density_probabilities(rho)
    return _measured_expectations(probs, compiled, noise_model, shots, rng)
