"""Exact noisy inference via the density-matrix simulator.

This is the "evaluation with noise model" backend of paper Table 11:
every compiled gate applies as a unitary followed by the noise model's
Pauli channel on its operand qubits; readout confusion mixes the final
joint probabilities.  Exact (no sampling), but cost grows as 4**n_qubits,
so it is reserved for the <= ~8-qubit compact circuits.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.compiler.passes import CompiledCircuit
from repro.noise.model import NoiseModel
from repro.noise.readout import apply_readout_to_joint_probabilities
from repro.sim.density import (
    apply_kraus_to_density,
    apply_unitary_to_density,
    density_probabilities,
    zero_density,
)
from repro.sim.kraus import pauli_channel
from repro.sim.statevector import batched_multinomial, z_signs

#: Above this compact width, refuse and let the caller use trajectories.
MAX_DENSITY_QUBITS = 8


def _coherent_unitary(ey: float, ez: float) -> "np.ndarray":
    """RZ(ez) @ RY(ey): the systematic post-gate miscalibration rotation."""
    from repro.sim.gates import gate_matrix

    return gate_matrix("rz", (ez,)) @ gate_matrix("ry", (ey,))


def run_noisy_density(
    compiled: CompiledCircuit,
    noise_model: NoiseModel,
    weights: "np.ndarray | None" = None,
    inputs: "np.ndarray | None" = None,
    batch: int = 1,
    noise_factor: float = 1.0,
    shots: "int | None" = None,
    rng: "np.random.Generator | None" = None,
) -> np.ndarray:
    """Exact noisy per-qubit <Z> in logical order (optionally shot-sampled)."""
    n = compiled.circuit.n_qubits
    if n > MAX_DENSITY_QUBITS:
        raise ValueError(
            f"{n}-qubit density simulation too large; use trajectories"
        )
    scaled = noise_model.scaled(noise_factor) if noise_factor != 1.0 else noise_model
    if inputs is not None:
        batch = np.asarray(inputs).shape[0]
    ops = compiled.bind_plan.bind(weights, inputs, batch)
    rho = zero_density(n, batch)
    for op in ops:
        rho = apply_unitary_to_density(rho, op.matrix, op.qubits, n)
        phys = tuple(compiled.physical_qubits[q] for q in op.qubits)
        for local_q, (_phys_q, error) in zip(
            op.qubits, scaled.gate_errors(op.gate.name, phys)
        ):
            if error.total <= 0:
                continue
            kraus = pauli_channel(error.px, error.py, error.pz)
            rho = apply_kraus_to_density(rho, kraus, (local_q,), n)
        if op.gate.name not in ("rz", "id"):
            for local_q, phys_q in zip(op.qubits, phys):
                coherent = scaled.coherent_for(phys_q)
                if coherent is not None:
                    rho = apply_unitary_to_density(
                        rho, _coherent_unitary(*coherent), (local_q,), n
                    )

    probs = density_probabilities(rho)
    readout = np.stack(
        [noise_model.readout_for(p) for p in compiled.physical_qubits]
    )
    probs = apply_readout_to_joint_probabilities(probs, readout)
    if shots is None:
        expectations = probs @ z_signs(n).T
    else:
        if rng is None:
            rng = np.random.default_rng()
        probs = np.clip(probs, 0.0, None)
        probs = probs / probs.sum(axis=1, keepdims=True)
        counts = batched_multinomial(rng, shots, probs)
        expectations = (counts / shots) @ z_signs(n).T
    return expectations[:, list(compiled.measure_qubits)]
