"""Noise substrate: models, device catalog, error sampling and noisy backends."""

from repro.noise.model import (
    NoiseModel,
    PauliError,
    NO_ERROR,
    uniform_pauli_error,
    readout_matrix,
    validate_relaxation_times,
    VIRTUAL_GATES,
)
from repro.noise.devices import Device, DeviceSpec, get_device, list_devices
from repro.noise.sampler import ErrorGateSampler, InsertionStats
from repro.noise.readout import (
    readout_affine,
    apply_readout_to_expectations,
    apply_readout_to_joint_probabilities,
    noisy_probability_pair,
    readout_povm_kraus,
)
from repro.noise.twirling import (
    twirl_to_pauli_probs,
    twirl_to_pauli_error,
    pauli_error_from_gate_fidelity,
)
from repro.noise.trajectory import (
    mcwf_probabilities_reference,
    run_noisy_trajectories,
    trajectory_probabilities,
    trajectory_probabilities_reference,
)
from repro.noise.density_backend import (
    run_noisy_density,
    run_noisy_density_reference,
    MAX_DENSITY_QUBITS,
)
from repro.noise.relaxation import (
    QubitRelaxation,
    noise_model_from_relaxation,
    relaxation_pauli_error,
)

__all__ = [
    "NoiseModel",
    "PauliError",
    "NO_ERROR",
    "uniform_pauli_error",
    "readout_matrix",
    "validate_relaxation_times",
    "VIRTUAL_GATES",
    "Device",
    "DeviceSpec",
    "get_device",
    "list_devices",
    "ErrorGateSampler",
    "InsertionStats",
    "readout_affine",
    "apply_readout_to_expectations",
    "apply_readout_to_joint_probabilities",
    "noisy_probability_pair",
    "readout_povm_kraus",
    "twirl_to_pauli_probs",
    "twirl_to_pauli_error",
    "pauli_error_from_gate_fidelity",
    "mcwf_probabilities_reference",
    "run_noisy_trajectories",
    "trajectory_probabilities",
    "trajectory_probabilities_reference",
    "run_noisy_density",
    "run_noisy_density_reference",
    "MAX_DENSITY_QUBITS",
    "QubitRelaxation",
    "relaxation_pauli_error",
    "noise_model_from_relaxation",
]
