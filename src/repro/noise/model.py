"""Device noise models: per-gate Pauli error probabilities + readout matrices.

Mirrors what IBMQ publishes for each backend and what QuantumNAT consumes
(Section 3.2): for every basis gate on every qubit (or qubit pair) a Pauli
error distribution ``E = {X: px, Y: py, Z: pz, None: 1 - px - py - pz}``,
and for every qubit a 2x2 readout confusion matrix ``M[true, measured]``.

The paper's worked example -- SX on Yorktown qubit 1 with
``{X: 0.00096, Y: 0.00096, Z: 0.00096, None: 0.99712}`` -- is exactly one
entry of such a model.  The *noise factor* ``T`` scales the X/Y/Z
probabilities during sampling (Section 3.2); :meth:`NoiseModel.scaled`
implements that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: RZ is implemented virtually (frame change) on IBMQ hardware: error-free.
VIRTUAL_GATES = frozenset({"rz"})

#: Channel-kind names shared by :meth:`NoiseModel.channel_kinds` and the
#: engine registry's capability declarations
#: (:mod:`repro.core.engine`) -- the vocabulary in which an execution
#: backend states what it can represent.
CHANNEL_PAULI = "pauli"
CHANNEL_COHERENT = "coherent"
CHANNEL_READOUT = "readout"
CHANNEL_RELAXATION = "relaxation"
ALL_CHANNEL_KINDS = frozenset(
    {CHANNEL_PAULI, CHANNEL_COHERENT, CHANNEL_READOUT, CHANNEL_RELAXATION}
)


@dataclass(frozen=True)
class PauliError:
    """Pauli error-gate probabilities for one qubit after one gate."""

    px: float
    py: float
    pz: float

    def __post_init__(self) -> None:
        if min(self.px, self.py, self.pz) < 0:
            raise ValueError(f"negative Pauli probability in {self}")
        if self.total > 1 + 1e-12:
            raise ValueError(f"Pauli probabilities sum over 1 in {self}")

    @property
    def total(self) -> float:
        return self.px + self.py + self.pz

    @property
    def p_none(self) -> float:
        """Probability that no error gate is inserted."""
        return max(0.0, 1.0 - self.total)

    def scaled(self, factor: float) -> "PauliError":
        """Scale X/Y/Z probabilities by the noise factor ``T``.

        Capped so the total never exceeds 1 (large T values like 10 are
        used in the Figure 8 contour sweep).
        """
        px, py, pz = self.px * factor, self.py * factor, self.pz * factor
        total = px + py + pz
        if total > 1.0:
            px, py, pz = px / total, py / total, pz / total
        return PauliError(px, py, pz)

    def probabilities(self) -> np.ndarray:
        """Probability vector over (None, X, Y, Z)."""
        return np.array([self.p_none, self.px, self.py, self.pz])


NO_ERROR = PauliError(0.0, 0.0, 0.0)


def validate_relaxation_times(t1: float, t2: float) -> None:
    """Reject unphysical T1/T2 combinations with a clear error.

    Every surface that accepts relaxation times -- the
    :class:`~repro.noise.relaxation.QubitRelaxation` dataclass, the
    duck-typed arguments of ``relaxation_pauli_error`` /
    ``noise_model_from_relaxation``, and :class:`NoiseModel`'s exact
    relaxation channels -- funnels through this check, so a bad pair can
    never silently propagate into negative channel probabilities.
    """
    if t1 <= 0 or t2 <= 0:
        raise ValueError(f"T1 and T2 must be positive, got T1={t1}, T2={t2}")
    if t2 > 2 * t1 + 1e-12:
        raise ValueError(
            f"unphysical relaxation times: T2={t2} > 2*T1={2 * t1} "
            "(physics requires T2 <= 2*T1)"
        )


def uniform_pauli_error(rate: float) -> PauliError:
    """Equal X/Y/Z probabilities, each ``rate`` -- the paper's convention.

    (The Yorktown example lists px = py = pz = 0.00096 for a gate whose
    reported error rate is ~1e-3.)
    """
    return PauliError(rate, rate, rate)


def readout_matrix(p01: float, p10: float) -> np.ndarray:
    """Readout confusion matrix ``M[true, measured]``.

    ``p01`` = P(measure 1 | true 0), ``p10`` = P(measure 0 | true 1).
    The paper's Santiago example is ``readout_matrix(0.016, 0.022)``.
    """
    if not (0 <= p01 <= 1 and 0 <= p10 <= 1):
        raise ValueError(f"readout probabilities out of range: {p01}, {p10}")
    return np.array([[1 - p01, p01], [p10, 1 - p10]])


class NoiseModel:
    """Noise description of one device in terms of basis-gate Pauli errors.

    Parameters
    ----------
    n_qubits:
        Physical qubit count.
    one_qubit:
        ``{(gate_name, qubit): PauliError}`` for 1q basis gates
        (``sx``, ``x``, ``id``).  Virtual gates (``rz``) never appear.
    two_qubit:
        ``{(qubit_a, qubit_b): PauliError}`` for CX on each coupled pair
        (stored with sorted qubit order; symmetric).
    readout:
        ``(n_qubits, 2, 2)`` array of confusion matrices.
    relaxation:
        Optional ``{qubit: (T1, T2)}`` *exact* thermal-relaxation
        channels (amplitude + phase damping over each gate's duration,
        see :meth:`relaxation_kraus_for`).  These are general Kraus
        sets, consumed only by the density backends; the sampling
        backends (trajectories, gate insertion) require the
        Pauli-twirled approximation instead and refuse models that
        carry exact channels.
    relaxation_durations:
        ``(duration_1q, duration_2q)`` gate durations, in the same time
        unit as T1/T2, over which the relaxation channels act.
    """

    def __init__(
        self,
        n_qubits: int,
        one_qubit: "dict[tuple[str, int], PauliError]",
        two_qubit: "dict[tuple[int, int], PauliError]",
        readout: np.ndarray,
        coherent: "dict[int, tuple[float, float]] | None" = None,
        relaxation: "dict[int, tuple[float, float]] | None" = None,
        relaxation_durations: "tuple[float, float]" = (0.0, 0.0),
    ):
        self.n_qubits = n_qubits
        self.one_qubit = dict(one_qubit)
        self.two_qubit = {tuple(sorted(k)): v for k, v in two_qubit.items()}
        readout = np.asarray(readout, dtype=float)
        if readout.shape != (n_qubits, 2, 2):
            raise ValueError(f"readout shape {readout.shape} != ({n_qubits}, 2, 2)")
        if not np.allclose(readout.sum(axis=2), 1.0, atol=1e-9):
            raise ValueError("readout matrix rows must sum to 1")
        self.readout = readout
        #: Systematic control miscalibration: ``coherent[q] = (ey, ez)``
        #: applies RY(ey) then RZ(ez) after every driven gate on qubit q.
        #: Published calibration models never carry this (vendors report
        #: only stochastic Pauli rates); the hidden hardware twins do --
        #: it is the input-dependent error component that normalization
        #: cannot cancel and that noise-injected training must tolerate.
        self.coherent: "dict[int, tuple[float, float]]" = dict(coherent or {})
        #: Exact per-qubit (T1, T2) relaxation channels; density-only.
        self.relaxation: "dict[int, tuple[float, float]]" = {}
        for q, (t1, t2) in (relaxation or {}).items():
            validate_relaxation_times(t1, t2)
            self.relaxation[q] = (float(t1), float(t2))
        d1, d2 = relaxation_durations
        if d1 < 0 or d2 < 0:
            raise ValueError("relaxation durations must be non-negative")
        self.relaxation_durations: "tuple[float, float]" = (float(d1), float(d2))
        # (qubit, n_operands) -> Kraus stack, built lazily once per model.
        self._relaxation_kraus: "dict[tuple[int, int], list[np.ndarray]]" = {}

    # -- lookups -------------------------------------------------------------

    def gate_errors(
        self, name: str, qubits: "tuple[int, ...]"
    ) -> "list[tuple[int, PauliError]]":
        """Pauli errors to sample after one gate: [(qubit, error), ...].

        For 2-qubit gates, errors attach independently to both operands
        (paper: "error gates are inserted after the gate on one or both
        qubits").  Virtual gates return no errors.
        """
        name = name.lower()
        if name in VIRTUAL_GATES:
            return []
        if len(qubits) == 1:
            err = self.one_qubit.get((name, qubits[0]))
            return [(qubits[0], err)] if err is not None else []
        pair = tuple(sorted(qubits[:2]))
        err = self.two_qubit.get(pair)
        if err is None:
            return []
        return [(qubits[0], err), (qubits[1], err)]

    def readout_for(self, qubit: int) -> np.ndarray:
        return self.readout[qubit]

    def coherent_for(self, qubit: int) -> "tuple[float, float] | None":
        """Systematic (RY, RZ) over-rotation after driven gates, if any."""
        return self.coherent.get(qubit)

    @property
    def has_exact_channels(self) -> bool:
        """True when the model carries general (non-Pauli) Kraus channels.

        Such models can only run on engines whose declared capabilities
        include the ``relaxation`` channel kind (the density backends and
        the quantum-jump trajectory engine); Pauli gate-insertion
        sampling checks this flag and raises with the registry-derived
        list of engines that do support it.

        Zero-duration relaxation entries do not count: the channel acts
        over the gate durations and :meth:`relaxation_kraus_for` returns
        None for a non-positive window, so such a model is effectively
        Pauli-only and must stay consistent with :meth:`channel_kinds`
        (the registry would otherwise resolve an engine whose sampler
        refuses the model).
        """
        return bool(self.relaxation) and max(self.relaxation_durations) > 0

    @property
    def channel_kinds(self) -> "frozenset[str]":
        """The channel kinds this model actually exercises.

        A subset of :data:`ALL_CHANNEL_KINDS`, matched against each
        engine's declared capabilities by the registry
        (:mod:`repro.core.engine`) when resolving which backend can
        faithfully execute a model.  Zero-probability Pauli entries and
        identity readout matrices do not count -- they can never produce
        an event.
        """
        kinds: "set[str]" = set()
        if any(e.total > 0 for e in self.one_qubit.values()) or any(
            e.total > 0 for e in self.two_qubit.values()
        ):
            kinds.add(CHANNEL_PAULI)
        if self.coherent:
            kinds.add(CHANNEL_COHERENT)
        identity = np.eye(2)
        if any(
            not np.array_equal(self.readout[q], identity)
            for q in range(self.n_qubits)
        ):
            kinds.add(CHANNEL_READOUT)
        if self.has_exact_channels:
            kinds.add(CHANNEL_RELAXATION)
        return frozenset(kinds)

    def relaxation_kraus_for(
        self, qubit: int, n_operands: int
    ) -> "list[np.ndarray] | None":
        """Exact thermal-relaxation Kraus set after one gate, or None.

        ``n_operands`` selects the gate duration (1q vs 2q) the channel
        acts over.  Virtual gates never relax (the caller skips them);
        ``id`` idles for the 1q window.  The Kraus stacks depend only on
        (T1, T2, duration), so they are built once per model and cached.
        """
        times = self.relaxation.get(qubit)
        if times is None:
            return None
        duration = self.relaxation_durations[0 if n_operands == 1 else 1]
        if duration <= 0:
            return None
        key = (qubit, n_operands)
        kraus = self._relaxation_kraus.get(key)
        if kraus is None:
            from repro.sim.channels import QuantumChannel

            kraus = QuantumChannel.thermal_relaxation(
                times[0], times[1], duration
            ).kraus_ops
            self._relaxation_kraus[key] = kraus
        return kraus

    def with_coherent(
        self, coherent: "dict[int, tuple[float, float]]"
    ) -> "NoiseModel":
        """Copy of this model carrying coherent miscalibration angles."""
        return NoiseModel(
            self.n_qubits,
            dict(self.one_qubit),
            dict(self.two_qubit),
            self.readout.copy(),
            coherent,
            dict(self.relaxation),
            self.relaxation_durations,
        )

    def with_relaxation(
        self,
        relaxation: "dict[int, tuple[float, float]]",
        durations: "tuple[float, float]",
    ) -> "NoiseModel":
        """Copy of this model carrying exact per-qubit (T1, T2) channels.

        ``durations`` is ``(duration_1q, duration_2q)`` in the T1/T2
        time unit.  The result is density-backend-only (see
        :attr:`has_exact_channels`).
        """
        return NoiseModel(
            self.n_qubits,
            dict(self.one_qubit),
            dict(self.two_qubit),
            self.readout.copy(),
            dict(self.coherent),
            relaxation,
            durations,
        )

    # -- derived quantities ---------------------------------------------------

    def mean_one_qubit_error(self) -> float:
        """Average per-gate Pauli total over 1q entries (Figure 1 metric)."""
        if not self.one_qubit:
            return 0.0
        return float(np.mean([e.total for e in self.one_qubit.values()]))

    def mean_two_qubit_error(self) -> float:
        if not self.two_qubit:
            return 0.0
        return float(np.mean([e.total for e in self.two_qubit.values()]))

    def qubit_quality_cost(self, qubit: int) -> float:
        """Scalar badness of a qubit: readout + its 1q gate errors.

        Consumed by the noise-adaptive layout pass (optimization level 3).
        """
        m = self.readout[qubit]
        readout_err = 0.5 * (m[0, 1] + m[1, 0])
        gate_err = sum(
            err.total
            for (name, q), err in self.one_qubit.items()
            if q == qubit and name == "sx"
        )
        return float(readout_err + gate_err)

    def edge_cost(self, a: int, b: int) -> float:
        """CX error total for a coupled pair (inf if uncoupled)."""
        err = self.two_qubit.get(tuple(sorted((a, b))))
        return float(err.total) if err is not None else float("inf")

    # -- transforms -------------------------------------------------------------

    def scaled(self, factor: float) -> "NoiseModel":
        """Noise model with all Pauli probabilities scaled by ``T``.

        Readout errors are left unscaled: the paper's noise factor applies
        to the sampled X/Y/Z gate probabilities only.  Exact relaxation
        channels scale through their *exposure time*: the gate durations
        are multiplied by ``T``, so ``T = 0`` turns relaxation off and
        large ``T`` saturates toward the fully-decayed channel -- the
        Kraus-set analogue of scaling the twirled Pauli rates.
        """
        if factor < 0:
            raise ValueError(f"noise factor must be non-negative, got {factor}")
        d1, d2 = self.relaxation_durations
        return NoiseModel(
            self.n_qubits,
            {k: v.scaled(factor) for k, v in self.one_qubit.items()},
            {k: v.scaled(factor) for k, v in self.two_qubit.items()},
            self.readout.copy(),
            dict(self.coherent),
            dict(self.relaxation),
            (d1 * factor, d2 * factor),
        )

    def drifted(
        self, rng: np.random.Generator, sigma: float = 0.12
    ) -> "NoiseModel":
        """A lognormally perturbed copy -- the 'true hardware' twin.

        Published calibration data always lags the device; this drift is
        what creates the noise-model-vs-real-QC accuracy gap studied in
        paper Table 11.
        """

        def drift(err: PauliError) -> PauliError:
            f = rng.lognormal(0.0, sigma, size=3)
            px = min(err.px * f[0], 0.3)
            py = min(err.py * f[1], 0.3)
            pz = min(err.pz * f[2], 0.3)
            return PauliError(px, py, pz)

        readout = self.readout.copy()
        for q in range(self.n_qubits):
            p01 = min(readout[q, 0, 1] * rng.lognormal(0.0, sigma), 0.45)
            p10 = min(readout[q, 1, 0] * rng.lognormal(0.0, sigma), 0.45)
            readout[q] = readout_matrix(p01, p10)
        relaxation: "dict[int, tuple[float, float]]" = {}
        for q, (t1, t2) in self.relaxation.items():
            # Coherence times drift too; keep the drifted pair physical.
            t1_d = t1 * rng.lognormal(0.0, sigma)
            t2_d = min(t2 * rng.lognormal(0.0, sigma), 2 * t1_d)
            relaxation[q] = (t1_d, t2_d)
        return NoiseModel(
            self.n_qubits,
            {k: drift(v) for k, v in self.one_qubit.items()},
            {k: drift(v) for k, v in self.two_qubit.items()},
            readout,
            dict(self.coherent),
            relaxation,
            self.relaxation_durations,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NoiseModel({self.n_qubits} qubits, "
            f"1q~{self.mean_one_qubit_error():.2e}, "
            f"2q~{self.mean_two_qubit_error():.2e})"
        )
