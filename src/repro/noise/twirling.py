"""Pauli twirling: approximate arbitrary channels by Pauli channels.

Section 3.2 notes that "different quantum errors can be approximated by
Pauli errors via Pauli Twirling".  Twirling a single-qubit channel with
Kraus operators ``{O_k}`` over the Pauli group yields a Pauli channel
with probabilities given by the diagonal of the chi matrix:

    p_Q = sum_k |tr(Q O_k)|^2 / 4,   Q in {I, X, Y, Z}.

This is how the library converts physically-motivated channels (e.g.
amplitude damping from T1) into the ``E = {X, Y, Z, None}`` distributions
QuantumNAT samples error gates from.
"""

from __future__ import annotations

import numpy as np

from repro.noise.model import PauliError
from repro.sim.gates import I2, PAULI_X, PAULI_Y, PAULI_Z

_PAULIS = (I2, PAULI_X, PAULI_Y, PAULI_Z)


def twirl_to_pauli_probs(kraus_ops: "list[np.ndarray]") -> np.ndarray:
    """Pauli-twirled probabilities (pI, pX, pY, pZ) of a 1q channel."""
    probs = np.empty(4)
    for i, pauli in enumerate(_PAULIS):
        probs[i] = sum(abs(np.trace(pauli.conj().T @ op)) ** 2 / 4 for op in kraus_ops)
    if not np.isclose(probs.sum(), 1.0, atol=1e-6):
        # Coherent (non-Pauli-diagonal) parts are discarded by twirling;
        # renormalize so the result is a valid distribution.
        probs = probs / probs.sum()
    return probs


def twirl_to_pauli_error(kraus_ops: "list[np.ndarray]") -> PauliError:
    """Pauli-twirl a channel and drop the identity component."""
    _, px, py, pz = twirl_to_pauli_probs(kraus_ops)
    return PauliError(float(px), float(py), float(pz))


def pauli_error_from_gate_fidelity(error_rate: float) -> PauliError:
    """Depolarizing-equivalent Pauli error for a reported gate error rate.

    IBMQ reports average gate infidelity ``e``; the depolarizing channel
    with the same infidelity has parameter ``p = 2e`` (single qubit), so
    each Pauli probability is ``p / 3 = 2e / 3``.
    """
    if error_rate < 0:
        raise ValueError("error rate must be non-negative")
    p_each = 2.0 * error_rate / 3.0
    return PauliError(p_each, p_each, p_each)
