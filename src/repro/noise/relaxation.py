"""Build device noise models from T1/T2 relaxation times.

The catalog in :mod:`repro.noise.devices` sets Pauli error rates
directly from published gate-error numbers.  Real vendors derive those
numbers from physics: each gate of duration ``t`` on a qubit with
relaxation times (T1, T2) suffers a thermal-relaxation channel, which
Pauli twirling projects onto exactly the ``{X, Y, Z, None}``
distribution QuantumNAT samples error gates from (Section 3.2).  This
module implements that derivation, connecting the channel toolbox
(:mod:`repro.sim.channels`) to the noise-model format the rest of the
library consumes.

Two output modes:

* the default *twirled* mode produces the Pauli approximation every
  backend (sampling and exact alike) can consume;
* ``exact_channels=True`` instead attaches the general amplitude/
  phase-damping Kraus sets to the model
  (:attr:`~repro.noise.model.NoiseModel.relaxation`), which the
  superoperator-compiled density backend evaluates exactly -- the full
  realistic noise model of the paper, beyond its Pauli projection.
  Exact-channel models are density-only: the trajectory/insertion
  samplers refuse them and point back at the twirled mode.

All entry points validate ``T1 > 0``, ``T2 > 0`` and the physical bound
``T2 <= 2*T1`` (via :func:`~repro.noise.model.validate_relaxation_times`)
and raise a clear ``ValueError`` instead of ever producing negative
channel probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.noise.model import (
    NoiseModel,
    PauliError,
    readout_matrix,
    validate_relaxation_times,
)
from repro.noise.twirling import twirl_to_pauli_error
from repro.sim.channels import QuantumChannel


@dataclass(frozen=True)
class QubitRelaxation:
    """One qubit's relaxation parameters (times in any consistent unit)."""

    t1: float
    t2: float

    def __post_init__(self) -> None:
        validate_relaxation_times(self.t1, self.t2)


def relaxation_pauli_error(
    relaxation: QubitRelaxation, duration: float
) -> PauliError:
    """Pauli-twirled thermal relaxation over one gate duration.

    Amplitude damping twirls onto an asymmetric Pauli channel (X and Y
    from the decay, Z from both decay and pure dephasing), so unlike the
    catalog's uniform rates the result carries the T1-vs-T2 signature.

    ``relaxation`` may be any object with ``t1``/``t2`` attributes; the
    times are re-validated here so duck-typed callers that bypass
    :class:`QubitRelaxation` still get the clear unphysical-times error
    instead of negative probabilities downstream.
    """
    validate_relaxation_times(relaxation.t1, relaxation.t2)
    channel = QuantumChannel.thermal_relaxation(
        relaxation.t1, relaxation.t2, duration
    )
    return twirl_to_pauli_error(channel.kraus_ops)


def noise_model_from_relaxation(
    relaxations: "list[QubitRelaxation]",
    coupling_edges: "list[tuple[int, int]]",
    gate_duration_1q: float,
    gate_duration_2q: float,
    readout_error: "float | list[float]" = 0.02,
    exact_channels: bool = False,
) -> NoiseModel:
    """A full :class:`NoiseModel` derived from per-qubit T1/T2.

    Default (twirled) mode: 1q gates (``sx``/``x``) get each qubit's
    twirled relaxation over ``gate_duration_1q``; ``id`` idles for the
    same window.  CX errors use the *worse* qubit of each coupled pair
    over the (longer) 2q duration -- the standard pessimistic
    approximation when no direct 2q calibration exists.

    ``exact_channels=True`` skips the twirl entirely: the model carries
    the per-qubit (T1, T2) pairs plus both gate durations, and the
    density backends apply the exact amplitude/phase-damping Kraus set
    after every non-virtual gate on each operand qubit (2q gates expose
    *both* operands for the longer window -- more faithful than the
    worse-qubit Pauli projection).  Such models are density-only.
    """
    n_qubits = len(relaxations)
    if n_qubits == 0:
        raise ValueError("need at least one qubit")
    if gate_duration_1q <= 0 or gate_duration_2q <= 0:
        raise ValueError("gate durations must be positive")
    for relax in relaxations:
        validate_relaxation_times(relax.t1, relax.t2)
    for a, b in coupling_edges:
        if not (0 <= a < n_qubits and 0 <= b < n_qubits):
            raise ValueError(f"coupling edge ({a}, {b}) out of range")

    if isinstance(readout_error, (int, float)):
        readout_error = [float(readout_error)] * n_qubits
    if len(readout_error) != n_qubits:
        raise ValueError("readout_error list must have one entry per qubit")
    readout = np.stack(
        [readout_matrix(p, 1.2 * p) for p in readout_error]
    )

    if exact_channels:
        return NoiseModel(
            n_qubits,
            {},
            {},
            readout,
            relaxation={
                q: (relax.t1, relax.t2) for q, relax in enumerate(relaxations)
            },
            relaxation_durations=(gate_duration_1q, gate_duration_2q),
        )

    one_qubit: "dict[tuple[str, int], PauliError]" = {}
    for q, relax in enumerate(relaxations):
        error = relaxation_pauli_error(relax, gate_duration_1q)
        for gate in ("sx", "x", "id"):
            one_qubit[(gate, q)] = error

    two_qubit: "dict[tuple[int, int], PauliError]" = {}
    for a, b in coupling_edges:
        worse = min(
            (relaxations[a], relaxations[b]), key=lambda r: min(r.t1, r.t2)
        )
        two_qubit[(a, b)] = relaxation_pauli_error(worse, gate_duration_2q)

    return NoiseModel(n_qubits, one_qubit, two_qubit, readout)
