"""Synthetic device catalog standing in for the paper's IBMQ backends.

The paper evaluates on IBMQ Yorktown, Santiago, Lima, Belem, Athens,
Quito, Melbourne and Bogota.  Those machines are retired and unreachable
offline, so this catalog rebuilds them as :class:`Device` objects whose

* single-qubit gate error rates match the values the paper reports in
  Figure 1 (Yorktown 1.01e-3, Lima 4.84e-4, Santiago 2.03e-4) with the
  remaining devices set from their relative Quantum Volume,
* two-qubit (CX) errors are ~10x the 1q errors (typical for that
  hardware generation),
* readout confusion matrices are a few percent, asymmetric, like the
  paper's Santiago example ``[[0.984, 0.016], [0.022, 0.978]]``,
* per-qubit / per-edge variation is drawn deterministically from a seed
  derived from the device name (the paper notes up to 10x spread between
  qubits of the same chip).

Each device also carries a hidden ``hardware_model`` -- the published
model with lognormal calibration drift -- used by the "real QC" execution
surrogate.  The drift is what reproduces the noise-model-vs-real-device
accuracy gap of paper Table 11.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.compiler.coupling import (
    CouplingMap,
    bowtie_coupling,
    ladder_coupling,
    line_coupling,
    t_coupling,
)
from repro.noise.model import NoiseModel, PauliError, readout_matrix


def _seed_from_name(name: str) -> int:
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass(frozen=True)
class DeviceSpec:
    """Static description from which a device's noise model is generated.

    ``noise_amplification`` folds error sources the per-gate calibration
    numbers do not capture (decoherence during idling, crosstalk,
    coherent errors) into the effective Pauli rates.  Real NISQ devices
    degrade QNN accuracy far more than their reported ~1e-3 gate errors
    alone explain -- the paper's Figure 1 shows 30-60 point accuracy
    drops; a plain product of published per-gate fidelities would predict
    far less.  The multiplier is calibrated so the simulated accuracy
    drop magnitude matches the paper's; ``base_1q_error`` stays the
    *reported* calibration value (what Figure 1 plots).
    """

    name: str
    coupling_kind: str  # 'line' | 't' | 'bowtie' | 'ladder'
    n_qubits: int
    quantum_volume: int
    base_1q_error: float
    base_readout_error: float
    retired: bool = False
    two_qubit_factor: float = 10.0
    noise_amplification: float = 2.5
    #: Std of the per-qubit systematic (RY, RZ) over-rotation angles in
    #: the hardware twin.  This coherent component is *absent* from the
    #: published model -- it is the input-dependent error that
    #: post-measurement normalization alone cannot cancel, and the reason
    #: noise-injected training (which widens decision margins) helps on
    #: top of normalization.  Calibrated so the Table 1 method ordering
    #: (baseline < +norm < +injection < +quantization) reproduces.
    coherent_sigma: float = 0.12


_SPECS: "dict[str, DeviceSpec]" = {
    spec.name: spec
    for spec in [
        # Figure 1 reports these three 1q error rates explicitly.  The
        # coherent sigma scales with device quality: better-calibrated
        # chips (higher QV, lower gate error) drift less.
        DeviceSpec("yorktown", "bowtie", 5, 8, 1.01e-3, 0.035, coherent_sigma=0.18),
        DeviceSpec(
            "lima",
            "t",
            5,
            8,
            4.84e-4,
            0.028,
            coherent_sigma=0.06,
            two_qubit_factor=7.0,
            noise_amplification=2.2,
        ),
        DeviceSpec("santiago", "line", 5, 32, 2.03e-4, 0.019, coherent_sigma=0.07),
        # Remaining devices: rates set from their Quantum Volume tier.
        DeviceSpec(
            "athens", "line", 5, 32, 2.8e-4, 0.021, retired=True, coherent_sigma=0.08
        ),
        DeviceSpec("bogota", "line", 5, 32, 3.2e-4, 0.022, coherent_sigma=0.085),
        DeviceSpec("belem", "t", 5, 16, 5.5e-4, 0.030, coherent_sigma=0.11),
        DeviceSpec("quito", "t", 5, 16, 6.0e-4, 0.032, coherent_sigma=0.12),
        DeviceSpec("melbourne", "ladder", 14, 8, 1.4e-3, 0.045, coherent_sigma=0.20),
    ]
}


def _build_coupling(spec: DeviceSpec) -> CouplingMap:
    if spec.coupling_kind == "line":
        return line_coupling(spec.n_qubits)
    if spec.coupling_kind == "t":
        return t_coupling()
    if spec.coupling_kind == "bowtie":
        return bowtie_coupling()
    if spec.coupling_kind == "ladder":
        return ladder_coupling(spec.n_qubits)
    raise ValueError(f"unknown coupling kind {spec.coupling_kind!r}")


def _build_noise_model(spec: DeviceSpec, coupling: CouplingMap) -> NoiseModel:
    rng = np.random.default_rng(_seed_from_name(spec.name))
    effective_1q = spec.base_1q_error * spec.noise_amplification
    one_qubit: "dict[tuple[str, int], PauliError]" = {}
    for q in range(spec.n_qubits):
        # Per-qubit spread: real chips show up to ~10x qubit-to-qubit range.
        variation = rng.lognormal(0.0, 0.45)
        rate = effective_1q * variation
        for gate in ("sx", "x"):
            one_qubit[(gate, q)] = PauliError(rate, rate, rate)
        # Idle (id) errors are a bit smaller than driven-gate errors.
        idle = 0.5 * rate
        one_qubit[("id", q)] = PauliError(idle, idle, idle)

    two_qubit: "dict[tuple[int, int], PauliError]" = {}
    for a, b in coupling.edges:
        rate = effective_1q * spec.two_qubit_factor * rng.lognormal(0.0, 0.35)
        # CX noise leans toward X/Y errors (cross-resonance physics).
        two_qubit[(a, b)] = PauliError(1.2 * rate / 3, 1.2 * rate / 3, 0.6 * rate / 3)

    readout = np.empty((spec.n_qubits, 2, 2))
    for q in range(spec.n_qubits):
        p01 = spec.base_readout_error * rng.lognormal(0.0, 0.3)
        p10 = 1.35 * spec.base_readout_error * rng.lognormal(0.0, 0.3)
        readout[q] = readout_matrix(min(p01, 0.4), min(p10, 0.4))

    return NoiseModel(spec.n_qubits, one_qubit, two_qubit, readout)


@dataclass(frozen=True)
class Device:
    """A quantum device: coupling map + published and true noise models."""

    name: str
    spec: DeviceSpec
    coupling: CouplingMap = field(repr=False)
    noise_model: NoiseModel = field(repr=False)
    hardware_model: NoiseModel = field(repr=False)

    @property
    def n_qubits(self) -> int:
        return self.spec.n_qubits

    @property
    def quantum_volume(self) -> int:
        return self.spec.quantum_volume

    @property
    def retired(self) -> bool:
        return self.spec.retired

    @property
    def basis_gates(self) -> "tuple[str, ...]":
        return ("rz", "sx", "x", "cx", "id")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"ibmq-{self.name}"


_DEVICE_CACHE: "dict[str, Device]" = {}


def get_device(name: str) -> Device:
    """Look up a device by name (case-insensitive, 'ibmq-' prefix ok)."""
    key = name.lower().removeprefix("ibmq-").removeprefix("ibmq_")
    if key not in _SPECS:
        raise KeyError(f"unknown device {name!r}; available: {sorted(_SPECS)}")
    if key not in _DEVICE_CACHE:
        spec = _SPECS[key]
        coupling = _build_coupling(spec)
        published = _build_noise_model(spec, coupling)
        drift_rng = np.random.default_rng(_seed_from_name(spec.name + ":drift"))
        hardware = published.drifted(drift_rng)
        coherent = {
            q: (
                float(drift_rng.normal(0.0, spec.coherent_sigma)),
                float(drift_rng.normal(0.0, spec.coherent_sigma)),
            )
            for q in range(spec.n_qubits)
        }
        hardware = hardware.with_coherent(coherent)
        _DEVICE_CACHE[key] = Device(key, spec, coupling, published, hardware)
    return _DEVICE_CACHE[key]


def list_devices() -> "list[str]":
    """Names of all devices in the catalog."""
    return sorted(_SPECS)
