"""Monte-Carlo Pauli-trajectory execution: the "real QC" surrogate.

The paper runs inference on physical IBMQ machines with 8192 shots.  This
module emulates that: each *trajectory* samples concrete Pauli error
gates from the device's (drifted) hardware noise model and runs a pure
statevector simulation; averaging trajectories approximates the noisy
channel, and multinomial shot sampling (after mixing in readout
confusion) adds the same statistical noise a real device run has.

For wide circuits where density-matrix simulation is infeasible (the
10-qubit MNIST-10/Fashion-10 models on Melbourne) this is the only noisy
backend; for narrow circuits it converges to the density-matrix result
as trajectories increase (verified in tests).

Fused-trajectory design
-----------------------
The naive implementation binds and sweeps one circuit per trajectory --
``n_trajectories`` full Python passes.  The fused engine instead:

* binds the *base* circuit once (through the statevector bind cache) and
  stacks all trajectories into a single ``(trajectories * batch, 2**n)``
  statevector, so each base gate is one vectorized apply;
* **pre-merges the constant segments between error sites**: gates where
  the noise model can never insert an event (zero Pauli total, no
  coherent miscalibration -- e.g. the virtual ``rz`` runs dominating a
  transpiled block) fuse into single matrices via the gate-fusion pass
  (:class:`repro.compiler.fusion.FusionPlan` with the error sites pinned
  unfused), computed once per (weights, inputs) and reused across every
  trajectory chunk, realization and ZNE fold;
* draws every error site's Pauli choice for all trajectories in a
  *single* uniform draw per chunk (vectorized inverse-CDF over the
  plan's precomputed cumulative-probability table, replacing one
  ``rng.choice`` call per site) and expresses sampled errors as batched
  ``(trajectories * batch, 2, 2)`` matrices -- sites where every
  trajectory drew identity (the common case at hardware error rates)
  are skipped outright;
* chunks trajectories so the stacked state stays within a fixed memory
  budget, gives each chunk its own ``SeedSequence.spawn``-derived RNG
  stream, and ping-pongs between two work buffers (no per-gate
  allocation);
* optionally **shards chunks across a worker pool**
  (``n_workers``/``shard_backend``): because the chunk decomposition and
  per-chunk streams never depend on the worker count, sharded output is
  bit-identical to serial execution for a fixed seed.

Shot sampling uses one batched ``Generator.multinomial`` call over 2-D
pvals instead of a per-sample Python loop.  The per-trajectory reference
implementation is kept as :func:`trajectory_probabilities_reference`;
``tests/test_fast_engine.py`` and ``tests/test_density_engine.py`` check
the paths agree (exactly for deterministic noise, statistically
otherwise).
"""

from __future__ import annotations

import functools
import hashlib
import pickle

from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.compiler.passes import CompiledCircuit
from repro.noise.model import NoiseModel
from repro.noise.readout import apply_readout_to_joint_probabilities
from repro.noise.sampler import ErrorGateSampler
from repro.sim.gates import gate_matrix
from repro.sim.statevector import (
    SmallLRU,
    apply_grouped_1q,
    apply_matrix,
    batched_multinomial,
    bind_circuit,
    bind_plan_for,
    expectations_from_counts,
    run_circuit,
    z_signs,
    zero_state,
)
from repro.utils.rng import as_rng

#: (I, X, Y, Z) stacked for indexed lookup by sampled error choices.
_PAULI_STACK = np.stack(
    [gate_matrix("id"), gate_matrix("x"), gate_matrix("y"), gate_matrix("z")]
)

#: Cap on stacked-state size (complex entries): chunks trajectories so the
#: fused sweep never holds more than ~64 MiB of statevector per buffer.
_MAX_STACKED_ENTRIES = 1 << 22

#: Default trajectories per chunk.  Applied to serial and sharded runs
#: alike, so the chunk layout -- and with it the per-chunk RNG streams --
#: never depends on the worker count: any ``n_workers`` setting stays
#: bit-identical to serial out of the box, and a pool actually has
#: chunks to distribute whenever ``n_trajectories`` exceeds this.
#: Measured neutral for the serial sweep at engine scales (the per-chunk
#: overhead is one vectorized draw; stacks of 16 x batch rows keep the
#: apply kernels saturated).
_DEFAULT_SHARD_SIZE = 16


@functools.lru_cache(maxsize=512)
def _coherent_unitary(ey: float, ez: float) -> np.ndarray:
    """RZ(ez) @ RY(ey): the deterministic post-gate miscalibration."""
    return gate_matrix("rz", (ez,)) @ gate_matrix("ry", (ey,))


def _expand_events(post: "list[tuple]", batch: int) -> list:
    """Materialize one gate site's sampled error events as matrices.

    Returns ``[(local_qubit, matrix), ...]``: Pauli events become
    batched ``(n_realizations * batch, 2, 2)`` stacks
    (realization-major, matching the stacked-state layout), coherent
    miscalibrations stay shared 2x2 constants.  Training-tape path only
    (:func:`stacked_noisy_ops`): the inference sweep moved to the
    segment plan, which draws all sites at once and fuses coherent
    rotations into its constant segments (:func:`_segment_chunk`).
    """
    expanded = []
    for kind, local_q, payload in post:
        if kind == "pauli":
            expanded.append((local_q, np.repeat(_PAULI_STACK[payload], batch, axis=0)))
        else:
            expanded.append((local_q, _coherent_unitary(*payload)))
    return expanded


def _count_inserted(post: "list[tuple]") -> int:
    """Non-identity Pauli insertions in one gate site's events.

    Training-path bookkeeping (insertion stats) only -- the inference
    sweep never pays for it.
    """
    return sum(
        int(np.count_nonzero(payload))
        for kind, _q, payload in post
        if kind == "pauli"
    )


#: Fused static trajectory segments retained per plan, keyed on weights.
_SEGMENT_FUSION_CACHE_SIZE = 4


class _SegmentPlan:
    """Per-(circuit, noise model, factor) trajectory execution plan.

    The gate stream is partitioned *at the stochastic error sites*: a
    Pauli insertion point must interrupt any fused run (the sampled
    error lands between the gate and whatever follows), but everything
    else is constant within a (weights, inputs) binding and fuses
    through the compiler's gate-fusion pass:

    * a site gate itself merges into the run *preceding* its insertion
      point (the break falls after the gate, not around it);
    * the deterministic coherent-miscalibration rotations that follow a
      site's Pauli insertion open the *next* run as constant ops
      (:func:`repro.compiler.fusion.constant_op`);
    * input-dependent encoder gates stay unfused singletons, re-bound
      per call.

    Fused static segments are cached per weight vector, so repeated
    calls -- every chunk, realization and ZNE fold of an evaluation
    sweep -- reuse the merged matrices.  The plan also precomputes the
    stacked cumulative-probability table driving the one-draw
    vectorized Pauli sampling (:meth:`sample`).
    """

    __slots__ = (
        "bind_plan", "site_cum", "site_rows", "jump_sites", "_layout",
        "_cache",
    )

    def __init__(
        self,
        compiled: "CompiledCircuit",
        sampler: ErrorGateSampler,
        jump: bool = False,
    ):
        from repro.sim.statevector import SmallLRU

        circuit = compiled.circuit
        self.bind_plan = bind_plan_for(circuit)
        pauli_sites, coherent_by_gate = sampler.site_table(
            circuit, compiled.physical_qubits
        )
        if pauli_sites:
            self.site_cum = np.stack([cum for _gi, _q, cum in pauli_sites])
        else:
            self.site_cum = np.zeros((0, 3))
        site_rows: "dict[int, list[tuple[int, int]]]" = {}
        for row, (gate_index, local_q, _cum) in enumerate(pauli_sites):
            site_rows.setdefault(gate_index, []).append((row, local_q))
        self.site_rows = site_rows
        # Quantum-jump (MCWF) mode: the exact relaxation Kraus sets
        # become per-site jump points whose sampling is state-dependent
        # (probabilities are the effects' expectation values), so they
        # interrupt fusion like Pauli sites do but are sampled during
        # the sweep rather than pre-drawn.
        self.jump_sites = (
            sampler.jump_table(circuit, compiled.physical_qubits)
            if jump
            else []
        )
        jump_rows: "dict[int, list[int]]" = {}
        for row, (gate_index, _q, _k, _e) in enumerate(self.jump_sites):
            jump_rows.setdefault(gate_index, []).append(row)
        # Layout entries, in sweep order:
        #   ("static", tokens)  -- fusable run; tokens are ("g", index) or
        #                          ("c", local_q, (ey, ez)) constants
        #   ("dynamic", index)  -- input-dependent gate, re-bound per call
        #   ("site", index)     -- Pauli insertion point after gate `index`
        #   ("jump", row)       -- MCWF jump point, row into `jump_sites`
        layout: "list[tuple]" = []
        run: "list[tuple]" = []

        def flush():
            nonlocal run
            if run:
                layout.append(("static", run))
                run = []

        for i, gate in enumerate(circuit.gates):
            if any(expr.depends_on_input for expr in gate.params):
                flush()
                layout.append(("dynamic", i))
            else:
                run.append(("g", i))
            if i in site_rows:
                flush()
                layout.append(("site", i))
            for row in jump_rows.get(i, ()):
                flush()
                layout.append(("jump", row))
            for local_q, angles in coherent_by_gate.get(i, ()):
                run.append(("c", local_q, angles))
        flush()
        self._layout = layout
        # weight bytes -> fused ops per static run, in layout order.
        self._cache = SmallLRU(_SEGMENT_FUSION_CACHE_SIZE)

    def _static_segments(self, ops: list, weights) -> "list[list]":
        from repro.compiler.fusion import constant_op, fuse_bound_ops
        from repro.sim.statevector import weights_key

        key = weights_key(weights)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        segments = []
        for kind, payload in self._layout:
            if kind != "static":
                continue
            raw = [
                ops[token[1]]
                if token[0] == "g"
                else constant_op((token[1],), _coherent_unitary(*token[2]))
                for token in payload
            ]
            segments.append(fuse_bound_ops(raw))
        self._cache.put(key, segments)
        return segments

    def fused_stream(
        self,
        weights: "np.ndarray | None",
        inputs: "np.ndarray | None",
        batch: "int | None",
    ) -> "list[tuple]":
        """The sweep program: ("op", bound op) and ("site", gate) steps."""
        ops = self.bind_plan.bind(weights, inputs, batch)
        segments = iter(self._static_segments(ops, weights))
        stream: "list[tuple]" = []
        for kind, payload in self._layout:
            if kind == "static":
                stream.extend(("op", op) for op in next(segments))
            elif kind == "dynamic":
                stream.append(("op", ops[payload]))
            else:  # "site" / "jump" pass through with their payload
                stream.append((kind, payload))
        return stream

    def sample(
        self, rng: np.random.Generator, n_traj: int
    ) -> "np.ndarray | None":
        """Pauli choices for all sites x trajectories in one draw.

        Returns ``(n_sites, n_traj)`` ints indexing (I, X, Y, Z) via the
        inverse CDF of each site's distribution, or None when the model
        has no stochastic sites at all.
        """
        n_sites = self.site_cum.shape[0]
        if n_sites == 0:
            return None
        u = rng.random((n_sites, n_traj))
        return (u[:, :, None] >= self.site_cum[:, None, :]).sum(axis=2)


def _sample_jump_matrices(
    state: np.ndarray,
    kraus: np.ndarray,
    effects: np.ndarray,
    local_q: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-row renormalized jump operators sampled from one Kraus site.

    The MCWF step: each stacked row's jump probabilities are the
    expectation values ``p_i = <psi| K_i^dag K_i |psi>`` (computed from
    the row's single-qubit reduced density matrix -- one einsum over the
    qubit view, never a full density), one operator index is drawn per
    row by inverse CDF, and the returned ``(rows, 2, 2)`` batch carries
    ``K_i / sqrt(p_i)`` so the evolved rows stay unit-norm.  Averaging
    ``|psi><psi|`` over trajectories then reproduces the exact channel.
    """
    rows = state.shape[0]
    view = state.reshape(rows, -1, 2, 1 << local_q)
    reduced = np.einsum("raxd,rayd->rxy", view, view.conj())
    p = np.einsum("mxy,ryx->rm", effects, reduced).real
    np.clip(p, 0.0, None, out=p)
    totals = p.sum(axis=1, keepdims=True)
    p /= np.where(totals > 0.0, totals, 1.0)
    u = rng.random((rows, 1))
    choice = np.minimum(
        (u >= np.cumsum(p, axis=1)).sum(axis=1), kraus.shape[0] - 1
    )
    p_sel = np.take_along_axis(p, choice[:, None], axis=1)[:, 0]
    scale = 1.0 / np.sqrt(np.maximum(p_sel, 1e-300))
    return kraus[choice] * scale[:, None, None]


def _segment_plan_for(
    compiled: "CompiledCircuit",
    sampler: ErrorGateSampler,
    jump: bool = False,
) -> _SegmentPlan:
    """The cached :class:`_SegmentPlan` for a compiled circuit + sampler.

    Shares the superop plan's memoization policy
    (:func:`repro.compiler.superop.cached_noise_plan`): rows keyed by
    noise model identity and factor, invalidated when the circuit's
    gate list goes stale, bounded FIFO.  Jump-mode (MCWF) plans live in
    their own cache attribute -- the same (model, factor) pair compiles
    to a different layout when relaxation sites are unraveled.
    """
    from repro.compiler.superop import cached_noise_plan

    return cached_noise_plan(
        compiled.circuit,
        "_mcwf_plans" if jump else "_trajectory_plans",
        sampler.noise_model, sampler.noise_factor,
        lambda: _SegmentPlan(compiled, sampler, jump=jump),
    )


def _segment_chunk(
    plan: _SegmentPlan,
    stream: "list[tuple]",
    n_qubits: int,
    batch: int,
    n_traj: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sum of joint probabilities over ``n_traj`` stacked trajectories.

    Executes the plan's fused stream: ``("op", ...)`` steps apply merged
    segment matrices (or per-call encoder gates); at each
    ``("site", gate)`` step the chunk's pre-drawn Pauli choices become
    per-trajectory error coefficients, applied operand-by-operand in
    :meth:`ErrorGateSampler.sample`'s insertion order.  Sites where
    every trajectory drew identity are skipped outright.

    The hot inner work never materializes per-row ``(rows, 2, 2)``
    matrix stacks: sampled Pauli errors broadcast one 2x2 per trajectory
    over its ``batch`` stacked rows, and 1-qubit batched encoder gates
    broadcast one 2x2 per sample across the stacked trajectories
    (:func:`repro.sim.statevector.apply_grouped_1q`) -- each step is a
    handful of whole-stack ufunc passes (GIL-released C loops), so the
    thread backend's workers overlap instead of serializing on Python
    row bookkeeping.  Dense fused segments already contract as single
    flat GEMMs over the whole trajectory x batch stack.
    """
    rows = n_traj * batch
    stacked = zero_state(n_qubits, rows)
    scratch = np.empty_like(stacked)
    choices = plan.sample(rng, n_traj)
    for kind, payload in stream:
        if kind == "op":
            matrix = payload.matrix
            if payload.batched and n_traj > 1:
                if len(payload.qubits) == 1:
                    # Per-sample encoder matrices repeat across stacked
                    # trajectories: broadcast, never tile.
                    apply_grouped_1q(
                        stacked, matrix, payload.qubits[0], n_qubits,
                        out=scratch, layout="cycle",
                    )
                    stacked, scratch = scratch, stacked
                    continue
                matrix = np.tile(matrix, (n_traj, 1, 1))
            apply_matrix(stacked, matrix, payload.qubits, n_qubits, out=scratch)
            stacked, scratch = scratch, stacked
            continue
        if kind == "jump":
            # MCWF: state-dependent jump sampling from the exact Kraus
            # set, renormalized per row.  Drawn in stream order off the
            # chunk's own rng, so chunk results stay independent of how
            # chunks are distributed (sharded == serial bit-for-bit).
            _gi, local_q, kraus, effects = plan.jump_sites[payload]
            mats = _sample_jump_matrices(stacked, kraus, effects, local_q, rng)
            apply_matrix(stacked, mats, (local_q,), n_qubits, out=scratch)
            stacked, scratch = scratch, stacked
            continue
        for row, local_q in plan.site_rows[payload]:
            drawn = choices[row]
            if drawn.any():
                # One 2x2 per trajectory, broadcast over its batch rows.
                apply_grouped_1q(
                    stacked, _PAULI_STACK[drawn], local_q, n_qubits,
                    out=scratch, layout="block",
                )
                stacked, scratch = scratch, stacked
    probs = np.abs(stacked) ** 2
    return probs.reshape(n_traj, batch, -1).sum(axis=0)


#: Worker-side (process-global) cache of rebuilt segment plans, keyed by
#: the task payload's plan digest.  A persistent process pool unpickles
#: the circuit + noise model and compiles the segment plan *once per
#: worker* instead of once per task; the plan's internal weight-keyed
#: fusion cache then makes repeat calls with the same weight vector
#: (training sweeps, serve flushes) hit fully warm plans.
_WORKER_PLAN_CACHE = SmallLRU(8)

#: Hit/miss counters for :data:`_WORKER_PLAN_CACHE`, per worker process.
_WORKER_PLAN_STATS = {"hits": 0, "misses": 0}


def worker_plan_cache_stats() -> dict:
    """Debug hook: this process's worker plan-cache counters.

    Submit to a pool worker (``pool.submit(worker_plan_cache_stats)``)
    to observe cache behaviour across tasks; used by the plan-cache
    tests and harmless in the parent (where the cache stays empty --
    the serial path uses the circuit-attached cache instead).
    """
    import os

    return {
        "pid": os.getpid(),
        "entries": len(_WORKER_PLAN_CACHE),
        **_WORKER_PLAN_STATS,
    }


def reset_worker_plan_cache() -> None:
    """Debug hook: clear this process's worker plan cache and counters."""
    _WORKER_PLAN_CACHE._data.clear()
    _WORKER_PLAN_STATS["hits"] = 0
    _WORKER_PLAN_STATS["misses"] = 0


@dataclass(frozen=True)
class _ShardPayload:
    """Per-call constants a process-backend chunk task ships once.

    ``plan_blob`` is the pre-pickled ``(bare circuit, noise model,
    noise factor, jump)`` tuple -- serialized *once per call* in the
    parent (re-pickling the payload per task then only memcpys the
    bytes) -- and ``plan_digest`` is its hash, the worker plan-cache
    key: it covers the circuit gates, the noise model and the factor,
    so any change to what the plan is compiled from changes the key.
    Weights and inputs ride alongside, outside the digested blob: they
    vary per call and feed the plan's own weight-keyed caches.
    """

    plan_blob: bytes
    plan_digest: str
    weights: "np.ndarray | None"
    inputs: "np.ndarray | None"
    batch: int


class _PayloadBlob:
    """A cached (blob, digest) row for :func:`_shard_payload`.

    ``cached_noise_plan`` rows are ``(model, factor, plan)`` with
    staleness checked via ``plan.bind_plan.stale(circuit)``; carrying
    the parent circuit's bind plan makes the cached blob invalidate
    with the gate list exactly like the execution plans do.
    """

    __slots__ = ("bind_plan", "blob", "digest")


def _shard_payload(
    compiled: "CompiledCircuit",
    noise_model: NoiseModel,
    noise_factor: float,
    weights: "np.ndarray | None",
    inputs: "np.ndarray | None",
    batch: int,
    jump: bool,
) -> _ShardPayload:
    """Build (and memoize on the parent circuit) a call's task payload.

    Ships a *bare* copy of the compiled circuit: the original carries
    the parent's plan caches (``_bind_plan``, ``_trajectory_plans``,
    fused segment matrices) as instance attributes, which would bloat
    the pickle only for the worker to rebuild its plan from the gates
    anyway.  The blob + digest depend only on (gates, noise model,
    factor, jump), so they share the circuit-attached memoization
    policy of the plans themselves
    (:func:`repro.compiler.superop.cached_noise_plan`) and a training
    loop's repeat calls skip re-pickling the circuit entirely.
    """
    from dataclasses import replace

    from repro.circuits.circuit import Circuit
    from repro.compiler.superop import cached_noise_plan

    def build():
        bare = replace(
            compiled,
            circuit=Circuit(
                compiled.circuit.n_qubits, list(compiled.circuit.gates)
            ),
        )
        entry = _PayloadBlob()
        entry.bind_plan = bind_plan_for(compiled.circuit)
        entry.blob = pickle.dumps(
            (bare, noise_model, noise_factor, jump),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        entry.digest = hashlib.sha1(entry.blob).hexdigest()
        return entry

    entry = cached_noise_plan(
        compiled.circuit,
        "_mcwf_payloads" if jump else "_shard_payloads",
        noise_model, noise_factor, build,
    )
    return _ShardPayload(entry.blob, entry.digest, weights, inputs, batch)


def _worker_plan(payload: _ShardPayload) -> "tuple[_SegmentPlan, int]":
    """The (plan, n_qubits) for a task payload, from this worker's cache.

    A cache hit skips unpickling the circuit blob entirely; a miss
    deserializes and compiles deterministically, so a cold cache is
    bit-identical to a warm one (verified by the plan-cache tests).
    """
    cached = _WORKER_PLAN_CACHE.get(payload.plan_digest)
    if cached is not None:
        _WORKER_PLAN_STATS["hits"] += 1
        return cached
    _WORKER_PLAN_STATS["misses"] += 1
    compiled, noise_model, noise_factor, jump = pickle.loads(payload.plan_blob)
    sampler = ErrorGateSampler(noise_model, noise_factor, allow_exact=jump)
    entry = (
        _SegmentPlan(compiled, sampler, jump=jump),
        compiled.circuit.n_qubits,
    )
    _WORKER_PLAN_CACHE.put(payload.plan_digest, entry)
    return entry


def _process_chunk_worker(
    payload: _ShardPayload,
    group: "list[tuple[int, np.random.SeedSequence]]",
) -> "list[np.ndarray]":
    """Run a group of chunks in a worker process off the cached plan.

    Each worker task receives a *contiguous group* of chunks so even a
    cold plan is built once per task, not once per chunk; on a
    persistent pool the digest-keyed :data:`_WORKER_PLAN_CACHE` carries
    the plan across tasks and calls.  Plan construction and segment
    fusion are deterministic, and each chunk still consumes only its
    own spawned stream, so the results are bit-identical to the same
    chunks computed serially in the parent (verified by the sharding
    equivalence tests).
    """
    plan, n_qubits = _worker_plan(payload)
    stream = plan.fused_stream(payload.weights, payload.inputs, payload.batch)
    return [
        _segment_chunk(
            plan, stream, n_qubits, payload.batch, n_traj,
            np.random.default_rng(seed),
        )
        for n_traj, seed in group
    ]


def _seeded_segment_chunk(
    plan: _SegmentPlan,
    stream: "list[tuple]",
    n_qubits: int,
    batch: int,
    n_traj: int,
    seed: "np.random.SeedSequence",
) -> np.ndarray:
    """:func:`_segment_chunk` taking the chunk's *seed*, not a Generator.

    The supervised execution path re-runs a faulted chunk from scratch;
    passing the ``SeedSequence`` and constructing the generator inside
    the call means a retry consumes a pristine stream identical to the
    failed attempt's -- passing a live ``Generator`` would hand the
    retry a partially consumed stream and break bit-identical recovery.
    """
    return _segment_chunk(
        plan, stream, n_qubits, batch, n_traj, np.random.default_rng(seed)
    )


def _tiled_op(op, n_traj: int, batch: int):
    """Replicate a bound op across ``n_traj`` stacked realizations.

    Shared matrices broadcast as-is; per-sample (batched) matrices and
    their bound parameter values are tiled to ``(n_traj * batch, ...)``
    so the adjoint backward pass sees consistent per-row derivatives.
    """
    if not op.batched:
        return op
    from repro.sim.statevector import BoundOp

    matrix = np.tile(op.matrix, (n_traj, 1, 1))
    values = tuple(
        np.tile(v, n_traj) if isinstance(v, np.ndarray) and v.ndim else v
        for v in op.values
    )
    return BoundOp(op.gate, matrix, values)


def _error_op(local_q: int, matrix: np.ndarray):
    """A sampled error insertion as a tape-compatible constant op."""
    from repro.circuits.circuit import Gate
    from repro.sim.statevector import BoundOp

    return BoundOp(Gate("id", (local_q,)), matrix, ())


def stacked_noisy_ops(
    compiled: "CompiledCircuit",
    sampler: ErrorGateSampler,
    weights: "np.ndarray | None",
    inputs: "np.ndarray | None",
    batch: int,
    n_realizations: int,
    rng: "int | np.random.Generator | None" = None,
) -> "tuple[list, int]":
    """Bound op list for ``n_realizations`` error realizations x ``batch``.

    This composes the *training batch* axis with the *noise trajectory*
    axis: the base circuit is bound once (through the bind cache), every
    error site's Pauli choice is drawn for all realizations in one
    vectorized call, and the sampled errors become batched
    ``(n_realizations * batch, 2, 2)`` constant ops.  The returned list
    runs -- and, because every op is a regular :class:`BoundOp` with no
    differentiable parameters on the error sites, *backpropagates* -- as
    one fused ``(n_realizations * batch, 2**n)`` statevector sweep.

    Returns ``(ops, n_inserted)`` with ``n_inserted`` the total number of
    non-identity Pauli insertions across all realizations.
    """
    rng = as_rng(rng)
    if inputs is not None:
        batch = np.asarray(inputs).shape[0]
    ops = bind_circuit(compiled.circuit, weights, inputs, batch)
    events = sampler.sample_batched(
        compiled.circuit, compiled.physical_qubits, n_realizations, rng
    )
    stacked: list = []
    n_inserted = 0
    for op, post in zip(ops, events):
        stacked.append(_tiled_op(op, n_realizations, batch))
        n_inserted += _count_inserted(post)
        for local_q, errors in _expand_events(post, batch):
            stacked.append(_error_op(local_q, errors))
    return stacked, n_inserted


def _sweep_band(ops, n_qubits: int, lo: int, hi: int, state, scratch) -> None:
    """Apply bound ops to one contiguous row band of a shared stack.

    Batched (per-row) matrices are sliced to the band; bands write
    disjoint row slices of the two shared ping-pong buffers, so
    concurrent bands never alias.  Every band performs ``len(ops)``
    buffer swaps, so all bands end on the same parity and the caller
    resolves the final buffer once.
    """
    s = state[lo:hi]
    c = scratch[lo:hi]
    for op in ops:
        matrix = op.matrix
        if op.batched:
            matrix = matrix[lo:hi]
        apply_matrix(s, matrix, op.qubits, n_qubits, out=c)
        s, c = c, s


def run_ops_banded(ops, n_qubits: int, rows: int, band_rows: int, pool):
    """Sweep bound ops over a zero-initialized ``(rows, 2**n)`` stack in
    fixed row bands distributed over a thread pool.

    The band layout is a function of ``band_rows`` alone -- never the
    worker count -- so the result is bitwise independent of how many
    threads execute the bands (asserted by the executor sharding
    tests); it may differ from the unbanded
    :func:`repro.sim.statevector.run_ops` sweep only where a kernel's
    BLAS blocking depends on the stack height (within float tolerance).
    Thread pools only: bands share the two ping-pong buffers.
    """
    state = zero_state(n_qubits, rows)
    scratch = np.empty_like(state)
    bounds = list(range(0, rows, band_rows)) + [rows]
    _collect_fail_fast([
        pool.submit(_sweep_band, ops, n_qubits, lo, hi, state, scratch)
        for lo, hi in zip(bounds, bounds[1:])
    ])
    return scratch if len(ops) % 2 else state


def stacked_noisy_forward_with_tape(
    compiled: "CompiledCircuit",
    sampler: ErrorGateSampler,
    weights: "np.ndarray | None",
    inputs: "np.ndarray | None",
    n_realizations: int,
    rng: "int | np.random.Generator | None" = None,
    n_weights: "int | None" = None,
    n_inputs: "int | None" = None,
    pool=None,
):
    """Noise-injected forward over stacked realizations, keeping the tape.

    Returns ``(expectations, tape, n_inserted)``: expectations are the
    per-sample mean over realizations, shape ``(batch, n_qubits)``; the
    tape's state is the full ``(n_realizations * batch, 2**n)`` stack and
    is consumed by :func:`stacked_noisy_backward`.

    ``pool`` (a thread executor or a zero-argument callable returning
    one, held persistently by :class:`~repro.core.executors
    .GateInsertionExecutor`) shards the sweep into one fixed row band
    per realization via :func:`run_ops_banded`; the band layout never
    depends on the worker count, so results are bitwise identical
    across worker counts.  The sampled events are identical to the
    serial sweep's -- the rng is consumed before any banding decision.
    """
    from repro.core.gradients import QuantumTape
    from repro.sim.statevector import run_ops

    if inputs is not None:
        inputs = np.asarray(inputs, dtype=float)
        batch = inputs.shape[0]
    else:
        batch = 1
    circuit = compiled.circuit
    ops, n_inserted = stacked_noisy_ops(
        compiled, sampler, weights, inputs, batch, n_realizations, rng
    )
    if pool is not None and n_realizations > 1 and callable(pool):
        pool = pool()  # lazy supplier; may decline (None) -> serial sweep
    if pool is not None and n_realizations > 1:
        state = run_ops_banded(
            ops, circuit.n_qubits, n_realizations * batch, batch, pool
        )
    else:
        state = run_ops(ops, circuit.n_qubits, n_realizations * batch)
    table = circuit.parameter_table
    tape = QuantumTape(
        circuit,
        ops,
        state,
        n_weights if n_weights is not None else table.num_weights,
        n_inputs if n_inputs is not None else table.num_inputs,
    )
    probs = np.abs(state) ** 2
    stacked_exp = probs @ z_signs(circuit.n_qubits).T
    expectations = stacked_exp.reshape(n_realizations, batch, -1).mean(axis=0)
    return expectations, tape, n_inserted


def stacked_noisy_backward(
    tape,
    grad_expectations: np.ndarray,
    n_realizations: int,
) -> "tuple[np.ndarray, np.ndarray]":
    """Adjoint backward through a stacked-realization tape.

    ``grad_expectations`` is the per-sample ``(batch, n_qubits)`` upstream
    gradient of the realization-*averaged* expectations; it is replicated
    (scaled by ``1 / n_realizations``) onto the stack, swept once, and the
    per-sample input gradients are summed back over realizations.
    """
    from repro.core.gradients import adjoint_backward

    grad_expectations = np.asarray(grad_expectations, dtype=float)
    batch = grad_expectations.shape[0]
    stacked_grad = np.tile(grad_expectations / n_realizations, (n_realizations, 1))
    weight_grad, input_grad = adjoint_backward(tape, stacked_grad)
    input_grad = input_grad.reshape(n_realizations, batch, -1).sum(axis=0)
    return weight_grad, input_grad


#: Store a training checkpoint at every Nth jump site.  The backward
#: sweep recovers the skipped pre-jump states by replaying the recorded
#: ops of one window from its stored checkpoint (each window replays
#: once), bounding tape memory at ``n_jumps / stride`` stacked states
#: instead of one per jump -- the difference between a few hundred KB
#: and hundreds of MB on wide blocks with relaxation on every gate.
_JUMP_CHECKPOINT_STRIDE = 8


@dataclass
class MCWFTape:
    """Everything an MCWF forward saves for the checkpointed adjoint.

    ``ops`` is the realized trajectory's full linear map: base gates,
    sampled Pauli insertions, coherent rotations and the renormalized
    jump operators, in application order.  Jump operators are
    *non-unitary*, so their adjoint is not their inverse and the
    backward sweep cannot un-apply them; ``jump_ops`` marks their op
    indices and ``checkpoints`` stores the pre-site state at every
    :data:`_JUMP_CHECKPOINT_STRIDE`-th jump -- the sweep restores
    stored states directly and re-derives the ones in between by
    replaying the recorded window (everything else is unitary and
    inverts as usual).
    """

    circuit: object
    ops: list
    checkpoints: "dict[int, np.ndarray]"
    jump_ops: "set[int]"
    state: np.ndarray
    n_weights: int
    n_inputs: int


def mcwf_forward_with_tape(
    compiled: "CompiledCircuit",
    sampler: ErrorGateSampler,
    weights: "np.ndarray | None",
    inputs: "np.ndarray | None",
    n_realizations: int = 1,
    rng: "int | np.random.Generator | None" = None,
    n_weights: "int | None" = None,
    n_inputs: "int | None" = None,
    jump_sites: "list | None" = None,
    pool=None,
) -> "tuple[np.ndarray, MCWFTape, int]":
    """Quantum-jump noisy forward over stacked realizations, with tape.

    The training-side MCWF sweep: Pauli error choices are pre-drawn per
    site (state-independent, as in :func:`stacked_noisy_ops`), while
    exact-relaxation jump operators are sampled *during* the sweep from
    the running state's per-row jump probabilities and recorded as
    renormalized ``(rows, 2, 2)`` constant ops.  Returns
    ``(expectations, tape, n_inserted)`` with expectations the
    per-sample mean over realizations.

    Gradient semantics match the gate-insertion backend: the sampled
    realization -- including each jump's choice and renormalization
    scale -- is held constant, and the backward pass
    (:func:`mcwf_adjoint_backward`) is exact for that frozen linear map
    (verified against finite differences under a frozen jump sampler).

    ``jump_sites`` lets the caller pass a precomputed
    :meth:`~repro.noise.sampler.ErrorGateSampler.jump_table` (the table
    depends only on the circuit, layout and scaled model, so per-step
    callers like :class:`~repro.core.executors.MCWFTrainExecutor` cache
    it per compiled block).

    ``pool`` (a thread executor or zero-argument callable returning
    one) row-bands the sweep via :func:`run_ops_banded` -- but only
    when the model has *no* jump sites: each jump's probabilities
    depend on the evolved state mid-sweep and its draws consume the rng
    in stream order, so a jump-carrying sweep must stay a single serial
    pass to preserve both the stream and the tape checkpoints.  With
    jumps present the pool is simply not consulted and results are
    unchanged.
    """
    rng = as_rng(rng)
    if inputs is not None:
        inputs = np.asarray(inputs, dtype=float)
        batch = inputs.shape[0]
    else:
        batch = 1
    circuit = compiled.circuit
    n = circuit.n_qubits
    rows = n_realizations * batch
    base_ops = bind_circuit(circuit, weights, inputs, batch)
    events = sampler.sample_batched(
        circuit, compiled.physical_qubits, n_realizations, rng
    )
    if jump_sites is None:
        jump_sites = sampler.jump_table(circuit, compiled.physical_qubits)
    jump_by_gate: "dict[int, list[tuple[int, np.ndarray, np.ndarray]]]" = {}
    for _gi, local_q, kraus, effects in jump_sites:
        jump_by_gate.setdefault(_gi, []).append((local_q, kraus, effects))

    # Jump-free sweeps are state-independent end to end: record the op
    # list and run it banded on the pool instead of applying inline.
    deferred = pool is not None and n_realizations > 1 and not jump_by_gate
    if deferred and callable(pool):
        pool = pool()  # lazy supplier; may decline (None) -> serial sweep
        deferred = pool is not None
    if deferred:
        state = scratch = None
    else:
        state = zero_state(n, rows)
        scratch = np.empty_like(state)
    ops: list = []
    checkpoints: "dict[int, np.ndarray]" = {}
    jump_ops: "set[int]" = set()
    n_inserted = 0
    n_jumps = 0

    def apply_op(op):
        nonlocal state, scratch
        if not deferred:
            apply_matrix(state, op.matrix, op.qubits, n, out=scratch)
            state, scratch = scratch, state
        ops.append(op)

    for i, (op, post) in enumerate(zip(base_ops, events)):
        apply_op(_tiled_op(op, n_realizations, batch))
        # Event order mirrors the density reference's channel order:
        # Pauli insertions, then relaxation jumps, then coherent
        # miscalibration (sample_batched lists pauli before coherent).
        pauli = [e for e in post if e[0] == "pauli"]
        n_inserted += _count_inserted(pauli)
        for local_q, errors in _expand_events(pauli, batch):
            apply_op(_error_op(local_q, errors))
        for local_q, kraus, effects in jump_by_gate.get(i, ()):
            if n_jumps % _JUMP_CHECKPOINT_STRIDE == 0:
                checkpoints[len(ops)] = state.copy()
            jump_ops.add(len(ops))
            n_jumps += 1
            mats = _sample_jump_matrices(state, kraus, effects, local_q, rng)
            apply_op(_error_op(local_q, mats))
        coherent = [e for e in post if e[0] == "coherent"]
        for local_q, matrix in _expand_events(coherent, batch):
            apply_op(_error_op(local_q, matrix))

    if deferred:
        state = run_ops_banded(ops, n, rows, batch, pool)

    table = circuit.parameter_table
    tape = MCWFTape(
        circuit,
        ops,
        checkpoints,
        jump_ops,
        state,
        n_weights if n_weights is not None else table.num_weights,
        n_inputs if n_inputs is not None else table.num_inputs,
    )
    probs = np.abs(state) ** 2
    stacked_exp = probs @ z_signs(n).T
    expectations = stacked_exp.reshape(n_realizations, batch, -1).mean(axis=0)
    return expectations, tape, n_inserted


def mcwf_adjoint_backward(
    tape: MCWFTape,
    grad_expectations: np.ndarray,
    n_realizations: int = 1,
) -> "tuple[np.ndarray, np.ndarray]":
    """Adjoint backward through a quantum-jump tape.

    The covector propagates through *any* linear op as ``A^dag`` (no
    unitarity needed), so the bra sweep is the standard adjoint one.
    The ket cannot be un-applied through the non-unitary jump operators,
    so at each jump index the pre-site state is restored instead --
    directly from the sparse stored checkpoints, or by replaying the
    recorded ops of the enclosing checkpoint window once (caching every
    jump state inside it); all remaining ops are unitary and invert as
    usual.  Upstream gradients are per-sample ``(batch, n_qubits)`` of
    the realization-averaged expectations, mirroring
    :func:`stacked_noisy_backward`'s contract.
    """
    import bisect

    from repro.circuits.parameters import INPUT, WEIGHT

    n = tape.circuit.n_qubits
    grad_expectations = np.asarray(grad_expectations, dtype=float)
    batch = grad_expectations.shape[0]
    stacked_grad = np.tile(
        grad_expectations / n_realizations, (n_realizations, 1)
    )
    rows, dim = tape.state.shape
    diag = stacked_grad @ z_signs(n)
    pair = np.empty((2 * rows, dim), dtype=complex)
    pair[:rows] = tape.state
    np.multiply(diag, tape.state, out=pair[rows:])
    scratch = np.empty_like(pair)

    weight_grad = np.zeros(tape.n_weights)
    input_grad = np.zeros((rows, tape.n_inputs))

    stored = sorted(tape.checkpoints)
    window: "dict[int, np.ndarray]" = {}

    def restore(k: int) -> np.ndarray:
        """The state immediately before jump op ``k``."""
        state = tape.checkpoints.get(k)
        if state is None:
            state = window.pop(k, None)
        if state is not None:
            return state
        # Replay the window from the nearest stored checkpoint at or
        # below k, caching the pre-op state of every jump in between
        # (consumed as the reverse sweep descends through them).
        j = stored[bisect.bisect_right(stored, k) - 1]
        state = tape.checkpoints[j]
        for i in range(j, k):
            if i != j and i in tape.jump_ops:
                window[i] = state
            op_i = tape.ops[i]
            state = apply_matrix(state, op_i.matrix, op_i.qubits, n)
        return state

    for k in range(len(tape.ops) - 1, -1, -1):
        op = tape.ops[k]
        adj = op.adjoint_matrix()
        if k in tape.jump_ops:
            # Non-unitary jump: restore the ket, adjoint the bra.
            apply_matrix(pair[rows:], adj, op.qubits, n, out=scratch[rows:])
            scratch[:rows] = restore(k)
            pair, scratch = scratch, pair
            continue
        if not op.grad_params:
            if op.batched:
                apply_matrix(pair[:rows], adj, op.qubits, n, out=scratch[:rows])
                apply_matrix(pair[rows:], adj, op.qubits, n, out=scratch[rows:])
            else:
                apply_matrix(pair, adj, op.qubits, n, out=scratch)
            pair, scratch = scratch, pair
            continue
        psi = apply_matrix(pair[:rows], adj, op.qubits, n, out=scratch[:rows])
        bra = pair[rows:]
        for which, expr in op.grad_params:
            dpsi = apply_matrix(psi, op.dmatrix(which), op.qubits, n)
            inner = np.einsum("bi,bi->b", bra.conj(), dpsi)
            g = 2.0 * np.real(inner)
            for kind, index, coeff in expr.terms:
                if kind == WEIGHT:
                    weight_grad[index] += coeff * g.sum()
                elif kind == INPUT:
                    input_grad[:, index] += coeff * g
        apply_matrix(bra, adj, op.qubits, n, out=scratch[rows:])
        pair, scratch = scratch, pair

    input_grad = input_grad.reshape(n_realizations, batch, -1).sum(axis=0)
    return weight_grad, input_grad


def trajectory_probabilities(
    compiled: CompiledCircuit,
    noise_model: NoiseModel,
    weights: "np.ndarray | None",
    inputs: "np.ndarray | None",
    batch: int,
    n_trajectories: int = 8,
    noise_factor: float = 1.0,
    rng: "int | np.random.Generator | None" = None,
    n_workers: int = 0,
    shard_size: "int | None" = None,
    shard_backend: str = "thread",
    unravel: str = "pauli",
    pool=None,
    supervisor=None,
) -> np.ndarray:
    """Average joint basis probabilities over sampled error trajectories.

    All trajectories run as segment-fused ``(trajectories * batch, 2**n)``
    statevector sweeps, chunked to bound memory; see the module
    docstring.  Each chunk draws from its own ``SeedSequence.spawn``
    child stream, so results do not depend on how chunks are executed:

    * ``n_workers > 0`` dispatches chunks to a ``shard_backend`` pool
      (``"thread"`` or ``"process"``) and is bit-identical to the serial
      ``n_workers = 0`` run for a fixed seed;
    * ``shard_size`` (default :data:`_DEFAULT_SHARD_SIZE`) caps
      trajectories per chunk.  The cap applies to serial runs too, so
      the chunk layout never depends on the worker count -- that is
      what makes sharded output reproduce serial output bit-for-bit;
      both runs must use the same value to compare.

    ``unravel`` selects the stochastic unraveling: ``"pauli"`` samples
    inserted Pauli error gates (and refuses models carrying exact
    relaxation channels); ``"jump"`` is the quantum-jump (MCWF)
    unraveling -- exact relaxation Kraus sets become per-site jump
    points with state-dependent probabilities and per-row
    renormalization, so the trajectory ensemble converges to the full
    compiled channel (relaxation included).  ``pool`` accepts an
    already-running ``concurrent.futures`` executor matching
    ``shard_backend``, or a zero-argument callable returning one (see
    ``TrajectoryEvalExecutor``'s persistent pool); when given, workers
    are reused across calls instead of respawned.  A callable is only
    invoked when the run actually shards, so single-chunk runs never
    spawn workers.

    ``supervisor`` wraps chunk execution in a
    :class:`repro.runtime.supervisor.ChunkSupervisor`: per-chunk
    deadlines, crash detection, checksum validation and bounded retry.
    Because every chunk is re-runnable from its spawned seed, a
    supervised run -- faults and retries included -- returns exactly
    what an unsupervised run returns.
    """
    if shard_backend not in ("thread", "process"):
        # Validate eagerly: a typo must raise even on runs that happen
        # to form a single chunk and never reach the pool dispatch.
        raise ValueError(
            f"shard_backend must be 'thread' or 'process', got {shard_backend!r}"
        )
    if shard_size is not None and int(shard_size) < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    if n_workers < 0:
        raise ValueError(f"n_workers must be >= 0, got {n_workers}")
    if unravel not in ("pauli", "jump"):
        raise ValueError(
            f"unravel must be 'pauli' or 'jump', got {unravel!r}"
        )
    jump = unravel == "jump"
    rng = as_rng(rng)
    sampler = ErrorGateSampler(noise_model, noise_factor, allow_exact=jump)
    if inputs is not None:
        batch = np.asarray(inputs).shape[0]
    n_qubits = compiled.circuit.n_qubits
    dim = 2**n_qubits
    plan = _segment_plan_for(compiled, sampler, jump=jump)
    stream = plan.fused_stream(weights, inputs, batch)
    max_traj = max(1, _MAX_STACKED_ENTRIES // (batch * dim))
    if shard_size is None:
        shard_size = _DEFAULT_SHARD_SIZE
    max_traj = min(max_traj, int(shard_size))
    chunks: "list[int]" = []
    remaining = n_trajectories
    while remaining > 0:
        take = min(max_traj, remaining)
        chunks.append(take)
        remaining -= take
    # One deterministic child RNG stream per chunk, derived from a single
    # draw off the caller's generator: the stream layout depends only on
    # the chunk decomposition, never on the worker count.
    root = np.random.SeedSequence(int(rng.integers(0, 2**63)))
    seeds = root.spawn(len(chunks))
    if n_workers > 0 and len(chunks) > 1:
        results = _run_sharded(
            plan, stream, n_qubits, batch, chunks, seeds,
            n_workers, shard_backend,
            compiled, noise_model, noise_factor, weights, inputs,
            jump=jump, pool=pool, supervisor=supervisor,
        )
    elif supervisor is not None:
        from repro.runtime.supervisor import ChunkTask

        results = supervisor.run(
            [
                ChunkTask(
                    i,
                    _seeded_segment_chunk,
                    (plan, stream, n_qubits, batch, chunk, seed),
                )
                for i, (chunk, seed) in enumerate(zip(chunks, seeds))
            ]
        )
    else:
        results = [
            _segment_chunk(
                plan, stream, n_qubits, batch, chunk,
                np.random.default_rng(seed),
            )
            for chunk, seed in zip(chunks, seeds)
        ]
    # Fixed (chunk-order) summation keeps serial and sharded float
    # accumulation identical.
    total = np.zeros((batch, dim))
    for result in results:
        total += result
    return total / n_trajectories


def _balanced_group_bounds(n_items: int, n_groups: int) -> "list[int]":
    """``array_split``-style group boundaries: balanced, order-preserving.

    Group sizes differ by at most one (the remainder spreads over the
    leading groups), unlike the former ``linspace(...).astype(int)``
    truncation, which piled the remainder onto the tail groups at
    awkward ``n_items / n_groups`` ratios.  Results are unaffected
    either way -- item order is preserved and the flattening restores
    global chunk order -- but the slowest task no longer carries up to
    twice its fair share.
    """
    base, extra = divmod(n_items, n_groups)
    bounds = [0]
    for i in range(n_groups):
        bounds.append(bounds[-1] + base + (1 if i < extra else 0))
    return bounds


def _collect_fail_fast(futures: list) -> list:
    """Harvest pool futures in submission order, failing fast.

    A plain ``[f.result() for f in futures]`` blocks on every earlier
    future while a raised chunk leaves later siblings running and
    un-reaped.  Instead: wait until all complete *or* any fails, cancel
    the outstanding ones, and surface the first (submission-order)
    failure promptly -- mirroring the chunk supervisor's semantics.
    """
    from concurrent.futures import FIRST_EXCEPTION, wait

    done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
    failed = next(
        (f for f in futures if f in done and f.exception() is not None),
        None,
    )
    if failed is None:
        return [future.result() for future in futures]
    for future in not_done:
        future.cancel()
    raise failed.exception()


def _run_sharded(
    plan: _SegmentPlan,
    stream: "list[tuple]",
    n_qubits: int,
    batch: int,
    chunks: "list[int]",
    seeds: list,
    n_workers: int,
    shard_backend: str,
    compiled: CompiledCircuit,
    noise_model: NoiseModel,
    noise_factor: float,
    weights: "np.ndarray | None",
    inputs: "np.ndarray | None",
    jump: bool = False,
    pool=None,
    supervisor=None,
) -> "list[np.ndarray]":
    """Run trajectory chunks on a worker pool, results in chunk order.

    Threads share the already-built plan and op stream (the sweep is
    numpy-dominated, so worker threads overlap in the C kernels);
    processes re-derive both deterministically from the pickled circuit
    and noise model, memoized worker-side by payload digest
    (:data:`_WORKER_PLAN_CACHE`).  ``pool`` reuses a caller-held
    executor of the matching backend (kept alive across calls by
    ``TrajectoryEvalExecutor``); without one, the process-global shared
    pool for ``(backend, n_workers)`` is used
    (:func:`repro.runtime.pools.shared_pool`) so repeat pool-less calls
    -- training loops, serve flushes -- stop paying spawn cost and cold
    worker caches per call.  Chunk decomposition, per-chunk streams and
    result order never depend on which pool ran them.  ``supervisor``
    routes dispatch through the chunk supervisor (deadlines, retry,
    checksum validation, broken-pool recovery) -- results are unchanged
    because chunks are re-runnable from their seeds.  Supervised runs
    additionally degrade to serial in-parent execution when the pool
    cannot even be spawned, instead of dying on the spawn error.
    """
    if callable(pool):
        # Lazy supplier: the pool only materializes on runs that shard.
        try:
            pool = pool()
        except OSError as exc:
            if supervisor is None:
                raise
            _warn_spawn_degrade(shard_backend, exc)
            pool = None
        shared = False
    else:
        shared = False
        if pool is None:
            from repro.runtime.pools import shared_pool

            try:
                pool = shared_pool(shard_backend, n_workers)
                shared = True
            except OSError as exc:
                if supervisor is None:
                    raise
                _warn_spawn_degrade(shard_backend, exc)
                pool = None  # supervised serial fallback

    if shard_backend == "thread":
        def dispatch(active):
            if supervisor is not None:
                from repro.runtime.supervisor import ChunkTask

                return supervisor.run(
                    [
                        ChunkTask(
                            i,
                            _seeded_segment_chunk,
                            (plan, stream, n_qubits, batch, chunk, seed),
                        )
                        for i, (chunk, seed) in enumerate(zip(chunks, seeds))
                    ],
                    pool=active,
                )
            return _collect_fail_fast([
                active.submit(
                    _segment_chunk, plan, stream, n_qubits, batch,
                    chunk, np.random.default_rng(seed),
                )
                for chunk, seed in zip(chunks, seeds)
            ])

        return _dispatch_guarded(dispatch, pool, shared, supervisor)

    # shard_backend == "process" (validated by the caller).
    payload = _shard_payload(
        compiled, noise_model, noise_factor, weights, inputs, batch, jump
    )
    # Contiguous chunk groups, one task per worker: even a cold worker
    # builds its plan once per task instead of once per chunk (and a
    # warm one not at all).  Group boundaries do not affect results --
    # every chunk keeps its own spawned stream and the flattening below
    # restores global chunk order.
    pairs = list(zip(chunks, seeds))
    n_groups = min(n_workers, len(pairs))
    bounds = _balanced_group_bounds(len(pairs), n_groups)
    groups = [
        pairs[bounds[i]:bounds[i + 1]]
        for i in range(n_groups)
        if bounds[i] < bounds[i + 1]
    ]

    def dispatch(active):
        if supervisor is not None:
            from concurrent.futures import ProcessPoolExecutor

            from repro.runtime.supervisor import ChunkTask

            grouped = supervisor.run(
                [
                    ChunkTask(gi, _process_chunk_worker, (payload, group))
                    for gi, group in enumerate(groups)
                ],
                pool=active,
                # A broken pool (killed worker) is replaced wholesale;
                # chunk payloads are worker-independent, so a fresh pool
                # -- or the serial fallback when spawning fails --
                # produces the same results.
                rebuild=lambda: ProcessPoolExecutor(max_workers=n_workers),
            )
            return [result for group in grouped for result in group]
        grouped = _collect_fail_fast([
            active.submit(_process_chunk_worker, payload, group)
            for group in groups
        ])
        return [result for group in grouped for result in group]

    return _dispatch_guarded(dispatch, pool, shared, supervisor)


def _dispatch_guarded(dispatch, pool, shared: bool, supervisor):
    """Run ``dispatch(pool)``; evict a shared pool that stopped being safe.

    A shared-registry pool whose run escaped with an exception (e.g.
    ``BrokenProcessPool`` from a killed worker) or whose supervised run
    came back ``degraded`` (the supervisor replaced or abandoned the
    pool -- its contract says "my pool is gone, recreate lazily") is
    discarded so the next pool-less call respawns a clean one.
    """
    if not shared:
        return dispatch(pool)
    from repro.runtime.pools import discard_shared_pool

    try:
        results = dispatch(pool)
    except BaseException:
        discard_shared_pool(pool)
        raise
    if (
        supervisor is not None
        and supervisor.last_report is not None
        and supervisor.last_report.degraded
    ):
        discard_shared_pool(pool)
    return results


def _warn_spawn_degrade(shard_backend: str, exc: BaseException) -> None:
    """Emit the DegradedExecution warning for a failed pool spawn."""
    import warnings

    from repro.runtime.errors import DegradedExecution

    warnings.warn(
        DegradedExecution(
            f"{shard_backend} pool spawn failed ({exc}); chunks run "
            "serially in the parent (results are unaffected)",
            (f"{shard_backend}-pool", "serial"),
        ),
        stacklevel=4,
    )


def trajectory_probabilities_reference(
    compiled: CompiledCircuit,
    noise_model: NoiseModel,
    weights: "np.ndarray | None",
    inputs: "np.ndarray | None",
    batch: int,
    n_trajectories: int = 8,
    noise_factor: float = 1.0,
    rng: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """One-circuit-per-trajectory reference implementation.

    Samples, binds and sweeps a fresh error-inserted circuit per
    trajectory -- the baseline the fused engine is checked and
    benchmarked against.
    """
    rng = as_rng(rng)
    sampler = ErrorGateSampler(noise_model, noise_factor)
    if inputs is not None:
        batch = np.asarray(inputs).shape[0]
    total = np.zeros((batch, 2**compiled.circuit.n_qubits))
    for _ in range(n_trajectories):
        noisy_circuit, _stats = sampler.sample(
            compiled.circuit, compiled.physical_qubits, rng
        )
        state, _ = run_circuit(noisy_circuit, weights, inputs, batch)
        total += np.abs(state) ** 2
    return total / n_trajectories


def mcwf_probabilities_reference(
    compiled: CompiledCircuit,
    noise_model: NoiseModel,
    weights: "np.ndarray | None",
    inputs: "np.ndarray | None",
    batch: int,
    n_trajectories: int = 8,
    noise_factor: float = 1.0,
    rng: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """One-trajectory-at-a-time quantum-jump (MCWF) reference.

    The textbook algorithm with per-site Python loops: after every
    gate, sample its Pauli channel per operand, then -- for exact
    relaxation sites -- apply each Kraus candidate, read off the jump
    probabilities from the candidate norms, draw one per sample row and
    renormalize, then apply the coherent miscalibration.  The baseline
    the fused jump-mode sweep is benchmarked and statistically checked
    against (channel order matches the density reference exactly).
    """
    from repro.noise.model import VIRTUAL_GATES

    rng = as_rng(rng)
    sampler = ErrorGateSampler(noise_model, noise_factor, allow_exact=True)
    scaled = sampler._scaled
    if inputs is not None:
        batch = np.asarray(inputs).shape[0]
    circuit = compiled.circuit
    n = circuit.n_qubits
    total = np.zeros((batch, 2**n))
    for _ in range(n_trajectories):
        ops = bind_circuit(circuit, weights, inputs, batch)
        state = zero_state(n, batch)
        for op in ops:
            state = apply_matrix(state, op.matrix, op.qubits, n)
            phys = tuple(compiled.physical_qubits[q] for q in op.qubits)
            for local_q, (_phys_q, error) in zip(
                op.qubits, scaled.gate_errors(op.gate.name, phys)
            ):
                choice = rng.choice(4, p=error.probabilities())
                if choice:
                    state = apply_matrix(
                        state, _PAULI_STACK[choice], (local_q,), n
                    )
            if op.gate.name not in VIRTUAL_GATES:
                for local_q, phys_q in zip(op.qubits, phys):
                    kraus = scaled.relaxation_kraus_for(phys_q, len(op.qubits))
                    if kraus is None:
                        continue
                    candidates = [
                        apply_matrix(state, k, (local_q,), n) for k in kraus
                    ]
                    norms = np.stack(
                        [np.sum(np.abs(c) ** 2, axis=1) for c in candidates]
                    )  # (m, batch)
                    norms /= np.maximum(norms.sum(axis=0, keepdims=True), 1e-300)
                    for row in range(batch):
                        pick = rng.choice(len(kraus), p=norms[:, row])
                        state[row] = candidates[pick][row] / np.sqrt(
                            max(norms[pick, row], 1e-300)
                        )
            if op.gate.name not in ("rz", "id"):
                for local_q, phys_q in zip(op.qubits, phys):
                    coherent = scaled.coherent_for(phys_q)
                    if coherent is not None:
                        state = apply_matrix(
                            state, _coherent_unitary(*coherent), (local_q,), n
                        )
        total += np.abs(state) ** 2
    return total / n_trajectories


def run_noisy_trajectories(
    compiled: CompiledCircuit,
    noise_model: NoiseModel,
    weights: "np.ndarray | None" = None,
    inputs: "np.ndarray | None" = None,
    batch: int = 1,
    n_trajectories: int = 8,
    shots: "int | None" = 8192,
    noise_factor: float = 1.0,
    rng: "int | np.random.Generator | None" = None,
    n_workers: int = 0,
    shard_size: "int | None" = None,
    shard_backend: str = "thread",
    unravel: str = "pauli",
    pool=None,
    supervisor=None,
) -> np.ndarray:
    """Noisy per-qubit <Z> expectations in *logical* qubit order.

    Pipeline: trajectory-averaged probabilities -> per-qubit readout
    confusion -> multinomial shot sampling (``shots=None`` returns exact
    expectations of the sampled-trajectory channel, no shot noise).
    ``n_workers``/``shard_size``/``shard_backend`` shard the trajectory
    chunks (see :func:`trajectory_probabilities`); the shot-sampling tail
    always runs on the caller's stream, so a sharded run's expectations
    stay bit-identical to the serial ones.  ``unravel="jump"`` selects
    the quantum-jump (MCWF) unraveling, the only sampled backend that
    evaluates exact relaxation channels; ``pool`` reuses a caller-held
    worker pool for the sharded chunks; ``supervisor`` routes chunk
    execution through the fault-tolerant chunk supervisor (results
    unchanged -- see :func:`trajectory_probabilities`).
    """
    rng = as_rng(rng)
    probs = trajectory_probabilities(
        compiled, noise_model, weights, inputs, batch,
        n_trajectories, noise_factor, rng,
        n_workers=n_workers, shard_size=shard_size,
        shard_backend=shard_backend, unravel=unravel, pool=pool,
        supervisor=supervisor,
    )
    readout = np.stack(
        [noise_model.readout_for(p) for p in compiled.physical_qubits]
    )
    probs = apply_readout_to_joint_probabilities(probs, readout)
    n_compact = compiled.circuit.n_qubits
    if shots is None:
        expectations = probs @ z_signs(n_compact).T
    else:
        probs = np.clip(probs, 0.0, None)
        probs /= probs.sum(axis=1, keepdims=True)
        counts = batched_multinomial(rng, shots, probs)
        expectations = expectations_from_counts(counts, n_compact)
    return expectations[:, list(compiled.measure_qubits)]
