"""Monte-Carlo Pauli-trajectory execution: the "real QC" surrogate.

The paper runs inference on physical IBMQ machines with 8192 shots.  This
module emulates that: each *trajectory* samples concrete Pauli error
gates from the device's (drifted) hardware noise model and runs a pure
statevector simulation; averaging trajectories approximates the noisy
channel, and multinomial shot sampling (after mixing in readout
confusion) adds the same statistical noise a real device run has.

For wide circuits where density-matrix simulation is infeasible (the
10-qubit MNIST-10/Fashion-10 models on Melbourne) this is the only noisy
backend; for narrow circuits it converges to the density-matrix result
as trajectories increase (verified in tests).

Fused-trajectory design
-----------------------
The naive implementation binds and sweeps one circuit per trajectory --
``n_trajectories`` full Python passes.  The fused engine instead:

* binds the *base* circuit once (through the statevector bind cache) and
  stacks all trajectories into a single ``(trajectories * batch, 2**n)``
  statevector, so each base gate is one vectorized apply;
* draws each error site's Pauli choice for every trajectory in one
  vectorized call (:meth:`ErrorGateSampler.sample_batched`) and expresses
  the sampled errors as batched ``(trajectories * batch, 2, 2)``
  matrices -- sites where every trajectory drew identity (the common
  case at hardware error rates) are skipped outright;
* chunks trajectories so the stacked state stays within a fixed memory
  budget, and ping-pongs between two work buffers (no per-gate
  allocation).

Shot sampling uses one batched ``Generator.multinomial`` call over 2-D
pvals instead of a per-sample Python loop.  The per-trajectory reference
implementation is kept as :func:`trajectory_probabilities_reference`;
``tests/test_fast_engine.py`` checks the two agree (exactly for
deterministic noise, statistically otherwise).
"""

from __future__ import annotations

import functools

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.compiler.passes import CompiledCircuit
from repro.noise.model import NoiseModel
from repro.noise.readout import apply_readout_to_joint_probabilities
from repro.noise.sampler import ErrorGateSampler
from repro.sim.gates import gate_matrix
from repro.sim.statevector import (
    apply_matrix,
    batched_multinomial,
    bind_circuit,
    expectations_from_counts,
    run_circuit,
    z_signs,
    zero_state,
)
from repro.utils.rng import as_rng

#: (I, X, Y, Z) stacked for indexed lookup by sampled error choices.
_PAULI_STACK = np.stack(
    [gate_matrix("id"), gate_matrix("x"), gate_matrix("y"), gate_matrix("z")]
)

#: Cap on stacked-state size (complex entries): chunks trajectories so the
#: fused sweep never holds more than ~64 MiB of statevector per buffer.
_MAX_STACKED_ENTRIES = 1 << 22


@functools.lru_cache(maxsize=512)
def _coherent_unitary(ey: float, ez: float) -> np.ndarray:
    """RZ(ez) @ RY(ey): the deterministic post-gate miscalibration."""
    return gate_matrix("rz", (ez,)) @ gate_matrix("ry", (ey,))


def _expand_events(post: "list[tuple]", batch: int) -> list:
    """Materialize one gate site's sampled error events as matrices.

    Returns ``[(local_qubit, matrix), ...]``: Pauli events become
    batched ``(n_traj * batch, 2, 2)`` stacks (trajectory-major,
    matching the stacked-state layout), coherent miscalibrations stay
    shared 2x2 constants.  Single source of truth for the event-to-matrix
    expansion, shared by the inference sweep (:func:`_fused_chunk`) and
    the training tape (:func:`stacked_noisy_ops`) so the two paths can
    never apply different channels.
    """
    expanded = []
    for kind, local_q, payload in post:
        if kind == "pauli":
            expanded.append((local_q, np.repeat(_PAULI_STACK[payload], batch, axis=0)))
        else:
            expanded.append((local_q, _coherent_unitary(*payload)))
    return expanded


def _count_inserted(post: "list[tuple]") -> int:
    """Non-identity Pauli insertions in one gate site's events.

    Training-path bookkeeping (insertion stats) only -- the inference
    sweep never pays for it.
    """
    return sum(
        int(np.count_nonzero(payload))
        for kind, _q, payload in post
        if kind == "pauli"
    )


def _fused_chunk(
    sampler: ErrorGateSampler,
    compiled: "CompiledCircuit",
    ops,
    n_qubits: int,
    batch: int,
    n_traj: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sum of joint probabilities over ``n_traj`` stacked trajectories."""
    stacked = zero_state(n_qubits, n_traj * batch)
    scratch = np.empty_like(stacked)
    events = sampler.sample_batched(
        compiled.circuit, compiled.physical_qubits, n_traj, rng
    )
    for op, post in zip(ops, events):
        matrix = op.matrix
        if op.batched:
            # Per-sample encoder matrices repeat across trajectories.
            matrix = np.tile(matrix, (n_traj, 1, 1))
        apply_matrix(stacked, matrix, op.qubits, n_qubits, out=scratch)
        stacked, scratch = scratch, stacked
        for local_q, errors in _expand_events(post, batch):
            apply_matrix(stacked, errors, (local_q,), n_qubits, out=scratch)
            stacked, scratch = scratch, stacked
    probs = np.abs(stacked) ** 2
    return probs.reshape(n_traj, batch, -1).sum(axis=0)


def _tiled_op(op, n_traj: int, batch: int):
    """Replicate a bound op across ``n_traj`` stacked realizations.

    Shared matrices broadcast as-is; per-sample (batched) matrices and
    their bound parameter values are tiled to ``(n_traj * batch, ...)``
    so the adjoint backward pass sees consistent per-row derivatives.
    """
    if not op.batched:
        return op
    from repro.sim.statevector import BoundOp

    matrix = np.tile(op.matrix, (n_traj, 1, 1))
    values = tuple(
        np.tile(v, n_traj) if isinstance(v, np.ndarray) and v.ndim else v
        for v in op.values
    )
    return BoundOp(op.gate, matrix, values)


def _error_op(local_q: int, matrix: np.ndarray):
    """A sampled error insertion as a tape-compatible constant op."""
    from repro.circuits.circuit import Gate
    from repro.sim.statevector import BoundOp

    return BoundOp(Gate("id", (local_q,)), matrix, ())


def stacked_noisy_ops(
    compiled: "CompiledCircuit",
    sampler: ErrorGateSampler,
    weights: "np.ndarray | None",
    inputs: "np.ndarray | None",
    batch: int,
    n_realizations: int,
    rng: "int | np.random.Generator | None" = None,
) -> "tuple[list, int]":
    """Bound op list for ``n_realizations`` error realizations x ``batch``.

    This composes the *training batch* axis with the *noise trajectory*
    axis: the base circuit is bound once (through the bind cache), every
    error site's Pauli choice is drawn for all realizations in one
    vectorized call, and the sampled errors become batched
    ``(n_realizations * batch, 2, 2)`` constant ops.  The returned list
    runs -- and, because every op is a regular :class:`BoundOp` with no
    differentiable parameters on the error sites, *backpropagates* -- as
    one fused ``(n_realizations * batch, 2**n)`` statevector sweep.

    Returns ``(ops, n_inserted)`` with ``n_inserted`` the total number of
    non-identity Pauli insertions across all realizations.
    """
    rng = as_rng(rng)
    if inputs is not None:
        batch = np.asarray(inputs).shape[0]
    ops = bind_circuit(compiled.circuit, weights, inputs, batch)
    events = sampler.sample_batched(
        compiled.circuit, compiled.physical_qubits, n_realizations, rng
    )
    stacked: list = []
    n_inserted = 0
    for op, post in zip(ops, events):
        stacked.append(_tiled_op(op, n_realizations, batch))
        n_inserted += _count_inserted(post)
        for local_q, errors in _expand_events(post, batch):
            stacked.append(_error_op(local_q, errors))
    return stacked, n_inserted


def stacked_noisy_forward_with_tape(
    compiled: "CompiledCircuit",
    sampler: ErrorGateSampler,
    weights: "np.ndarray | None",
    inputs: "np.ndarray | None",
    n_realizations: int,
    rng: "int | np.random.Generator | None" = None,
    n_weights: "int | None" = None,
    n_inputs: "int | None" = None,
):
    """Noise-injected forward over stacked realizations, keeping the tape.

    Returns ``(expectations, tape, n_inserted)``: expectations are the
    per-sample mean over realizations, shape ``(batch, n_qubits)``; the
    tape's state is the full ``(n_realizations * batch, 2**n)`` stack and
    is consumed by :func:`stacked_noisy_backward`.
    """
    from repro.core.gradients import QuantumTape
    from repro.sim.statevector import run_ops

    inputs = np.asarray(inputs, dtype=float)
    batch = inputs.shape[0]
    circuit = compiled.circuit
    ops, n_inserted = stacked_noisy_ops(
        compiled, sampler, weights, inputs, batch, n_realizations, rng
    )
    state = run_ops(ops, circuit.n_qubits, n_realizations * batch)
    table = circuit.parameter_table
    tape = QuantumTape(
        circuit,
        ops,
        state,
        n_weights if n_weights is not None else table.num_weights,
        n_inputs if n_inputs is not None else table.num_inputs,
    )
    probs = np.abs(state) ** 2
    stacked_exp = probs @ z_signs(circuit.n_qubits).T
    expectations = stacked_exp.reshape(n_realizations, batch, -1).mean(axis=0)
    return expectations, tape, n_inserted


def stacked_noisy_backward(
    tape,
    grad_expectations: np.ndarray,
    n_realizations: int,
) -> "tuple[np.ndarray, np.ndarray]":
    """Adjoint backward through a stacked-realization tape.

    ``grad_expectations`` is the per-sample ``(batch, n_qubits)`` upstream
    gradient of the realization-*averaged* expectations; it is replicated
    (scaled by ``1 / n_realizations``) onto the stack, swept once, and the
    per-sample input gradients are summed back over realizations.
    """
    from repro.core.gradients import adjoint_backward

    grad_expectations = np.asarray(grad_expectations, dtype=float)
    batch = grad_expectations.shape[0]
    stacked_grad = np.tile(grad_expectations / n_realizations, (n_realizations, 1))
    weight_grad, input_grad = adjoint_backward(tape, stacked_grad)
    input_grad = input_grad.reshape(n_realizations, batch, -1).sum(axis=0)
    return weight_grad, input_grad


def trajectory_probabilities(
    compiled: CompiledCircuit,
    noise_model: NoiseModel,
    weights: "np.ndarray | None",
    inputs: "np.ndarray | None",
    batch: int,
    n_trajectories: int = 8,
    noise_factor: float = 1.0,
    rng: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Average joint basis probabilities over sampled error trajectories.

    All trajectories run as one fused ``(trajectories * batch, 2**n)``
    statevector sweep (chunked to bound memory); see the module docstring.
    """
    rng = as_rng(rng)
    sampler = ErrorGateSampler(noise_model, noise_factor)
    if inputs is not None:
        batch = np.asarray(inputs).shape[0]
    n_qubits = compiled.circuit.n_qubits
    dim = 2**n_qubits
    ops = bind_circuit(compiled.circuit, weights, inputs, batch)
    max_traj = max(1, _MAX_STACKED_ENTRIES // (batch * dim))
    total = np.zeros((batch, dim))
    remaining = n_trajectories
    while remaining > 0:
        chunk = min(max_traj, remaining)
        total += _fused_chunk(
            sampler, compiled, ops, n_qubits, batch, chunk, rng
        )
        remaining -= chunk
    return total / n_trajectories


def trajectory_probabilities_reference(
    compiled: CompiledCircuit,
    noise_model: NoiseModel,
    weights: "np.ndarray | None",
    inputs: "np.ndarray | None",
    batch: int,
    n_trajectories: int = 8,
    noise_factor: float = 1.0,
    rng: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """One-circuit-per-trajectory reference implementation.

    Samples, binds and sweeps a fresh error-inserted circuit per
    trajectory -- the baseline the fused engine is checked and
    benchmarked against.
    """
    rng = as_rng(rng)
    sampler = ErrorGateSampler(noise_model, noise_factor)
    if inputs is not None:
        batch = np.asarray(inputs).shape[0]
    total = np.zeros((batch, 2**compiled.circuit.n_qubits))
    for _ in range(n_trajectories):
        noisy_circuit, _stats = sampler.sample(
            compiled.circuit, compiled.physical_qubits, rng
        )
        state, _ = run_circuit(noisy_circuit, weights, inputs, batch)
        total += np.abs(state) ** 2
    return total / n_trajectories


def run_noisy_trajectories(
    compiled: CompiledCircuit,
    noise_model: NoiseModel,
    weights: "np.ndarray | None" = None,
    inputs: "np.ndarray | None" = None,
    batch: int = 1,
    n_trajectories: int = 8,
    shots: "int | None" = 8192,
    noise_factor: float = 1.0,
    rng: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Noisy per-qubit <Z> expectations in *logical* qubit order.

    Pipeline: trajectory-averaged probabilities -> per-qubit readout
    confusion -> multinomial shot sampling (``shots=None`` returns exact
    expectations of the sampled-trajectory channel, no shot noise).
    """
    rng = as_rng(rng)
    probs = trajectory_probabilities(
        compiled, noise_model, weights, inputs, batch,
        n_trajectories, noise_factor, rng,
    )
    readout = np.stack(
        [noise_model.readout_for(p) for p in compiled.physical_qubits]
    )
    probs = apply_readout_to_joint_probabilities(probs, readout)
    n_compact = compiled.circuit.n_qubits
    if shots is None:
        expectations = probs @ z_signs(n_compact).T
    else:
        probs = np.clip(probs, 0.0, None)
        probs /= probs.sum(axis=1, keepdims=True)
        counts = batched_multinomial(rng, shots, probs)
        expectations = expectations_from_counts(counts, n_compact)
    return expectations[:, list(compiled.measure_qubits)]
