"""Monte-Carlo Pauli-trajectory execution: the "real QC" surrogate.

The paper runs inference on physical IBMQ machines with 8192 shots.  This
module emulates that: each *trajectory* samples concrete Pauli error
gates from the device's (drifted) hardware noise model and runs a pure
statevector simulation; averaging trajectories approximates the noisy
channel, and multinomial shot sampling (after mixing in readout
confusion) adds the same statistical noise a real device run has.

For wide circuits where density-matrix simulation is infeasible (the
10-qubit MNIST-10/Fashion-10 models on Melbourne) this is the only noisy
backend; for narrow circuits it converges to the density-matrix result
as trajectories increase (verified in tests).
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.compiler.passes import CompiledCircuit
from repro.noise.model import NoiseModel
from repro.noise.readout import apply_readout_to_joint_probabilities
from repro.noise.sampler import ErrorGateSampler
from repro.sim.statevector import (
    expectations_from_counts,
    run_circuit,
    z_signs,
)
from repro.utils.rng import as_rng


def trajectory_probabilities(
    compiled: CompiledCircuit,
    noise_model: NoiseModel,
    weights: "np.ndarray | None",
    inputs: "np.ndarray | None",
    batch: int,
    n_trajectories: int = 8,
    noise_factor: float = 1.0,
    rng: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Average joint basis probabilities over sampled error trajectories."""
    rng = as_rng(rng)
    sampler = ErrorGateSampler(noise_model, noise_factor)
    if inputs is not None:
        batch = np.asarray(inputs).shape[0]
    total = np.zeros((batch, 2**compiled.circuit.n_qubits))
    for _ in range(n_trajectories):
        noisy_circuit, _stats = sampler.sample(
            compiled.circuit, compiled.physical_qubits, rng
        )
        state, _ = run_circuit(noisy_circuit, weights, inputs, batch)
        total += np.abs(state) ** 2
    return total / n_trajectories


def run_noisy_trajectories(
    compiled: CompiledCircuit,
    noise_model: NoiseModel,
    weights: "np.ndarray | None" = None,
    inputs: "np.ndarray | None" = None,
    batch: int = 1,
    n_trajectories: int = 8,
    shots: "int | None" = 8192,
    noise_factor: float = 1.0,
    rng: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Noisy per-qubit <Z> expectations in *logical* qubit order.

    Pipeline: trajectory-averaged probabilities -> per-qubit readout
    confusion -> multinomial shot sampling (``shots=None`` returns exact
    expectations of the sampled-trajectory channel, no shot noise).
    """
    rng = as_rng(rng)
    probs = trajectory_probabilities(
        compiled, noise_model, weights, inputs, batch,
        n_trajectories, noise_factor, rng,
    )
    readout = np.stack(
        [noise_model.readout_for(p) for p in compiled.physical_qubits]
    )
    probs = apply_readout_to_joint_probabilities(probs, readout)
    n_compact = compiled.circuit.n_qubits
    if shots is None:
        expectations = probs @ z_signs(n_compact).T
    else:
        probs = np.clip(probs, 0.0, None)
        probs = probs / probs.sum(axis=1, keepdims=True)
        counts = np.empty_like(probs, dtype=np.int64)
        for b in range(probs.shape[0]):
            counts[b] = rng.multinomial(shots, probs[b])
        expectations = expectations_from_counts(counts, n_compact)
    return expectations[:, list(compiled.measure_qubits)]
