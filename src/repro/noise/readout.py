"""Readout (measurement) error emulation -- paper Section 3.2.

The noise model gives each qubit a 2x2 confusion matrix
``M[true, measured]``.  For an outcome distribution ``P``, the noisy
distribution is ``P'(m) = sum_t P(t) M[t, m]``.  The paper's example:
``P(0)=0.3, P(1)=0.7`` on Santiago qubit 0 becomes ``P'(0)=0.31``.

Because QuantumNAT's QNN only consumes per-qubit Pauli-Z expectations,
the readout map acts on each expectation as an affine function

    E' = a * E + b,   a = (M00 - M01 + M11 - M10) / 2,
                      b = (M00 + M01 - M11 - M10) / 2 ... (derived below)

which keeps it exactly differentiable for noise-injected training.
"""

from __future__ import annotations

import numpy as np


def readout_affine(matrix: np.ndarray) -> "tuple[float, float]":
    """Coefficients (a, b) with E' = a * E + b for one readout matrix.

    Derivation: with P0 = (1+E)/2 and P1 = (1-E)/2,
    E' = P0' - P1' = P0 (M00 - M01) + P1 (M10 - M11), hence
    a = ((M00 - M01) - (M10 - M11)) / 2 and
    b = ((M00 - M01) + (M10 - M11)) / 2.
    """
    m = np.asarray(matrix, dtype=float)
    d0 = m[0, 0] - m[0, 1]
    d1 = m[1, 0] - m[1, 1]
    return (d0 - d1) / 2.0, (d0 + d1) / 2.0


def apply_readout_to_expectations(
    expectations: np.ndarray, readout: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Apply per-qubit readout error to <Z> values.

    Parameters
    ----------
    expectations:
        ``(batch, n_qubits)`` noiseless expectations.
    readout:
        ``(n_qubits, 2, 2)`` confusion matrices aligned with the columns.

    Returns
    -------
    (noisy expectations, scale vector ``a``) -- the scale is needed by the
    backward pass (dE'/dE = a).
    """
    expectations = np.asarray(expectations, dtype=float)
    n_qubits = expectations.shape[1]
    scales = np.empty(n_qubits)
    shifts = np.empty(n_qubits)
    for q in range(n_qubits):
        scales[q], shifts[q] = readout_affine(readout[q])
    return expectations * scales[None, :] + shifts[None, :], scales


def apply_readout_to_joint_probabilities(
    probs: np.ndarray, readout: np.ndarray
) -> np.ndarray:
    """Apply per-qubit readout confusion to a joint distribution.

    ``probs`` is ``(batch, 2**n)``; each qubit's bit is mixed independently
    according to its confusion matrix.  Used before shot sampling so that
    sampled counts include readout noise.
    """
    probs = np.asarray(probs, dtype=float)
    batch, dim = probs.shape
    n_qubits = dim.bit_length() - 1
    if 2**n_qubits != dim:
        raise ValueError(f"dimension {dim} is not a power of two")
    out = probs
    for q in range(n_qubits):
        m = readout[q]
        reshaped = out.reshape(batch, dim // (2 ** (q + 1)), 2, 2**q)
        p_true0 = reshaped[:, :, 0, :]
        p_true1 = reshaped[:, :, 1, :]
        mixed = np.empty_like(reshaped)
        mixed[:, :, 0, :] = m[0, 0] * p_true0 + m[1, 0] * p_true1
        mixed[:, :, 1, :] = m[0, 1] * p_true0 + m[1, 1] * p_true1
        out = mixed.reshape(batch, dim)
    return out


def readout_povm_kraus(matrix: np.ndarray) -> "list[np.ndarray]":
    """Kraus operators of the measure-and-reprepare confusion channel.

    The CPTP map ``rho -> sum_{t,m} M[t,m] |m><t| rho |t><m|`` has Kraus
    operators ``K_{t,m} = sqrt(M[t,m]) |m><t|`` (completeness follows
    from the confusion rows summing to 1).  Its diagonal action is
    exactly the classical readout mixing ``P'(m) = sum_t P(t) M[t,m]``
    while coherences are erased -- irrelevant for a *terminal* stage, so
    the compiled density engine can fold readout error into the
    superoperator stream as a measurement (POVM) superop and stay
    equivalent to the probability-space reference
    (:func:`apply_readout_to_joint_probabilities`).
    """
    m = np.asarray(matrix, dtype=float)
    if m.shape != (2, 2):
        raise ValueError(f"readout matrix must be 2x2, got {m.shape}")
    if np.any(m < -1e-12) or not np.allclose(m.sum(axis=1), 1.0, atol=1e-9):
        raise ValueError(f"invalid confusion matrix {m!r}")
    kraus = []
    for true in (0, 1):
        for measured in (0, 1):
            op = np.zeros((2, 2), dtype=complex)
            op[measured, true] = np.sqrt(max(m[true, measured], 0.0))
            kraus.append(op)
    return kraus


def noisy_probability_pair(p0: float, matrix: np.ndarray) -> "tuple[float, float]":
    """The paper's worked example, for a single qubit.

    ``P'(0) = P(0) M00 + P(1) M10`` and ``P'(1) = P(1) M11 + P(0) M01``.
    """
    p1 = 1.0 - p0
    m = np.asarray(matrix, dtype=float)
    return p0 * m[0, 0] + p1 * m[1, 0], p1 * m[1, 1] + p0 * m[0, 1]
