"""Quantum error-gate insertion (paper Section 3.2, Figure 5).

During noise-injected training, a fresh set of Pauli error gates is
sampled *every training step* from the device noise model: after each
compiled gate, X / Y / Z gates are inserted on each operand qubit with the
model's probabilities scaled by the noise factor ``T``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import Circuit, Gate
from repro.circuits.parameters import ParamExpr
from repro.noise.model import NoiseModel
from repro.utils.rng import as_rng

_PAULI_NAMES = (None, "x", "y", "z")


def exact_channel_support_message() -> str:
    """Why Pauli sampling refuses exact-channel models, with alternatives.

    The list of capable engines is generated from the engine registry's
    capability declarations (:mod:`repro.core.engine`), so a newly
    registered relaxation-capable engine shows up here without touching
    this module.  The registry lives above the noise layer, hence the
    lazy import; if it is unavailable (partial import during bootstrap)
    the message falls back to naming the density backends.
    """
    try:  # pragma: no branch - import succeeds in any assembled install
        from repro.core.engine import engines_supporting
        from repro.noise.model import CHANNEL_RELAXATION

        names = ", ".join(
            spec.name for spec in engines_supporting(CHANNEL_RELAXATION)
        )
    except Exception:  # pragma: no cover - bootstrap fallback
        names = "density, mcwf"
    return (
        "noise model carries exact (non-Pauli) relaxation channels, "
        "which Pauli gate-insertion/trajectory sampling cannot "
        f"represent; engines supporting exact channels: {names}. "
        "Alternatively build the Pauli-twirled model "
        "(noise_model_from_relaxation(..., exact_channels=False))"
    )


@dataclass
class InsertionStats:
    """Bookkeeping about one sampled error circuit."""

    n_original: int
    n_inserted: int

    @property
    def overhead(self) -> float:
        """Inserted-gate fraction; the paper reports < 2% typically."""
        if self.n_original == 0:
            return 0.0
        return self.n_inserted / self.n_original


class ErrorGateSampler:
    """Samples error-gate-augmented circuits from a noise model.

    Parameters
    ----------
    noise_model:
        The device's published noise model (physical-qubit indexed).
    noise_factor:
        The paper's ``T`` scaling on X/Y/Z probabilities (typical range
        [0.5, 1.5]; Figure 8 sweeps [1e-2, 1e1]).
    allow_exact:
        Accept models carrying exact (non-Pauli) relaxation Kraus
        channels.  Only the quantum-jump (MCWF) consumers set this: they
        sample jumps from the exact Kraus sets via :meth:`jump_table`,
        while plain Pauli insertion cannot represent such channels and
        refuses them with the registry-derived capability error.
    """

    def __init__(
        self,
        noise_model: NoiseModel,
        noise_factor: float = 1.0,
        allow_exact: bool = False,
    ):
        if noise_factor < 0:
            raise ValueError("noise factor must be non-negative")
        if noise_model.has_exact_channels and not allow_exact:
            raise ValueError(exact_channel_support_message())
        self.noise_model = noise_model
        self.noise_factor = noise_factor
        self._scaled = noise_model.scaled(noise_factor) if noise_factor != 1.0 else noise_model

    def sample(
        self,
        circuit: Circuit,
        physical_qubits: "tuple[int, ...]",
        rng: "int | np.random.Generator | None" = None,
    ) -> "tuple[Circuit, InsertionStats]":
        """Insert sampled Pauli error gates after each gate of ``circuit``.

        ``physical_qubits[i]`` is the physical id of circuit qubit ``i``
        (the compiled circuit is compacted to its used qubits); noise
        probabilities are looked up by physical id but error gates are
        emitted on circuit-local indices.
        """
        rng = as_rng(rng)
        phys = {i: physical_qubits[i] for i in range(circuit.n_qubits)}
        gates: "list[Gate]" = []
        inserted = 0
        for gate in circuit.gates:
            gates.append(gate)
            phys_qubits = tuple(phys[q] for q in gate.qubits)
            for local_q, (phys_q, error) in zip(
                gate.qubits,
                self._scaled.gate_errors(gate.name, phys_qubits),
            ):
                choice = rng.choice(4, p=error.probabilities())
                name = _PAULI_NAMES[choice]
                if name is not None:
                    gates.append(Gate(name, (local_q,)))
                    inserted += 1
            # Deterministic coherent miscalibration (hardware models only).
            if gate.name not in ("rz", "id"):
                for local_q, phys_q in zip(gate.qubits, phys_qubits):
                    coherent = self._scaled.coherent_for(phys_q)
                    if coherent is not None:
                        ey, ez = coherent
                        gates.append(
                            Gate("ry", (local_q,), (ParamExpr.constant(ey),))
                        )
                        gates.append(
                            Gate("rz", (local_q,), (ParamExpr.constant(ez),))
                        )
        stats = InsertionStats(len(circuit.gates), inserted)
        return Circuit(circuit.n_qubits, gates), stats

    def sample_batched(
        self,
        circuit: Circuit,
        physical_qubits: "tuple[int, ...]",
        n_trajectories: int,
        rng: "int | np.random.Generator | None" = None,
    ) -> "list[list[tuple]]":
        """Per-gate error events for ``n_trajectories`` trajectories at once.

        Instead of materializing ``n_trajectories`` separate circuits, this
        draws every trajectory's Pauli choice for a given (gate, qubit)
        site in a single vectorized call.  Returns one event list per gate
        of ``circuit``, each event being either

        * ``("pauli", local_qubit, choices)`` with ``choices`` a
          ``(n_trajectories,)`` int array indexing (I, X, Y, Z) -- emitted
          only when at least one trajectory drew a non-identity error; or
        * ``("coherent", local_qubit, (ey, ez))`` for the deterministic
          miscalibration rotations (identical across trajectories).

        Event order matches :meth:`sample`'s gate-insertion order, so the
        fused trajectory sweep applies exactly the same channel.
        """
        rng = as_rng(rng)
        events: "list[list[tuple]]" = []
        for gate in circuit.gates:
            post: "list[tuple]" = []
            phys_qubits = tuple(physical_qubits[q] for q in gate.qubits)
            for local_q, (_phys_q, error) in zip(
                gate.qubits,
                self._scaled.gate_errors(gate.name, phys_qubits),
            ):
                choices = rng.choice(
                    4, size=n_trajectories, p=error.probabilities()
                )
                if choices.any():
                    post.append(("pauli", local_q, choices))
            if gate.name not in ("rz", "id"):
                for local_q, phys_q in zip(gate.qubits, phys_qubits):
                    coherent = self._scaled.coherent_for(phys_q)
                    if coherent is not None:
                        post.append(("coherent", local_q, coherent))
            events.append(post)
        return events

    def site_table(
        self, circuit: Circuit, physical_qubits: "tuple[int, ...]"
    ) -> "tuple[list[tuple[int, int, np.ndarray]], dict[int, list[tuple[int, tuple[float, float]]]]]":
        """Static description of every possible error-insertion site.

        Returns ``(pauli_sites, coherent_by_gate)``:

        * ``pauli_sites`` lists ``(gate_index, local_qubit, cum)`` for
          every (gate, operand) pair whose scaled Pauli total is
          positive, with ``cum`` the cumulative (None, X, Y) probability
          boundaries -- a uniform draw ``u`` maps to the Pauli choice
          ``sum(u >= cum)``, the vectorized inverse-CDF equivalent of
          :meth:`sample`'s per-site ``rng.choice``;
        * ``coherent_by_gate`` maps a gate index to its deterministic
          ``(local_qubit, (ey, ez))`` miscalibration rotations.

        Site order matches :meth:`sample`'s insertion order, so sweeps
        driven by this table apply exactly the same channel.  Zero-
        probability entries are omitted: they can never produce an event.
        """
        pauli_sites: "list[tuple[int, int, np.ndarray]]" = []
        coherent_by_gate: "dict[int, list[tuple[int, tuple[float, float]]]]" = {}
        for index, gate in enumerate(circuit.gates):
            phys_qubits = tuple(physical_qubits[q] for q in gate.qubits)
            for local_q, (_phys_q, error) in zip(
                gate.qubits, self._scaled.gate_errors(gate.name, phys_qubits)
            ):
                if error.total <= 0:
                    continue
                cum = np.cumsum(error.probabilities())[:3]
                pauli_sites.append((index, local_q, cum))
            if gate.name not in ("rz", "id"):
                for local_q, phys_q in zip(gate.qubits, phys_qubits):
                    coherent = self._scaled.coherent_for(phys_q)
                    if coherent is not None:
                        coherent_by_gate.setdefault(index, []).append(
                            (local_q, coherent)
                        )
        return pauli_sites, coherent_by_gate

    def jump_table(
        self, circuit: Circuit, physical_qubits: "tuple[int, ...]"
    ) -> "list[tuple[int, int, np.ndarray, np.ndarray]]":
        """Every exact-channel jump site of the circuit, in channel order.

        Returns ``[(gate_index, local_qubit, kraus, effects), ...]`` for
        each (gate, operand) pair where the scaled model attaches an
        exact thermal-relaxation Kraus set: ``kraus`` is the stacked
        ``(m, 2, 2)`` operator set and ``effects`` the matching
        ``K_i^dag K_i`` stack, whose expectation values are the jump
        probabilities the MCWF unraveling samples from.  Site order
        matches the density reference's channel-application order (the
        Pauli channel of a gate acts first, then relaxation per operand
        in ``gate.qubits`` order, then coherent miscalibration), so the
        trajectory ensemble averages to exactly the compiled channel.
        """
        from repro.noise.model import VIRTUAL_GATES

        sites: "list[tuple[int, int, np.ndarray, np.ndarray]]" = []
        for index, gate in enumerate(circuit.gates):
            if gate.name in VIRTUAL_GATES:
                continue
            for local_q in gate.qubits:
                phys_q = physical_qubits[local_q]
                kraus = self._scaled.relaxation_kraus_for(
                    phys_q, len(gate.qubits)
                )
                if kraus is None:
                    continue
                stack = np.stack([np.asarray(k, dtype=complex) for k in kraus])
                effects = np.einsum("mij,mik->mjk", stack.conj(), stack)
                sites.append((index, local_q, stack, effects))
        return sites

    def expected_overhead(
        self, circuit: Circuit, physical_qubits: "tuple[int, ...]"
    ) -> float:
        """Expected inserted-gate fraction (no sampling)."""
        if len(circuit.gates) == 0:
            return 0.0
        expected = 0.0
        phys = {i: physical_qubits[i] for i in range(circuit.n_qubits)}
        for gate in circuit.gates:
            phys_qubits = tuple(phys[q] for q in gate.qubits)
            for _q, error in self._scaled.gate_errors(gate.name, phys_qubits):
                expected += error.total
        return expected / len(circuit.gates)
