"""Evaluation metrics: SNR / RMD / MSE (paper Section 3.1, Figures 4 & 6)."""

from repro.metrics.snr import snr, rmd, mse, per_qubit_snr

__all__ = ["snr", "rmd", "mse", "per_qubit_snr"]
