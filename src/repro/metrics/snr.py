"""Signal-to-noise metrics for measurement-outcome matrices.

The paper adopts ``SNR = ||A||_2^2 / ||A - A_tilde||_2^2`` -- the inverse
of the relative matrix distance (RMD) -- where ``A`` holds noise-free
measurement outcomes (rows = batch samples, columns = qubits) and
``A_tilde`` their noisy counterparts.
"""

from __future__ import annotations

import numpy as np


def mse(clean: np.ndarray, noisy: np.ndarray) -> float:
    """Mean squared error between outcome matrices."""
    clean = np.asarray(clean, dtype=float)
    noisy = np.asarray(noisy, dtype=float)
    if clean.shape != noisy.shape:
        raise ValueError(f"shape mismatch {clean.shape} vs {noisy.shape}")
    return float(np.mean((clean - noisy) ** 2))


def rmd(clean: np.ndarray, noisy: np.ndarray) -> float:
    """Relative matrix distance ``||A - A~||^2 / ||A||^2``."""
    clean = np.asarray(clean, dtype=float)
    noisy = np.asarray(noisy, dtype=float)
    if clean.shape != noisy.shape:
        raise ValueError(f"shape mismatch {clean.shape} vs {noisy.shape}")
    signal = float(np.sum(clean**2))
    if signal == 0:
        return float("inf")
    return float(np.sum((clean - noisy) ** 2) / signal)


def snr(clean: np.ndarray, noisy: np.ndarray) -> float:
    """``||A||^2 / ||A - A~||^2`` (higher is better; inf when identical)."""
    distance = rmd(clean, noisy)
    if distance == 0:
        return float("inf")
    if not np.isfinite(distance):
        return 0.0
    return 1.0 / distance


def per_qubit_snr(clean: np.ndarray, noisy: np.ndarray) -> np.ndarray:
    """SNR computed per qubit column (Figure 4's per-qubit panel)."""
    clean = np.asarray(clean, dtype=float)
    noisy = np.asarray(noisy, dtype=float)
    out = np.empty(clean.shape[1])
    for q in range(clean.shape[1]):
        out[q] = snr(clean[:, q : q + 1], noisy[:, q : q + 1])
    return out
